"""Volume diagnosis: from tester fail log to candidate defect location.

A die fails on the tester.  This example plays both sides:

1. the "silicon": a secretly injected stuck-at defect produces the fail
   log (failing pattern, failing output) under the production pattern set;
2. the "lab": effect-cause diagnosis traces the log back through the
   netlist and ranks suspects — and we check the real defect is in the
   top equivalence class;
3. the same exercise through an XOR compactor (compressed-scan tester),
   showing the resolution cost of lossy observation.

Run:  python examples/diagnose_failure.py
"""

import random

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.compression.compactor import CompactorConfig, XorCompactor
from repro.diagnosis import (
    CompactedDiagnoser,
    EffectCauseDiagnoser,
    inject_and_observe,
)
from repro.faults import collapse_faults, full_fault_list
from repro.scan import insert_scan, partition_faults
from repro.sim import FaultSimulator


def main() -> None:
    netlist = generators.random_sequential(6, 90, 16, seed=9)
    design = insert_scan(netlist, n_chains=4)
    faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
    capture, _ = partition_faults(design, faults)
    atpg = run_atpg(design.netlist, faults=capture, seed=2)
    patterns = atpg.patterns
    simulator = FaultSimulator(design.netlist)
    print(
        f"production test: {len(patterns)} patterns, "
        f"{atpg.fault_coverage:.1%} coverage of {len(capture)} faults"
    )

    # 1. The defective die (pretend we can't see this).
    rng = random.Random(11)
    defect = rng.choice([f for f in capture])
    observed = inject_and_observe(simulator, patterns, defect)
    print(
        f"\ntester log: {len(observed)} (pattern, output) miscompares "
        f"across {len({p for p, _ in observed})} failing patterns"
    )

    # 2. Effect-cause diagnosis on raw responses.
    diagnoser = EffectCauseDiagnoser(design.netlist, capture)
    result = diagnoser.diagnose(patterns, observed)
    print(f"\nraw diagnosis ({result.candidates_considered} candidates traced):")
    for fault, score in result.suspects[:5]:
        marker = "  <-- actual defect" if fault == defect else ""
        print(f"  {score:.2f}  {fault.describe(design.netlist)}{marker}")
    print(f"defect in top suspect class: {defect in result.top_suspects}")

    # 3. The same die behind a 4:2 XOR compactor.
    compactor = XorCompactor(CompactorConfig(design.n_chains, 2, seed=3))
    compact_diag = CompactedDiagnoser(design, compactor, capture)
    compact_observed = compact_diag.compacted_signature(patterns, defect)
    ranked = compact_diag.diagnose(patterns, compact_observed)
    best = ranked[0][1] if ranked else 0.0
    top = [fault for fault, score in ranked if score == best]
    print(
        f"\ncompacted diagnosis: top class holds {len(top)} suspects; "
        f"defect inside: {defect in top}"
    )


if __name__ == "__main__":
    main()
