"""Fault-resilient inference: test, map out, keep shipping.

The tutorial's closing case study as a runnable story:

1. train a small classifier and lower it to int8;
2. run it on a clean systolic array — accuracy matches;
3. damage the array with random PE defects — accuracy drops;
4. run the PE screen, map out the faulty rows, re-run — accuracy
   recovers at a throughput cost;
5. show the chip-level yield uplift map-out buys across a lot of dies.

Run:  python examples/resilient_inference.py
"""

import numpy as np

from repro.aichip import (
    AcceleratorConfig,
    QuantizedMLP,
    SystolicArray,
    TiledAccelerator,
    detect_faulty_pes,
    random_pe_faults,
    run_inference_on_array,
    trained_reference_model,
)
from repro.dft import yield_with_degradation


def main() -> None:
    # 1-2. Clean baseline.
    model, test_x, test_y = trained_reference_model()
    quantized = QuantizedMLP.from_float(model, test_x)
    clean = SystolicArray(8, 8)
    base_acc = np.mean(run_inference_on_array(quantized, clean, test_x) == test_y)
    print(f"clean array accuracy: {base_acc:.3f}")

    # 3. Damaged array.
    faults = random_pe_faults(8, 8, 6, seed=42)
    damaged = SystolicArray(8, 8, faults=faults)
    hurt_acc = np.mean(run_inference_on_array(quantized, damaged, test_x) == test_y)
    print(f"\n6 random PE faults injected:")
    for fault in faults:
        print(f"  {fault.describe()}")
    print(f"damaged accuracy: {hurt_acc:.3f}")

    # 4. Screen, map out, recover.
    suspects = detect_faulty_pes(damaged)
    print(f"\nPE screen flags: {suspects}")
    degraded = SystolicArray(8, 8, faults=faults, mapped_out=suspects)
    n, k = test_x.shape
    m = quantized.layers[0].weights_q.shape[1]
    fixed_acc = np.mean(run_inference_on_array(quantized, degraded, test_x) == test_y)
    print(
        f"after map-out: accuracy {fixed_acc:.3f}, "
        f"{len(degraded.usable_rows())}/8 rows usable, "
        f"cycles {clean.cycles_for_matmul(n, k, m)} -> "
        f"{degraded.cycles_for_matmul(n, k, m)}"
    )

    # 5. Yield story over a lot of 40 chips.
    rng = np.random.default_rng(7)
    lot = []
    for die in range(40):
        core_faults = {}
        if rng.random() < 0.5:  # half the dies have a defect somewhere
            core = int(rng.integers(0, 4))
            core_faults[core] = random_pe_faults(8, 8, 1, seed=1000 + die)
        lot.append(
            TiledAccelerator(AcceleratorConfig(n_cores=4), core_pe_faults=core_faults)
        )
    report = yield_with_degradation(lot)
    print(
        f"\nlot of {report['chips']} dies: strict yield "
        f"{report['yield_strict']:.0%} -> with map-out "
        f"{report['yield_with_mapout']:.0%}  bins: {report['bins']}"
    )


if __name__ == "__main__":
    main()
