"""Hierarchical DFT for a multi-core AI accelerator.

The tutorial's headline flow: identical cores mean the chip's logic test
is *one* core's test, broadcast.  This example:

1. runs core-level ATPG once;
2. proves broadcast semantics on a replicated chip netlist;
3. compares flat vs hierarchical ATPG cost as the core count grows;
4. builds the chip test plan — compression, broadcast, MBIST — under a
   power budget, and prints the four-corner comparison table.

Run:  python examples/hierarchical_soc.py
"""

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.dft import (
    broadcast_detects_all_cores,
    build_plan,
    compare_flat_hierarchical,
    plan_comparison_table,
    replicate_netlist,
)


def main() -> None:
    core = generators.mac_unit(2)
    print(f"core: {core.name} {core.stats()}")

    # 1+2. Core ATPG once; broadcast check on the 4-core chip.
    atpg = run_atpg(core, seed=1)
    chip = replicate_netlist(core, 4)
    ok = broadcast_detects_all_cores(core, atpg.patterns, chip, 4)
    print(
        f"core ATPG: {len(atpg.patterns)} patterns, "
        f"{atpg.fault_coverage:.1%} coverage; "
        f"broadcast covers all 4 replicas: {ok}"
    )

    # 3. Flat vs hierarchical as N grows (real ATPG both ways).
    print("\nflat vs hierarchical ATPG:")
    for row in compare_flat_hierarchical(core, core_counts=(1, 2, 4), seed=1):
        d = row.as_dict()
        print(
            f"  N={d['cores']}: flat {d['flat_cpu_s']}s/"
            f"{d['flat_patterns']}pat vs hier {d['hier_cpu_s']}s/"
            f"{d['hier_patterns']}pat; data flat={d['flat_bits']}b "
            f"serial={d['serial_bits']}b broadcast={d['broadcast_bits']}b"
        )

    # 4. The chip-level plan.
    plan = build_plan()
    print(f"\nchip test plan: {plan.report}")
    print("\nfour corners (compression x broadcast):")
    for row in plan_comparison_table():
        print(
            f"  compression={row['compression']!s:<5} "
            f"broadcast={row['broadcast']!s:<5} "
            f"cycles={row['scheduled_cycles']:>9,} "
            f"data_bits={row['logic_data_bits_total']:>12,}"
        )


if __name__ == "__main__":
    main()
