"""Quickstart: test a circuit from netlist to patterns in ~30 lines.

Builds a MAC datapath (the AI-chip workhorse cell), enumerates its
stuck-at faults, runs the full ATPG flow, and verifies the emitted
patterns by independent fault simulation.

Run:  python examples/quickstart.py
"""

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim import FaultSimulator


def main() -> None:
    # 1. A circuit: 4-bit multiply-accumulate with a 12-bit accumulator.
    netlist = generators.mac_unit(4)
    print(f"circuit: {netlist.name}  {netlist.stats()}")

    # 2. The fault universe, collapsed by structural equivalence.
    uncollapsed = full_fault_list(netlist)
    faults, _ = collapse_faults(netlist, uncollapsed)
    print(f"faults: {len(uncollapsed)} uncollapsed -> {len(faults)} collapsed")

    # 3. ATPG: random warm-up plus PODEM top-off with compaction.
    result = run_atpg(netlist, seed=1)
    print(f"ATPG:   {result.summary()}")

    # 4. Independent check: fault-simulate the emitted pattern set.
    simulator = FaultSimulator(netlist)
    graded = simulator.simulate(result.patterns, faults, drop=True)
    print(
        f"verify: {len(graded.detected)}/{len(faults)} faults detected "
        f"by {len(result.patterns)} patterns "
        f"({graded.coverage:.1%} fault coverage)"
    )
    for fault in result.untestable[:3]:
        print(f"        proven untestable: {fault.describe(netlist)}")


if __name__ == "__main__":
    main()
