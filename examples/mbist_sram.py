"""Memory BIST bring-up for an accelerator's SRAM.

AI chips are mostly SRAM; this example shows the MBIST controller's
decision process:

1. run every March algorithm against a known-bad memory and watch the
   cheap ones miss coupling faults;
2. build the coverage-vs-cost matrix over sampled fault populations;
3. pick the cheapest algorithm with full coverage and size its runtime
   for the chip's weight buffers.

Run:  python examples/mbist_sram.py
"""

from repro.bist import (
    ALL_MARCH_TESTS,
    Memory,
    MemoryFault,
    coverage_matrix,
    format_matrix,
    operation_count,
    run_march,
)


def main() -> None:
    # 1. A memory with an idempotent coupling fault (cell 9 forces cell 3).
    fault = MemoryFault("CFid", 3, aggressor=9, value=1, aggressor_transition=1)
    print(f"injected: {fault.describe()}")
    for test in ALL_MARCH_TESTS:
        memory = Memory(64, faults=[fault])
        outcome = run_march(memory, test)
        verdict = "DETECTED" if not outcome.passed else "missed"
        print(f"  {test.name:<9} ({test.complexity:>2}N): {verdict}")

    # 2. The statistical picture across all fault models.
    print("\ncoverage matrix (detection rate per fault model):")
    matrix = coverage_matrix(n_cells=64, samples_per_kind=30, seed=1)
    print(format_matrix(matrix))

    # 3. Algorithm selection for the chip.
    full_coverage = [
        name
        for name, row in matrix.items()
        if all(cell.rate == 1.0 for cell in row.values())
    ]
    cheapest = min(
        full_coverage,
        key=lambda name: next(t for t in ALL_MARCH_TESTS if t.name == name).complexity,
    )
    chosen = next(t for t in ALL_MARCH_TESTS if t.name == cheapest)
    sram_bits = 256 * 1024
    ops = operation_count(chosen, sram_bits)
    print(
        f"\nchosen: {chosen.name} ({chosen.complexity}N) — "
        f"{ops:,} operations for a {sram_bits // 1024} Kbit buffer "
        f"({ops / 200e6 * 1e3:.1f} ms at 200 MHz)"
    )


if __name__ == "__main__":
    main()
