"""Compressed scan test of an AI core, end to end.

The flow a DFT engineer runs on one accelerator core:

1. generate the core (a systolic PE), wrap it, insert scan chains;
2. verify shift-path integrity with the chain flush test;
3. run ATPG for the capture faults;
4. encode the deterministic cubes through the EDT decompressor;
5. prove the *decompressed* patterns keep coverage;
6. report the data-volume / test-time win over bypass scan.

Run:  python examples/compress_ai_core.py
"""

from repro.circuit import generators
from repro.compression import EdtSystem, run_compressed_atpg
from repro.dft import wrap_core
from repro.faults import collapse_faults, full_fault_list
from repro.scan import chain_flush_detects, insert_scan, partition_faults
from repro.sim import FaultSimulator


def main() -> None:
    # 1. Core -> wrapped core -> scan design.
    core = generators.systolic_pe(2)
    wrapped = wrap_core(core)
    design = insert_scan(wrapped.netlist, n_chains=8)
    print(f"core: {core.name} {core.stats()}")
    print(
        f"scan: {design.n_chains} chains, longest {design.max_chain_length}, "
        f"{wrapped.n_boundary_cells} boundary cells"
    )

    # 2. Shift-path integrity.
    print(f"chain flush test: {'PASS' if chain_flush_detects(design) else 'FAIL'}")

    # 3+4. Integrated EDT-ATPG: every PODEM cube is encoded immediately and
    # fault dropping runs on the *decompressed* pattern — what the tester
    # actually applies.
    faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
    capture, chain = partition_faults(design, faults)
    edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
    flow = run_compressed_atpg(edt, faults=capture, seed=1)
    print(f"EDT-ATPG: {flow.summary()}  (+{len(chain)} chain faults via flush)")

    # 5. Independent regrade of the applied patterns.
    simulator = FaultSimulator(design.netlist)
    graded = simulator.simulate(flow.applied_patterns, capture, drop=True)
    print(
        f"coverage through compression: "
        f"{len(graded.detected)}/{len(capture)} ({graded.coverage:.1%})"
    )

    # 6. Tester economics.
    cost = edt.cost_versus_bypass(len(flow.applied_patterns))
    print(
        f"vs bypass scan: {cost['data_volume_x']}x less data, "
        f"{cost['test_time_x']}x less test time"
    )


if __name__ == "__main__":
    main()
