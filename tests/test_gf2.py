"""GF(2) linear algebra."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.gf2 import GF2System, dot_bits, rank_of, solve_system


class TestKnownSystems:
    def test_simple_solve(self):
        # x0 ^ x1 = 1, x1 = 1 -> x0 = 0.
        solution = solve_system([(0b11, 1), (0b10, 1)], 2)
        assert solution == [0, 1]

    def test_inconsistent(self):
        # x0 = 0 and x0 = 1.
        assert solve_system([(0b1, 0), (0b1, 1)], 1) is None

    def test_redundant_consistent(self):
        solution = solve_system([(0b1, 1), (0b1, 1)], 1)
        assert solution == [1]

    def test_zero_row_contradiction(self):
        assert solve_system([(0, 1)], 3) is None

    def test_free_variables_default_zero(self):
        solution = solve_system([(0b100, 1)], 3)
        assert solution == [0, 0, 1]

    def test_empty_system(self):
        assert solve_system([], 4) == [0, 0, 0, 0]


class TestPropertySolve:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_solvable_systems_verify(self, seed):
        """b := A·x for random A, x; solving returns some y with A·y = b."""
        rng = random.Random(seed)
        n_vars = rng.randint(1, 24)
        n_eqs = rng.randint(1, 30)
        secret = [rng.randint(0, 1) for _ in range(n_vars)]
        equations = []
        for _ in range(n_eqs):
            row = rng.getrandbits(n_vars)
            rhs = dot_bits(row, secret)
            equations.append((row, rhs))
        solution = solve_system(equations, n_vars)
        assert solution is not None
        for row, rhs in equations:
            assert dot_bits(row, solution) == rhs

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_incremental_matches_batch(self, seed):
        rng = random.Random(seed)
        n_vars = rng.randint(1, 16)
        equations = [
            (rng.getrandbits(n_vars), rng.randint(0, 1)) for _ in range(20)
        ]
        system = GF2System(n_vars)
        ok = all(system.add_equation(row, rhs) for row, rhs in equations)
        batch = solve_system(equations, n_vars)
        assert ok == (batch is not None)
        if ok:
            solution = system.solve()
            for row, rhs in equations:
                assert dot_bits(row, solution) == rhs


class TestRank:
    def test_rank_of_independent_rows(self):
        assert rank_of([0b001, 0b010, 0b100]) == 3

    def test_rank_of_dependent_rows(self):
        assert rank_of([0b011, 0b101, 0b110]) == 2  # third = xor of first two

    def test_rank_tracks_system(self):
        system = GF2System(8)
        system.add_equation(0b11, 0)
        system.add_equation(0b10, 1)
        system.add_equation(0b01, 1)  # dependent
        assert system.rank == 2

    def test_dot_bits(self):
        assert dot_bits(0b101, [1, 0, 1]) == 0
        assert dot_bits(0b101, [1, 0, 0]) == 1
