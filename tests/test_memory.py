"""Behavioral SRAM model and injected memory faults."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bist.memory import FAULT_KINDS, Memory, MemoryFault, sample_faults


class TestFaultFreeMemory:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_reads_return_last_write(self, seed):
        rng = random.Random(seed)
        memory = Memory(32)
        shadow = [0] * 32
        for _ in range(100):
            address = rng.randrange(32)
            if rng.random() < 0.5:
                value = rng.randint(0, 1)
                memory.write(address, value)
                shadow[address] = value
            else:
                assert memory.read(address) == shadow[address]

    def test_bounds_checked(self):
        memory = Memory(8)
        with pytest.raises(IndexError):
            memory.read(8)
        with pytest.raises(IndexError):
            memory.write(-1, 0)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Memory(1)


class TestFaultValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Memory(8, faults=[MemoryFault("GLITCH", 0)])

    def test_cell_out_of_range(self):
        with pytest.raises(ValueError):
            Memory(8, faults=[MemoryFault("SAF", 99)])

    def test_self_coupling_rejected(self):
        with pytest.raises(ValueError):
            Memory(8, faults=[MemoryFault("CFin", 3, aggressor=3)])

    def test_describe_all_kinds(self):
        for kind in FAULT_KINDS:
            fault = sample_faults(16, kind, 1, seed=0)[0]
            assert kind in fault.describe() or kind == "SAF"


class TestFaultBehaviour:
    def test_saf(self):
        memory = Memory(8, faults=[MemoryFault("SAF", 2, value=1)])
        memory.write(2, 0)
        assert memory.read(2) == 1

    def test_tf_blocks_one_transition(self):
        # Can't rise: 0 -> 1 write has no effect, but 1 -> 0 works.
        memory = Memory(8, faults=[MemoryFault("TF", 2, value=1)])
        memory.write(2, 1)
        assert memory.read(2) == 0
        # Force the cell to 1 through... it can never be 1: verify fall path
        memory2 = Memory(8, faults=[MemoryFault("TF", 3, value=0)])
        memory2.write(3, 1)
        assert memory2.read(3) == 1
        memory2.write(3, 0)  # can't fall
        assert memory2.read(3) == 1

    def test_cfin_inverts_victim_on_edge(self):
        fault = MemoryFault("CFin", 1, aggressor=0, value=1)  # rising writes
        memory = Memory(8, faults=[fault])
        memory.write(1, 0)
        memory.write(0, 1)  # rising edge on aggressor
        assert memory.read(1) == 1
        memory.write(0, 0)  # falling edge: no effect
        assert memory.read(1) == 1

    def test_cfid_forces_value(self):
        fault = MemoryFault(
            "CFid", 1, aggressor=0, value=1, aggressor_transition=0
        )  # falling write forces victim to 1
        memory = Memory(8, faults=[fault])
        memory.write(0, 1)
        memory.write(1, 0)
        memory.write(0, 0)  # falling edge
        assert memory.read(1) == 1

    def test_cfst_read_coupling(self):
        fault = MemoryFault("CFst", 1, aggressor=0, value=1, aggressor_state=1)
        memory = Memory(8, faults=[fault])
        memory.write(1, 0)
        memory.write(0, 1)
        assert memory.read(1) == 1  # forced while aggressor holds 1
        memory.write(0, 0)
        assert memory.read(1) == 0

    def test_af_aliases_addresses(self):
        fault = MemoryFault("AF", 2, aggressor=5)
        memory = Memory(8, faults=[fault])
        memory.write(2, 1)  # actually lands on 5
        assert memory.read(5) == 1
        memory.write(5, 0)
        assert memory.read(2) == 0  # reads through the alias

    def test_sof_returns_previous_read(self):
        memory = Memory(8, faults=[MemoryFault("SOF", 2)])
        memory.write(2, 1)
        first = memory.read(2)  # no previous read: sees stored value
        memory.write(2, 0)
        assert memory.read(2) == first  # stuck-open: repeats last read

    def test_coupling_respects_victim_saf(self):
        faults = [
            MemoryFault("SAF", 1, value=0),
            MemoryFault("CFin", 1, aggressor=0, value=1),
        ]
        memory = Memory(8, faults=faults)
        memory.write(0, 1)
        assert memory.read(1) == 0  # SAF wins over the coupling flip


class TestSampling:
    def test_deterministic(self):
        a = sample_faults(64, "CFid", 10, seed=3)
        b = sample_faults(64, "CFid", 10, seed=3)
        assert a == b

    def test_all_kinds_sampleable(self):
        for kind in FAULT_KINDS:
            faults = sample_faults(32, kind, 5, seed=1)
            assert len(faults) == 5
            assert all(f.kind == kind for f in faults)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            sample_faults(32, "GLITCH", 1)
