"""Event-level and sequential logic simulation."""

import pytest

from repro.circuit import benchmarks, generators
from repro.circuit.builder import NetlistBuilder
from repro.circuit.values import ONE, X, ZERO
from repro.sim.logicsim import LogicSimulator


class TestCombinational:
    def test_c17_known_vector(self, c17):
        sim = LogicSimulator(c17)
        # All-ones input: 22 = NAND(10,16); trace by hand gives (0, 1).
        response = sim.response([1, 1, 1, 1, 1])
        assert set(response) <= {0, 1}
        assert len(response) == 2

    def test_x_propagation_blocked_by_controlling(self, c17):
        sim = LogicSimulator(c17)
        # NAND with a 0 input yields 1 even when the other is X.
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.output("y", builder.nand(a, b))
        netlist = builder.build()
        s = LogicSimulator(netlist)
        assert s.response([ZERO, X]) == [ONE]
        assert s.response([ONE, X]) == [X]

    def test_pattern_length_checked(self, c17):
        sim = LogicSimulator(c17)
        with pytest.raises(ValueError):
            sim.response([0, 1])

    def test_evaluate_returns_all_gates(self, c17):
        sim = LogicSimulator(c17)
        values = sim.evaluate([0, 0, 0, 0, 0])
        assert len(values) == len(c17.gates)


class TestSequential:
    def test_step_state_sizes_checked(self, s27):
        sim = LogicSimulator(s27)
        with pytest.raises(ValueError):
            sim.step([0, 0, 0, 0], [0])
        with pytest.raises(ValueError):
            sim.step([0], [0, 0, 0])

    def test_counter_like_behaviour(self):
        # 1-bit toggle: ff.D = NOT(ff) toggles every cycle.
        builder = NetlistBuilder("toggle")
        zero = builder.const0()
        flop = builder.dff(zero, name="ff")
        inv = builder.not_(flop)
        builder.netlist.gates[flop].fanin[0] = inv
        builder.output("q", flop)
        netlist = builder.netlist
        netlist._topo = None
        netlist.finalize()
        sim = LogicSimulator(netlist)
        trace = sim.run_sequence([[]] * 4, initial_state=[0])
        assert [t[0] for t in trace] == [0, 1, 0, 1]

    def test_run_to_ints_rejects_x(self, s27):
        sim = LogicSimulator(s27)
        with pytest.raises(ValueError):
            sim.run_to_ints([[0, 0, 0, 0]], initial_state=[X, X, X])

    def test_scan_shift_uses_si_pin(self):
        from repro.circuit.gates import GateType

        builder = NetlistBuilder("scan1")
        d = builder.input("d")
        si = builder.input("si")
        se = builder.input("se")
        flop = builder.sdff(d, si, se, name="ff")
        builder.output("q", flop)
        netlist = builder.build()
        sim = LogicSimulator(netlist)
        # scan_shift=True captures SI; False captures D.
        shifted = sim.step([0, 1, 1], [0], scan_shift=True)
        captured = sim.step([1, 0, 0], [0], scan_shift=False)
        assert shifted["state"] == [1]
        assert captured["state"] == [1]

    def test_s27_deterministic_from_reset(self, s27):
        sim = LogicSimulator(s27)
        trace = sim.run_sequence(
            [[0, 1, 0, 1], [1, 0, 1, 0], [1, 1, 1, 1]],
            initial_state=[0, 0, 0],
        )
        assert all(value in (0, 1) for step in trace for value in step)
