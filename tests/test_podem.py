"""PODEM test generation: every cube must be confirmed by fault simulation."""

import random

import pytest

from repro.atpg.engine import x_fill
from repro.atpg.podem import Podem
from repro.circuit import benchmarks, generators
from repro.circuit.builder import NetlistBuilder
from repro.circuit.values import X
from repro.faults import OUTPUT_PIN, StuckAtFault, collapse_faults, full_fault_list
from repro.sim.faultsim import FaultSimulator


def _confirm(netlist, fault, cube, seed=0):
    """X-fill the cube several ways; each fill must detect the fault."""
    simulator = FaultSimulator(netlist)
    rng = random.Random(seed)
    for mode in ("zero", "one", "random"):
        pattern = x_fill(cube, rng, mode)
        result = simulator.simulate([pattern], [fault], drop=True)
        assert fault in result.detected, f"{mode}-fill missed {fault}"


class TestDetection:
    def test_c17_all_faults(self, c17):
        podem = Podem(c17)
        for fault in full_fault_list(c17):
            outcome = podem.generate(fault)
            assert outcome.detected, fault.describe(c17)
            _confirm(c17, fault, outcome.cube)

    def test_adder_collapsed_universe(self, adder4):
        podem = Podem(adder4)
        faults, _ = collapse_faults(adder4, full_fault_list(adder4))
        detected = 0
        for fault in faults:
            outcome = podem.generate(fault)
            if outcome.detected:
                detected += 1
                _confirm(adder4, fault, outcome.cube, seed=11)
            else:
                assert outcome.status in ("untestable", "aborted")
        assert detected / len(faults) > 0.9

    def test_sequential_full_scan_view(self, mac4):
        podem = Podem(mac4)
        faults, _ = collapse_faults(mac4, full_fault_list(mac4))
        sample = faults[:: max(1, len(faults) // 40)]
        for fault in sample:
            outcome = podem.generate(fault)
            if outcome.detected:
                _confirm(mac4, fault, outcome.cube, seed=5)

    def test_mux_paths(self, tiny_mux):
        podem = Podem(tiny_mux)
        for fault in full_fault_list(tiny_mux):
            outcome = podem.generate(fault)
            if outcome.detected:
                _confirm(tiny_mux, fault, outcome.cube)

    def test_cube_leaves_dont_cares(self, c17):
        """PODEM cubes should not be fully specified on easy faults."""
        podem = Podem(c17)
        cubes = [
            podem.generate(fault).cube
            for fault in full_fault_list(c17)
        ]
        x_counts = [sum(1 for v in cube if v == X) for cube in cubes if cube]
        assert any(count > 0 for count in x_counts)


class TestUntestable:
    def test_redundant_fault_proved(self):
        """y = OR(a, NOT(a)) is constant 1: s-a-1 on y is untestable."""
        builder = NetlistBuilder()
        a = builder.input("a")
        g = builder.or_(a, builder.not_(a))
        builder.output("y", g)
        netlist = builder.build()
        podem = Podem(netlist)
        outcome = podem.generate(StuckAtFault(g, OUTPUT_PIN, 1))
        assert outcome.status == "untestable"
        # The complementary fault is trivially testable.
        outcome = podem.generate(StuckAtFault(g, OUTPUT_PIN, 0))
        assert outcome.detected

    def test_unobservable_fault_proved(self):
        """A gate with no path to any output is untestable immediately."""
        builder = NetlistBuilder()
        a = builder.input("a")
        dangling = builder.not_(a)
        builder.output("y", builder.buf(a))
        netlist = builder.build()
        podem = Podem(netlist)
        outcome = podem.generate(StuckAtFault(dangling, OUTPUT_PIN, 0))
        assert outcome.status == "untestable"
        assert outcome.backtracks == 0  # rejected by the cone check

    def test_backtrack_limit_aborts(self):
        netlist = generators.random_resistant(14, cones=3)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        podem = Podem(netlist, backtrack_limit=1)
        outcomes = [podem.generate(f) for f in faults]
        aborted = [o for o in outcomes if o.status == "aborted"]
        assert aborted and all(o.reason == "backtracks" for o in aborted)


class TestTimeBudget:
    def test_time_budget_aborts_with_reason(self):
        netlist = generators.random_resistant(14, cones=3)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        podem = Podem(netlist, backtrack_limit=10**6, time_budget_s=1e-7)
        outcomes = [podem.generate(f) for f in faults]
        aborted = [o for o in outcomes if o.status == "aborted"]
        assert aborted and all(o.reason == "time" for o in aborted)
        # A detected cube from a budgeted search is still a real test.
        for fault, outcome in zip(faults, outcomes):
            if outcome.detected:
                _confirm(netlist, fault, outcome.cube)
                break

    def test_first_tripped_budget_wins(self):
        """Both budgets exhausted in the same search step: the abort must
        name the budget that tripped *first*.  An expired wall clock beats
        the backtrack counter; with wall clock to spare, the backtrack
        limit is the tripped budget."""
        netlist = generators.random_resistant(14, cones=3)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        both_zero = Podem(netlist, backtrack_limit=0, time_budget_s=0.0)
        outcomes = [both_zero.generate(f) for f in faults]
        aborted = [o for o in outcomes if o.status == "aborted"]
        assert aborted and all(o.reason == "time" for o in aborted)
        clock_to_spare = Podem(
            netlist, backtrack_limit=0, time_budget_s=3600.0
        )
        outcomes = [clock_to_spare.generate(f) for f in faults]
        aborted = [o for o in outcomes if o.status == "aborted"]
        assert aborted and all(o.reason == "backtracks" for o in aborted)

    def test_abort_reason_unit(self, c17):
        import time

        podem = Podem(c17)
        assert podem._abort_reason(None) == "backtracks"
        assert podem._abort_reason(time.perf_counter() - 1.0) == "time"
        assert podem._abort_reason(time.perf_counter() + 60.0) == "backtracks"

    def test_no_budget_is_unchanged(self, c17):
        with_budget = Podem(c17, time_budget_s=3600.0)
        without = Podem(c17)
        for fault in full_fault_list(c17):
            assert with_budget.generate(fault).cube == without.generate(fault).cube

    def test_negative_budget_rejected(self, c17):
        with pytest.raises(ValueError, match="time_budget_s"):
            Podem(c17, time_budget_s=-1.0)

    def test_run_atpg_counts_timeouts_separately(self):
        from repro.atpg.engine import run_atpg

        netlist = generators.random_resistant(14, cones=3)
        result = run_atpg(
            netlist, random_batches=2, podem_time_budget_s=1e-7, compact=False
        )
        summary = result.summary()
        if result.abort_reasons.get("time"):
            assert summary["aborted_timeout"] == result.abort_reasons["time"]
            assert summary["aborted"] >= summary["aborted_timeout"]
        # Aborted faults stay in the coverage denominator: not untestable.
        assert result.total_faults >= len(result.untestable) + result.detected


class TestBranchFaults:
    def test_branch_into_output_detected(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        builder.output("y1", a)
        builder.output("y2", a)
        netlist = builder.build()
        podem = Podem(netlist)
        # Branch fault on y1's input pin (a fans out to two outputs).
        y1 = netlist.index_of("y1")
        fault = StuckAtFault(y1, 0, 1)
        outcome = podem.generate(fault)
        assert outcome.detected
        _confirm(netlist, fault, outcome.cube)

    def test_branch_into_flop_detected(self, mac4):
        podem = Podem(mac4)
        branch_faults = [
            f
            for f in full_fault_list(mac4)
            if f.pin != OUTPUT_PIN and mac4.gates[f.gate].is_sequential
        ]
        for fault in branch_faults[:6]:
            outcome = podem.generate(fault)
            if outcome.detected:
                _confirm(mac4, fault, outcome.cube)
