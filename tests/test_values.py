"""4-valued algebra and D-calculus pair operations."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit.values import (
    D,
    D_BAR,
    D_ONE,
    D_X,
    D_ZERO,
    FOUR_VALUES,
    ONE,
    X,
    Z,
    ZERO,
    char_to_value,
    d_and,
    d_name,
    d_not,
    d_or,
    d_xor,
    has_unknown,
    is_faulted,
    string_to_values,
    v_and,
    v_not,
    v_or,
    v_xor,
    value_to_char,
    values_to_string,
)

logic_values = st.sampled_from(FOUR_VALUES)
binary = st.sampled_from((ZERO, ONE))


class TestFourValuedOperators:
    def test_not_known_values(self):
        assert v_not(ZERO) == ONE
        assert v_not(ONE) == ZERO

    def test_not_unknowns(self):
        assert v_not(X) == X
        assert v_not(Z) == X

    def test_and_controlling_zero(self):
        for value in FOUR_VALUES:
            assert v_and(ZERO, value) == ZERO
            assert v_and(value, ZERO) == ZERO

    def test_and_identity_one(self):
        assert v_and(ONE, ONE) == ONE
        assert v_and(ONE, X) == X
        assert v_and(ONE, Z) == X

    def test_or_controlling_one(self):
        for value in FOUR_VALUES:
            assert v_or(ONE, value) == ONE
            assert v_or(value, ONE) == ONE

    def test_or_identity_zero(self):
        assert v_or(ZERO, ZERO) == ZERO
        assert v_or(ZERO, X) == X

    def test_xor_with_unknown_is_unknown(self):
        assert v_xor(X, ONE) == X
        assert v_xor(ZERO, Z) == X

    def test_xor_known(self):
        assert v_xor(ONE, ONE) == ZERO
        assert v_xor(ONE, ZERO) == ONE

    @given(a=binary, b=binary)
    def test_known_values_match_boolean_algebra(self, a, b):
        assert v_and(a, b) == (a & b)
        assert v_or(a, b) == (a | b)
        assert v_xor(a, b) == (a ^ b)

    @given(a=logic_values, b=logic_values)
    def test_commutativity(self, a, b):
        assert v_and(a, b) == v_and(b, a)
        assert v_or(a, b) == v_or(b, a)
        assert v_xor(a, b) == v_xor(b, a)

    @given(a=logic_values)
    def test_double_negation_collapses_z_to_x(self, a):
        twice = v_not(v_not(a))
        if a in (ZERO, ONE):
            assert twice == a
        else:
            assert twice == X


class TestStringConversion:
    def test_round_trip(self):
        text = "01XZ"
        assert values_to_string(string_to_values(text)) == "01XZ"

    def test_lowercase_accepted(self):
        assert char_to_value("x") == X
        assert char_to_value("z") == Z

    def test_invalid_char_raises(self):
        with pytest.raises(ValueError):
            char_to_value("q")

    def test_value_to_char(self):
        assert [value_to_char(v) for v in FOUR_VALUES] == ["0", "1", "X", "Z"]


class TestDCalculus:
    def test_d_constants(self):
        assert D == (ONE, ZERO)
        assert D_BAR == (ZERO, ONE)

    def test_d_not_swaps_polarity(self):
        assert d_not(D) == D_BAR
        assert d_not(D_BAR) == D
        assert d_not(D_ONE) == D_ZERO

    def test_d_and_absorbs(self):
        assert d_and(D, D_ZERO) == D_ZERO
        assert d_and(D, D_ONE) == D

    def test_d_or_dominates(self):
        assert d_or(D, D_ONE) == D_ONE
        assert d_or(D, D_ZERO) == D

    def test_d_xor(self):
        assert d_xor(D, D_BAR) == D_ONE  # (1^0, 0^1)
        assert d_xor(D, D) == D_ZERO

    def test_is_faulted(self):
        assert is_faulted(D)
        assert is_faulted(D_BAR)
        assert not is_faulted(D_ONE)
        assert not is_faulted(D_X)

    def test_has_unknown(self):
        assert has_unknown(D_X)
        assert has_unknown((X, ONE))
        assert not has_unknown(D)

    def test_d_name(self):
        assert d_name(D) == "D"
        assert d_name(D_BAR) == "D'"
        assert d_name(D_X) == "X"

    @given(
        a=st.tuples(binary, binary),
        b=st.tuples(binary, binary),
    )
    def test_d_ops_are_railwise(self, a, b):
        assert d_and(a, b) == (v_and(a[0], b[0]), v_and(a[1], b[1]))
        assert d_or(a, b) == (v_or(a[0], b[0]), v_or(a[1], b[1]))
        assert d_xor(a, b) == (v_xor(a[0], b[0]), v_xor(a[1], b[1]))
