"""Sequential parallel-fault simulation."""

import random

import pytest

from repro.circuit import benchmarks, generators
from repro.circuit.builder import NetlistBuilder
from repro.circuit.gates import GateType
from repro.faults import OUTPUT_PIN, StuckAtFault, full_fault_list
from repro.sim.logicsim import LogicSimulator
from repro.sim.seqfaultsim import SequentialFaultSimulator


def _naive_sequential_detects(netlist, fault, vectors):
    """Reference: simulate the faulty machine explicitly, cycle by cycle."""
    from repro.circuit.gates import evaluate_parallel

    gates = netlist.gates
    good_state = [0] * len(netlist.flops)
    bad_state = [0] * len(netlist.flops)
    forced = 1 if fault.value else 0

    def step(state, faulty):
        words = [0] * len(gates)
        for position, pi in enumerate(netlist.inputs):
            words[pi] = vector[position]
            if faulty and fault.pin == OUTPUT_PIN and pi == fault.gate:
                words[pi] = forced
        for position, flop in enumerate(netlist.flops):
            words[flop] = state[position]
            if faulty and fault.pin == OUTPUT_PIN and flop == fault.gate:
                words[flop] = forced
        for index in netlist.topo_order:
            gate = gates[index]
            if gate.type == GateType.INPUT or gate.is_sequential:
                continue
            inputs = [words[d] for d in gate.fanin]
            if faulty and index == fault.gate and fault.pin != OUTPUT_PIN:
                inputs[fault.pin] = forced
            value = evaluate_parallel(gate.type, inputs, 1)
            if faulty and index == fault.gate and fault.pin == OUTPUT_PIN:
                value = forced
            words[index] = value
        outputs = [words[gates[po].fanin[0]] for po in netlist.outputs]
        nxt = []
        for flop in netlist.flops:
            data = words[gates[flop].fanin[0]]
            if faulty and fault.gate == flop and fault.pin == 0:
                data = forced
            nxt.append(data)
        return outputs, nxt

    for vector in vectors:
        good_out, good_state = step(good_state, faulty=False)
        bad_out, bad_state = step(bad_state, faulty=True)
        if good_out != bad_out:
            return True
    return False


@pytest.fixture(scope="module")
def seq_circuit():
    return generators.random_sequential(5, 60, 8, seed=7)


class TestAgainstNaiveReference:
    def test_matches_per_fault_simulation(self, seq_circuit):
        simulator = SequentialFaultSimulator(seq_circuit)
        faults = full_fault_list(seq_circuit)
        rng = random.Random(1)
        vectors = [
            [rng.randint(0, 1) for _ in range(len(seq_circuit.inputs))]
            for _ in range(12)
        ]
        graded = simulator.simulate(vectors, faults, drop=False)
        sample = faults[:: max(1, len(faults) // 30)]
        for fault in sample:
            expected = _naive_sequential_detects(seq_circuit, fault, vectors)
            assert (fault in graded.detected) == expected, fault

    def test_s27_coverage_grows_with_sequence_length(self):
        netlist = benchmarks.s27()
        simulator = SequentialFaultSimulator(netlist)
        faults = full_fault_list(netlist)
        rng = random.Random(3)
        long_vectors = [
            [rng.randint(0, 1) for _ in range(4)] for _ in range(64)
        ]
        short = simulator.simulate(long_vectors[:2], faults, drop=True)
        full = simulator.simulate(long_vectors, faults, drop=True)
        assert len(full.detected) > len(short.detected)


class TestStateMemory:
    def test_fault_effect_latched_across_cycles(self):
        """A fault excitable only in cycle 1 whose effect surfaces at the
        PO in cycle 2 — invisible to any combinational analysis."""
        builder = NetlistBuilder("latch_effect")
        a = builder.input("a")
        zero = builder.const0()
        ff = builder.dff(a, name="ff")
        builder.output("y", ff)
        netlist = builder.build()
        simulator = SequentialFaultSimulator(netlist)
        fault = StuckAtFault(netlist.index_of("a"), OUTPUT_PIN, 0)
        # Cycle 0 drives a=1 (excites); the corrupted state reads out on
        # cycle 1's PO.
        graded = simulator.simulate([[1], [0]], [fault], drop=True)
        assert graded.detected[fault] == 1

    def test_first_detecting_cycle_recorded(self, seq_circuit):
        simulator = SequentialFaultSimulator(seq_circuit)
        faults = full_fault_list(seq_circuit)
        rng = random.Random(5)
        vectors = [
            [rng.randint(0, 1) for _ in range(len(seq_circuit.inputs))]
            for _ in range(10)
        ]
        graded = simulator.simulate(vectors, faults, drop=True)
        assert all(0 <= cycle < 10 for cycle in graded.detected.values())

    def test_initial_state_honoured(self):
        builder = NetlistBuilder("init")
        zero = builder.const0()
        ff = builder.dff(zero, name="ff")
        builder.output("y", ff)
        netlist = builder.build()
        simulator = SequentialFaultSimulator(netlist)
        fault = StuckAtFault(ff, OUTPUT_PIN, 1)
        # Starting at 1 the stuck-at-1 is invisible on cycle 0; starting
        # at 0 it shows immediately.
        from_one = simulator.simulate([[]], [fault], initial_state=[1])
        from_zero = simulator.simulate([[]], [fault], initial_state=[0])
        assert fault not in from_one.detected
        assert fault in from_zero.detected

    def test_batching_beyond_63_faults(self, seq_circuit):
        simulator = SequentialFaultSimulator(seq_circuit)
        faults = full_fault_list(seq_circuit)
        assert len(faults) > 63  # exercises multi-word batching
        rng = random.Random(9)
        vectors = [
            [rng.randint(0, 1) for _ in range(len(seq_circuit.inputs))]
            for _ in range(8)
        ]
        graded = simulator.simulate(vectors, faults, drop=False)
        assert graded.total_faults == len(faults)
