"""COP-derived weighted-random LBIST."""

import pytest

from repro.bist.lbist import StumpsController, derive_input_weights, run_weighted_lbist
from repro.circuit import generators
from repro.circuit.builder import NetlistBuilder


class TestWeightDerivation:
    def test_wide_and_biases_inputs_high(self):
        """Detecting the wide-AND's output s-a-0 needs all-1 inputs, so
        the derived weights should pull the literals toward 1."""
        builder = NetlistBuilder()
        inputs = [builder.input(f"i{k}") for k in range(10)]
        builder.output("y", builder.and_tree(inputs))
        netlist = builder.build()
        weights = derive_input_weights(netlist)
        assert all(w > 0.5 for w in weights)

    def test_balanced_circuit_keeps_half(self):
        netlist = generators.parity_tree(8)
        weights = derive_input_weights(netlist)
        assert all(w == 0.5 for w in weights)

    def test_weight_count_matches_view(self):
        netlist = generators.mac_unit(2)
        weights = derive_input_weights(netlist)
        assert len(weights) == len(netlist.inputs) + len(netlist.flops)


class TestWeightedCoverage:
    def test_beats_uniform_on_resistant_logic(self):
        netlist = generators.wide_comparator(14)
        uniform = StumpsController(netlist).run(256).final_coverage
        weighted = run_weighted_lbist(netlist, 256, seed=2).final_coverage
        assert weighted > uniform

    def test_curve_monotone(self):
        netlist = generators.random_resistant(12, cones=2)
        result = run_weighted_lbist(netlist, 256, seed=1)
        coverages = [p["coverage"] for p in result.coverage_points]
        assert coverages == sorted(coverages)

    def test_custom_fault_list(self):
        from repro.faults import collapse_faults, full_fault_list

        netlist = generators.wide_comparator(10)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        result = run_weighted_lbist(netlist, 128, faults=faults[:10], seed=1)
        assert result.total_faults == 10
