"""Cross-engine invariants, property-checked over random circuits.

Each property draws a fresh random circuit per example and checks an
invariant that ties two independent engines together — the strongest kind
of correctness evidence this library has, since a bug would have to break
both sides identically to hide.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.engine import x_fill
from repro.atpg.podem import Podem
from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.circuit.bench import parse_bench, write_bench
from repro.circuit.simplify import simplify
from repro.circuit.verilog import parse_verilog, write_verilog
from repro.faults import collapse_faults, full_fault_list
from repro.scan import insert_scan
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import LogicSimulator
from repro.sim.parallel import ParallelSimulator

SMALL = dict(max_examples=12, deadline=None)
seeds = st.integers(0, 10**6)


def small_circuit(seed):
    rng = random.Random(seed)
    return generators.random_circuit(
        rng.randint(4, 8), rng.randint(15, 45), seed=seed
    )


def small_sequential(seed):
    rng = random.Random(seed ^ 0xABCD)
    return generators.random_sequential(
        rng.randint(3, 6), rng.randint(20, 50), rng.randint(3, 8), seed=seed
    )


class TestEngineAgreement:
    @settings(**SMALL)
    @given(seed=seeds)
    def test_parallel_matches_event_sim(self, seed):
        netlist = small_circuit(seed)
        parallel = ParallelSimulator(netlist)
        logic = LogicSimulator(netlist)
        patterns = random_patterns(parallel.view.num_inputs, 10, seed=seed)
        assert parallel.responses(patterns) == [
            logic.response(p) for p in patterns
        ]

    @settings(**SMALL)
    @given(seed=seeds)
    def test_serial_matches_ppsfp(self, seed):
        netlist = small_circuit(seed)
        simulator = FaultSimulator(netlist)
        faults = full_fault_list(netlist)
        patterns = random_patterns(simulator.view.num_inputs, 8, seed=seed)
        serial = simulator.simulate(patterns, faults, drop=False, engine="serial")
        ppsfp = simulator.simulate(patterns, faults, drop=False, engine="ppsfp")
        assert serial.detected == ppsfp.detected

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_pool_matches_ppsfp(self, seed):
        """Pool-backend coverage equals ppsfp coverage on any random circuit
        and pattern set, and its stats account for the whole collapsed
        universe."""
        netlist = small_circuit(seed)
        simulator = FaultSimulator(netlist)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        rng = random.Random(seed ^ 0x5A5A)
        patterns = random_patterns(
            simulator.view.num_inputs, rng.randint(1, 80), seed=seed
        )
        ppsfp = simulator.simulate(patterns, faults, engine="ppsfp")
        pool = simulator.simulate(
            patterns, faults, engine="pool", jobs=rng.choice([1, 2]), seed=seed
        )
        assert pool.coverage == ppsfp.coverage
        assert pool.detected == ppsfp.detected
        assert pool.stats["faults_simulated"] == len(faults)
        assert sum(
            p["faults"] for p in pool.stats["partitions"]
        ) == len(faults)


class TestPodemSoundness:
    @settings(**SMALL)
    @given(seed=seeds)
    def test_every_cube_confirmed_by_fault_simulation(self, seed):
        """PODEM soundness: a detected cube's every completion detects."""
        netlist = small_circuit(seed)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        podem = Podem(netlist, backtrack_limit=24)
        simulator = FaultSimulator(netlist)
        rng = random.Random(seed)
        checked = 0
        for fault in faults:
            if checked >= 10:
                break
            outcome = podem.generate(fault)
            if not outcome.detected:
                continue
            checked += 1
            for mode in ("zero", "one", "random"):
                pattern = x_fill(outcome.cube, rng, mode)
                graded = simulator.simulate([pattern], [fault], drop=True)
                assert fault in graded.detected

    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_untestable_verdicts_hold_exhaustively(self, seed):
        """PODEM completeness spot-check: on circuits small enough to
        enumerate, 'untestable' must mean NO input vector detects."""
        rng = random.Random(seed)
        netlist = generators.random_circuit(rng.randint(4, 6), 18, seed=seed)
        n_inputs = len(netlist.inputs)
        if n_inputs > 6:
            return
        from repro.atpg.random_gen import exhaustive_patterns

        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        podem = Podem(netlist, backtrack_limit=4096)
        simulator = FaultSimulator(netlist)
        everything = exhaustive_patterns(n_inputs)
        for fault in faults[:20]:
            outcome = podem.generate(fault)
            if outcome.status == "untestable":
                graded = simulator.simulate(everything, [fault], drop=True)
                assert fault not in graded.detected, fault.describe(netlist)


class TestStructuralTransforms:
    @settings(**SMALL)
    @given(seed=seeds)
    def test_simplify_preserves_function(self, seed):
        netlist = small_sequential(seed)
        rebuilt, _ = simplify(netlist)
        sim_a, sim_b = LogicSimulator(netlist), LogicSimulator(rebuilt)
        patterns = random_patterns(sim_a.view.num_inputs, 10, seed=seed)
        for pattern in patterns:
            assert sim_a.response(pattern) == sim_b.response(pattern)

    @settings(**SMALL)
    @given(seed=seeds)
    def test_scan_insertion_preserves_capture_function(self, seed):
        netlist = small_sequential(seed)
        design = insert_scan(netlist, n_chains=2)
        original = LogicSimulator(netlist)
        scanned = LogicSimulator(design.netlist)
        rng = random.Random(seed)
        state = [0] * len(netlist.flops)
        for _ in range(4):
            inputs = [rng.randint(0, 1) for _ in range(len(netlist.inputs))]
            padded = inputs + [0] * (
                len(design.netlist.inputs) - len(inputs)
            )
            a = original.step(inputs, state)
            b = scanned.step(padded, state, scan_shift=False)
            assert a["state"] == b["state"]
            assert a["outputs"] == b["outputs"][: len(a["outputs"])]
            state = a["state"]

    @settings(**SMALL)
    @given(seed=seeds)
    def test_bench_roundtrip_preserves_function(self, seed):
        netlist = small_circuit(seed)
        rebuilt = parse_bench(write_bench(netlist))
        sim_a, sim_b = LogicSimulator(netlist), LogicSimulator(rebuilt)
        patterns = random_patterns(sim_a.view.num_inputs, 8, seed=seed)
        for pattern in patterns:
            assert sim_a.response(pattern) == sim_b.response(pattern)

    @settings(**SMALL)
    @given(seed=seeds)
    def test_verilog_roundtrip_preserves_function(self, seed):
        netlist = small_sequential(seed)
        rebuilt = parse_verilog(write_verilog(netlist))
        sim_a, sim_b = LogicSimulator(netlist), LogicSimulator(rebuilt)
        patterns = random_patterns(sim_a.view.num_inputs, 8, seed=seed)
        for pattern in patterns:
            assert sim_a.response(pattern) == sim_b.response(pattern)


class TestCollapseSemantics:
    @settings(max_examples=6, deadline=None)
    @given(seed=seeds)
    def test_equivalence_classes_share_detection_sets(self, seed):
        rng = random.Random(seed)
        netlist = generators.random_circuit(rng.randint(4, 5), 14, seed=seed)
        n_inputs = len(netlist.inputs)
        if n_inputs > 6:
            return
        from repro.atpg.random_gen import exhaustive_patterns

        faults = full_fault_list(netlist)
        _, mapping = collapse_faults(netlist, faults)
        simulator = FaultSimulator(netlist)
        everything = exhaustive_patterns(n_inputs)
        signature = {}
        for fault in faults:
            graded = simulator.simulate(everything, [fault], drop=False)
            detecting = frozenset(
                simulator.failure_signature(everything, fault)
            )
            signature[fault] = detecting
        classes = {}
        for fault, representative in mapping.items():
            classes.setdefault(representative, []).append(fault)
        for members in classes.values():
            reference = signature[members[0]]
            for member in members[1:]:
                assert signature[member] == reference
