"""Backfill tests for the full-scan combinational view (``repro.sim.view``).

Every engine in the toolkit shares the vector ordering this class fixes:
patterns assign primary inputs then flop outputs (pseudo-PIs), responses
read PO drivers then flop D drivers (pseudo-POs).  These tests pin that
contract structurally and against the fault simulator that consumes it.
"""

from repro.circuit import benchmarks, generators
from repro.sim.faultsim import FaultSimulator
from repro.sim.view import CombinationalView


class TestCombinationalOrdering:
    def test_pure_combinational_inputs_are_pis(self):
        netlist = generators.adder(4)
        view = CombinationalView(netlist)
        assert view.input_gates == list(netlist.inputs)
        assert view.num_inputs == len(netlist.inputs)
        assert view.num_outputs == len(netlist.outputs)

    def test_output_readers_are_po_drivers(self):
        netlist = benchmarks.c17()
        view = CombinationalView(netlist)
        for reader, po in zip(view.output_readers, netlist.outputs):
            assert reader == netlist.gates[po].fanin[0]

    def test_split_pattern_no_flops(self):
        netlist = benchmarks.c17()
        view = CombinationalView(netlist)
        pattern = list(range(view.num_inputs))
        pis, state = view.split_pattern(pattern)
        assert list(pis) == pattern
        assert list(state) == []


class TestSequentialOrdering:
    def test_inputs_are_pis_then_flops(self):
        netlist = benchmarks.s27()
        view = CombinationalView(netlist)
        assert view.input_gates == list(netlist.inputs) + list(netlist.flops)
        assert view.num_inputs == len(netlist.inputs) + len(netlist.flops)

    def test_outputs_are_pos_then_flop_d_drivers(self):
        netlist = benchmarks.s27()
        view = CombinationalView(netlist)
        expected = [netlist.gates[po].fanin[0] for po in netlist.outputs]
        expected += [netlist.gates[ff].fanin[0] for ff in netlist.flops]
        assert view.output_readers == expected
        assert view.num_outputs == len(netlist.outputs) + len(netlist.flops)

    def test_split_pattern_separates_scan_state(self):
        netlist = benchmarks.s27()
        view = CombinationalView(netlist)
        n_pi = len(netlist.inputs)
        pattern = list(range(view.num_inputs))
        pis, state = view.split_pattern(pattern)
        assert list(pis) == pattern[:n_pi]
        assert list(state) == pattern[n_pi:]
        assert len(state) == len(netlist.flops)

    def test_names_follow_vector_order(self):
        netlist = benchmarks.s27()
        view = CombinationalView(netlist)
        gates = netlist.gates
        assert view.input_names() == [
            gates[i].name for i in view.input_gates
        ]
        names = view.output_names()
        assert len(names) == view.num_outputs
        po_names = [gates[po].name for po in netlist.outputs]
        assert names[: len(po_names)] == po_names
        # Pseudo-PO names carry the .D suffix of the flop they capture into.
        for name, ff in zip(names[len(po_names):], netlist.flops):
            assert name == f"{gates[ff].name}.D"

    def test_read_outputs_indexes_readers(self):
        netlist = benchmarks.s27()
        view = CombinationalView(netlist)
        values = list(range(len(netlist.gates)))
        assert view.read_outputs(values) == view.output_readers


class TestSimulatorConsistency:
    def test_faultsim_view_matches_standalone(self):
        for netlist in (benchmarks.s27(), generators.random_sequential(4, 40, 5, seed=1)):
            simulator = FaultSimulator(netlist)
            view = CombinationalView(netlist)
            assert simulator.view.input_gates == view.input_gates
            assert simulator.view.output_readers == view.output_readers

    def test_view_is_deterministic(self):
        netlist = generators.random_sequential(6, 50, 8, seed=404)
        first = CombinationalView(netlist)
        second = CombinationalView(netlist)
        assert first.input_gates == second.input_gates
        assert first.output_readers == second.output_readers
        assert first.input_names() == second.input_names()
