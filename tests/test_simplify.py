"""Netlist simplification: function preservation and debris removal."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import benchmarks, generators
from repro.circuit.builder import NetlistBuilder
from repro.circuit.gates import GateType
from repro.circuit.simplify import simplify
from repro.sim.logicsim import LogicSimulator


def _equivalent(original, rebuilt, trials=30, seed=0):
    """Random-pattern equivalence on POs (and next-state for flops)."""
    sim_a, sim_b = LogicSimulator(original), LogicSimulator(rebuilt)
    assert sim_b.view.num_inputs == sim_a.view.num_inputs
    rng = random.Random(seed)
    for _ in range(trials):
        pattern = [rng.randint(0, 1) for _ in range(sim_a.view.num_inputs)]
        if sim_a.response(pattern) != sim_b.response(pattern):
            return False
    return True


class TestConstantPropagation:
    def test_and_with_zero(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        zero = builder.const0()
        builder.output("y", builder.and_(a, zero))
        netlist = builder.build()
        rebuilt, report = simplify(netlist)
        assert report.constants_propagated >= 1
        sim = LogicSimulator(rebuilt)
        assert sim.response([0]) == [0] and sim.response([1]) == [0]

    def test_and_with_one_forwards(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        one = builder.const1()
        builder.output("y", builder.and_(a, one))
        netlist = builder.build()
        rebuilt, report = simplify(netlist)
        assert rebuilt.num_gates == 0  # pure wire to the output marker
        assert _equivalent(netlist, rebuilt)

    def test_xor_parity_with_odd_constants(self):
        """XOR(a, b, 1) must become XNOR(a, b), not XOR(a, b)."""
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        one = builder.const1()
        builder.output("y", builder.xor(a, b, one))
        netlist = builder.build()
        rebuilt, _ = simplify(netlist)
        assert _equivalent(netlist, rebuilt)

    def test_xnor_single_unknown(self):
        """XNOR(a, 0) == NOT(a)."""
        builder = NetlistBuilder()
        a = builder.input("a")
        zero = builder.const0()
        builder.output("y", builder.xnor(a, zero))
        netlist = builder.build()
        rebuilt, _ = simplify(netlist)
        assert _equivalent(netlist, rebuilt)

    def test_mux_constant_select(self):
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        one = builder.const1()
        builder.output("y", builder.mux(one, a, b))
        netlist = builder.build()
        rebuilt, _ = simplify(netlist)
        assert _equivalent(netlist, rebuilt)
        assert rebuilt.num_gates == 0


class TestBufferAndDeadLogic:
    def test_buffer_chain_collapses(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        x = a
        for _ in range(5):
            x = builder.buf(x)
        builder.output("y", x)
        netlist = builder.build()
        rebuilt, report = simplify(netlist)
        assert report.buffers_collapsed == 5
        assert rebuilt.num_gates == 0
        assert _equivalent(netlist, rebuilt)

    def test_dead_logic_removed(self):
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.and_(a, b)  # drives nothing
        builder.not_(a)  # drives nothing
        builder.output("y", builder.or_(a, b))
        netlist = builder.build()
        rebuilt, report = simplify(netlist)
        assert report.dead_gates_removed == 2
        assert rebuilt.num_gates == 1
        assert _equivalent(netlist, rebuilt)

    def test_interface_preserved(self):
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        builder.output("y", builder.buf(a))  # b is entirely unused
        netlist = builder.build()
        rebuilt, _ = simplify(netlist)
        assert rebuilt.input_names() == ["a", "b"]


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "name", ["c17", "s27", "add8", "alu4", "mac4", "pe4", "rres12"]
    )
    def test_benchmarks_unchanged(self, name):
        netlist = benchmarks.get_benchmark(name)
        rebuilt, report = simplify(netlist)
        assert _equivalent(netlist, rebuilt, trials=25, seed=3)
        assert report.gates_after <= report.gates_before

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**4))
    def test_random_circuits_unchanged(self, seed):
        netlist = generators.random_circuit(8, 60, seed=seed)
        rebuilt, _ = simplify(netlist)
        assert _equivalent(netlist, rebuilt, trials=15, seed=seed)

    def test_mac_padding_constants_removed(self, mac4):
        """mac4's zero-padded product bits create constant debris; after
        simplify its untestable-fault count drops."""
        from repro.atpg import run_atpg

        rebuilt, report = simplify(mac4)
        assert report.removed > 0
        before = run_atpg(mac4, seed=1)
        after = run_atpg(rebuilt, seed=1)
        assert len(after.untestable) < len(before.untestable)
        assert after.test_coverage == 1.0
