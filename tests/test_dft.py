"""Hierarchical DFT: replication, wrapping, retargeting, scheduling, planning."""

import pytest

from repro.atpg import run_atpg
from repro.circuit import benchmarks, generators
from repro.dft import (
    BinningPolicy,
    DftPlanInputs,
    broadcast_detects_all_cores,
    build_plan,
    compare_flat_hierarchical,
    plan_comparison_table,
    replicate_netlist,
    retarget_cost,
    schedule_report,
    schedule_tests,
    sequential_cycles,
    wrap_core,
    yield_with_degradation,
)
from repro.dft import TestTask as PowerTask
from repro.dft import test_and_degrade as screen_and_degrade
from repro.aichip.accelerator import AcceleratorConfig, TiledAccelerator
from repro.aichip.systolic import PEFault
from repro.scan import insert_scan
from repro.sim.logicsim import LogicSimulator


class TestReplication:
    def test_replica_counts(self, mac4):
        chip = replicate_netlist(mac4, 4)
        assert chip.num_gates == 4 * mac4.num_gates
        assert len(chip.inputs) == 4 * len(mac4.inputs)
        assert len(chip.flops) == 4 * len(mac4.flops)

    def test_replicas_compute_identically(self, adder4):
        chip = replicate_netlist(adder4, 2)
        sim = LogicSimulator(chip)
        pattern = [1, 0, 1, 0, 0, 1, 1, 0]
        response = sim.response(pattern + pattern)
        half = len(response) // 2
        assert response[:half] == response[half:]

    def test_invalid_count(self, adder4):
        with pytest.raises(ValueError):
            replicate_netlist(adder4, 0)


class TestWrapping:
    def test_boundary_cells_cover_ports(self, alu4):
        wrapped = wrap_core(alu4)
        assert len(wrapped.input_cells) == len(alu4.inputs)
        assert len(wrapped.output_cells) == len(alu4.outputs)

    def test_wrapped_adds_flops_only(self, alu4):
        wrapped = wrap_core(alu4)
        extra_flops = len(wrapped.netlist.flops) - len(alu4.flops)
        assert extra_flops == wrapped.n_boundary_cells

    def test_wrapped_function_preserved_through_boundary(self, adder4):
        """Ports -> boundary flops -> logic: two steps reproduce the add."""
        wrapped = wrap_core(adder4)
        sim = LogicSimulator(wrapped.netlist)
        pattern = [1, 1, 0, 0, 0, 1, 0, 0]  # a=3, b=2
        # Cycle 1 latches inputs into the boundary cells.
        step1 = sim.step(pattern, sim.initial_state(0))
        # Cycle 2's capture loads output boundary cells with the sum.
        step2 = sim.step(pattern, step1["state"])
        out_cells = [
            wrapped.netlist.flops.index(cell)
            for cell in wrapped.output_cells.values()
        ]
        observed = [step2["state"][i] for i in out_cells]
        names = list(wrapped.output_cells)
        total = sum(
            bit << int(name[name.index("[") + 1 : -1])
            for name, bit in zip(names, observed)
            if name.startswith("sum")
        )
        assert total == 5

    def test_wrapped_core_fully_scannable(self, alu4):
        wrapped = wrap_core(alu4)
        result = run_atpg(wrapped.netlist, seed=2)
        assert result.test_coverage > 0.97


class TestRetargeting:
    def test_broadcast_covers_every_replica(self, mac4):
        atpg = run_atpg(mac4, seed=1)
        chip = replicate_netlist(mac4, 3)
        assert broadcast_detects_all_cores(mac4, atpg.patterns, chip, 3)

    def test_broadcast_cheaper_than_serial(self, mac4):
        design = insert_scan(mac4, n_chains=2)
        atpg = run_atpg(mac4, seed=1)
        broadcast = retarget_cost(design, atpg, 8, "broadcast")
        serial = retarget_cost(design, atpg, 8, "serial")
        assert broadcast.stimulus_bits * 8 == serial.stimulus_bits
        assert broadcast.test_cycles * 8 == serial.test_cycles
        assert broadcast.data_volume_bits < serial.data_volume_bits

    def test_unknown_mode(self, mac4):
        design = insert_scan(mac4, n_chains=2)
        atpg = run_atpg(mac4, seed=1)
        with pytest.raises(ValueError):
            retarget_cost(design, atpg, 2, "osmosis")

    def test_flat_vs_hier_rows(self):
        core = generators.mac_unit(2)
        rows = compare_flat_hierarchical(core, core_counts=(1, 2), seed=1)
        assert len(rows) == 2
        one, two = rows
        assert two.flat_gates == 2 * one.flat_gates
        # Hierarchical effort is constant; flat grows.
        assert two.hier_patterns == one.hier_patterns
        assert two.flat_cpu_s >= one.flat_cpu_s * 0.5  # noisy but larger work
        assert two.broadcast_data_bits < two.serial_data_bits


class TestScheduling:
    def test_respects_power_budget(self):
        tasks = [PowerTask(f"t{i}", 100 + i, 1.0) for i in range(6)]
        schedule = schedule_tests(tasks, power_budget=2.0)
        for session in schedule.sessions:
            assert session.power <= 2.0

    def test_parallelism_beats_sequential(self):
        tasks = [PowerTask(f"t{i}", 100, 1.0) for i in range(8)]
        schedule = schedule_tests(tasks, power_budget=4.0)
        assert schedule.total_cycles < sequential_cycles(tasks)
        assert schedule.total_cycles == 200  # 8 tasks, 4 per session

    def test_oversized_task_rejected(self):
        with pytest.raises(ValueError):
            schedule_tests([PowerTask("hog", 10, 9.0)], power_budget=4.0)

    def test_report_fields(self):
        tasks = [PowerTask("a", 100, 1.0), PowerTask("b", 50, 1.0)]
        report = schedule_report(tasks, 2.0)
        assert report["sessions"] == 1
        assert report["scheduled_cycles"] == 100
        assert report["speedup_x"] == 1.5

    def test_negative_task_rejected(self):
        with pytest.raises(ValueError):
            PowerTask("bad", -1, 1.0)


class TestPlanner:
    def test_plan_report(self):
        plan = build_plan()
        assert plan.report["cores"] == 4
        assert plan.report["scheduled_cycles"] > 0
        assert plan.core_flops > 0

    def test_compression_reduces_cycles(self):
        slow = build_plan(inputs=DftPlanInputs(use_compression=False))
        fast = build_plan(inputs=DftPlanInputs(use_compression=True))
        assert (
            fast.report["logic_cycles_per_core"]
            < slow.report["logic_cycles_per_core"]
        )

    def test_comparison_table_has_four_corners(self):
        rows = plan_comparison_table()
        assert len(rows) == 4
        corners = {(row["compression"], row["broadcast"]) for row in rows}
        assert len(corners) == 4


class TestDegradation:
    def test_clean_chip_ships_full(self):
        chip = TiledAccelerator(AcceleratorConfig(n_cores=2))
        outcome = screen_and_degrade(chip)
        assert outcome.shippable
        assert outcome.bin_name == "full"
        assert outcome.compute_fraction == 1.0

    def test_faulty_chip_derates(self):
        faults = {0: [PEFault(2, 2, "dead")]}
        chip = TiledAccelerator(AcceleratorConfig(n_cores=2), core_pe_faults=faults)
        outcome = screen_and_degrade(chip)
        assert outcome.shippable
        assert outcome.bin_name != "full"
        assert outcome.compute_fraction < 1.0
        assert 0 in outcome.pes_mapped_out

    def test_hopeless_chip_scrapped(self):
        faults = {
            0: [PEFault(r, 0, "dead") for r in range(8)],
        }
        chip = TiledAccelerator(
            AcceleratorConfig(n_cores=1), core_pe_faults=faults
        )
        outcome = screen_and_degrade(chip)
        assert not outcome.shippable

    def test_yield_uplift(self):
        chips = []
        for index in range(6):
            faults = {}
            if index % 2 == 0:
                faults = {0: [PEFault(1, 1, "dead")]}
            chips.append(
                TiledAccelerator(
                    AcceleratorConfig(n_cores=2), core_pe_faults=faults
                )
            )
        report = yield_with_degradation(chips)
        assert report["yield_with_mapout"] >= report["yield_strict"]
        assert report["yield_strict"] == 0.5
        assert report["yield_with_mapout"] == 1.0
