"""IJTAG-style SIB access network."""

import pytest

from repro.dft.access import (
    Instrument,
    SibNetwork,
    SibNode,
    access_schedule_comparison,
    build_balanced_network,
    flat_chain_cycles,
)


def small_network():
    """Two SIBs, each guarding two instruments."""
    i = [Instrument(f"mbist{k}", 16) for k in range(4)]
    left = SibNode("sib_l", [i[0], i[1]])
    right = SibNode("sib_r", [i[2], i[3]])
    return SibNetwork([SibNode("sib_root", [left, right])]), i


class TestStructure:
    def test_instrument_validation(self):
        with pytest.raises(ValueError):
            Instrument("bad", 0)

    def test_duplicate_names_rejected(self):
        a = Instrument("x", 4)
        with pytest.raises(ValueError):
            SibNetwork([SibNode("s", [a, Instrument("x", 4)])])

    def test_sibs_for_walks_ancestry(self):
        network, _ = small_network()
        assert network.sibs_for(["mbist0"]) == {"sib_root", "sib_l"}
        assert network.sibs_for(["mbist0", "mbist3"]) == {
            "sib_root",
            "sib_l",
            "sib_r",
        }
        with pytest.raises(KeyError):
            network.sibs_for(["ghost"])


class TestPathLength:
    def test_all_closed_is_sib_count_on_spine(self):
        network, _ = small_network()
        assert network.path_length(set()) == 1  # just the root SIB

    def test_opening_exposes_segments(self):
        network, _ = small_network()
        assert network.path_length({"sib_root"}) == 1 + 1 + 1  # root + 2 SIBs
        assert network.path_length({"sib_root", "sib_l"}) == 3 + 32

    def test_closed_parent_hides_open_child(self):
        network, _ = small_network()
        # sib_l "open" is irrelevant while the root is closed.
        assert network.path_length({"sib_l"}) == 1


class TestAccessCycles:
    def test_single_instrument_access(self):
        network, _ = small_network()
        report = network.access_cycles(["mbist0"])
        # Waves: open root (path 1 + update), open sib_l (path 3 + update).
        # Data pass shifts root SIB + open sib_l segment (1 + 16 + 16) +
        # closed sib_r (1): SIB granularity exposes the whole segment.
        assert report["reconfig_cycles"] == (1 + 1) + (3 + 1)
        assert report["path_bits"] == 1 + (1 + 32) + 1
        assert report["total_cycles"] == 6 + 35 + 1

    def test_flat_chain(self):
        instruments = [Instrument(f"i{k}", 16) for k in range(4)]
        report = flat_chain_cycles(instruments, ["i0"])
        assert report["path_bits"] == 64
        assert report["total_cycles"] == 65

    def test_sib_wins_for_sparse_access(self):
        instruments = [Instrument(f"i{k}", 64) for k in range(32)]
        schedule = [["i0"], ["i17"], ["i31"], ["i5"]]
        report = access_schedule_comparison(instruments, schedule)
        assert report["sib_cycles"] < report["flat_cycles"]
        assert report["sib_speedup_x"] > 2

    def test_flat_wins_for_access_everything(self):
        """When every access touches all instruments, the SIB overhead
        (reconfig + SIB bits in path) makes it the loser."""
        instruments = [Instrument(f"i{k}", 8) for k in range(16)]
        everything = [[i.name for i in instruments]]
        report = access_schedule_comparison(instruments, everything)
        assert report["sib_cycles"] > report["flat_cycles"]


class TestBalancedBuilder:
    def test_all_instruments_reachable(self):
        instruments = [Instrument(f"i{k}", 4) for k in range(23)]
        network = build_balanced_network(instruments, fanout=4)
        assert sorted(i.name for i in network.instruments) == sorted(
            i.name for i in instruments
        )
        report = network.access_cycles([i.name for i in instruments])
        total_tdr = sum(i.tdr_length for i in instruments)
        assert report["path_bits"] >= total_tdr

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            build_balanced_network([Instrument("i", 4)], fanout=1)
