"""Gate evaluation semantics across the three engines."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import (
    GateType,
    SEQUENTIAL_TYPES,
    SOURCE_TYPES,
    controlled_value,
    controlling_value,
    evaluate,
    evaluate_d,
    evaluate_parallel,
    fanin_count_valid,
    is_inverting,
    noncontrolling_value,
)
from repro.circuit.values import ONE, X, Z, ZERO

LOGIC_GATES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestScalarEvaluate:
    def test_and_truth_table(self):
        assert evaluate(GateType.AND, [ONE, ONE]) == ONE
        assert evaluate(GateType.AND, [ONE, ZERO]) == ZERO
        assert evaluate(GateType.AND, [X, ZERO]) == ZERO
        assert evaluate(GateType.AND, [X, ONE]) == X

    def test_nand_inverts_and(self):
        for inputs in ([ONE, ONE], [ZERO, ONE], [X, ONE]):
            a = evaluate(GateType.AND, inputs)
            n = evaluate(GateType.NAND, inputs)
            if a in (ZERO, ONE):
                assert n == 1 - a
            else:
                assert n == X

    def test_nor_and_or(self):
        assert evaluate(GateType.OR, [ZERO, ZERO]) == ZERO
        assert evaluate(GateType.NOR, [ZERO, ZERO]) == ONE
        assert evaluate(GateType.NOR, [ONE, X]) == ZERO

    def test_multi_input_gates(self):
        assert evaluate(GateType.AND, [ONE, ONE, ONE, ZERO]) == ZERO
        assert evaluate(GateType.XOR, [ONE, ONE, ONE]) == ONE
        assert evaluate(GateType.XNOR, [ONE, ONE, ONE]) == ZERO

    def test_buf_not(self):
        assert evaluate(GateType.BUF, [ONE]) == ONE
        assert evaluate(GateType.NOT, [ONE]) == ZERO
        assert evaluate(GateType.NOT, [Z]) == X

    def test_constants(self):
        assert evaluate(GateType.CONST0, []) == ZERO
        assert evaluate(GateType.CONST1, []) == ONE

    def test_mux_select_known(self):
        assert evaluate(GateType.MUX2, [ZERO, ONE, ZERO]) == ONE
        assert evaluate(GateType.MUX2, [ONE, ONE, ZERO]) == ZERO

    def test_mux_select_unknown(self):
        assert evaluate(GateType.MUX2, [X, ONE, ONE]) == ONE
        assert evaluate(GateType.MUX2, [X, ONE, ZERO]) == X

    def test_flops_are_transparent_combinationally(self):
        assert evaluate(GateType.DFF, [ONE]) == ONE
        assert evaluate(GateType.SDFF, [ZERO, ONE, ONE]) == ZERO

    def test_input_gate_rejects_evaluation(self):
        with pytest.raises(ValueError):
            evaluate(GateType.INPUT, [])


class TestParallelAgreesWithScalar:
    @settings(max_examples=60, deadline=None)
    @given(
        gate=st.sampled_from(LOGIC_GATES),
        bits=st.lists(
            st.lists(st.integers(0, 1), min_size=2, max_size=4),
            min_size=1,
            max_size=8,
        ),
    )
    def test_parallel_matches_scalar(self, gate, bits):
        arity = len(bits[0])
        bits = [row[:arity] + [0] * (arity - len(row)) for row in bits]
        n_patterns = len(bits)
        mask = (1 << n_patterns) - 1
        words = []
        for pin in range(arity):
            word = 0
            for pattern, row in enumerate(bits):
                word |= row[pin] << pattern
            words.append(word)
        packed = evaluate_parallel(gate, words, mask)
        for pattern, row in enumerate(bits):
            assert (packed >> pattern) & 1 == evaluate(gate, row)

    def test_parallel_mux(self):
        mask = 0b11
        out = evaluate_parallel(GateType.MUX2, [0b01, 0b10, 0b01], mask)
        # pattern 0: sel=1 -> picks when1 bit0 = 1; pattern 1: sel=0 -> when0 bit1 = 1
        assert out == 0b11

    def test_parallel_constants(self):
        assert evaluate_parallel(GateType.CONST0, [], 0b111) == 0
        assert evaluate_parallel(GateType.CONST1, [], 0b111) == 0b111


class TestEvaluateD:
    def test_rails_independent(self):
        result = evaluate_d(GateType.AND, [(ONE, ZERO), (ONE, ONE)])
        assert result == (ONE, ZERO)

    def test_x_propagates_per_rail(self):
        result = evaluate_d(GateType.OR, [(X, ONE), (ZERO, ZERO)])
        assert result == (X, ONE)


class TestGateAttributes:
    def test_controlling_values(self):
        assert controlling_value(GateType.AND) == ZERO
        assert controlling_value(GateType.NOR) == ONE
        assert controlling_value(GateType.XOR) is None

    def test_controlled_values(self):
        assert controlled_value(GateType.AND) == ZERO
        assert controlled_value(GateType.NAND) == ONE
        assert controlled_value(GateType.NOR) == ZERO
        assert controlled_value(GateType.XOR) is None

    def test_noncontrolling(self):
        assert noncontrolling_value(GateType.AND) == ONE
        assert noncontrolling_value(GateType.OR) == ZERO

    def test_inversion_parity(self):
        assert is_inverting(GateType.NAND)
        assert is_inverting(GateType.XNOR)
        assert not is_inverting(GateType.AND)
        assert not is_inverting(GateType.BUF)

    def test_arity_validation(self):
        assert fanin_count_valid(GateType.INPUT, 0)
        assert not fanin_count_valid(GateType.INPUT, 1)
        assert fanin_count_valid(GateType.NOT, 1)
        assert not fanin_count_valid(GateType.NOT, 2)
        assert fanin_count_valid(GateType.MUX2, 3)
        assert not fanin_count_valid(GateType.MUX2, 2)
        assert fanin_count_valid(GateType.SDFF, 3)
        assert fanin_count_valid(GateType.AND, 5)
        assert not fanin_count_valid(GateType.AND, 0)

    def test_type_sets(self):
        assert GateType.DFF in SEQUENTIAL_TYPES
        assert GateType.SDFF in SEQUENTIAL_TYPES
        assert GateType.INPUT in SOURCE_TYPES
        assert GateType.CONST1 in SOURCE_TYPES
