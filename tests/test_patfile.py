"""Pattern file serialization."""

import pytest

from repro.atpg import run_atpg
from repro.circuit import benchmarks
from repro.circuit.values import X
from repro.scan.patfile import (
    PatternFormatError,
    format_patterns,
    parse_patterns,
)
from repro.sim.view import CombinationalView


class TestRoundTrip:
    def test_atpg_patterns_roundtrip(self):
        netlist = benchmarks.get_benchmark("alu4")
        result = run_atpg(netlist, seed=1)
        view = CombinationalView(netlist)
        text = format_patterns(netlist.name, view.input_names(), result.patterns)
        parsed = parse_patterns(text)
        assert parsed.circuit == "alu4"
        assert parsed.input_names == view.input_names()
        assert parsed.patterns == result.patterns

    def test_x_values_roundtrip(self):
        text = format_patterns("t", ["a", "b", "c"], [[0, X, 1]])
        parsed = parse_patterns(text)
        assert parsed.patterns == [[0, X, 1]]

    def test_expects_roundtrip(self):
        text = format_patterns(
            "t", ["a"], [[1], [0]], expects=[[0], [1]]
        )
        parsed = parse_patterns(text)
        assert parsed.expects == [[0], [1]]

    def test_comments_ignored(self):
        text = format_patterns("t", ["a"], [[1]]) + "# trailing comment\n"
        parsed = parse_patterns(text)
        assert parsed.patterns == [[1]]


class TestValidation:
    def test_width_mismatch_on_write(self):
        with pytest.raises(PatternFormatError):
            format_patterns("t", ["a", "b"], [[1]])

    def test_width_mismatch_on_read(self):
        with pytest.raises(PatternFormatError, match="width"):
            parse_patterns("inputs a b\npattern 0 111\n")

    def test_bad_bit(self):
        with pytest.raises(PatternFormatError, match="bad bit"):
            parse_patterns("inputs a\npattern 0 q\n")

    def test_count_mismatch(self):
        with pytest.raises(PatternFormatError, match="declared"):
            parse_patterns("inputs a\npatterns 2\npattern 0 1\n")

    def test_unknown_keyword(self):
        with pytest.raises(PatternFormatError, match="unknown keyword"):
            parse_patterns("frobnicate\n")

    def test_expect_before_pattern(self):
        with pytest.raises(PatternFormatError, match="expect before"):
            parse_patterns("inputs a\nexpect 1\n")
