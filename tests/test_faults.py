"""Fault enumeration, description, and equivalence collapsing."""

import pytest

from repro.circuit import benchmarks, generators
from repro.circuit.builder import NetlistBuilder
from repro.faults import (
    OUTPUT_PIN,
    BridgingFault,
    StuckAtFault,
    TransitionFault,
    collapse_faults,
    collapse_ratio,
    fault_sites,
    full_fault_list,
    full_transition_list,
    line_fault,
    sample_bridging_faults,
)


class TestEnumeration:
    def test_c17_uncollapsed_count(self, c17):
        faults = full_fault_list(c17)
        # Every line twice; c17 has 11 stems (5 PI + 6 gates) and branch
        # sites where stems fan out.
        assert len(faults) % 2 == 0
        assert len(faults) >= 22

    def test_branch_sites_only_on_fanout_stems(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        g1 = builder.not_(a)
        builder.output("y", g1)
        netlist = builder.build()
        sites = fault_sites(netlist)
        # No fanout > 1 anywhere: only stems.
        assert all(pin == OUTPUT_PIN for _, pin in sites)

    def test_fanout_creates_branches(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        g1 = builder.not_(a)
        g2 = builder.buf(a)
        builder.output("y1", g1)
        builder.output("y2", g2)
        netlist = builder.build()
        sites = fault_sites(netlist)
        branches = [(g, p) for g, p in sites if p != OUTPUT_PIN]
        assert len(branches) == 2  # a branches into NOT and BUF

    def test_describe(self, c17):
        fault = StuckAtFault(c17.index_of("10"), OUTPUT_PIN, 0)
        assert "s-a-0" in fault.describe(c17)

    def test_transition_list_mirrors_stuck_sites(self, c17):
        stuck = full_fault_list(c17)
        transition = full_transition_list(c17)
        assert len(transition) == len(stuck)
        str_fault = transition[0]
        assert str_fault.slow_to == 1
        assert str_fault.acts_as_stuck == 0
        assert "STR" in str_fault.describe(c17)


class TestCollapsing:
    def test_collapse_reduces(self, c17):
        faults = full_fault_list(c17)
        collapsed, mapping = collapse_faults(c17, faults)
        assert len(collapsed) < len(faults)
        assert 0.2 < collapse_ratio(len(faults), len(collapsed)) < 0.8

    def test_mapping_is_onto_representatives(self, c17):
        faults = full_fault_list(c17)
        collapsed, mapping = collapse_faults(c17, faults)
        reps = set(collapsed)
        assert set(mapping.values()) <= reps
        assert all(fault in mapping for fault in faults)

    def test_representative_maps_to_itself(self, c17):
        faults = full_fault_list(c17)
        collapsed, mapping = collapse_faults(c17, faults)
        for rep in collapsed:
            assert mapping[rep] == rep

    def test_not_gate_rule(self):
        # NOT: in s-a-0 == out s-a-1.
        builder = NetlistBuilder()
        a = builder.input("a")
        inv = builder.not_(a)
        builder.output("y", inv)
        netlist = builder.build()
        faults = full_fault_list(netlist)
        collapsed, mapping = collapse_faults(netlist, faults)
        in_sa0 = line_fault(netlist, inv, 0, 0)
        out_sa1 = StuckAtFault(inv, OUTPUT_PIN, 1)
        assert mapping[in_sa0] == mapping[out_sa1]

    def test_and_gate_rule(self):
        # AND: any input s-a-0 == output s-a-0.
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        g = builder.and_(a, b)
        builder.output("y", g)
        netlist = builder.build()
        faults = full_fault_list(netlist)
        _, mapping = collapse_faults(netlist, faults)
        out_sa0 = StuckAtFault(g, OUTPUT_PIN, 0)
        a_sa0 = line_fault(netlist, g, 0, 0)
        b_sa0 = line_fault(netlist, g, 1, 0)
        assert mapping[a_sa0] == mapping[out_sa0] == mapping[b_sa0]

    def test_collapsed_equivalence_is_semantic(self, c17):
        """Equivalent faults must be detected by identical pattern sets."""
        from repro.atpg.random_gen import exhaustive_patterns
        from repro.sim.faultsim import FaultSimulator

        faults = full_fault_list(c17)
        _, mapping = collapse_faults(c17, faults)
        simulator = FaultSimulator(c17)
        patterns = exhaustive_patterns(5)
        signatures = {}
        for fault in faults:
            result = simulator.simulate(patterns, [fault], drop=False)
            detecting = frozenset(
                index
                for index in range(len(patterns))
                if simulator.simulate([patterns[index]], [fault], drop=True).detected
            )
            signatures[fault] = detecting
        classes = {}
        for fault, rep in mapping.items():
            classes.setdefault(rep, []).append(fault)
        for rep, members in classes.items():
            reference = signatures[members[0]]
            for member in members[1:]:
                assert signatures[member] == reference, (
                    f"{member.describe(c17)} not equivalent to "
                    f"{members[0].describe(c17)}"
                )


class TestBridging:
    def test_sampling_is_deterministic(self, alu4):
        a = sample_bridging_faults(alu4, 10, seed=3)
        b = sample_bridging_faults(alu4, 10, seed=3)
        assert a == b

    def test_no_self_or_adjacent_bridges(self, alu4):
        faults = sample_bridging_faults(alu4, 20, seed=1)
        for fault in faults:
            assert fault.net_a != fault.net_b
            assert fault.net_b not in alu4.gates[fault.net_a].fanin
            assert fault.net_a not in alu4.gates[fault.net_b].fanin

    def test_resolution_functions(self):
        fault_and = BridgingFault(0, 1, "and")
        fault_or = BridgingFault(0, 1, "or")
        fault_dom = BridgingFault(0, 1, "dom_a")
        assert fault_and.resolved(1, 0) == (0, 0)
        assert fault_or.resolved(1, 0) == (1, 1)
        assert fault_dom.resolved(1, 0) == (1, 1)
        with pytest.raises(ValueError):
            BridgingFault(0, 1, "weird").resolved(0, 1)

    def test_describe(self, alu4):
        fault = sample_bridging_faults(alu4, 1, seed=0)[0]
        assert "bridge[" in fault.describe(alu4)
