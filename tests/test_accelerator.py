"""Tiled accelerator: batch scheduling, health, degradation."""

import numpy as np
import pytest

from repro.aichip.accelerator import (
    AcceleratorConfig,
    Core,
    CoreConfig,
    TiledAccelerator,
)
from repro.aichip.systolic import PEFault


class TestExecution:
    def test_matmul_matches_numpy(self):
        chip = TiledAccelerator(AcceleratorConfig(n_cores=3))
        rng = np.random.default_rng(0)
        x = rng.integers(-30, 30, size=(10, 8))
        w = rng.integers(-30, 30, size=(8, 5))
        assert np.array_equal(chip.matmul(x, w), x @ w)

    def test_batch_smaller_than_core_count(self):
        chip = TiledAccelerator(AcceleratorConfig(n_cores=4))
        x = np.ones((2, 4), dtype=int)
        w = np.ones((4, 3), dtype=int)
        out = chip.matmul(x, w)
        assert out.shape == (2, 3)

    def test_no_cores_raises(self):
        chip = TiledAccelerator(AcceleratorConfig(n_cores=1))
        chip.disable_core(0)
        with pytest.raises(RuntimeError):
            chip.matmul(np.ones((1, 2), dtype=int), np.ones((2, 2), dtype=int))

    def test_faulty_core_corrupts_only_its_share(self):
        faults = {1: [PEFault(0, 0, "stuck_bit", bit=10, value=1)]}
        chip = TiledAccelerator(AcceleratorConfig(n_cores=2), core_pe_faults=faults)
        rng = np.random.default_rng(1)
        x = rng.integers(-20, 20, size=(8, 8))
        w = rng.integers(-20, 20, size=(8, 4))
        out = chip.matmul(x, w)
        expected = x @ w
        half = 4  # ceil(8/2)
        assert np.array_equal(out[:half], expected[:half])
        assert not np.array_equal(out[half:], expected[half:])

    def test_disabling_faulty_core_restores_output(self):
        faults = {1: [PEFault(0, 0, "dead")]}
        chip = TiledAccelerator(AcceleratorConfig(n_cores=2), core_pe_faults=faults)
        chip.disable_core(1)
        rng = np.random.default_rng(2)
        x = rng.integers(-20, 20, size=(6, 8))
        w = rng.integers(-20, 20, size=(8, 4))
        assert np.array_equal(chip.matmul(x, w), x @ w)


class TestHealth:
    def test_faulty_cores_reported(self):
        faults = {2: [PEFault(1, 1, "dead")]}
        chip = TiledAccelerator(AcceleratorConfig(n_cores=4), core_pe_faults=faults)
        assert chip.faulty_cores() == [2]

    def test_degrade_gracefully_maps_out_rows(self):
        faults = {0: [PEFault(3, 2, "dead")]}
        chip = TiledAccelerator(AcceleratorConfig(n_cores=2), core_pe_faults=faults)
        lost = chip.degrade_gracefully()
        assert lost == {0: 1}
        assert len(chip.cores[0].array.usable_rows()) == 7

    def test_summary_fields(self):
        chip = TiledAccelerator()
        summary = chip.summary()
        assert summary["cores"] == 4
        assert summary["enabled"] == 4
        assert summary["array"] == "8x8"


class TestCoreNetlist:
    def test_core_netlist_generated(self):
        config = AcceleratorConfig()
        netlist = config.core_netlist()
        assert netlist.stats()["flops"] > 0

    def test_cycles_scale_with_disabled_cores(self):
        chip = TiledAccelerator(AcceleratorConfig(n_cores=4))
        full = chip.cycles_for_matmul(64, 16, 16)
        chip.disable_core(0)
        chip.disable_core(1)
        half = chip.cycles_for_matmul(64, 16, 16)
        assert half > full
