"""Scan-chain defect diagnosis."""

import random

import pytest

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.diagnosis.chain_diag import (
    ChainDefect,
    ChainDefectModel,
    ChainDiagnoser,
    observe_defective_die,
)
from repro.scan import insert_scan


@pytest.fixture(scope="module")
def chain_setup():
    netlist = generators.random_sequential(6, 100, 20, seed=5)
    design = insert_scan(netlist, n_chains=4)
    atpg = run_atpg(design.netlist, seed=1)
    return design, atpg.patterns


class TestDefectModel:
    def test_corrupt_load_geometry(self, chain_setup):
        design, _ = chain_setup
        defect = ChainDefect(chain=1, position=2, value=1)
        model = ChainDefectModel(design, defect)
        clean = [0] * len(design.netlist.flops)
        corrupted = model.corrupt_load(clean)
        flop_order = {f: i for i, f in enumerate(design.netlist.flops)}
        chain = design.chains[1]
        for position, flop in enumerate(chain):
            expected = 1 if position >= 2 else 0
            assert corrupted[flop_order[flop]] == expected
        # Other chains untouched.
        for other_chain in (0, 2, 3):
            for flop in design.chains[other_chain]:
                assert corrupted[flop_order[flop]] == 0

    def test_corrupt_unload_geometry(self, chain_setup):
        design, _ = chain_setup
        defect = ChainDefect(chain=0, position=3, value=0)
        model = ChainDefectModel(design, defect)
        captured = [1] * len(design.netlist.flops)
        observed = model.corrupt_unload(captured)
        flop_order = {f: i for i, f in enumerate(design.netlist.flops)}
        for position, flop in enumerate(design.chains[0]):
            expected = 0 if position <= 3 else 1
            assert observed[flop_order[flop]] == expected

    def test_validation(self, chain_setup):
        design, _ = chain_setup
        with pytest.raises(ValueError):
            ChainDefectModel(design, ChainDefect(99, 0, 1))
        with pytest.raises(ValueError):
            ChainDefectModel(design, ChainDefect(0, 999, 1))

    def test_flush_signature_constant(self, chain_setup):
        design, _ = chain_setup
        model = ChainDefectModel(design, ChainDefect(2, 1, 1))
        assert set(model.flush_signature()) == {1}


class TestDiagnosis:
    def test_chain_identified_from_flush(self, chain_setup):
        design, patterns = chain_setup
        defect = ChainDefect(chain=2, position=0, value=0)
        flush, unloads = observe_defective_die(design, defect, patterns[:4])
        diagnoser = ChainDiagnoser(design)
        fingerprint = diagnoser.identify_chain(flush)
        assert fingerprint == (2, 0)

    def test_healthy_die_not_fingerprinted(self, chain_setup):
        design, _ = chain_setup
        diagnoser = ChainDiagnoser(design)
        clean_flush = [
            ([0, 0, 1, 1] * 10)[: len(chain)] for chain in design.chains
        ]
        assert diagnoser.identify_chain(clean_flush) is None

    @pytest.mark.parametrize("value", [0, 1])
    def test_position_located(self, chain_setup, value):
        design, patterns = chain_setup
        rng = random.Random(value)
        chain = rng.randrange(design.n_chains)
        position = rng.randrange(len(design.chains[chain]))
        defect = ChainDefect(chain, position, value)
        flush, unloads = observe_defective_die(design, defect, patterns[:8])
        result = ChainDiagnoser(design).diagnose(patterns[:8], unloads, flush)
        assert result.chain == chain
        assert result.stuck_value == value
        assert position in result.best_positions
        assert len(result.best_positions) <= 3  # tight localization

    def test_all_positions_distinguishable_on_average(self, chain_setup):
        design, patterns = chain_setup
        diagnoser = ChainDiagnoser(design)
        hits = 0
        cases = 0
        for chain in range(design.n_chains):
            for position in range(0, len(design.chains[chain]), 2):
                defect = ChainDefect(chain, position, 1)
                flush, unloads = observe_defective_die(
                    design, defect, patterns[:6]
                )
                result = diagnoser.diagnose(patterns[:6], unloads, flush)
                cases += 1
                if position in result.best_positions:
                    hits += 1
        assert hits == cases  # the injected position always survives ranking
