"""Property tests for the numpy uint64 lane kernel (:mod:`repro.sim.npsim`).

Hypothesis sweeps random netlists and pattern blocks through both
kernels and checks the structural contracts the conformance matrix
builds on:

* numpy and python kernels produce identical responses, detections, and
  deterministic counters on arbitrary circuits;
* ``pack_bits``/``unpack_bits`` roundtrip exactly, and a packed lane row
  is byte-identical to the bigint word of
  :func:`repro.sim.parallel.pack_patterns`;
* the masked-words invariant — no bits at positions ``>= n_patterns`` —
  holds after *every* gate op in a good-machine pass (each gate's row is
  written by exactly one op, so checking all rows checks all ops);
* every array evaluator agrees with its scalar-bigint twin from
  :mod:`repro.circuit.gates`, including the inverting re-mask.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.circuit.gates import GateType, compile_parallel_evaluator
from repro.faults import collapse_faults, full_fault_list
from repro.sim import npsim
from repro.sim.faultsim import FaultSimulator
from repro.sim.npsim import (
    LANE_DTYPE,
    GoodBlock,
    compile_array_evaluator,
    first_pattern_bit,
    int_to_words,
    lane_mask,
    lanes_for,
    pack_bits,
    unpack_bits,
    words_to_int,
)
from repro.sim.parallel import ParallelSimulator, pack_patterns

SMALL = dict(max_examples=15, deadline=None)
seeds = st.integers(0, 10**6)


def small_circuit(seed):
    rng = random.Random(seed)
    return generators.random_circuit(
        rng.randint(4, 8), rng.randint(15, 45), seed=seed
    )


def random_lane_array(rng, n_patterns):
    """A random already-masked lane row for ``n_patterns`` patterns."""
    word = rng.getrandbits(n_patterns) if n_patterns else 0
    return int_to_words(word, lanes_for(max(n_patterns, 1)))


class TestKernelEquivalence:
    @settings(**SMALL)
    @given(seed=seeds, n_patterns=st.integers(1, 90))
    def test_responses_and_detections_match_python(self, seed, n_patterns):
        netlist = small_circuit(seed)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        patterns = random_patterns(len(netlist.inputs), n_patterns, seed=seed)
        python = FaultSimulator(netlist, cache=None, kernel="python")
        numpy = FaultSimulator(netlist, cache=None, kernel="numpy")
        assert numpy.parallel.responses(patterns) == python.parallel.responses(
            patterns
        )
        base = python.simulate(patterns, faults, engine="ppsfp")
        result = numpy.simulate(patterns, faults, engine="ppsfp")
        assert result.detected == base.detected
        assert result.undetected == base.undetected
        for counter in ("events_propagated", "words_evaluated", "good_passes"):
            assert result.stats[counter] == base.stats[counter], counter

    @settings(**SMALL)
    @given(seed=seeds, n_patterns=st.integers(1, 90))
    def test_good_block_words_equal_bigint_words(self, seed, n_patterns):
        """Every gate's lane row serializes to the python kernel's word."""
        netlist = small_circuit(seed)
        patterns = random_patterns(len(netlist.inputs), n_patterns, seed=seed)
        python = ParallelSimulator(netlist, cache=None, word_width=128)
        numpy = ParallelSimulator(
            netlist, cache=None, word_width=128, kernel="numpy"
        )
        packed = python.pack_block(patterns)
        words = python.evaluate_words(packed, n_patterns)
        kernel = numpy.np_kernel
        block = kernel.run_pass(
            kernel.pack_block(npsim.as_bit_matrix(patterns)), n_patterns
        )
        for gate_index in range(len(netlist.gates)):
            assert block.word(gate_index) == words[gate_index], gate_index


class TestPackRoundtrip:
    @settings(**SMALL)
    @given(
        seed=seeds,
        n_patterns=st.integers(1, 200),
        n_signals=st.integers(1, 16),
    )
    def test_pack_unpack_roundtrip(self, seed, n_patterns, n_signals):
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, size=(n_patterns, n_signals), dtype=np.uint8)
        packed = pack_bits(bits)
        assert packed.dtype == LANE_DTYPE
        assert packed.shape == (n_signals, lanes_for(n_patterns))
        assert np.array_equal(unpack_bits(packed, n_patterns), bits)
        # Zero-padding past n_patterns: the invariant by construction.
        mask = lane_mask(n_patterns)
        assert not np.any(packed & ~mask)

    @settings(**SMALL)
    @given(
        seed=seeds,
        n_patterns=st.integers(1, 200),
        n_bits=st.integers(1, 12),
    )
    def test_packed_rows_equal_bigint_pack(self, seed, n_patterns, n_bits):
        rng = random.Random(seed)
        patterns = [
            [rng.randint(0, 1) for _ in range(n_bits)]
            for _ in range(n_patterns)
        ]
        packed = pack_bits(npsim.as_bit_matrix(patterns))
        for bit in range(n_bits):
            assert words_to_int(packed[bit]) == pack_patterns(patterns, bit)

    @settings(**SMALL)
    @given(seed=seeds, n_patterns=st.integers(1, 300))
    def test_int_words_roundtrip(self, seed, n_patterns):
        rng = random.Random(seed)
        word = rng.getrandbits(n_patterns)
        row = int_to_words(word, lanes_for(n_patterns))
        assert words_to_int(row) == word
        assert first_pattern_bit(row) == (
            (word & -word).bit_length() - 1 if word else None
        )


class TestMaskedWordsInvariant:
    @settings(**SMALL)
    @given(seed=seeds, n_patterns=st.integers(1, 130))
    def test_invariant_after_every_gate_op(self, seed, n_patterns):
        """Each gate row is written by exactly one compiled op, so a
        fully-masked value block proves the invariant op by op."""
        netlist = small_circuit(seed)
        patterns = random_patterns(len(netlist.inputs), n_patterns, seed=seed)
        kernel = ParallelSimulator(netlist, cache=None, kernel="numpy").np_kernel
        block = kernel.run_pass(
            kernel.pack_block(npsim.as_bit_matrix(patterns)), n_patterns
        )
        mask = lane_mask(n_patterns)
        assert not np.any(block.values & ~mask)

    @settings(**SMALL)
    @given(seed=seeds, n_patterns=st.integers(1, 130))
    def test_run_pass_masks_dirty_inputs(self, seed, n_patterns):
        """Garbage bits above ``n_patterns`` in the input rows must not
        leak into any gate value."""
        netlist = small_circuit(seed)
        patterns = random_patterns(len(netlist.inputs), n_patterns, seed=seed)
        kernel = ParallelSimulator(netlist, cache=None, kernel="numpy").np_kernel
        packed = kernel.pack_block(npsim.as_bit_matrix(patterns))
        clean = kernel.run_pass(packed, n_patterns)
        dirty = packed | ~kernel.mask(n_patterns)
        block = kernel.run_pass(dirty, n_patterns)
        assert not np.any(block.values & ~lane_mask(n_patterns))
        assert np.array_equal(block.values, clean.values)

    @settings(**SMALL)
    @given(
        seed=seeds,
        n_patterns=st.integers(1, 130),
        gate_type=st.sampled_from(
            [
                GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
                GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF,
                GateType.MUX2, GateType.CONST0, GateType.CONST1,
            ]
        ),
        arity=st.integers(1, 4),
    )
    def test_array_evaluator_matches_scalar_twin(
        self, seed, n_patterns, gate_type, arity
    ):
        if gate_type in (GateType.NOT, GateType.BUF):
            arity = 1
        elif gate_type == GateType.MUX2:
            arity = 3
        elif gate_type in (GateType.CONST0, GateType.CONST1):
            arity = 0
        elif arity < 2:
            arity = 2
        rng = random.Random(seed)
        rows = [random_lane_array(rng, n_patterns) for _ in range(arity)]
        mask = lane_mask(n_patterns)
        array_fn = compile_array_evaluator(gate_type, arity)
        scalar_fn = compile_parallel_evaluator(gate_type, arity)
        out = array_fn(rows, mask)
        expected = scalar_fn(
            [words_to_int(row) for row in rows],
            words_to_int(mask),
        )
        assert words_to_int(out) == expected
        assert not np.any(out & ~mask)


class TestGoodBlock:
    def test_rows_read_only_and_byte_stable(self):
        values = np.arange(8, dtype=LANE_DTYPE).reshape(4, 2)
        block = GoodBlock(values, 100)
        with pytest.raises(ValueError):
            block.values[0, 0] = 1
        for gate_index in range(4):
            assert block.row_bytes(gate_index) == (
                block.values[gate_index].tobytes()
            )
            assert block.word(gate_index) == words_to_int(
                block.values[gate_index]
            )
        assert block.nbytes == values.nbytes

    def test_first_pattern_bit_multi_lane(self):
        row = int_to_words(1 << 200, 4)
        assert first_pattern_bit(row) == 200
        assert first_pattern_bit(int_to_words(0, 4)) is None
