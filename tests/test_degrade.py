"""Backfill tests for graceful degradation (``repro.dft.degrade``).

The tutorial's closing case study: per-unit test verdicts become a
map-out decision and a performance bin.  These tests pin the binning
arithmetic, the core-disable threshold, and the population-level yield
uplift claim.
"""

from repro.aichip.accelerator import AcceleratorConfig, CoreConfig, TiledAccelerator
from repro.aichip.systolic import PEFault

# Module import keeps pytest from collecting test_and_degrade as a test.
from repro.dft import degrade
from repro.dft.degrade import BinningPolicy, DegradeOutcome, yield_with_degradation

# Small 4-core / 4x4-array chip: 16 PE rows total, cheap functional screens.
CONFIG = AcceleratorConfig(n_cores=4, core=CoreConfig(array_rows=4, array_cols=4))


def _chip(core_pe_faults=None):
    return TiledAccelerator(CONFIG, core_pe_faults=core_pe_faults)


def _dead_rows(n_rows):
    """One dead PE per row in rows [0, n_rows) — maps out those rows.

    The dead PEs sit on the diagonal so the functional screen's error
    attribution sees at most one bad sample per column (clustering them
    in one column would look like a stuck product bit instead).
    """
    return [PEFault(row, row, "dead") for row in range(n_rows)]


class TestTestAndDegrade:
    def test_clean_chip_ships_full_bin(self):
        outcome = degrade.test_and_degrade(_chip())
        assert isinstance(outcome, DegradeOutcome)
        assert outcome.shippable
        assert outcome.bin_name == "full"
        assert outcome.compute_fraction == 1.0
        assert outcome.cores_enabled == CONFIG.n_cores
        assert outcome.rows_lost == {}
        assert outcome.pes_mapped_out == {}

    def test_single_dead_pe_derates(self):
        chip = _chip({0: [PEFault(1, 2, "dead")]})
        outcome = degrade.test_and_degrade(chip)
        assert outcome.shippable
        assert outcome.pes_mapped_out == {0: [(1, 2)]}
        assert outcome.rows_lost == {0: 1}
        # 15 of 16 PE rows remain -> 0.9375 -> the derate-90 bin.
        assert outcome.compute_fraction == 0.9375
        assert outcome.bin_name == "derate-90"
        assert outcome.cores_enabled == CONFIG.n_cores

    def test_core_below_row_floor_is_disabled(self):
        # Core 0 loses 3 of 4 rows; 1 usable < min_rows_per_core=2 -> the
        # whole core retires and the chip re-bins on the remaining three.
        chip = _chip({0: _dead_rows(3)})
        outcome = degrade.test_and_degrade(chip)
        assert outcome.shippable
        assert outcome.cores_enabled == CONFIG.n_cores - 1
        assert not chip.cores[0].enabled
        assert outcome.rows_lost[0] == 3
        # 12 of 16 rows (disabled core contributes nothing) -> derate-75.
        assert outcome.compute_fraction == 0.75
        assert outcome.bin_name == "derate-75"

    def test_all_cores_dead_is_scrap(self):
        chip = _chip({core: _dead_rows(3) for core in range(CONFIG.n_cores)})
        outcome = degrade.test_and_degrade(chip)
        assert not outcome.shippable
        assert outcome.bin_name == "scrap"
        assert outcome.cores_enabled == 0
        assert outcome.compute_fraction == 0.0

    def test_below_lowest_bin_is_not_sellable(self):
        # Every core keeps 2 usable rows (>= the floor, so none disable)
        # but the chip totals 8/16 rows; tighten the lowest bin above that
        # and the part must fall through to scrap despite healthy cores.
        chip = _chip({core: _dead_rows(2) for core in range(CONFIG.n_cores)})
        policy = BinningPolicy(bins=(("full", 1.0), ("derate-75", 0.75)))
        outcome = degrade.test_and_degrade(chip, policy)
        assert outcome.compute_fraction == 0.5
        assert outcome.cores_enabled == CONFIG.n_cores
        assert not outcome.shippable
        assert outcome.bin_name == "scrap"

    def test_min_cores_policy(self):
        chip = _chip({0: _dead_rows(3)})
        outcome = degrade.test_and_degrade(chip, BinningPolicy(min_cores=4))
        assert outcome.cores_enabled == 3
        assert not outcome.shippable
        assert outcome.bin_name == "scrap"


class TestYieldWithDegradation:
    def test_population_yield_uplift(self):
        chips = [
            _chip(),
            _chip({0: [PEFault(2, 3, "dead")]}),
            _chip({core: _dead_rows(3) for core in range(CONFIG.n_cores)}),
        ]
        summary = yield_with_degradation(chips)
        assert summary["chips"] == 3
        # Strict yield: only the fault-free chip; map-out rescues one more.
        assert summary["yield_strict"] == 1 / 3
        assert summary["yield_with_mapout"] == 2 / 3
        assert summary["bins"] == {"full": 1, "derate-90": 1}
        assert summary["yield_with_mapout"] >= summary["yield_strict"]

    def test_empty_population(self):
        summary = yield_with_degradation([])
        assert summary["chips"] == 0
        assert summary["yield_strict"] == 0.0
        assert summary["yield_with_mapout"] == 0.0
        assert summary["bins"] == {}
