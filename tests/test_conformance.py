"""Cross-backend × cross-kernel conformance oracle.

Single source of truth for the dispatch/kernel contract: every
fault-simulation backend (``serial``, ``ppsfp``, ``pool``,
``supervised``) × every gate-evaluation kernel (``python`` bigints,
``numpy`` uint64 lanes) × every word width must produce *bit-identical*
results — the same ``detected`` map (same first-detection pattern
indices), the same ``undetected`` list, the same coverage — and, within
one engine family, identical deterministic work counters
(``events_propagated``, ``words_evaluated``, ``good_passes``).

The oracle is the python-kernel single-process PPSFP engine at the
default 64-bit width.  Everything else is measured against it (detection
maps are width- and engine-invariant) or against the python kernel at
the same width (counters are width-dependent by design, kernel-invariant
by contract).

This file replaces the scattered pairwise agreement checks that used to
live in ``test_dispatch.py`` (backend × backend) and ``test_widesim.py``
(width × width); those files keep their partitioning, caching, stats
and regression-pin tests.
"""

import functools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks, generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim.dispatch import BACKEND_NAMES
from repro.sim.faultsim import FaultSimulator
from repro.sim.parallel import KERNELS, WORD_WIDTH

from tests.oracle_util import small_netlists

#: ≥7 circuits: combinational, arithmetic, and full-scan sequential.
CIRCUIT_FACTORIES = (
    ("c17", benchmarks.c17),
    ("rand5", lambda: generators.random_circuit(5, 25, seed=101)),
    ("rand8", lambda: generators.random_circuit(8, 60, seed=202)),
    ("adder4", lambda: generators.adder(4)),
    ("mac2", lambda: generators.mac_unit(2)),
    ("seq4", lambda: generators.random_sequential(4, 40, 5, seed=303)),
    ("seq6", lambda: generators.random_sequential(6, 50, 8, seed=404)),
)
CIRCUIT_NAMES = [name for name, _ in CIRCUIT_FACTORIES]

N_PATTERNS = 96

#: Width ladder for the single-process matrix; 100 pins the no-power-of-
#: two-assumption property alongside the characterized widths.
WIDTHS = (64, 100, 256, 1024)

#: Deterministic counters that must be kernel-invariant within an engine.
COUNTERS = ("events_propagated", "words_evaluated", "faults_simulated")


@functools.lru_cache(maxsize=None)
def _circuit(name):
    for factory_name, factory in CIRCUIT_FACTORIES:
        if factory_name == name:
            netlist = factory()
            netlist.finalize()
            return netlist
    raise KeyError(name)


@functools.lru_cache(maxsize=None)
def _universe(name):
    netlist = _circuit(name)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    return tuple(faults)


@functools.lru_cache(maxsize=None)
def _patterns(name):
    netlist = _circuit(name)
    n_inputs = FaultSimulator(netlist, cache=None).view.num_inputs
    seed = CIRCUIT_NAMES.index(name)
    return tuple(
        tuple(p) for p in random_patterns(n_inputs, N_PATTERNS, seed=seed)
    )


def _simulate(name, engine, kernel, width, drop=True, jobs=None):
    netlist = _circuit(name)
    simulator = FaultSimulator(
        netlist, word_width=width, cache=None, kernel=kernel
    )
    patterns = [list(p) for p in _patterns(name)]
    return simulator.simulate(
        patterns, list(_universe(name)), drop=drop, engine=engine, jobs=jobs
    )


@functools.lru_cache(maxsize=None)
def _oracle(name, drop=True):
    """Detection oracle: python-kernel PPSFP at the default 64-bit width."""
    return _simulate(name, "ppsfp", "python", WORD_WIDTH, drop=drop)


@functools.lru_cache(maxsize=None)
def _counter_reference(name, width, drop=True):
    """Counter oracle at ``width``: counters are width-dependent by design
    (chunk granularity), so kernel invariance is asserted per width."""
    return _simulate(name, "ppsfp", "python", width, drop=drop)


def _assert_detection(result, oracle):
    assert result.detected == oracle.detected
    assert result.undetected == oracle.undetected
    assert result.total_faults == oracle.total_faults
    assert result.coverage == oracle.coverage


def _assert_counters(result, reference):
    for counter in COUNTERS:
        assert result.stats[counter] == reference.stats[counter], counter
    assert result.patterns_simulated == reference.patterns_simulated


class TestKernelMatrix:
    """Single-process engines: full circuit × width × kernel cross product."""

    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_ppsfp_matches_oracle(self, name, width, kernel):
        result = _simulate(name, "ppsfp", kernel, width)
        _assert_detection(result, _oracle(name))
        _assert_counters(result, _counter_reference(name, width))
        assert result.stats["kernel"] == kernel
        assert result.stats["good_passes"] == _counter_reference(
            name, width
        ).stats["good_passes"]

    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_serial_matches_oracle(self, name, kernel):
        """Serial grades one fault at a time — its counters are its own,
        but they too must be kernel-invariant, and its detection maps
        must equal the oracle's."""
        result = _simulate(name, "serial", kernel, WORD_WIDTH)
        _assert_detection(result, _oracle(name))
        reference = _simulate(name, "serial", "python", WORD_WIDTH)
        for counter in COUNTERS:
            assert result.stats[counter] == reference.stats[counter], counter

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("width", (1, 7, 333))
    def test_extreme_odd_widths(self, kernel, width):
        """No power-of-two (or lane-multiple) assumption anywhere."""
        result = _simulate("c17", "ppsfp", kernel, width)
        _assert_detection(result, _oracle("c17"))


class TestBackendMatrix:
    """Multiprocess engines: every backend × kernel, shm fan-out included."""

    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("engine", ("pool", "supervised"))
    def test_multiprocess_matches_oracle(self, name, kernel, engine):
        result = _simulate(name, engine, kernel, 256, jobs=2)
        _assert_detection(result, _oracle(name))
        _assert_counters(result, _counter_reference(name, 256))
        assert result.stats["kernel"] == kernel
        assert result.stats["word_width"] == 256

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("width", (64, 1024))
    @pytest.mark.parametrize("engine", ("pool", "supervised"))
    def test_multiprocess_width_ladder(self, kernel, width, engine):
        name = "rand8"
        result = _simulate(name, engine, kernel, width, jobs=2)
        _assert_detection(result, _oracle(name))
        _assert_counters(result, _counter_reference(name, width))
        assert result.stats["word_width"] == width


class TestNoDropConformance:
    """Without fault dropping every pattern is graded for every fault —
    the heaviest counter path, exact across the full matrix."""

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("engine", BACKEND_NAMES)
    def test_no_drop_matches_oracle(self, kernel, engine):
        name = "rand8"
        jobs = 2 if engine in ("pool", "supervised") else None
        result = _simulate(name, engine, kernel, 256, drop=False, jobs=jobs)
        _assert_detection(result, _oracle(name, drop=False))
        if engine != "serial":
            _assert_counters(
                result, _counter_reference(name, 256, drop=False)
            )


class TestResponseConformance:
    """Good-machine responses (not just detections) are kernel-invariant."""

    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    @pytest.mark.parametrize("width", (64, 256))
    def test_responses_identical(self, name, width):
        from repro.sim.parallel import ParallelSimulator

        netlist = _circuit(name)
        patterns = [list(p) for p in _patterns(name)]
        python = ParallelSimulator(
            netlist, word_width=width, cache=None, kernel="python"
        )
        numpy = ParallelSimulator(
            netlist, word_width=width, cache=None, kernel="numpy"
        )
        assert numpy.responses(patterns) == python.responses(patterns)


class TestAtpgVectorConformance:
    """ATPG × fault-sim conformance: a cube any engine generates must
    detect its target fault under *every* simulation kernel.

    This closes the loop between the two halves of the toolkit — if the
    packed python kernel and the numpy uint64-lane kernel disagreed about
    an ATPG vector, either the engine's implication or a kernel's fault
    injection would be wrong.  Hypothesis drives structurally diverse
    netlists (muxes, dangling cones, redundant logic) through all four
    engines.
    """

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(netlist=small_netlists(), data=st.data())
    def test_every_cube_detects_under_every_kernel(self, netlist, data):
        import random as _random

        from repro.atpg import ENGINE_NAMES, make_engine
        from repro.atpg.engine import x_fill

        netlist.finalize()
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        simulators = {
            kernel: FaultSimulator(netlist, cache=None, kernel=kernel)
            for kernel in KERNELS
        }
        fill_seed = data.draw(st.integers(min_value=0, max_value=2**16))
        for engine_name in ENGINE_NAMES:
            engine = make_engine(engine_name, netlist, backtrack_limit=256)
            for fault in faults:
                outcome = engine.generate(fault)
                if not outcome.detected:
                    continue
                rng = _random.Random(fill_seed)
                pattern = x_fill(outcome.cube, rng, "random")
                for kernel, simulator in simulators.items():
                    result = simulator.simulate([pattern], [fault], drop=True)
                    assert fault in result.detected, (
                        f"{engine_name} cube missed {fault.describe(netlist)} "
                        f"under kernel={kernel}"
                    )
