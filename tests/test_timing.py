"""Scan cost models (test time / data volume)."""

import pytest

from repro.scan.timing import (
    ScanCost,
    compressed_scan_cost,
    compression_ratio,
    scan_cost,
)


class TestPlainScan:
    def test_cycle_formula(self):
        cost = scan_cost(patterns=10, n_flops=100, n_chains=4)
        assert cost.max_chain_length == 25
        assert cost.test_cycles == 11 * 25 + 10

    def test_zero_patterns(self):
        cost = scan_cost(0, 100, 4)
        assert cost.test_cycles == 0
        assert cost.data_volume_bits == 0

    def test_more_chains_cut_time(self):
        slow = scan_cost(100, 1000, 1)
        fast = scan_cost(100, 1000, 10)
        assert fast.test_cycles < slow.test_cycles
        # Data volume is chain-independent for plain scan.
        assert fast.data_volume_bits == slow.data_volume_bits

    def test_pi_po_counted(self):
        cost = scan_cost(5, 10, 1, n_pis=3, n_pos=2)
        assert cost.stimulus_bits_per_pattern == 13
        assert cost.response_bits_per_pattern == 12

    def test_test_seconds(self):
        cost = scan_cost(10, 100, 4)
        assert cost.test_seconds(1e6) == pytest.approx(cost.test_cycles / 1e6)


class TestCompressedScan:
    def test_compression_shrinks_both_axes(self):
        plain = scan_cost(100, 4096, n_chains=4)
        compressed = compressed_scan_cost(
            100, 4096, n_internal_chains=64, n_input_channels=2, n_output_channels=2
        )
        ratios = compression_ratio(plain, compressed)
        assert ratios["data_volume_x"] > 5
        assert ratios["test_time_x"] > 5

    def test_ratio_scales_with_chain_count(self):
        plain = scan_cost(100, 4096, n_chains=4)
        small = compressed_scan_cost(100, 4096, 32, 2, 2)
        large = compressed_scan_cost(100, 4096, 128, 2, 2)
        assert (
            compression_ratio(plain, large)["test_time_x"]
            > compression_ratio(plain, small)["test_time_x"]
        )

    def test_stimulus_counts_channels_not_flops(self):
        compressed = compressed_scan_cost(1, 1000, 100, 3, 2)
        assert compressed.max_chain_length == 10
        assert compressed.stimulus_bits_per_pattern == 30
        assert compressed.response_bits_per_pattern == 20

    def test_infinite_ratio_guard(self):
        plain = scan_cost(10, 100, 4)
        empty = ScanCost(0, 4, 0, 0, 0)
        ratios = compression_ratio(plain, empty)
        assert ratios["data_volume_x"] == float("inf")
