"""Test-point insertion: functional neutrality and coverage gain."""

import random

import pytest

from repro.bist.lbist import StumpsController
from repro.bist.testpoints import insert_test_points, neutral_control_values
from repro.circuit import generators
from repro.sim.logicsim import LogicSimulator
from repro.sim.view import CombinationalView


class TestInsertion:
    def test_point_counts(self):
        netlist = generators.random_resistant(12, cones=3)
        plan = insert_test_points(netlist, n_control=3, n_observe=2)
        assert len(plan.control_points) == 3
        assert len(plan.observe_points) == 2
        assert len(plan.control_inputs) == 3
        assert plan.n_points == 5

    def test_original_untouched(self):
        netlist = generators.random_resistant(12, cones=2)
        before = len(netlist.gates)
        insert_test_points(netlist, 2, 2)
        assert len(netlist.gates) == before

    def test_observe_points_become_outputs(self):
        netlist = generators.random_resistant(12, cones=2)
        plan = insert_test_points(netlist, 0, 3)
        new_pos = len(plan.netlist.outputs) - len(netlist.outputs)
        assert new_pos == 3


class TestFunctionalNeutrality:
    def test_neutral_values_preserve_function(self):
        """With control inputs at neutral values the modified netlist must
        compute exactly the original function on the original outputs."""
        netlist = generators.random_resistant(10, cones=2)
        plan = insert_test_points(netlist, n_control=4, n_observe=3)
        neutral = neutral_control_values(plan)
        original = LogicSimulator(netlist)
        modified = LogicSimulator(plan.netlist)
        rng = random.Random(1)
        n_inputs = len(netlist.inputs)
        original_po_count = len(netlist.outputs)
        for _ in range(40):
            pattern = [rng.randint(0, 1) for _ in range(n_inputs)]
            expected = original.response(pattern)
            observed = modified.response(pattern + neutral)
            assert observed[:original_po_count] == expected


class TestCoverageGain:
    def test_random_coverage_improves(self):
        """The whole point: LBIST coverage jumps after test points."""
        netlist = generators.random_resistant(14, cones=4)
        plan = insert_test_points(netlist, n_control=6, n_observe=6)
        before = StumpsController(netlist).run(256).final_coverage
        after = StumpsController(plan.netlist).run(256).final_coverage
        assert after > before
