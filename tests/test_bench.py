""".bench format parsing and writing."""

import pytest

from repro.circuit.bench import BenchFormatError, parse_bench, write_bench
from repro.circuit.benchmarks import C17_BENCH, S27_BENCH
from repro.circuit.gates import GateType
from repro.sim.logicsim import LogicSimulator


class TestParse:
    def test_c17_structure(self):
        netlist = parse_bench(C17_BENCH)
        stats = netlist.stats()
        assert stats["inputs"] == 5
        assert stats["outputs"] == 2
        assert stats["gates"] == 6
        assert all(
            netlist.gates[i].type == GateType.NAND
            for i in range(len(netlist.gates))
            if netlist.gates[i].type not in (GateType.INPUT, GateType.OUTPUT)
        )

    def test_s27_sequential(self):
        netlist = parse_bench(S27_BENCH)
        assert len(netlist.flops) == 3
        assert netlist.stats()["inputs"] == 4

    def test_out_of_order_definitions(self):
        text = """
        INPUT(a)
        OUTPUT(y)
        y = NOT(m)
        m = AND(a, a2)
        a2 = BUFF(a)
        """
        netlist = parse_bench(text)
        assert netlist.stats()["gates"] == 3

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\nINPUT(a)\nOUTPUT(b)\nb = NOT(a)  # inline\n"
        netlist = parse_bench(text)
        assert netlist.stats()["gates"] == 1

    def test_case_insensitive_keywords(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n"
        netlist = parse_bench(text)
        assert netlist.gates[netlist.index_of("y")].type == GateType.NAND

    def test_mux_and_const_extensions(self):
        text = (
            "INPUT(s)\nINPUT(a)\nINPUT(b)\nOUTPUT(y)\n"
            "c1 = CONST1()\ny = MUX(s, a, b)\n"
        )
        netlist = parse_bench(text)
        assert netlist.gates[netlist.index_of("y")].type == GateType.MUX2

    def test_unknown_keyword_rejected(self):
        with pytest.raises(BenchFormatError, match="unknown gate keyword"):
            parse_bench("INPUT(a)\ny = FROB(a)\n")

    def test_undefined_net_rejected(self):
        with pytest.raises(BenchFormatError, match="undefined"):
            parse_bench("INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n")

    def test_redefined_net_rejected(self):
        with pytest.raises(BenchFormatError, match="redefined"):
            parse_bench("INPUT(a)\ny = NOT(a)\ny = BUFF(a)\n")

    def test_undefined_output_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(a)\nOUTPUT(ghost)\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(BenchFormatError, match="cannot parse"):
            parse_bench("INPUT(a)\nthis is not bench\n")


class TestRoundTrip:
    def test_c17_round_trip_preserves_function(self):
        original = parse_bench(C17_BENCH)
        rebuilt = parse_bench(write_bench(original))
        sim_a, sim_b = LogicSimulator(original), LogicSimulator(rebuilt)
        for value in range(32):
            pattern = [(value >> i) & 1 for i in range(5)]
            assert sim_a.response(pattern) == sim_b.response(pattern)

    def test_s27_round_trip_preserves_structure(self):
        original = parse_bench(S27_BENCH)
        rebuilt = parse_bench(write_bench(original))
        assert rebuilt.stats() == original.stats()

    def test_writer_emits_ports(self):
        text = write_bench(parse_bench(C17_BENCH))
        assert text.count("INPUT(") == 5
        assert text.count("OUTPUT(") == 2
