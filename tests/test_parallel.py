"""Bit-parallel simulation must agree with the event simulator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import benchmarks, generators
from repro.sim.logicsim import LogicSimulator
from repro.sim.parallel import WORD_WIDTH, ParallelSimulator, pack_patterns, unpack_word


class TestPacking:
    def test_pack_unpack_roundtrip(self):
        patterns = [[1, 0], [0, 1], [1, 1]]
        word = pack_patterns(patterns, 0)
        assert unpack_word(word, 3) == [1, 0, 1]
        word = pack_patterns(patterns, 1)
        assert unpack_word(word, 3) == [0, 1, 1]


class TestAgreementWithEventSim:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_c17_random_batches(self, seed):
        import random

        rng = random.Random(seed)
        netlist = benchmarks.c17()
        parallel = ParallelSimulator(netlist)
        logic = LogicSimulator(netlist)
        patterns = [[rng.randint(0, 1) for _ in range(5)] for _ in range(16)]
        expected = [logic.response(p) for p in patterns]
        assert parallel.responses(patterns) == expected

    def test_sequential_view_agreement(self):
        import random

        rng = random.Random(3)
        netlist = generators.random_sequential(6, 60, 8, seed=1)
        parallel = ParallelSimulator(netlist)
        logic = LogicSimulator(netlist)
        width = parallel.view.num_inputs
        patterns = [[rng.randint(0, 1) for _ in range(width)] for _ in range(70)]
        expected = [logic.response(p) for p in patterns]
        assert parallel.responses(patterns) == expected

    def test_batches_larger_than_word(self):
        netlist = benchmarks.c17()
        parallel = ParallelSimulator(netlist)
        patterns = [[(i >> b) & 1 for b in range(5)] for i in range(WORD_WIDTH + 7)]
        responses = parallel.responses(patterns)
        assert len(responses) == WORD_WIDTH + 7


class TestValidation:
    def test_too_many_patterns_per_pass(self):
        netlist = benchmarks.c17()
        parallel = ParallelSimulator(netlist)
        with pytest.raises(ValueError):
            parallel.evaluate_words([0] * 5, WORD_WIDTH + 1)

    def test_wrong_word_count(self):
        netlist = benchmarks.c17()
        parallel = ParallelSimulator(netlist)
        with pytest.raises(ValueError):
            parallel.evaluate_words([0, 0], 4)
