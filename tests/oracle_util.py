"""Exhaustive ground-truth oracle + hypothesis netlist strategies.

For any full-scan view with ≤ 16 inputs the complete input space is
simulable in one packed pass (2**16 patterns), which yields *ground
truth*: a fault no exhaustive pattern set detects is untestable, full
stop.  The ATPG oracle tests use this to audit every engine verdict —
in particular every ``proved_untestable`` claim the D-algorithm and the
portfolio make.

The hypothesis strategies here generate small structurally diverse
netlists two ways: seeded draws through the repo's own
``generators.random_circuit`` (wide gate-type mix, guaranteed
observability wiring), and raw ``NetlistBuilder`` compositions that
include muxes, dangling cones and redundant logic the curated
generators avoid — exactly the shapes that breed untestable faults.
"""

from typing import Sequence, Set, Tuple

from hypothesis import strategies as st

from repro.atpg.random_gen import exhaustive_patterns
from repro.circuit.builder import NetlistBuilder
from repro.circuit.netlist import Netlist
from repro.faults.model import StuckAtFault
from repro.sim.faultsim import FaultSimulator

#: 2**16 packed patterns is the practical exhaustion ceiling for a test.
MAX_ORACLE_INPUTS = 16


def exhaustive_truth(
    netlist: Netlist, faults: Sequence[StuckAtFault]
) -> Tuple[Set[StuckAtFault], Set[StuckAtFault]]:
    """(truly testable, truly untestable) by complete input enumeration."""
    simulator = FaultSimulator(netlist, cache=None)
    n_inputs = simulator.view.num_inputs
    if n_inputs > MAX_ORACLE_INPUTS:
        raise ValueError(
            f"{netlist.name}: {n_inputs} inputs exceeds the exhaustive "
            f"oracle ceiling of {MAX_ORACLE_INPUTS}"
        )
    result = simulator.simulate(
        exhaustive_patterns(n_inputs), list(faults), drop=True
    )
    return set(result.detected), set(result.undetected)


@st.composite
def built_netlists(draw) -> Netlist:
    """Small raw-builder circuits: mixed ops, muxes, fanout reuse, and a
    deliberately partial output set so redundant cones are common."""
    builder = NetlistBuilder()
    n_inputs = draw(st.integers(min_value=2, max_value=6))
    lines = [builder.input(f"i{k}") for k in range(n_inputs)]
    n_gates = draw(st.integers(min_value=3, max_value=22))
    for _ in range(n_gates):
        op = draw(st.integers(min_value=0, max_value=8))
        pick = st.integers(min_value=0, max_value=len(lines) - 1)
        a = lines[draw(pick)]
        b = lines[draw(pick)]
        if op == 0:
            line = builder.and_(a, b)
        elif op == 1:
            line = builder.or_(a, b)
        elif op == 2:
            line = builder.nand(a, b)
        elif op == 3:
            line = builder.nor(a, b)
        elif op == 4:
            line = builder.xor(a, b)
        elif op == 5:
            line = builder.xnor(a, b)
        elif op == 6:
            line = builder.not_(a)
        elif op == 7:
            line = builder.buf(a)
        else:
            sel = lines[draw(pick)]
            line = builder.mux(sel, a, b)
        lines.append(line)
    # Observe the last line always, earlier lines only sometimes: gates
    # outside every observed cone become provably untestable faults.
    builder.output("y0", lines[-1])
    n_extra = draw(st.integers(min_value=0, max_value=2))
    for k in range(n_extra):
        builder.output(f"y{k + 1}", lines[draw(st.integers(0, len(lines) - 1))])
    return builder.build()


def generated_netlists():
    """Seeded draws through the repo's random circuit generator."""
    from repro.circuit import generators

    return st.builds(
        lambda n_inputs, n_gates, seed: generators.random_circuit(
            n_inputs, n_gates, seed=seed
        ),
        n_inputs=st.integers(min_value=3, max_value=8),
        n_gates=st.integers(min_value=8, max_value=40),
        seed=st.integers(min_value=0, max_value=10**6),
    )


def small_netlists():
    """The union strategy the oracle tests draw from."""
    return st.one_of(built_netlists(), generated_netlists())
