"""EDT decompressor: solving, expansion, capacity behaviour."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.decompressor import (
    Decompressor,
    EdtConfig,
    encoding_probability,
)

CONFIG = EdtConfig(n_channels=2, n_chains=8, chain_length=16, generator_length=24)


class TestSolveExpand:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_expansion_honours_care_bits(self, seed):
        rng = random.Random(seed)
        decompressor = Decompressor(CONFIG)
        cells = [
            (chain, position)
            for chain in range(CONFIG.n_chains)
            for position in range(CONFIG.chain_length)
        ]
        chosen = rng.sample(cells, 10)
        care = {cell: rng.randint(0, 1) for cell in chosen}
        variables = decompressor.solve_cube(care)
        assert variables is not None  # 10 care bits << 32 variables
        assert decompressor.verify(care, variables)

    def test_empty_cube_trivially_encodable(self):
        decompressor = Decompressor(CONFIG)
        variables = decompressor.solve_cube({})
        assert variables is not None
        loads = decompressor.expand(variables)
        assert len(loads) == CONFIG.n_chains
        assert all(len(chain) == CONFIG.chain_length for chain in loads)

    def test_overconstrained_cube_fails(self):
        """More care bits than variables cannot all be satisfied."""
        decompressor = Decompressor(CONFIG)
        rng = random.Random(1)
        care = {
            (chain, position): rng.randint(0, 1)
            for chain in range(CONFIG.n_chains)
            for position in range(CONFIG.chain_length)
        }
        # 128 equations, 32 variables: essentially certain to be infeasible.
        assert decompressor.solve_cube(care) is None

    def test_out_of_range_rejected(self):
        decompressor = Decompressor(CONFIG)
        with pytest.raises(ValueError):
            decompressor.solve_cube({(99, 0): 1})
        with pytest.raises(ValueError):
            decompressor.solve_cube({(0, 99): 1})

    def test_channel_stream_shape(self):
        decompressor = Decompressor(CONFIG)
        variables = decompressor.solve_cube({(0, 0): 1})
        stream = decompressor.variables_to_channel_stream(variables)
        assert len(stream) == CONFIG.chain_length + CONFIG.warmup_cycles
        assert all(len(cycle) == CONFIG.n_channels for cycle in stream)

    def test_warmup_makes_every_cell_controllable(self):
        from repro.compression.gf2 import rank_of

        decompressor = Decompressor(CONFIG)
        equations = decompressor.cell_equations()
        rows = [
            equations[cycle][chain]
            for cycle in range(CONFIG.chain_length)
            for chain in range(CONFIG.n_chains)
        ]
        assert all(row != 0 for row in rows)


class TestEncodingCapacity:
    def test_success_collapses_past_knee(self):
        results = dict(
            encoding_probability(CONFIG, [4, 16, 28, 48, 96], seed=3)
        )
        assert results[4] == 1.0
        assert results[16] > 0.9
        assert results[96] < 0.1
        # Monotone non-increasing overall trend.
        assert results[4] >= results[28] >= results[96]

    def test_more_channels_raise_capacity(self):
        few = dict(encoding_probability(CONFIG, [30], seed=5))[30]
        rich_config = EdtConfig(
            n_channels=4, n_chains=8, chain_length=16, generator_length=24
        )
        rich = dict(encoding_probability(rich_config, [30], seed=5))[30]
        assert rich >= few
