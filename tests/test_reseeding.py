"""LFSR-reseeding compression and its contrast with EDT."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.decompressor import EdtConfig, encoding_probability
from repro.compression.reseeding import (
    ReseedingCompressor,
    ReseedingConfig,
    reseeding_encoding_probability,
)

CONFIG = ReseedingConfig(lfsr_length=32, n_chains=8, chain_length=16)


class TestSolveExpand:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_expansion_honours_care_bits(self, seed):
        rng = random.Random(seed)
        compressor = ReseedingCompressor(CONFIG)
        cells = [
            (chain, position)
            for chain in range(CONFIG.n_chains)
            for position in range(CONFIG.chain_length)
        ]
        care = {cell: rng.randint(0, 1) for cell in rng.sample(cells, 8)}
        lfsr_seed = compressor.solve_cube(care)
        assert lfsr_seed is not None
        assert lfsr_seed != 0
        assert compressor.verify(care, lfsr_seed)

    def test_symbolic_matches_concrete(self):
        """The seed-bit masks must predict the concrete expansion."""
        from repro.compression.gf2 import dot_bits

        compressor = ReseedingCompressor(CONFIG)
        equations = compressor.cell_equations()
        seed_value = 0xDEADBEEF & ((1 << 32) - 1)
        seed_bits = [(seed_value >> bit) & 1 for bit in range(32)]
        loads = compressor.expand(seed_value)
        for cycle in range(CONFIG.chain_length):
            position = CONFIG.chain_length - 1 - cycle
            for chain in range(CONFIG.n_chains):
                predicted = dot_bits(equations[cycle][chain], seed_bits)
                assert loads[chain][position] == predicted

    def test_overconstrained_fails(self):
        rng = random.Random(2)
        compressor = ReseedingCompressor(CONFIG)
        care = {
            (chain, position): rng.randint(0, 1)
            for chain in range(CONFIG.n_chains)
            for position in range(CONFIG.chain_length)
        }
        assert compressor.solve_cube(care) is None

    def test_range_checks(self):
        compressor = ReseedingCompressor(CONFIG)
        with pytest.raises(ValueError):
            compressor.solve_cube({(99, 0): 1})


class TestCapacityContrast:
    def test_seed_length_caps_capacity(self):
        """Reseeding's knee sits at the LFSR length regardless of shift
        length — EDT's grows with it.  The structural reason EDT won."""
        counts = [8, 24, 40, 64]
        reseed = dict(
            reseeding_encoding_probability(CONFIG, counts, seed=4)
        )
        assert reseed[8] > 0.95
        assert reseed[24] > 0.7
        assert reseed[40] == 0.0  # > 32 variables: impossible
        # EDT with the same per-pattern *storage* (2 ch x 16+8 cycles = 48
        # variables) keeps encoding where reseeding has already died.
        edt_config = EdtConfig(n_channels=2, n_chains=8, chain_length=16)
        edt = dict(encoding_probability(edt_config, counts, seed=4))
        assert edt[40] > reseed[40]
