"""Cross-engine ATPG equivalence oracle.

The ATPG analogue of the backend × kernel conformance matrix: every
deterministic engine (``podem``, ``dalg``, ``guided``, ``portfolio``)
is audited over the seven conformance circuits plus hypothesis-generated
netlists.

Contract, per fault:

1. **Vectors are real** — every cube any engine returns detects its
   target fault under the fault simulator, for multiple X-fills.
2. **Verdicts agree** — no fault is ``detected`` by one engine and
   ``untestable`` by another (aborts are allowed to differ: they are
   budget artifacts, not verdicts).
3. **Untestability claims are proofs** — every ``proved_untestable`` is
   validated by exhaustive simulation of the complete input space
   (all circuits here have ≤ 16 view inputs).
4. **No unexplained aborts** — a portfolio abort carries a reason from
   *every* member engine, and campaign accounting partitions the fault
   universe exactly.
"""

import functools
import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.atpg import ENGINE_NAMES, PORTFOLIO_MEMBERS, make_engine, run_atpg
from repro.atpg.dalg import DAlgorithm
from repro.atpg.engine import x_fill
from repro.faults import collapse_faults, full_fault_list
from repro.sim.faultsim import FaultSimulator

from tests.oracle_util import exhaustive_truth, small_netlists
from tests.test_conformance import CIRCUIT_NAMES, _circuit, _universe

#: Generous budget: on these circuits every engine should settle nearly
#: everything, making the cross-checks maximally binding.
BACKTRACK_LIMIT = 1024

#: Ground-truth redundancy counts for the conformance circuits, from
#: exhaustive enumeration — a regression pin on both the circuit
#: generators and the D-algorithm's proof machinery.
KNOWN_REDUNDANT = {
    "c17": 0,
    "rand5": 29,
    "rand8": 24,
    "adder4": 4,
    "mac2": 24,
    "seq4": 16,
    "seq6": 20,
}


@functools.lru_cache(maxsize=None)
def _verdicts(name, engine_name):
    netlist = _circuit(name)
    engine = make_engine(
        engine_name, netlist, backtrack_limit=BACKTRACK_LIMIT
    )
    return {fault: engine.generate(fault) for fault in _universe(name)}


@functools.lru_cache(maxsize=None)
def _truth(name):
    return exhaustive_truth(_circuit(name), _universe(name))


class TestVectorsAreReal:
    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_every_vector_detects_its_fault(self, name, engine_name):
        netlist = _circuit(name)
        simulator = FaultSimulator(netlist, cache=None)
        rng = random.Random(17)
        for fault, outcome in _verdicts(name, engine_name).items():
            if not outcome.detected:
                continue
            for mode in ("zero", "random"):
                pattern = x_fill(outcome.cube, rng, mode)
                result = simulator.simulate([pattern], [fault], drop=True)
                assert fault in result.detected, (
                    f"{engine_name} cube ({mode}-fill) missed "
                    f"{fault.describe(netlist)}"
                )


class TestVerdictsAgree:
    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    def test_no_detected_vs_untestable_split(self, name):
        for fault in _universe(name):
            statuses = {
                engine_name: _verdicts(name, engine_name)[fault].status
                for engine_name in ENGINE_NAMES
            }
            verdicts = set(statuses.values()) - {"aborted"}
            assert verdicts != {"detected", "untestable"}, (
                f"{fault.describe(_circuit(name))}: {statuses}"
            )


class TestUntestableClaimsAreProofs:
    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    @pytest.mark.parametrize("engine_name", ENGINE_NAMES)
    def test_claims_hold_exhaustively(self, name, engine_name):
        _, truly_untestable = _truth(name)
        for fault, outcome in _verdicts(name, engine_name).items():
            if outcome.status == "untestable":
                assert fault in truly_untestable, (
                    f"{engine_name} falsely proved "
                    f"{fault.describe(_circuit(name))} untestable"
                )

    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    def test_dalg_settles_everything_and_matches_truth(self, name):
        """With budget to spare the D-algorithm is *complete* on these
        circuits: zero aborts, and verdicts equal ground truth exactly."""
        truly_testable, truly_untestable = _truth(name)
        netlist = _circuit(name)
        dalg = DAlgorithm(netlist, backtrack_limit=4096)
        claimed_untestable = set()
        for fault in _universe(name):
            outcome = dalg.generate(fault)
            assert outcome.status != "aborted", fault.describe(netlist)
            if outcome.status == "untestable":
                claimed_untestable.add(fault)
        assert claimed_untestable == truly_untestable

    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    def test_known_redundant_counts_pinned(self, name):
        _, truly_untestable = _truth(name)
        assert len(truly_untestable) == KNOWN_REDUNDANT[name]


class TestPortfolioAccounting:
    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    def test_no_unexplained_aborts(self, name):
        """Every fault ends detected / proved-untestable / aborted, and
        an abort names a reason from *every* portfolio member."""
        for fault, outcome in _verdicts(name, "portfolio").items():
            assert outcome.status in ("detected", "untestable", "aborted")
            if outcome.status == "aborted":
                assert outcome.reason in ("backtracks", "time")
                assert set(outcome.engine_reasons) == set(PORTFOLIO_MEMBERS)
            else:
                assert outcome.winner in PORTFOLIO_MEMBERS

    @pytest.mark.parametrize("name", CIRCUIT_NAMES)
    def test_coverage_at_least_podem(self, name):
        """Acceptance criterion: the portfolio detects a superset-sized
        fault count and proves at least as many untestable as PODEM."""
        podem = _verdicts(name, "podem")
        portfolio = _verdicts(name, "portfolio")
        podem_detected = sum(1 for o in podem.values() if o.detected)
        portfolio_detected = sum(1 for o in portfolio.values() if o.detected)
        assert portfolio_detected >= podem_detected
        podem_proved = sum(
            1 for o in podem.values() if o.status == "untestable"
        )
        portfolio_proved = sum(
            1 for o in portfolio.values() if o.status == "untestable"
        )
        assert portfolio_proved >= podem_proved

    def test_run_atpg_partitions_and_repeats_bit_identical(self):
        """Campaign-level accounting: buckets partition the universe,
        proved-untestable claims hold exhaustively, and a re-run with the
        same seed is bit-identical."""
        name = "rand8"
        netlist = _circuit(name)
        first = run_atpg(
            netlist, engine="portfolio", seed=3, backtrack_limit=256
        )
        second = run_atpg(
            netlist, engine="portfolio", seed=3, backtrack_limit=256
        )
        assert first.patterns == second.patterns
        summary_a, summary_b = first.summary(), second.summary()
        summary_a.pop("cpu_s"), summary_b.pop("cpu_s")
        assert summary_a == summary_b
        assert (
            first.detected
            + len(first.untestable)
            + len(first.aborted)
            + len(first.consistency_errors)
            == first.total_faults
        )
        _, truly_untestable = _truth(name)
        assert set(first.untestable) <= truly_untestable
        assert summary_a["proved_untestable"] == len(first.untestable)
        # Winners attribute every fault phase 2 settled (proofs plus
        # generated cubes; collateral dynamic-drop detections are credited
        # to the cube's target, not counted separately).
        assert set(first.winner_engines) <= set(PORTFOLIO_MEMBERS)
        assert sum(first.winner_engines.values()) >= len(first.untestable)

    def test_portfolio_coverage_at_least_podem_in_flow(self):
        """End-to-end run_atpg comparison on the whole conformance set."""
        for name in CIRCUIT_NAMES:
            netlist = _circuit(name)
            podem = run_atpg(netlist, engine="podem", seed=1, random_batches=2)
            portfolio = run_atpg(
                netlist, engine="portfolio", seed=1, random_batches=2
            )
            assert portfolio.fault_coverage >= podem.fault_coverage, name
            assert len(portfolio.untestable) >= len(podem.untestable), name


class TestHypothesisNetlists:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(netlist=small_netlists())
    def test_engines_agree_and_claims_hold(self, netlist):
        netlist.finalize()
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        truly_testable, truly_untestable = exhaustive_truth(netlist, faults)
        verdicts = {}
        for engine_name in ENGINE_NAMES:
            engine = make_engine(engine_name, netlist, backtrack_limit=512)
            for fault in faults:
                outcome = engine.generate(fault)
                verdicts.setdefault(fault, {})[engine_name] = outcome.status
                if outcome.status == "untestable":
                    assert fault in truly_untestable
                elif outcome.status == "detected":
                    assert fault in truly_testable
        for fault, statuses in verdicts.items():
            assert set(statuses.values()) - {"aborted"} != {
                "detected",
                "untestable",
            }
