"""Structural Verilog parsing and writing."""

import pytest

from repro.circuit import benchmarks, generators
from repro.circuit.gates import GateType
from repro.circuit.verilog import (
    VerilogFormatError,
    parse_verilog,
    sanitize_net_name,
    write_verilog,
)
from repro.sim.logicsim import LogicSimulator

SIMPLE = """
// a trivial module
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  xor g1 (s, a, b);
  and g2 (c, a, b);
endmodule
"""


class TestParse:
    def test_simple_module(self):
        netlist = parse_verilog(SIMPLE)
        assert netlist.name == "half_adder"
        stats = netlist.stats()
        assert stats["inputs"] == 2
        assert stats["outputs"] == 2
        assert stats["gates"] == 2

    def test_function(self):
        netlist = parse_verilog(SIMPLE)
        sim = LogicSimulator(netlist)
        for a in (0, 1):
            for b in (0, 1):
                assert sim.response([a, b]) == [a ^ b, a & b]

    def test_comments_stripped(self):
        text = SIMPLE.replace("xor g1", "/* block */ xor g1")
        netlist = parse_verilog(text)
        assert netlist.stats()["gates"] == 2

    def test_dff_primitive(self):
        text = """
        module seq (d, q);
          input d;
          output q;
          dff ff (q, d);
        endmodule
        """
        netlist = parse_verilog(text)
        assert len(netlist.flops) == 1

    def test_flop_feedback_forward_reference(self):
        text = """
        module toggle (q);
          output q;
          wire nq;
          dff ff (q, nq);
          not g (nq, q);
        endmodule
        """
        netlist = parse_verilog(text)
        netlist.finalize()
        assert len(netlist.flops) == 1

    def test_constants(self):
        text = """
        module k (y);
          output y;
          buf g (y, 1'b1);
        endmodule
        """
        netlist = parse_verilog(text)
        sim = LogicSimulator(netlist)
        assert sim.response([]) == [1]

    def test_errors(self):
        with pytest.raises(VerilogFormatError, match="no module"):
            parse_verilog("wire x;")
        with pytest.raises(VerilogFormatError, match="unknown primitive"):
            parse_verilog("module m (y); output y; frob g (y, y); endmodule")
        with pytest.raises(VerilogFormatError, match="driven twice"):
            parse_verilog(
                "module m (a, y); input a; output y;\n"
                "buf g1 (y, a); buf g2 (y, a); endmodule"
            )
        with pytest.raises(VerilogFormatError, match="never driven"):
            parse_verilog("module m (a, y); input a; output y; endmodule")
        with pytest.raises(VerilogFormatError, match="vector"):
            parse_verilog(
                "module m (a, y); input [3:0] a; output y; "
                "buf g (y, a); endmodule"
            )


class TestWriteRoundTrip:
    @pytest.mark.parametrize("name", ["c17", "add8", "alu4", "mac4", "pe4"])
    def test_function_preserved(self, name):
        import random

        original = benchmarks.get_benchmark(name)
        text = write_verilog(original)
        rebuilt = parse_verilog(text)
        sim_a = LogicSimulator(original)
        sim_b = LogicSimulator(rebuilt)
        rng = random.Random(1)
        width = sim_a.view.num_inputs
        assert sim_b.view.num_inputs == width
        for _ in range(12):
            pattern = [rng.randint(0, 1) for _ in range(width)]
            assert sim_a.response(pattern) == sim_b.response(pattern)

    def test_scan_design_serializes(self, mac4):
        from repro.scan import insert_scan

        design = insert_scan(mac4, n_chains=2)
        text = write_verilog(design.netlist)
        rebuilt = parse_verilog(text)
        # SDFFs degrade to plain dffs of the functional D pin.
        assert len(rebuilt.flops) == len(design.netlist.flops)

    def test_sanitize(self):
        assert sanitize_net_name("a[3]") == "a_3_"
        assert sanitize_net_name("core0/ff.q") == "core0_ff_q"
