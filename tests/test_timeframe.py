"""Time-frame expansion and sequential ATPG."""

import pytest

from repro.atpg.timeframe import (
    UnrolledModel,
    map_fault_to_frame,
    run_sequential_atpg,
    unroll,
)
from repro.circuit import benchmarks, generators
from repro.circuit.gates import GateType
from repro.faults import OUTPUT_PIN, StuckAtFault, full_fault_list
from repro.sim.logicsim import LogicSimulator
from repro.sim.parallel import ParallelSimulator
from repro.sim.seqfaultsim import SequentialFaultSimulator


class TestUnroll:
    def test_frame_structure(self, s27):
        model = unroll(s27, 3)
        # 3 frames of PIs, no flops left, POs per frame.
        assert len(model.netlist.inputs) == 3 * len(s27.inputs)
        assert model.netlist.flops == []
        assert len(model.netlist.outputs) == 3 * len(s27.outputs)

    def test_controllable_state_adds_inputs(self, s27):
        model = unroll(s27, 2, initial_state="controllable")
        extra = len(model.netlist.inputs) - 2 * len(s27.inputs)
        assert extra == len(s27.flops)
        assert len(model.state_positions) == len(s27.flops)

    def test_zero_state_uses_constants(self, s27):
        model = unroll(s27, 2, initial_state="zero")
        consts = [
            g for g in model.netlist.gates if g.type == GateType.CONST0
        ]
        assert len(consts) >= len(s27.flops)
        assert model.state_positions == []

    def test_validation(self, s27):
        with pytest.raises(ValueError):
            unroll(s27, 0)
        with pytest.raises(ValueError):
            unroll(s27, 2, initial_state="warm")

    def test_unrolled_matches_cycle_simulation(self, s27):
        """k-frame evaluation == k clocked cycles of the original."""
        import random

        rng = random.Random(4)
        frames = 3
        model = unroll(s27, frames, initial_state="zero")
        unrolled_sim = ParallelSimulator(model.netlist)
        logic = LogicSimulator(s27)
        for _ in range(10):
            sequence = [
                [rng.randint(0, 1) for _ in range(len(s27.inputs))]
                for _ in range(frames)
            ]
            # Pack the sequence into the unrolled view's input order.
            flat = [0] * len(model.netlist.inputs)
            for frame, vector in enumerate(sequence):
                for position, value in zip(model.pi_positions[frame], vector):
                    flat[position] = value
            responses = unrolled_sim.responses([flat])[0]
            # Cycle-accurate reference.
            state = [0] * len(s27.flops)
            expected = []
            for vector in sequence:
                step = logic.step(vector, state)
                expected.extend(step["outputs"])
                state = step["state"]
            assert responses == expected


class TestFaultMapping:
    def test_combinational_stem_maps(self, s27):
        model = unroll(s27, 2)
        fault = StuckAtFault(s27.index_of("G9"), OUTPUT_PIN, 1)
        image = map_fault_to_frame(model, s27, fault, 1)
        assert image is not None
        assert model.netlist.gates[image.gate].name == "G9@1"

    def test_flop_d_branch_returns_none(self, s27):
        model = unroll(s27, 2)
        flop = s27.flops[0]
        fault = StuckAtFault(flop, 0, 1)
        assert map_fault_to_frame(model, s27, fault, 1) is None


class TestSequentialAtpg:
    def test_s27_coverage(self, s27):
        result = run_sequential_atpg(s27, n_frames=4, seed=1)
        # s27 from reset: most faults detectable within a short window.
        assert result.coverage > 0.7
        assert result.detected == result.detected_random + result.detected_deterministic

    def test_sequences_regrade_to_claimed_detections(self, s27):
        result = run_sequential_atpg(s27, n_frames=4, seed=2)
        simulator = SequentialFaultSimulator(s27)
        faults = full_fault_list(s27)
        total = 0
        from repro.faults import collapse_faults

        collapsed, _ = collapse_faults(s27, faults)
        detected = set()
        for sequence in result.sequences:
            graded = simulator.simulate(sequence, collapsed, drop=True)
            detected.update(graded.detected)
        assert len(detected) >= result.detected

    def test_deterministic_phase_adds_coverage(self):
        netlist = generators.random_sequential(4, 50, 6, seed=11)
        sparse = run_sequential_atpg(
            netlist, n_frames=4, n_random_sequences=2, seed=3
        )
        assert sparse.detected_deterministic > 0

    def test_combinational_circuit_rejected(self, adder4):
        with pytest.raises(ValueError):
            run_sequential_atpg(adder4)
