"""Path-delay fault model: enumeration and robust/non-robust classification."""

import random

import pytest

from repro.circuit import generators
from repro.circuit.builder import NetlistBuilder
from repro.faults.path_delay import (
    NON_ROBUST,
    NOT_TESTED,
    ROBUST,
    PathDelayFault,
    classify_pair,
    evaluate_pair,
    grade_paths,
    longest_paths,
    path_delay_faults,
)


class TestEnumeration:
    def test_inverter_chain_single_path(self):
        netlist = generators.chain_of_inverters(5)
        paths = longest_paths(netlist, 10)
        assert len(paths) == 1
        assert paths[0].length == 5

    def test_longest_first(self, alu4):
        paths = longest_paths(alu4, 20)
        lengths = [p.length for p in paths]
        assert lengths == sorted(lengths, reverse=True)
        assert len(paths) == 20

    def test_paths_are_structurally_connected(self, alu4):
        for path in longest_paths(alu4, 10):
            for a, b in zip(path.gates, path.gates[1:]):
                assert a in alu4.gates[b].fanin

    def test_launch_and_capture_ends(self, mac4):
        launches = set(mac4.inputs) | set(mac4.flops)
        captures = {mac4.gates[po].fanin[0] for po in mac4.outputs}
        captures |= {mac4.gates[ff].fanin[0] for ff in mac4.flops}
        for path in longest_paths(mac4, 15):
            assert path.gates[0] in launches
            assert path.gates[-1] in captures

    def test_fault_pairs(self, alu4):
        faults = path_delay_faults(alu4, 5)
        assert len(faults) == 10
        assert {f.rising for f in faults} == {True, False}

    def test_describe(self, c17):
        fault = path_delay_faults(c17, 1)[0]
        assert "->" in fault.describe(c17)


class TestClassification:
    def _and_path_fixture(self):
        """y = AND(a, b): the a->y path with b as side input."""
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        g = builder.and_(a, b)
        builder.output("y", g)
        netlist = builder.build()
        path_fault = PathDelayFault(
            path=longest_paths(netlist, 4)[0].__class__((a, g)), rising=True
        )
        return netlist, path_fault, a, b

    def test_robust_needs_steady_side(self):
        netlist, fault, a, b = self._and_path_fixture()
        # a rises, b steady 1: robust.
        v1, v2 = evaluate_pair(netlist, [0, 1], [1, 1])
        assert classify_pair(netlist, fault, v1, v2) == ROBUST

    def test_glitchy_side_is_non_robust(self):
        netlist, fault, a, b = self._and_path_fixture()
        # a rises, b also rises (0 -> 1): the output transition may be set
        # by b's arrival — non-robust.
        v1, v2 = evaluate_pair(netlist, [0, 0], [1, 1])
        assert classify_pair(netlist, fault, v1, v2) == NON_ROBUST

    def test_blocked_side_not_tested(self):
        netlist, fault, a, b = self._and_path_fixture()
        v1, v2 = evaluate_pair(netlist, [0, 1], [1, 0])  # b ends controlling
        assert classify_pair(netlist, fault, v1, v2) == NOT_TESTED

    def test_no_launch_transition_not_tested(self):
        netlist, fault, a, b = self._and_path_fixture()
        v1, v2 = evaluate_pair(netlist, [1, 1], [1, 1])
        assert classify_pair(netlist, fault, v1, v2) == NOT_TESTED

    def test_falling_polarity(self):
        netlist, rising_fault, a, b = self._and_path_fixture()
        falling = PathDelayFault(rising_fault.path, rising=False)
        v1, v2 = evaluate_pair(netlist, [1, 1], [0, 1])
        assert classify_pair(netlist, falling, v1, v2) == ROBUST

    def test_xor_side_must_be_steady(self):
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        g = builder.xor(a, b)
        builder.output("y", g)
        netlist = builder.build()
        path = longest_paths(netlist, 4)[0]
        fault = PathDelayFault(path, rising=True)
        launch = path.gates[0]
        steady = evaluate_pair(netlist, [0, 1], [1, 1])
        moving = evaluate_pair(netlist, [0, 0], [1, 1])
        assert classify_pair(netlist, fault, *steady) == ROBUST
        assert classify_pair(netlist, fault, *moving) == NOT_TESTED

    def test_inverter_chain_always_robust_when_launched(self):
        netlist = generators.chain_of_inverters(6)
        fault = path_delay_faults(netlist, 1)[0]
        v1, v2 = evaluate_pair(netlist, [0], [1])
        assert classify_pair(netlist, fault, v1, v2) == ROBUST


class TestGrading:
    def test_random_pairs_cover_most_long_paths(self, alu4):
        rng = random.Random(2)
        faults = path_delay_faults(alu4, 8)
        width = len(alu4.inputs)
        pairs = [
            (
                [rng.randint(0, 1) for _ in range(width)],
                [rng.randint(0, 1) for _ in range(width)],
            )
            for _ in range(400)
        ]
        graded = grade_paths(alu4, faults, pairs)
        tested = sum(1 for v in graded.values() if v != NOT_TESTED)
        robust = sum(1 for v in graded.values() if v == ROBUST)
        # Long paths are hard for random pairs — the classic motivation for
        # dedicated path-delay ATPG; a fraction is all random gets.
        assert tested >= 2
        assert robust >= 1

    def test_robust_subset_of_tested(self, adder4):
        rng = random.Random(4)
        faults = path_delay_faults(adder4, 6)
        width = len(adder4.inputs)
        pairs = [
            (
                [rng.randint(0, 1) for _ in range(width)],
                [rng.randint(0, 1) for _ in range(width)],
            )
            for _ in range(200)
        ]
        graded = grade_paths(adder4, faults, pairs)
        assert set(graded.values()) <= {ROBUST, NON_ROBUST, NOT_TESTED}
