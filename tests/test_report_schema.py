"""Golden-schema pin for the RunReport JSON emitted by ``--report``.

``tests/data/run_report_schema.json`` snapshots the full key tree of a
small ``repro atpg --circuit c17 --report`` run.  The contract is
append-only: a code change may ADD key paths (new counters, new span
labels, new meta fields) but must never remove or rename an existing one
while ``SCHEMA_VERSION`` stays the same — downstream tooling parses
these files across commits.

To regenerate after an intentional, additive change, run
``PYTHONPATH=src python tests/test_report_schema.py --regenerate``
(the ``__main__`` block below rewrites the golden file in place).
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import SCHEMA_VERSION, RunReport

GOLDEN_PATH = Path(__file__).parent / "data" / "run_report_schema.json"


def _generate_report(tmp_path) -> RunReport:
    """The exact run the golden snapshot was taken from."""
    out = tmp_path / "run.json"
    code = main(["atpg", "--circuit", "c17", "--report", str(out)])
    assert code == 0
    return RunReport.from_json(out.read_text())


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenSchema:
    def test_schema_only_adds_keys(self, tmp_path, capsys):
        golden = _golden()
        report = _generate_report(tmp_path)
        current = set(report.key_paths())
        missing = sorted(set(golden["key_paths"]) - current)
        assert not missing, (
            "RunReport schema removed or renamed key paths present in the "
            f"golden snapshot (append-only contract): {missing}. If this "
            "removal is intentional, bump SCHEMA_VERSION and regenerate "
            f"{GOLDEN_PATH.name}."
        )

    def test_schema_version_matches_golden(self):
        golden = _golden()
        assert SCHEMA_VERSION == golden["schema_version"], (
            "SCHEMA_VERSION changed without regenerating the golden "
            "snapshot — rerun the generator in tests/data/"
            "run_report_schema.json's _comment."
        )

    def test_golden_paths_sorted_and_unique(self):
        paths = _golden()["key_paths"]
        assert paths == sorted(set(paths))

    def test_core_paths_present(self, tmp_path, capsys):
        """The acceptance-critical paths every consumer relies on."""
        report = _generate_report(tmp_path)
        paths = set(report.key_paths())
        for required in (
            "name",
            "schema_version",
            "generated_unix_s",
            "span.name",
            "span.wall_time_s",
            "span.children",
            "metrics.counters",
            "metrics.gauges",
            "meta.argv",
            "meta.exit_code",
        ):
            assert required in paths


class TestRoundTrip:
    def test_report_json_roundtrip(self, tmp_path, capsys):
        report = _generate_report(tmp_path)
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
        assert clone.to_json() == report.to_json()
        assert clone.key_paths() == report.key_paths()
        assert clone.counter_value("atpg.faults") == report.counter_value(
            "atpg.faults"
        )

    def test_written_file_is_stable_json(self, tmp_path, capsys):
        """sort_keys means two loads of the same run serialize identically."""
        out = tmp_path / "run.json"
        assert main(["atpg", "--circuit", "c17", "--report", str(out)]) == 0
        text = out.read_text()
        reserialized = RunReport.from_json(text).to_json() + "\n"
        assert reserialized == text


if __name__ == "__main__":
    import sys
    import tempfile

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python tests/test_report_schema.py --regenerate")
    with tempfile.TemporaryDirectory() as tmp:
        report = _generate_report(Path(tmp))
    golden = {
        "_comment": (
            "Golden key tree of a `repro atpg --circuit c17 --report` "
            "RunReport. Regenerate with `PYTHONPATH=src python "
            "tests/test_report_schema.py --regenerate`. The schema is "
            "append-only: new code may ADD paths but never remove or "
            "rename one without bumping SCHEMA_VERSION."
        ),
        "schema_version": report.schema_version,
        "key_paths": report.key_paths(),
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {len(golden['key_paths'])} paths to {GOLDEN_PATH}")
