"""Golden-schema pin for the RunReport JSON emitted by ``--report``.

``tests/data/run_report_schema.json`` snapshots the full key tree of a
small ``repro atpg --circuit c17 --report`` run.  The contract is
append-only: a code change may ADD key paths (new counters, new span
labels, new meta fields) but must never remove or rename an existing one
while ``SCHEMA_VERSION`` stays the same — downstream tooling parses
these files across commits.

To regenerate after an intentional, additive change, run
``PYTHONPATH=src python tests/test_report_schema.py --regenerate``
(the ``__main__`` block below rewrites the golden file in place).
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import SCHEMA_VERSION, RunReport

GOLDEN_PATH = Path(__file__).parent / "data" / "run_report_schema.json"


def _generate_report(tmp_path) -> RunReport:
    """The exact run the golden snapshot was taken from."""
    out = tmp_path / "run.json"
    code = main(["atpg", "--circuit", "c17", "--report", str(out)])
    assert code == 0
    return RunReport.from_json(out.read_text())


def _golden():
    return json.loads(GOLDEN_PATH.read_text())


class TestGoldenSchema:
    def test_schema_only_adds_keys(self, tmp_path, capsys):
        golden = _golden()
        report = _generate_report(tmp_path)
        current = set(report.key_paths())
        missing = sorted(set(golden["key_paths"]) - current)
        assert not missing, (
            "RunReport schema removed or renamed key paths present in the "
            f"golden snapshot (append-only contract): {missing}. If this "
            "removal is intentional, bump SCHEMA_VERSION and regenerate "
            f"{GOLDEN_PATH.name}."
        )

    def test_schema_version_matches_golden(self):
        golden = _golden()
        assert SCHEMA_VERSION == golden["schema_version"], (
            "SCHEMA_VERSION changed without regenerating the golden "
            "snapshot — rerun the generator in tests/data/"
            "run_report_schema.json's _comment."
        )

    def test_golden_paths_sorted_and_unique(self):
        paths = _golden()["key_paths"]
        assert paths == sorted(set(paths))

    def test_core_paths_present(self, tmp_path, capsys):
        """The acceptance-critical paths every consumer relies on."""
        report = _generate_report(tmp_path)
        paths = set(report.key_paths())
        for required in (
            "name",
            "schema_version",
            "generated_unix_s",
            "span.name",
            "span.wall_time_s",
            "span.children",
            "metrics.counters",
            "metrics.gauges",
            "meta.argv",
            "meta.exit_code",
        ):
            assert required in paths


class TestBenchEnvelopes:
    """Committed ``BENCH_*.json`` files are RunReport envelopes too; pin
    the payload fields downstream tooling reads from them."""

    BENCH_DIR = Path(__file__).parent.parent / "benchmarks"

    def test_dispatch_speedup_assertion_recorded(self):
        """The pool-speedup capability gate must leave an explicit verdict
        in the envelope — ``asserted`` plus a ``skipped_reason`` — instead
        of silently skipping on low-core hosts (the old behavior printed
        the skip to stdout and recorded nothing)."""
        report = RunReport.from_json(
            (self.BENCH_DIR / "BENCH_dispatch.json").read_text()
        )
        gate = report.payload["speedup_assertion"]
        assert set(gate) == {
            "cpu_count",
            "required_cores",
            "min_speedup_x",
            "asserted",
            "skipped_reason",
        }
        assert isinstance(gate["asserted"], bool)
        assert gate["cpu_count"] >= 1
        if gate["asserted"]:
            assert gate["skipped_reason"] is None
        else:
            assert gate["cpu_count"] < gate["required_cores"]
            assert gate["skipped_reason"]

    def test_np_smoke_envelope_shape(self):
        """The numpy-kernel CI envelope carries replicated wall rows under
        the ``<kernel>_x<N>`` convention and exact work counters — the
        contract ``repro obs gate`` enforces against the baseline."""
        report = RunReport.from_json(
            (self.BENCH_DIR / "baselines" / "BENCH_widesim_np_smoke.json").read_text()
        )
        rows = {row["name"]: row for row in report.payload["rows"]}
        for kernel in ("python", "numpy"):
            for rep in range(3):
                row = rows[f"{kernel}_x{rep}"]
                assert row["wall_time_s"] > 0
                for counter in (
                    "events_propagated",
                    "words_evaluated",
                    "good_passes",
                    "detected",
                    "faults",
                ):
                    # Deterministic counters are kernel- and replicate-
                    # invariant: the kernels grade identical work.
                    assert row[counter] == rows["python_x0"][counter], counter
        assert rows["speedup"]["numpy_vs_python_x"] > 1.0


class TestRoundTrip:
    def test_report_json_roundtrip(self, tmp_path, capsys):
        report = _generate_report(tmp_path)
        clone = RunReport.from_json(report.to_json())
        assert clone.to_dict() == report.to_dict()
        assert clone.to_json() == report.to_json()
        assert clone.key_paths() == report.key_paths()
        assert clone.counter_value("atpg.faults") == report.counter_value(
            "atpg.faults"
        )

    def test_written_file_is_stable_json(self, tmp_path, capsys):
        """sort_keys means two loads of the same run serialize identically."""
        out = tmp_path / "run.json"
        assert main(["atpg", "--circuit", "c17", "--report", str(out)]) == 0
        text = out.read_text()
        reserialized = RunReport.from_json(text).to_json() + "\n"
        assert reserialized == text


if __name__ == "__main__":
    import sys
    import tempfile

    if "--regenerate" not in sys.argv:
        sys.exit("usage: python tests/test_report_schema.py --regenerate")
    with tempfile.TemporaryDirectory() as tmp:
        report = _generate_report(Path(tmp))
    golden = {
        "_comment": (
            "Golden key tree of a `repro atpg --circuit c17 --report` "
            "RunReport. Regenerate with `PYTHONPATH=src python "
            "tests/test_report_schema.py --regenerate`. The schema is "
            "append-only: new code may ADD paths but never remove or "
            "rename one without bumping SCHEMA_VERSION."
        ),
        "schema_version": report.schema_version,
        "key_paths": report.key_paths(),
    }
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n")
    print(f"wrote {len(golden['key_paths'])} paths to {GOLDEN_PATH}")
