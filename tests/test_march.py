"""March algorithm definitions and notation."""

import pytest

from repro.bist.march import (
    ALL_MARCH_TESTS,
    MARCH_A,
    MARCH_B,
    MARCH_C_MINUS,
    MATS,
    MATS_PLUS,
    Direction,
    MarchElement,
    Operation,
    march_test_by_name,
    operation_count,
    r0,
    r1,
    w0,
    w1,
)


class TestDefinitions:
    def test_complexities_match_literature(self):
        expected = {
            "MATS": 4,
            "MATS+": 5,
            "MATS++": 6,
            "March X": 6,
            "March Y": 8,
            "March C-": 10,
            "March A": 15,
            "March B": 17,
        }
        for test in ALL_MARCH_TESTS:
            assert test.complexity == expected[test.name], test.name

    def test_march_c_minus_structure(self):
        assert len(MARCH_C_MINUS.elements) == 6
        directions = [e.direction for e in MARCH_C_MINUS.elements]
        assert directions[1] == Direction.UP
        assert directions[3] == Direction.DOWN

    def test_every_test_starts_with_w0(self):
        for test in ALL_MARCH_TESTS:
            first = test.elements[0].operations[0]
            assert first == w0()

    def test_reads_follow_writes_consistently(self):
        """Within an element, a read expects the value last written (or the
        value established by the previous element)."""
        for test in ALL_MARCH_TESTS:
            value = None
            for element in test.elements:
                for op in element.operations:
                    if op.kind == "w":
                        value = op.value
            # Final state after the full test is deterministic.
            assert value in (0, 1)


class TestNotation:
    def test_operation_str(self):
        assert str(r0()) == "r0"
        assert str(w1()) == "w1"

    def test_element_str_arrows(self):
        element = MarchElement(Direction.UP, (r0(), w1()))
        assert str(element) == "⇑(r0,w1)"
        assert "⇓" in str(MarchElement(Direction.DOWN, (r1(),)))
        assert "⇕" in str(MarchElement(Direction.EITHER, (w0(),)))

    def test_test_str(self):
        text = str(MATS_PLUS)
        assert text.startswith("MATS+:")
        assert text.count(";") == 2


class TestLookup:
    def test_by_name(self):
        assert march_test_by_name("March C-") is MARCH_C_MINUS
        with pytest.raises(KeyError):
            march_test_by_name("March Z")

    def test_operation_count(self):
        assert operation_count(MARCH_C_MINUS, 1024) == 10 * 1024
        assert operation_count(MATS, 64) == 4 * 64
