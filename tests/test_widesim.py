"""Wide-word engine: width properties and good-machine caching.

The full width × backend × kernel agreement matrix lives in
``test_conformance.py``; this file keeps the wide-word specifics —
hypothesis width-invariance properties, pack/unpack roundtrips, width
validation, sequential-engine lane handling, and flow threading.

The good-machine response cache is covered separately: repeated identical
pattern blocks must stop costing good-machine passes, with or without the
cache the results must match, and the LRU byte budget must actually bound
the cache.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks, generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim.faultsim import FaultSimulator
from repro.sim.goodcache import DEFAULT_CACHE, GoodMachineCache
from repro.sim.parallel import (
    WORD_WIDTH,
    WORD_WIDTHS,
    ParallelSimulator,
    pack_patterns,
    unpack_word,
)
from repro.sim.seqfaultsim import SequentialFaultSimulator

SMALL = dict(max_examples=10, deadline=None)
seeds = st.integers(0, 10**6)


def _universe(netlist):
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    return faults


def small_circuit(seed):
    rng = random.Random(seed)
    return generators.random_circuit(
        rng.randint(4, 8), rng.randint(15, 45), seed=seed
    )


class TestWidthInvariance:
    """Width plumbing the conformance matrix doesn't sweep."""

    @pytest.mark.parametrize("width", WORD_WIDTHS)
    def test_responses_identical_across_widths(self, width):
        netlist = generators.random_sequential(5, 45, 6, seed=77)
        base = ParallelSimulator(netlist)
        wide = ParallelSimulator(netlist, word_width=width)
        patterns = random_patterns(base.view.num_inputs, 130, seed=77)
        assert wide.responses(patterns) == base.responses(patterns)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            ParallelSimulator(benchmarks.c17(), word_width=0)
        with pytest.raises(ValueError):
            FaultSimulator(benchmarks.c17(), word_width=-64)


class TestWidthProperties:
    """Hypothesis: width invariance over random circuits."""

    @settings(**SMALL)
    @given(seed=seeds, width=st.sampled_from((256, 1024)))
    def test_wide_ppsfp_equals_64_and_serial(self, seed, width):
        netlist = small_circuit(seed)
        faults = _universe(netlist)
        patterns = random_patterns(len(netlist.inputs), 90, seed=seed)
        base = FaultSimulator(netlist).simulate(patterns, faults, engine="ppsfp")
        wide = FaultSimulator(netlist, word_width=width)
        ppsfp = wide.simulate(patterns, faults, engine="ppsfp")
        serial = wide.simulate(patterns, faults, engine="serial")
        assert ppsfp.detected == base.detected
        assert ppsfp.undetected == base.undetected
        assert serial.detected == base.detected
        assert ppsfp.coverage == base.coverage

    @settings(**SMALL)
    @given(
        seed=seeds,
        width=st.integers(1, 300),
        n_patterns=st.integers(1, 80),
        n_bits=st.integers(1, 12),
    )
    def test_pack_unpack_roundtrip_any_width(self, seed, width, n_patterns, n_bits):
        rng = random.Random(seed)
        patterns = [
            [rng.randint(0, 1) for _ in range(n_bits)] for _ in range(n_patterns)
        ]
        for bit in range(n_bits):
            word = pack_patterns(patterns, bit)
            assert unpack_word(word, n_patterns) == [p[bit] for p in patterns]
        # Packing through a width-limited simulator's reused buffer gives
        # the same words as the standalone packer.
        netlist = generators.parity_tree(n_bits)
        sim = ParallelSimulator(netlist, word_width=width)
        chunk = patterns[:width]
        assert sim.pack_block(chunk) == [
            pack_patterns(chunk, bit) for bit in range(n_bits)
        ]


class TestGoodMachineCache:
    def test_repeat_blocks_hit_cache(self):
        netlist = generators.random_circuit(6, 45, seed=9)
        cache = GoodMachineCache()
        simulator = FaultSimulator(netlist, word_width=256, cache=cache)
        faults = _universe(netlist)
        patterns = random_patterns(len(netlist.inputs), 256, seed=9)

        first = simulator.simulate(patterns, faults, drop=False)
        assert first.stats["good_passes"] > 0
        assert first.stats["good_cache_misses"] > 0

        second = simulator.simulate(patterns, faults, drop=False)
        assert second.detected == first.detected
        assert second.stats["good_passes"] == 0
        assert second.stats["good_cache_hits"] > 0

    def test_cache_shared_across_simulator_instances(self):
        """The key is the netlist *structure*, not the instance."""
        cache = GoodMachineCache()
        netlist_a = generators.random_circuit(6, 40, seed=4)
        netlist_b = generators.random_circuit(6, 40, seed=4)  # identical twin
        patterns = random_patterns(len(netlist_a.inputs), 64, seed=4)
        sim_a = ParallelSimulator(netlist_a, cache=cache)
        sim_b = ParallelSimulator(netlist_b, cache=cache)
        first = sim_a.responses(patterns)
        assert cache.misses > 0 and cache.hits == 0
        second = sim_b.responses(patterns)
        assert second == first
        assert cache.hits > 0

    def test_disabled_cache_identical_results(self):
        netlist = generators.random_sequential(4, 35, 5, seed=6)
        faults = _universe(netlist)
        patterns = random_patterns(
            FaultSimulator(netlist).view.num_inputs, 128, seed=6
        )
        cached = FaultSimulator(netlist, word_width=256).simulate(patterns, faults)
        uncached = FaultSimulator(netlist, word_width=256, cache=None).simulate(
            patterns, faults
        )
        assert uncached.detected == cached.detected
        assert uncached.undetected == cached.undetected
        assert uncached.stats["good_cache_hits"] == 0
        assert uncached.stats["good_cache_misses"] == 0

    def test_byte_budget_evicts_lru(self):
        cache = GoodMachineCache(max_bytes=4096)
        for i in range(64):
            cache.put(("sig", 64, (i,)), [i] * 20, 64)
        assert cache.stats()["approx_bytes"] <= 4096
        assert cache.evictions > 0
        # The most recent entry survives; the oldest is gone.
        assert cache.get(("sig", 64, (63,))) is not None
        assert cache.get(("sig", 64, (0,))) is None

    def test_oversized_entry_not_cached(self):
        cache = GoodMachineCache(max_bytes=128)
        cache.put(("sig", 4096, (1,)), [0] * 10_000, 4096)
        assert cache.get(("sig", 4096, (1,))) is None
        assert len(cache) == 0

    def test_run_atpg_topoff_replays_cached_blocks(self):
        """Acceptance pin: the verify/top-off phase of ``run_atpg`` reuses
        the good-machine blocks computed during earlier phases instead of
        recomputing them."""
        from repro.atpg.engine import run_atpg

        # Random-resistant cones force static compaction to merge cubes and
        # lose random-fill detections, so the verify/top-off phase actually
        # runs; every block it grades was already simulated in phase 2.
        netlist = generators.random_resistant(12, 4)
        DEFAULT_CACHE.clear()
        baseline_hits = DEFAULT_CACHE.hits
        result = run_atpg(netlist, seed=3, random_batches=2)
        assert result.fault_coverage > 0.5
        assert DEFAULT_CACHE.hits > baseline_hits

    def test_repeated_flow_replays_from_cache(self):
        """Re-running the same flow (same structure, same seed) costs zero
        good-machine passes for every previously seen block."""
        netlist = generators.random_circuit(6, 45, seed=14)
        faults = _universe(netlist)
        patterns = random_patterns(len(netlist.inputs), 192, seed=14)
        cache = GoodMachineCache()
        first = FaultSimulator(netlist, word_width=256, cache=cache).simulate(
            patterns, faults, drop=False
        )
        # A *fresh* simulator over a structurally identical netlist.
        twin = generators.random_circuit(6, 45, seed=14)
        second = FaultSimulator(twin, word_width=256, cache=cache).simulate(
            patterns, faults, drop=False
        )
        assert second.detected == first.detected
        assert second.stats["good_passes"] == 0
        assert second.stats["good_cache_hits"] == first.stats["good_passes"]

    def test_default_cache_stats_shape(self):
        stats = DEFAULT_CACHE.stats()
        for key in ("entries", "approx_bytes", "hits", "misses", "evictions"):
            assert key in stats


class TestSequentialWordWidth:
    def test_lanes_derived_from_word_width(self):
        netlist = generators.random_sequential(4, 30, 4, seed=2)
        default = SequentialFaultSimulator(netlist)
        assert default.lanes_per_word == WORD_WIDTH - 1
        wide = SequentialFaultSimulator(netlist, word_width=256)
        assert wide.lanes_per_word == 255

    def test_wide_sequential_matches_default(self):
        netlist = generators.random_sequential(4, 35, 4, seed=8)
        faults = full_fault_list(netlist)
        rng = random.Random(8)
        sequences = [
            [[rng.randint(0, 1) for _ in range(len(netlist.inputs))] for _ in range(4)]
            for _ in range(100)
        ]
        base = SequentialFaultSimulator(netlist).simulate(sequences, faults)
        wide = SequentialFaultSimulator(netlist, word_width=256).simulate(
            sequences, faults
        )
        assert wide.detected == base.detected
        assert wide.undetected == base.undetected

    def test_minimum_width_rejected(self):
        netlist = generators.random_sequential(3, 20, 3, seed=1)
        with pytest.raises(ValueError):
            SequentialFaultSimulator(netlist, word_width=1)


class TestFlowWidthThreading:
    """``word_width`` reaches every flow without changing results."""

    def test_run_atpg_width_invariant(self):
        from repro.atpg.engine import run_atpg

        netlist = generators.random_circuit(6, 40, seed=17)
        base = run_atpg(netlist, seed=3)
        wide = run_atpg(netlist, seed=3, word_width=1024)
        assert wide.fault_coverage == base.fault_coverage
        assert wide.detected == base.detected
        assert len(wide.patterns) == len(base.patterns)

    def test_lbist_width_invariant(self):
        from repro.bist.lbist import StumpsController

        netlist = generators.random_sequential(4, 40, 6, seed=12)
        base = StumpsController(netlist).run(128)
        wide = StumpsController(netlist, word_width=1024).run(128)
        assert wide.final_coverage == base.final_coverage
        assert wide.signature == base.signature
        assert wide.coverage_points == base.coverage_points

    def test_compressed_atpg_width_invariant(self):
        from repro.compression.edt import EdtSystem
        from repro.compression.flow import run_compressed_atpg
        from repro.scan import insert_scan

        netlist = generators.random_sequential(4, 60, 16, seed=9)
        design = insert_scan(netlist, n_chains=4)
        edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
        base = run_compressed_atpg(edt, seed=1, grade=True)
        netlist2 = generators.random_sequential(4, 60, 16, seed=9)
        design2 = insert_scan(netlist2, n_chains=4)
        edt2 = EdtSystem(design2, n_input_channels=2, n_output_channels=2)
        wide = run_compressed_atpg(edt2, seed=1, grade=True, word_width=1024)
        assert wide.fault_coverage == base.fault_coverage
        assert wide.graded_coverage == base.graded_coverage
        assert wide.grading_stats["word_width"] == 1024

    def test_cli_word_width_flag(self, capsys):
        from repro.cli import main

        assert main(["atpg", "c17", "--word-width", "256"]) == 0
        out = capsys.readouterr().out
        assert "fault_coverage" in out

    def test_stats_report_width(self):
        netlist = benchmarks.c17()
        simulator = FaultSimulator(netlist, word_width=4096)
        faults = _universe(netlist)
        patterns = random_patterns(len(netlist.inputs), 32, seed=0)
        result = simulator.simulate(patterns, faults)
        assert result.stats["word_width"] == 4096
        assert result.stats["words_evaluated"] > 0
