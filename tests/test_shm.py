"""Shared-memory campaign fan-out: arena semantics and leak-proofing.

:mod:`repro.sim.shm` owns one hard promise — **no leaked segments**: the
parent creates each campaign arena, workers only ever map it, and the
parent unlinks it on every exit path.  These tests scan ``/dev/shm``
around pool and supervised campaigns under the failure modes the chaos
harness can inject — worker crashes, hangs killed on deadline, injected
exceptions, corrupt results — and around a ``KeyboardInterrupt``
delivered mid-spawn, asserting the segment count returns to its starting
point every time.

The arena itself is covered first: zero-copy read-only array views,
pickled fallback blocks, spec roundtrip through attach, and idempotent
teardown.
"""

import numpy as np
import pytest

from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim import shm
from repro.sim.chaos import ChaosPlan
from repro.sim.faultsim import FaultSimulator
from repro.sim.journal import CampaignJournal
from repro.sim.supervisor import SupervisedPoolBackend, SupervisorConfig

KERNELS = ("python", "numpy")


@pytest.fixture
def no_leaked_segments():
    """Assert the ``/dev/shm`` arena population is unchanged by the test."""
    before = set(shm.segment_names())
    yield
    leaked = set(shm.segment_names()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _setup(kernel, n_inputs=6, n_gates=40, seed=7, n_patterns=96):
    netlist = generators.random_circuit(n_inputs, n_gates, seed=seed)
    simulator = FaultSimulator(netlist, cache=None, kernel=kernel)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, n_patterns, seed=seed)
    reference = simulator.simulate(patterns, faults, engine="ppsfp")
    return simulator, faults, patterns, reference


class TestSharedArena:
    def test_array_blocks_zero_copy_read_only(self, no_leaked_segments):
        payload = np.arange(12, dtype="<u8").reshape(3, 4)
        arena = shm.SharedArena.create({"words": payload, "meta": {"n": 3}})
        try:
            view = arena.get("words")
            assert np.array_equal(view, payload)
            assert view.dtype == payload.dtype
            assert not view.flags.writeable
            assert not view.flags.owndata  # a view into the segment, no copy
            assert arena.get("meta") == {"n": 3}
            assert sorted(arena.keys()) == ["meta", "words"]
            with pytest.raises(KeyError):
                arena.get("missing")
        finally:
            arena.destroy()

    def test_attach_sees_owner_blocks(self, no_leaked_segments):
        payload = np.arange(7, dtype="<u8")
        arena = shm.SharedArena.create({"row": payload, "tag": "x"})
        try:
            attached = shm.SharedArena.attach(arena.spec)
            assert np.array_equal(attached.get("row"), payload)
            assert attached.get("tag") == "x"
            attached.close()
            # A non-owner close never unlinks the segment.
            assert arena.spec.name in shm.segment_names()
        finally:
            arena.destroy()

    def test_destroy_idempotent(self, no_leaked_segments):
        arena = shm.SharedArena.create({"tag": "y"})
        assert arena.spec.name in shm.segment_names()
        arena.destroy()
        assert arena.spec.name not in shm.segment_names()
        arena.destroy()  # second teardown is a no-op, not an error

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_campaign_roundtrip(self, kernel, no_leaked_segments):
        """Worker-side attach rebuilds exactly the parent's good chunks."""
        simulator, _, patterns, _ = _setup(kernel)
        expected = simulator.good_response(patterns)
        arena, meta = shm.pack_campaign(simulator, patterns)
        try:
            assert meta["kernel"] == kernel
            assert meta["n_patterns"] == len(patterns)
            attached, chunks = shm.attach_campaign(arena.spec, meta)
            assert len(chunks) == len(expected)
            if kernel == "numpy":
                for mine, theirs in zip(chunks, expected):
                    assert np.array_equal(mine.values, theirs.values)
                    assert mine.n_patterns == theirs.n_patterns
            else:
                assert chunks == expected
        finally:
            arena.destroy()


class TestPoolLeaks:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_clean_pool_run(self, kernel, no_leaked_segments):
        simulator, faults, patterns, reference = _setup(kernel)
        result = simulator.simulate(
            patterns, faults, engine="pool", jobs=2
        )
        assert result.detected == reference.detected

    def test_pool_worker_exception(self, no_leaked_segments):
        """A worker partition raising inside the pool must still tear the
        arena down (the dispatch ``finally`` owns it)."""
        simulator, faults, patterns, _ = _setup("numpy")
        original = FaultSimulator._simulate_ppsfp
        with pytest.raises(Exception):
            try:
                FaultSimulator._simulate_ppsfp = lambda *a, **k: 1 / 0
                simulator.simulate(patterns, faults, engine="pool", jobs=2)
            finally:
                FaultSimulator._simulate_ppsfp = original


class TestSupervisedLeaks:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_crash_recovery(self, kernel, no_leaked_segments):
        """Workers killed mid-read leave only their own mappings behind,
        which die with the process; the parent still unlinks."""
        simulator, faults, patterns, reference = _setup(kernel)
        backend = SupervisedPoolBackend(
            jobs=2,
            partitions=4,
            chaos=ChaosPlan(schedule={0: ("crash",), 2: ("crash", "raise")}),
        )
        result = backend.run(simulator, patterns, faults)
        assert result.detected == reference.detected
        assert result.stats["worker_crashes"] >= 1

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_timeout_kills(self, kernel, no_leaked_segments):
        simulator, faults, patterns, reference = _setup(kernel)
        backend = SupervisedPoolBackend(
            jobs=2,
            partitions=4,
            config=SupervisorConfig(timeout_s=0.5, backoff_s=0.01),
            chaos=ChaosPlan(schedule={1: ("hang",)}, hang_s=30.0),
        )
        result = backend.run(simulator, patterns, faults)
        assert result.detected == reference.detected
        assert result.stats["timeouts"] >= 1

    def test_unrecoverable_partition_still_unlinks(self, no_leaked_segments):
        """Even a run that degrades to a partial result (inline fallback
        poisoned too) releases its segment."""
        simulator, faults, patterns, _ = _setup("numpy")
        backend = SupervisedPoolBackend(
            jobs=2,
            partitions=4,
            config=SupervisorConfig(max_retries=0, backoff_s=0.01),
            chaos=ChaosPlan(schedule={1: ("raise", "raise")}),
        )
        result = backend.run(simulator, patterns, faults)
        assert result.stats["failed_partitions"]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_keyboard_interrupt_unlinks(
        self, kernel, tmp_path, monkeypatch, no_leaked_segments
    ):
        """Ctrl-C mid-campaign: workers are reaped, the journal is
        flushed, and the arena is unlinked on the way up."""
        simulator, faults, patterns, _ = _setup(kernel)
        backend = SupervisedPoolBackend(
            jobs=1,
            partitions=4,
            journal=CampaignJournal(str(tmp_path / "interrupted.jsonl")),
        )
        spawned = []
        original_spawn = SupervisedPoolBackend._spawn

        def interrupting_spawn(self, *args, **kwargs):
            if len(spawned) >= 2:
                raise KeyboardInterrupt
            slot = original_spawn(self, *args, **kwargs)
            spawned.append(slot)
            return slot

        monkeypatch.setattr(SupervisedPoolBackend, "_spawn", interrupting_spawn)
        with pytest.raises(KeyboardInterrupt):
            backend.run(simulator, patterns, faults)
        backend.journal.close()
        for slot in spawned:
            assert not slot.process.is_alive()
