"""Scan shift-power metrics and fill-policy comparison."""

import pytest

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.scan import insert_scan
from repro.scan.power import (
    fill_policy_comparison,
    pattern_set_power,
    pattern_shift_power,
    weighted_transition_metric,
)


class TestWtm:
    def test_constant_load_is_free(self):
        assert weighted_transition_metric([0, 0, 0, 0]) == 0
        assert weighted_transition_metric([1, 1, 1]) == 0

    def test_alternating_is_worst(self):
        length = 6
        worst = weighted_transition_metric([0, 1] * 3)
        assert worst == sum(length - p - 1 for p in range(length - 1))

    def test_early_transition_weighs_more(self):
        early = weighted_transition_metric([0, 1, 1, 1])
        late = weighted_transition_metric([0, 0, 0, 1])
        assert early > late

    def test_single_bit(self):
        assert weighted_transition_metric([1]) == 0


class TestPatternSetPower:
    @pytest.fixture(scope="class")
    def design(self):
        netlist = generators.random_sequential(6, 100, 24, seed=4)
        return insert_scan(netlist, n_chains=3)

    def test_report_fields(self, design):
        n_inputs = len(design.netlist.inputs) + len(design.netlist.flops)
        patterns = [[0] * n_inputs, [1] * n_inputs]
        report = pattern_set_power(design, patterns)
        assert report.patterns == 2
        assert report.total_wtm == 0  # constant loads
        assert report.average_wtm == 0.0

    def test_alternating_state_costs(self, design):
        n_pi = len(design.netlist.inputs)
        state = [i % 2 for i in range(len(design.netlist.flops))]
        pattern = [0] * n_pi + state
        report = pattern_set_power(design, [pattern])
        assert report.total_wtm > 0
        assert report.peak_wtm == report.total_wtm

    def test_adjacent_fill_cuts_power(self, design):
        """The classic low-power-fill result: repeat-fill WTM is a
        fraction of random-fill WTM at identical coverage."""
        from repro.faults import collapse_faults, full_fault_list
        from repro.scan import partition_faults

        faults, _ = collapse_faults(
            design.netlist, full_fault_list(design.netlist)
        )
        capture, _ = partition_faults(design, faults)
        atpg = run_atpg(
            design.netlist, faults=capture, random_batches=0, compact=False, seed=2
        )
        reports = fill_policy_comparison(design, atpg.cubes, seed=1)
        assert reports["repeat"].total_wtm < reports["random"].total_wtm
        # Zero-fill also beats random (all-X runs become constants).
        assert reports["zero"].total_wtm < reports["random"].total_wtm
        # Chain-aware adjacent fill wins overall.
        assert (
            reports["adjacent_chain"].total_wtm
            <= min(r.total_wtm for m, r in reports.items() if m != "adjacent_chain")
        )
