"""Unit tests for the observability layer (``repro.obs``).

Spans, metrics, the active-observation stack, Prometheus export, and the
instrumentation contract the flows rely on: everything no-ops when no
observation is active, and published counters bit-identically mirror the
legacy stats dicts when one is.
"""

import json
import time

import pytest

from repro import obs
from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    Observation,
    RunReport,
    Span,
    metric_id,
)
from repro.sim.faultsim import FaultSimulator


class TestSpan:
    def test_nesting_and_tree(self):
        observation = Observation("root", circuit="c17")
        with observation.span("a"):
            with observation.span("b", phase="2"):
                pass
            with observation.span("c"):
                pass
        observation.finish()
        tree = observation.root.to_dict()
        assert tree["name"] == "root"
        assert tree["labels"] == {"circuit": "c17"}
        (a,) = tree["children"]
        assert [child["name"] for child in a["children"]] == ["b", "c"]
        assert a["children"][0]["labels"] == {"phase": "2"}

    def test_wall_time_monotonic_against_wall_clock(self, monkeypatch):
        """Span durations come from perf_counter, never the wall clock.

        Regression guard: stats wall times once risked ``time.time()``,
        which goes backwards across NTP adjustments.  Simulate a clock
        stepping back mid-span and assert the duration stays sane.
        """
        span = Span("guarded")
        # An adversarial wall clock jumping an hour into the past must not
        # influence the span; only perf_counter (monotonic) may be used.
        monkeypatch.setattr(time, "time", lambda: time.perf_counter() - 3600.0)
        finished = span.finish()
        assert finished.wall_time_s >= 0.0
        assert finished.wall_time_s < 60.0  # not an hour, not negative

    def test_finish_is_idempotent_and_clamped(self):
        span = Span("once")
        first = span.finish().wall_time_s
        assert span.finish().wall_time_s == first
        assert first >= 0.0

    def test_out_of_order_close_recovers(self):
        observation = Observation("root")
        outer = observation.span("outer")
        outer.__enter__()
        inner = observation.span("inner")
        inner.__enter__()
        # Close the OUTER first (a crashed generator mid-tree): the stack
        # must pop back to root without raising, finishing the inner span.
        outer.__exit__(None, None, None)
        assert observation.current_span is observation.root
        tree = observation.root.to_dict()
        assert tree["children"][0]["name"] == "outer"

    def test_find_and_annotate(self):
        observation = Observation("root")
        with observation.span("phase") as span:
            span.annotate(patterns=64)
        found = observation.root.find("phase")
        assert found is not None
        assert found.labels == {"patterns": "64"}
        assert observation.root.find("missing") is None


class TestMetrics:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricRegistry()
        registry.counter("events").add(3)
        registry.counter("events").add(4)
        registry.gauge("coverage").set(0.5)
        registry.gauge("coverage").set(0.9)
        hist = registry.histogram("wall_s", bounds=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(100.0)
        assert registry.counter("events").value == 7
        assert registry.gauge("coverage").value == 0.9
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.count == 3 and hist.min == 0.5 and hist.max == 100.0

    def test_labels_key_distinct_metrics(self):
        registry = MetricRegistry()
        registry.counter("runs", engine="ppsfp").add(1)
        registry.counter("runs", engine="pool").add(2)
        assert registry.counter("runs", engine="ppsfp").value == 1
        assert registry.counter("runs", engine="pool").value == 2
        assert metric_id("runs", {"engine": "pool"}) == 'runs{engine="pool"}'

    def test_kind_conflict_raises(self):
        registry = MetricRegistry()
        registry.counter("x").add(1)
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_bounds_mismatch_raises(self):
        left = Histogram(bounds=(1.0, 2.0))
        right = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_registry_roundtrip(self):
        registry = MetricRegistry()
        registry.counter("a", k="v").add(5)
        registry.gauge("b").set(1.5)
        registry.histogram("c", bounds=(0.1, 1.0)).observe(0.05)
        payload = registry.to_dict()
        # JSON-safe: workers ship this inside stats across process pipes.
        restored = MetricRegistry.from_dict(json.loads(json.dumps(payload)))
        assert restored.to_dict() == payload

    def test_add_counters_skips_non_numeric(self):
        observation = Observation("root")
        observation.add_counters(
            "stats",
            {"events": 3, "engine": "ppsfp", "flag": True, "parts": [1, 2]},
        )
        assert observation.counter("stats.events").value == 3
        assert len(observation.metrics) == 1

    def test_prometheus_export(self):
        registry = MetricRegistry()
        registry.counter("faultsim.runs", engine="pool").add(2)
        registry.gauge("coverage").set(0.25)
        registry.histogram("wall", bounds=(1.0,)).observe(0.5)
        text = registry.to_prometheus(prefix="repro")
        assert "# TYPE repro_faultsim_runs counter" in text
        assert 'repro_faultsim_runs{engine="pool"} 2' in text
        assert "repro_coverage 0.25" in text
        assert 'repro_wall_bucket{le="1"} 1' in text
        assert 'repro_wall_bucket{le="+Inf"} 1' in text
        assert "repro_wall_count 1" in text


class TestActiveObservation:
    def test_inactive_is_noop(self):
        assert obs.current() is None
        assert obs.counter("x") is None
        assert obs.gauge("x") is None
        assert obs.histogram("x") is None
        obs.add_counters("p", {"a": 1})
        obs.set_gauge("g", 1.0)
        obs.merge_metrics({"counters": {}})
        with obs.span("nothing") as span:
            assert span is None

    def test_observe_activates_and_pops(self):
        with obs.observe("outer") as outer:
            assert obs.current() is outer
            with obs.observe("inner") as inner:
                assert obs.current() is inner  # innermost wins
                obs.counter("n").add(1)
            assert obs.current() is outer
            assert outer.counter("n").value == 0  # inner kept its own
        assert obs.current() is None

    def test_instrumentation_matches_legacy_stats(self):
        """Published faultsim counters equal the stats dict bit-for-bit."""
        netlist = generators.random_circuit(6, 40, seed=9)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        simulator = FaultSimulator(netlist, cache=None)
        patterns = random_patterns(simulator.view.num_inputs, 128, seed=9)
        with obs.observe("run") as observation:
            result = simulator.simulate(patterns, faults)
        for key in ("faults_simulated", "events_propagated", "words_evaluated"):
            assert (
                observation.counter(f"faultsim.{key}").value
                == result.stats[key]
            )
        assert (
            observation.counter("faultsim.faults_detected").value
            == len(result.detected)
        )
        assert observation.root.find("faultsim") is not None

    def test_simulation_identical_with_and_without_observation(self):
        """Observing a run must never change its outcome."""
        netlist = generators.random_circuit(6, 40, seed=11)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        patterns = random_patterns(len(netlist.inputs), 128, seed=11)
        bare = FaultSimulator(netlist, cache=None).simulate(patterns, faults)
        with obs.observe("run"):
            observed = FaultSimulator(netlist, cache=None).simulate(
                patterns, faults
            )
        assert observed.detected == bare.detected
        assert observed.undetected == bare.undetected


class TestRunReport:
    def test_from_observation_and_counter_value(self):
        with obs.observe("repro.test", command="test") as observation:
            obs.counter("a.b").add(41)
            obs.counter("a.b").add(1)
        report = RunReport.from_observation(observation, meta={"argv": []})
        assert report.name == "repro.test"
        assert report.counter_value("a.b") == 42
        assert report.counter_value("missing", default=None) is None
        assert report.schema_version >= 1

    def test_rejects_non_report_payloads(self):
        with pytest.raises(ValueError):
            RunReport.from_dict({"hello": "world"})
        with pytest.raises(ValueError):
            RunReport.from_dict({"schema_version": "one"})

    def test_prometheus_includes_span_samples(self):
        with obs.observe("root") as observation:
            with obs.span("phase"):
                obs.counter("n").add(1)
        report = RunReport.from_observation(observation)
        text = report.to_prometheus()
        assert 'repro_span_seconds{path="root"}' in text
        assert 'repro_span_seconds{path="root/phase"}' in text


class TestDeepTrees:
    """Span.find / tree_lines on deep trees (the --profile rendering)."""

    DEPTH = 200

    def _deep_observation(self) -> Observation:
        observation = Observation("root")
        span = observation.root
        for level in range(self.DEPTH):
            span = span.child(f"level{level}", {"depth": str(level)})
        observation.finish()
        return observation

    def test_find_reaches_every_level(self):
        observation = self._deep_observation()
        for level in (0, 1, self.DEPTH // 2, self.DEPTH - 1):
            found = observation.root.find(f"level{level}")
            assert found is not None
            assert found.labels["depth"] == str(level)
        assert observation.root.find(f"level{self.DEPTH}") is None

    def test_find_is_depth_first_on_duplicates(self):
        root = Span("root")
        left = root.child("branch")
        left_deep = left.child("dup")
        right = root.child("dup")
        assert root.find("dup") is left_deep  # depth-first, not breadth
        assert right is not left_deep

    def test_tree_lines_one_line_per_span_with_indent(self):
        observation = self._deep_observation()
        lines = observation.root.tree_lines()
        assert len(lines) == self.DEPTH + 1
        # Indentation tracks depth exactly; labels render on every line.
        for depth, line in enumerate(lines):
            assert line.startswith("  " * depth)
            assert "ms" in line
        assert "[depth=0]" in lines[1]
        assert f"[depth={self.DEPTH - 1}]" in lines[-1]

    def test_wide_tree_find_and_render(self):
        root = Span("root")
        for index in range(300):
            root.child(f"child{index}")
        root.finish()
        assert root.find("child299") is not None
        assert len(root.tree_lines()) == 301


class TestObserveStackDiscipline:
    """observe() nesting when observations finish out of nesting order."""

    def test_out_of_order_exit_removes_correct_observation(self):
        outer_cm = obs.observe("outer")
        outer = outer_cm.__enter__()
        inner_cm = obs.observe("inner")
        inner = inner_cm.__enter__()
        # Close the OUTER observation first: _ACTIVE must drop exactly the
        # outer entry (the `.remove` path), leaving the inner one current.
        outer_cm.__exit__(None, None, None)
        assert obs.current() is inner
        assert outer.root.finished
        inner_cm.__exit__(None, None, None)
        assert obs.current() is None
        assert inner.root.finished

    def test_double_exit_is_harmless(self):
        cm = obs.observe("once")
        observation = cm.__enter__()
        cm.__exit__(None, None, None)
        assert obs.current() is None
        # A second exit (cleanup paths racing) must not raise or corrupt
        # the stack for a fresh observation.
        assert not cm.__exit__(None, None, None)  # generator already closed
        assert obs.current() is None
        with obs.observe("fresh") as fresh:
            assert obs.current() is fresh
        assert obs.current() is None

    def test_interleaved_counters_land_on_innermost(self):
        a_cm, b_cm = obs.observe("a"), obs.observe("b")
        a = a_cm.__enter__()
        b = b_cm.__enter__()
        obs.counter("n").add(1)
        a_cm.__exit__(None, None, None)  # out of order
        obs.counter("n").add(10)  # still the innermost live observation: b
        b_cm.__exit__(None, None, None)
        assert a.counter("n").value == 0
        assert b.counter("n").value == 11


class TestPrometheusLabelEscaping:
    """Golden pin of the text-exposition escaping and label ordering."""

    def test_escapes_backslash_quote_newline(self):
        registry = MetricRegistry()
        registry.counter("paths", path='C:\\tmp\\"x"\nnext').add(1)
        text = registry.to_prometheus(prefix="repro")
        assert (
            'repro_paths{path="C:\\\\tmp\\\\\\"x\\"\\nnext"} 1' in text
        )
        # The physical output line must stay a single line.
        (sample,) = [l for l in text.splitlines() if l.startswith("repro_paths")]
        assert "\n" not in sample

    def test_labels_sorted_deterministically(self):
        registry = MetricRegistry()
        registry.counter("m", zeta="1", alpha="2", mid="3").add(1)
        text = registry.to_prometheus(prefix="repro")
        assert 'repro_m{alpha="2",mid="3",zeta="1"} 1' in text

    def test_golden_report_export(self):
        """Pin the full to_prometheus output for a labeled report."""
        with obs.observe("root") as observation:
            observation.counter("files", file='a"b\\c').add(2)
        report = RunReport.from_observation(observation)
        report.span["wall_time_s"] = 0.25  # fixed for the golden text
        report.span["children"] = []
        golden = (
            "# TYPE repro_files counter\n"
            'repro_files{file="a\\"b\\\\c"} 2\n'
            "# TYPE repro_span_seconds gauge\n"
            'repro_span_seconds{path="root"} 0.25\n'
        )
        assert report.to_prometheus() == golden
