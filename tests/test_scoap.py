"""SCOAP testability measures."""

from repro.atpg.scoap import INFINITY, compute_testability, hardest_lines
from repro.circuit import generators
from repro.circuit.builder import NetlistBuilder


class TestControllability:
    def test_primary_inputs_cost_one(self, c17):
        measures = compute_testability(c17)
        for pi in c17.inputs:
            assert measures.cc0[pi] == 1
            assert measures.cc1[pi] == 1

    def test_and_asymmetry(self):
        """AND output: setting 1 needs all inputs, setting 0 needs one."""
        builder = NetlistBuilder()
        inputs = [builder.input(f"i{k}") for k in range(4)]
        g = builder.and_(*inputs)
        builder.output("y", g)
        netlist = builder.build()
        measures = compute_testability(netlist)
        assert measures.cc1[g] == 4 + 1
        assert measures.cc0[g] == 1 + 1

    def test_wide_and_is_hard_to_set(self):
        netlist = generators.wide_comparator(12)
        measures = compute_testability(netlist)
        eq = netlist.gates[netlist.outputs[0]].fanin[0]
        assert measures.cc1[eq] > 10

    def test_constants(self):
        builder = NetlistBuilder()
        c0 = builder.const0()
        c1 = builder.const1()
        builder.output("y", builder.or_(c0, c1))
        netlist = builder.build()
        measures = compute_testability(netlist)
        assert measures.cc0[c0] == 0
        assert measures.cc1[c0] >= INFINITY  # cannot make a const0 be 1
        assert measures.cc1[c1] == 0

    def test_xor_parity_dp(self):
        builder = NetlistBuilder()
        a, b = builder.input("a"), builder.input("b")
        g = builder.xor(a, b)
        builder.output("y", g)
        netlist = builder.build()
        measures = compute_testability(netlist)
        # Either parity of a 2-input XOR costs two input assignments + 1.
        assert measures.cc0[g] == 3
        assert measures.cc1[g] == 3

    def test_mux_controllability(self, tiny_mux):
        measures = compute_testability(tiny_mux)
        y = tiny_mux.gates[tiny_mux.outputs[0]].fanin[0]
        assert measures.cc0[y] < INFINITY
        assert measures.cc1[y] < INFINITY


class TestObservability:
    def test_po_driver_is_free(self, c17):
        measures = compute_testability(c17)
        for po in c17.outputs:
            assert measures.co[c17.gates[po].fanin[0]] == 0

    def test_flop_d_is_observable(self, mac4):
        measures = compute_testability(mac4)
        for flop in mac4.flops:
            d_driver = mac4.gates[flop].fanin[0]
            assert measures.co[d_driver] == 0

    def test_deep_lines_harder_to_observe(self):
        netlist = generators.chain_of_inverters(10)
        measures = compute_testability(netlist)
        pi = netlist.inputs[0]
        last = netlist.gates[netlist.outputs[0]].fanin[0]
        assert measures.co[pi] > measures.co[last]

    def test_detect_cost_combines(self, c17):
        measures = compute_testability(c17)
        g = c17.index_of("10")
        cost = measures.detect_cost(g, 0)
        assert cost == measures.cc1[g] + measures.co[g]


class TestHardestLines:
    def test_comparator_core_ranks_hardest(self):
        netlist = generators.random_resistant(10, cones=2)
        measures = compute_testability(netlist)
        worst = hardest_lines(netlist, measures, 4)
        assert len(worst) == 4
        # The wide-AND cone gates should dominate the worst list.
        scores = [
            measures.cc0[g] + measures.cc1[g] + measures.co[g] for g in worst
        ]
        assert scores == sorted(scores, reverse=True)

    def test_excludes_ports_and_flops(self, mac4):
        measures = compute_testability(mac4)
        worst = hardest_lines(mac4, measures, 10)
        for line in worst:
            gate = mac4.gates[line]
            assert gate.type.value not in ("input", "output")
            assert not gate.is_sequential
