"""Dispatch-layer mechanics: partitioning, merging, stats, flow threading.

The full cross-backend × cross-kernel × cross-width agreement matrix
lives in ``test_conformance.py``; this file keeps what is specific to
the dispatch layer itself — deterministic partitioning, min-merge
semantics, degenerate edge cases (1 worker, 0 faults), stats
instrumentation, backend registry, and the transition/bridging
regression pins.
"""

import pytest

from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks, generators
from repro.faults import (
    collapse_faults,
    full_fault_list,
    full_transition_list,
    sample_bridging_faults,
)
from repro.sim.dispatch import (
    BACKEND_NAMES,
    PoolBackend,
    default_partition_count,
    get_backend,
    merge_results,
    partition_faults,
)
from repro.sim.faultsim import FaultSimResult, FaultSimulator


def _universe(netlist):
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    return faults


class TestDispatchEdgeCases:
    """Degenerate inputs the conformance matrix doesn't sweep."""

    def test_single_worker_edge_case(self):
        netlist = generators.random_circuit(6, 40, seed=7)
        simulator = FaultSimulator(netlist)
        faults = _universe(netlist)
        patterns = random_patterns(simulator.view.num_inputs, 96, seed=7)
        reference = simulator.simulate(patterns, faults, engine="ppsfp")
        one = simulator.simulate(patterns, faults, engine="pool", jobs=1)
        assert one.detected == reference.detected
        assert one.undetected == reference.undetected

    def test_zero_fault_edge_case(self):
        netlist = benchmarks.c17()
        simulator = FaultSimulator(netlist)
        patterns = random_patterns(simulator.view.num_inputs, 16, seed=0)
        for engine in BACKEND_NAMES:
            result = simulator.simulate(patterns, [], engine=engine)
            assert result.total_faults == 0
            assert result.detected == {}
            assert result.undetected == []
            assert result.coverage == 1.0

    def test_worker_count_never_changes_results(self):
        """Same seed → same partitions → same merge, for any jobs value."""
        netlist = generators.random_circuit(7, 50, seed=5)
        simulator = FaultSimulator(netlist)
        faults = _universe(netlist)
        patterns = random_patterns(simulator.view.num_inputs, 64, seed=5)
        runs = [
            simulator.simulate(patterns, faults, engine="pool", jobs=jobs, seed=9)
            for jobs in (1, 2, 3, 4)
        ]
        for other in runs[1:]:
            assert other.detected == runs[0].detected
            assert other.undetected == runs[0].undetected


class TestPartitioning:
    def test_partitions_deterministic_given_seed(self):
        netlist = generators.random_circuit(6, 40, seed=3)
        faults = _universe(netlist)
        a = partition_faults(faults, 4, seed=11)
        b = partition_faults(faults, 4, seed=11)
        assert a == b
        c = partition_faults(faults, 4, seed=12)
        assert a != c  # a different seed shuffles differently

    def test_partitions_cover_universe_exactly(self):
        netlist = generators.random_circuit(6, 40, seed=3)
        faults = _universe(netlist)
        shards = partition_faults(faults, 5, seed=0)
        flattened = [fault for shard in shards for fault in shard]
        assert sorted(flattened) == sorted(faults)
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    def test_partition_count_independent_of_jobs(self):
        assert default_partition_count(0) == 0
        assert default_partition_count(1) == 1
        assert default_partition_count(100) == 8
        assert default_partition_count(10_000) >= 32

    def test_min_merge_keeps_earliest_detection(self):
        fault = ("f", 0)
        a = FaultSimResult(total_faults=1, detected={fault: 7}, patterns_simulated=8)
        b = FaultSimResult(total_faults=1, detected={fault: 3}, patterns_simulated=4)
        merged = merge_results([a, b], [fault], 16, drop=True)
        assert merged.detected == {fault: 3}
        assert merged.patterns_simulated == 8
        assert merged.undetected == []


class TestStatsInstrumentation:
    def test_pool_stats_totals(self):
        netlist = generators.random_circuit(7, 55, seed=21)
        simulator = FaultSimulator(netlist)
        faults = _universe(netlist)
        patterns = random_patterns(simulator.view.num_inputs, 64, seed=21)
        result = simulator.simulate(patterns, faults, engine="pool", jobs=2)
        stats = result.stats
        assert stats["engine"] == "pool"
        assert stats["jobs"] == 2
        assert stats["faults_simulated"] == len(faults)
        partitions = stats["partitions"]
        assert sum(p["faults"] for p in partitions) == len(faults)
        assert sum(p["detected"] for p in partitions) == len(result.detected)
        assert stats["events_propagated"] == sum(
            p["events_propagated"] for p in partitions
        )
        assert stats["words_evaluated"] > 0
        assert stats["wall_time_s"] > 0
        assert stats["load_imbalance"] >= 1.0

    def test_single_process_stats_present(self):
        netlist = benchmarks.c17()
        simulator = FaultSimulator(netlist)
        faults = full_fault_list(netlist)
        patterns = random_patterns(simulator.view.num_inputs, 32, seed=2)
        for engine in ("serial", "ppsfp"):
            result = simulator.simulate(patterns, faults, engine=engine)
            assert result.stats["engine"] == engine
            assert result.stats["faults_simulated"] == len(faults)
            assert result.stats["words_evaluated"] > 0

    def test_get_backend_registry(self):
        for name in BACKEND_NAMES:
            assert get_backend(name).name == name
        backend = get_backend("pool", jobs=3, seed=4)
        assert isinstance(backend, PoolBackend)
        assert backend.jobs == 3 and backend.seed == 4
        with pytest.raises(ValueError):
            get_backend("gpu")


class TestExplicitSubsetCoverage:
    def test_total_faults_reflects_requested_universe(self):
        """An explicit subset + dropping must report coverage over exactly
        the requested universe — duplicates must not inflate it."""
        netlist = benchmarks.c17()
        simulator = FaultSimulator(netlist)
        faults = full_fault_list(netlist)
        subset = faults[:6]
        patterns = random_patterns(simulator.view.num_inputs, 64, seed=13)
        for engine in BACKEND_NAMES:
            result = simulator.simulate(patterns, subset, drop=True, engine=engine)
            assert result.total_faults == len(subset)
            assert result.coverage == len(result.detected) / len(subset)

    @pytest.mark.parametrize("engine", BACKEND_NAMES)
    def test_duplicate_faults_deduplicated(self, engine):
        netlist = benchmarks.c17()
        simulator = FaultSimulator(netlist)
        faults = full_fault_list(netlist)
        doubled = faults[:4] + faults[:4] + [faults[0]]
        patterns = random_patterns(simulator.view.num_inputs, 64, seed=13)
        result = simulator.simulate(patterns, doubled, drop=True, engine=engine)
        assert result.total_faults == 4
        assert len(result.detected) + len(result.undetected) == 4
        assert len(set(result.undetected)) == len(result.undetected)
        assert result.coverage <= 1.0


class TestFlowThreading:
    """The backend choice reaches the ATPG and compression flows."""

    def test_run_atpg_pool_backend_matches_ppsfp(self):
        from repro.atpg.engine import run_atpg

        netlist = generators.random_circuit(6, 40, seed=17)
        base = run_atpg(netlist, seed=3, backend="ppsfp")
        pooled = run_atpg(netlist, seed=3, backend="pool", jobs=2)
        assert pooled.fault_coverage == base.fault_coverage
        assert pooled.detected == base.detected
        assert len(pooled.patterns) == len(base.patterns)

    def test_compressed_atpg_grading_backend(self):
        from repro.compression.edt import EdtSystem
        from repro.compression.flow import run_compressed_atpg
        from repro.scan import insert_scan

        netlist = generators.random_sequential(4, 60, 16, seed=9)
        design = insert_scan(netlist, n_chains=4)
        edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
        graded = run_compressed_atpg(
            edt, seed=1, grade=True, backend="pool", jobs=2
        )
        assert graded.graded_coverage is not None
        assert graded.grading_stats["engine"] == "pool"
        # The independent re-grade can only confirm more, never less, than
        # the drop-based bookkeeping (same patterns, same universe).
        assert graded.graded_coverage >= graded.fault_coverage - 1e-9


class TestTransitionBridgingParity:
    """Regression pins: the dispatch refactor must leave the transition and
    bridging engines bit-identical to the pre-refactor serial path (values
    captured from the seed implementation)."""

    @staticmethod
    def _digest(result):
        import hashlib

        items = sorted((repr(f), i) for f, i in result.detected.items())
        return hashlib.sha256(repr(items).encode()).hexdigest()[:16]

    def test_transition_results_pinned(self):
        netlist = generators.random_sequential(5, 45, 6, seed=11)
        simulator = FaultSimulator(netlist)
        faults = full_transition_list(netlist)
        patterns = random_patterns(simulator.view.num_inputs, 64, seed=11)
        pairs = list(zip(patterns[::2], patterns[1::2]))
        assert len(faults) == 288
        for drop in (True, False):
            result = simulator.simulate_transition(pairs, faults, drop=drop)
            assert len(result.detected) == 243
            assert self._digest(result) == "a4950a198adb560c"
        assert result.stats["engine"] == "ppsfp-transition"

    def test_bridging_results_pinned(self):
        netlist = generators.random_circuit(7, 55, seed=12)
        simulator = FaultSimulator(netlist)
        faults = sample_bridging_faults(netlist, 30, seed=12)
        patterns = random_patterns(simulator.view.num_inputs, 96, seed=12)
        assert len(faults) == 30
        for drop in (True, False):
            result = simulator.simulate_bridging(patterns, faults, drop=drop)
            assert len(result.detected) == 30
            assert self._digest(result) == "27e2f99e35bf05c6"
        assert result.stats["engine"] == "ppsfp-bridging"
