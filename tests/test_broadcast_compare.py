"""On-chip compare for broadcast-tested identical cores."""

import pytest

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.dft.retarget import broadcast_compare
from repro.faults import collapse_faults, full_fault_list


@pytest.fixture(scope="module")
def compare_setup():
    core = generators.mac_unit(2)
    faults, _ = collapse_faults(core, full_fault_list(core))
    atpg = run_atpg(core, seed=1)
    detected = [f for f in faults if f not in set(atpg.untestable)]
    return core, atpg.patterns, detected


class TestBroadcastCompare:
    def test_clean_chip_flags_nothing(self, compare_setup):
        core, patterns, faults = compare_setup
        report = broadcast_compare(core, patterns, {}, n_cores=4)
        assert report["flagged_cores"] == []
        assert report["exact"]

    def test_single_defective_core_identified(self, compare_setup):
        core, patterns, faults = compare_setup
        report = broadcast_compare(core, patterns, {2: faults[5]}, n_cores=4)
        assert report["flagged_cores"] == [2]
        assert report["exact"]

    def test_two_defective_cores_of_five(self, compare_setup):
        core, patterns, faults = compare_setup
        defects = {0: faults[3], 4: faults[9]}
        report = broadcast_compare(core, patterns, defects, n_cores=5)
        assert report["flagged_cores"] == [0, 4]
        assert report["exact"]

    def test_undetected_fault_not_flagged(self, compare_setup):
        """A defect the pattern set cannot excite stays invisible — the
        comparator is only as good as the broadcast test's coverage."""
        core, patterns, faults = compare_setup
        atpg = run_atpg(core, seed=1)
        if not atpg.untestable:
            pytest.skip("no untestable faults on this core")
        defect = atpg.untestable[0]
        report = broadcast_compare(core, patterns, {1: defect}, n_cores=4)
        assert 1 not in report["flagged_cores"]
        assert report["exact"]  # detectable set is empty and matches

    def test_majority_breaks_down_when_most_cores_bad(self, compare_setup):
        """With identical defects in the majority, the vote inverts —
        the documented limit of comparator-only checking."""
        core, patterns, faults = compare_setup
        defect = faults[5]
        defects = {0: defect, 1: defect, 2: defect}
        report = broadcast_compare(core, patterns, defects, n_cores=4)
        # The lone good core gets outvoted wherever the defect flips bits.
        assert report["flagged_cores"] == [3]
        assert not report["exact"]
