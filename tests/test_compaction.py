"""Static and reverse-order test-set compaction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.compaction import (
    care_bit_stats,
    cubes_compatible,
    merge_cubes,
    reverse_order_compact,
    static_compact,
)
from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks
from repro.circuit.values import X
from repro.faults import full_fault_list
from repro.sim.faultsim import FaultSimulator

cube_strategy = st.lists(st.sampled_from([0, 1, X]), min_size=4, max_size=4)


class TestCubeOps:
    def test_compatible(self):
        assert cubes_compatible([0, X, 1], [0, 1, X])
        assert not cubes_compatible([0, X, 1], [1, X, 1])

    def test_merge(self):
        assert merge_cubes([0, X, 1], [X, 1, 1]) == [0, 1, 1]

    @given(a=cube_strategy, b=cube_strategy)
    def test_merge_refines_both(self, a, b):
        if cubes_compatible(a, b):
            merged = merge_cubes(a, b)
            for m, va, vb in zip(merged, a, b):
                if va != X:
                    assert m == va
                if vb != X:
                    assert m == vb

    @given(cubes=st.lists(cube_strategy, min_size=1, max_size=12))
    def test_static_compact_covers_all_cubes(self, cubes):
        bins = static_compact(cubes)
        assert len(bins) <= len(cubes)
        # Every original cube must be contained in some bin.
        for cube in cubes:
            assert any(
                all(b == c or c == X for b, c in zip(bin_, cube))
                for bin_ in bins
            )

    def test_care_bit_stats(self):
        care, total, density = care_bit_stats([[0, X, 1], [X, X, X]])
        assert (care, total) == (2, 6)
        assert density == pytest.approx(2 / 6)

    def test_care_bit_stats_empty(self):
        assert care_bit_stats([]) == (0, 0, 0.0)


class TestReverseOrderCompaction:
    def test_reduces_without_losing_coverage(self, alu4):
        simulator = FaultSimulator(alu4)
        faults = full_fault_list(alu4)
        patterns = random_patterns(simulator.view.num_inputs, 150, seed=4)
        baseline = simulator.simulate(patterns, faults, drop=True)
        compacted = reverse_order_compact(patterns, faults, simulator)
        after = simulator.simulate(compacted, faults, drop=True)
        assert len(compacted) < len(patterns)
        assert len(after.detected) == len(baseline.detected)
