"""Packed D-calculus tables must agree with the rail-wise reference."""

from hypothesis import given, strategies as st

from repro.circuit.dcalc import (
    AND_TABLE,
    D,
    D0,
    D1,
    DB,
    DX,
    NOT_TABLE,
    OR_TABLE,
    XOR_TABLE,
    faulty_rail,
    from_fourvalued,
    good_rail,
    has_x,
    is_faulted,
    pack,
)
from repro.circuit.values import X as X4
from repro.circuit.values import v_and, v_not, v_or, v_xor

packed = st.integers(min_value=0, max_value=8)


def _to_fourvalued(rail: int) -> int:
    """Rail encoding (0/1/2) to the values module's constants (X == 2)."""
    return rail  # identical by construction


class TestPackedConstants:
    def test_constants(self):
        assert D0 == pack(0, 0)
        assert D1 == pack(1, 1)
        assert D == pack(1, 0)
        assert DB == pack(0, 1)
        assert DX == pack(2, 2)

    def test_rail_extraction_roundtrip(self):
        for good in range(3):
            for faulty in range(3):
                value = pack(good, faulty)
                assert good_rail(value) == good
                assert faulty_rail(value) == faulty

    def test_predicates(self):
        assert is_faulted(D) and is_faulted(DB)
        assert not is_faulted(D0) and not is_faulted(DX)
        assert has_x(DX) and has_x(pack(2, 0))
        assert not has_x(D)

    def test_from_fourvalued_handles_z(self):
        assert from_fourvalued(3, 1) == pack(2, 1)  # Z collapses to X


class TestTablesMatchRailwiseReference:
    @given(a=packed, b=packed)
    def test_and_table(self, a, b):
        expected = pack(
            v_and(good_rail(a), good_rail(b)),
            v_and(faulty_rail(a), faulty_rail(b)),
        )
        assert AND_TABLE[a][b] == expected

    @given(a=packed, b=packed)
    def test_or_table(self, a, b):
        expected = pack(
            v_or(good_rail(a), good_rail(b)),
            v_or(faulty_rail(a), faulty_rail(b)),
        )
        assert OR_TABLE[a][b] == expected

    @given(a=packed, b=packed)
    def test_xor_table(self, a, b):
        expected = pack(
            v_xor(good_rail(a), good_rail(b)),
            v_xor(faulty_rail(a), faulty_rail(b)),
        )
        assert XOR_TABLE[a][b] == expected

    @given(a=packed)
    def test_not_table(self, a):
        expected = pack(v_not(good_rail(a)), v_not(faulty_rail(a)))
        assert NOT_TABLE[a] == expected

    @given(a=packed, b=packed)
    def test_commutativity(self, a, b):
        assert AND_TABLE[a][b] == AND_TABLE[b][a]
        assert OR_TABLE[a][b] == OR_TABLE[b][a]
        assert XOR_TABLE[a][b] == XOR_TABLE[b][a]

    @given(a=packed, b=packed, c=packed)
    def test_associativity(self, a, b, c):
        assert AND_TABLE[AND_TABLE[a][b]][c] == AND_TABLE[a][AND_TABLE[b][c]]
        assert OR_TABLE[OR_TABLE[a][b]][c] == OR_TABLE[a][OR_TABLE[b][c]]
        assert XOR_TABLE[XOR_TABLE[a][b]][c] == XOR_TABLE[a][XOR_TABLE[b][c]]

    @given(a=packed)
    def test_de_morgan(self, a):
        for b in range(9):
            left = NOT_TABLE[AND_TABLE[a][b]]
            right = OR_TABLE[NOT_TABLE[a]][NOT_TABLE[b]]
            assert left == right
