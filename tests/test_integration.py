"""Cross-package integration: the full AI-chip DFT flow end to end."""

import random

import pytest

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.compression.edt import EdtSystem
from repro.dft import replicate_netlist, broadcast_detects_all_cores, wrap_core
from repro.faults import collapse_faults, full_fault_list
from repro.scan import (
    ScanScheduler,
    chain_flush_detects,
    insert_scan,
    partition_faults,
)
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import LogicSimulator
from repro.sim.view import CombinationalView


@pytest.fixture(scope="module")
def core_flow():
    """The canonical core flow: PE netlist -> wrap -> scan -> ATPG."""
    core = generators.systolic_pe(2)
    wrapped = wrap_core(core)
    design = insert_scan(wrapped.netlist, n_chains=4)
    faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
    capture, chain = partition_faults(design, faults)
    # random_batches=0 keeps deterministic cubes around for the EDT test.
    atpg = run_atpg(design.netlist, faults=capture, random_batches=0, seed=1)
    return core, wrapped, design, capture, chain, atpg


class TestCoreFlow:
    def test_chain_integrity(self, core_flow):
        _, _, design, *_ = core_flow
        assert chain_flush_detects(design)

    def test_atpg_coverage(self, core_flow):
        *_, atpg = core_flow
        assert atpg.test_coverage > 0.97

    def test_scan_protocol_applies_atpg_patterns(self, core_flow):
        """Three ATPG patterns pushed through the real shift/capture/unload
        protocol produce exactly the predicted responses."""
        _, _, design, _, _, atpg = core_flow
        scheduler = ScanScheduler(design)
        logic = LogicSimulator(design.netlist)
        n_po = len(design.netlist.outputs)
        for index, pattern in enumerate(atpg.patterns[:3]):
            operation, _ = scheduler.apply_pattern(pattern, index)
            predicted = logic.response(pattern)
            assert operation.unloaded_state == predicted[n_po:]

    def test_edt_compresses_core_patterns(self, core_flow):
        _, _, design, capture, _, atpg = core_flow
        assert atpg.cubes
        edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
        encoded = edt.encode_cubes(atpg.cubes)
        assert encoded.encoding_success_rate > 0.8

    def test_chip_level_broadcast(self, core_flow):
        core, *_ = core_flow
        atpg = run_atpg(core, seed=3)
        chip = replicate_netlist(core, 2)
        assert broadcast_detects_all_cores(core, atpg.patterns, chip, 2)


class TestDefectToDiagnosisLoop:
    def test_inject_diagnose_locate(self):
        """Manufacture a defective die, test it, diagnose the defect."""
        from repro.diagnosis import EffectCauseDiagnoser, inject_and_observe

        netlist = generators.alu(4)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        simulator = FaultSimulator(netlist)
        atpg = run_atpg(netlist, seed=5)
        rng = random.Random(0)
        diagnoser = EffectCauseDiagnoser(netlist, faults)
        located = 0
        trials = 0
        for defect in rng.sample(faults, 8):
            observed = inject_and_observe(simulator, atpg.patterns, defect)
            if not observed:
                continue
            trials += 1
            result = diagnoser.diagnose(atpg.patterns, observed)
            if defect in result.top_suspects:
                located += 1
        assert trials >= 5
        assert located == trials


class TestMixedSignalOffChipStory:
    def test_full_chip_plan_consistency(self):
        """Planner cycles must dominate any single task's cycles."""
        from repro.dft import build_plan

        plan = build_plan()
        longest = max(task.time_cycles for task in plan.tasks)
        assert plan.report["scheduled_cycles"] >= longest
        assert plan.report["sequential_cycles"] >= plan.report["scheduled_cycles"]
