"""Benchmark regression comparator (``repro.obs.regress``) and the
``repro obs diff/gate/tail`` CLI family.

The comparator is the repo's performance memory: it must flag a genuine
2x wall-time slip (the acceptance criterion), stay silent across noisy
replicates of an identical workload, and treat any drift of a
deterministic work counter — even in a single replicate — as a failure.
"""

import copy
import json

import pytest

from repro.cli import EXIT_REGRESSION, main
from repro.obs import RunReport
from repro.obs.regress import (
    Finding,
    RegressConfig,
    Sample,
    collect_samples,
    compare_paths,
    compare_reports,
    failures,
    pair_bench_files,
)
from repro.sim.journal import CampaignJournal


def _bench_report(rows, counters=None, name="bench.widesim"):
    metrics = {}
    if counters:
        metrics = {
            "counters": {
                key: {"kind": "counter", "value": value, "labels": {}}
                for key, value in counters.items()
            }
        }
    return RunReport(
        name=name, payload={"rows": rows}, metrics=metrics, generated_unix_s=1.0
    )


def _replicated_rows(base_wall=1.0, events=5000, n=5, jitter=0.01):
    return [
        {
            "name": f"e3_x{i}",
            "wall_time_s": base_wall + jitter * i,
            "events_propagated": events,
        }
        for i in range(n)
    ]


class TestSample:
    def test_median_odd_and_even(self):
        assert Sample([3.0, 1.0, 2.0]).median == 2.0
        assert Sample([1.0, 2.0, 3.0, 10.0]).median == 2.5

    def test_mad_is_robust_to_one_outlier(self):
        steady = Sample([1.0, 1.01, 0.99, 1.0, 100.0])
        assert steady.median == 1.0
        assert steady.mad == pytest.approx(0.01, abs=1e-9)


class TestFlattenAndGrouping:
    def test_replicates_group_under_one_path(self):
        report = _bench_report(_replicated_rows())
        samples = collect_samples(report)
        sample = samples["payload.rows[name=e3].wall_time_s"]
        assert len(sample.values) == 5
        assert sample.median == pytest.approx(1.02)

    def test_discriminators_beat_list_indices(self):
        rows = [
            {"word_width": 64, "wall_time_s": 2.0},
            {"word_width": 1024, "wall_time_s": 0.5},
        ]
        samples = collect_samples(_bench_report(list(reversed(rows))))
        assert "payload.rows[word_width=64].wall_time_s" in samples
        assert "payload.rows[word_width=1024].wall_time_s" in samples

    def test_metrics_counters_flatten_too(self):
        report = _bench_report([], counters={"faultsim.runs": 7})
        samples = collect_samples(report)
        assert samples["metrics.faultsim.runs"].median == 7

    def test_booleans_are_not_numbers(self):
        report = _bench_report([{"name": "r", "ok": True, "wall_time_s": 1.0}])
        assert not any("ok" in path for path in collect_samples(report))


class TestCompareReports:
    def test_identical_replicate_envelopes_pass(self):
        base = _bench_report(_replicated_rows())
        cur = _bench_report(copy.deepcopy(_replicated_rows()))
        assert failures(compare_reports(base, cur)) == []

    def test_2x_wall_time_regression_fails(self):
        rows = _replicated_rows()
        slow = copy.deepcopy(rows)
        for row in slow:
            row["wall_time_s"] *= 2.0
        findings = failures(
            compare_reports(_bench_report(rows), _bench_report(slow))
        )
        assert len(findings) == 1
        assert findings[0].kind == "wall"
        assert findings[0].ratio == pytest.approx(2.0)

    def test_noise_within_mad_band_passes(self):
        """Replicate-scale jitter must not trip the gate."""
        rows = _replicated_rows(base_wall=1.0, jitter=0.05)
        wobble = copy.deepcopy(rows)
        for index, row in enumerate(wobble):
            row["wall_time_s"] += 0.03 * ((-1) ** index)
        assert failures(
            compare_reports(_bench_report(rows), _bench_report(wobble))
        ) == []

    def test_improvement_is_info_not_failure(self):
        rows = _replicated_rows()
        fast = copy.deepcopy(rows)
        for row in fast:
            row["wall_time_s"] *= 0.25
        findings = compare_reports(_bench_report(rows), _bench_report(fast))
        assert failures(findings) == []
        wall = next(f for f in findings if f.kind == "wall")
        assert "improvement" in wall.note

    def test_counter_drift_in_one_replicate_fails(self):
        rows = _replicated_rows()
        drift = copy.deepcopy(rows)
        drift[3]["events_propagated"] += 1  # median-invisible
        findings = failures(
            compare_reports(_bench_report(rows), _bench_report(drift))
        )
        assert len(findings) == 1
        assert findings[0].kind == "counter"

    def test_counter_tolerance_allows_bounded_drift(self):
        rows = _replicated_rows(events=1000)
        drift = copy.deepcopy(rows)
        for row in drift:
            row["events_propagated"] = 1005
        config = RegressConfig(counter_tolerance=0.01)
        assert failures(
            compare_reports(_bench_report(rows), _bench_report(drift), config)
        ) == []

    def test_missing_gated_metric_fails(self):
        rows = _replicated_rows()
        gone = [
            {k: v for k, v in row.items() if k != "wall_time_s"}
            for row in copy.deepcopy(rows)
        ]
        findings = failures(
            compare_reports(_bench_report(rows), _bench_report(gone))
        )
        assert any(f.kind == "missing" for f in findings)

    def test_new_metric_is_informational(self):
        rows = _replicated_rows()
        extra = copy.deepcopy(rows)
        for row in extra:
            row["stitch_wall_s"] = 0.1
        findings = compare_reports(_bench_report(rows), _bench_report(extra))
        assert failures(findings) == []
        assert any(f.kind == "new" for f in findings)

    def test_abs_floor_ignores_microsecond_flap(self):
        rows = [{"name": "tiny", "wall_time_s": 0.0004}]
        slow = [{"name": "tiny", "wall_time_s": 0.0016}]  # 4x but 1.2ms
        assert failures(
            compare_reports(_bench_report(rows), _bench_report(slow))
        ) == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RegressConfig(wall_threshold=-0.1).validate()
        with pytest.raises(ValueError):
            RegressConfig(mad_k=-1).validate()
        with pytest.raises(ValueError):
            RegressConfig(counter_tolerance=-1).validate()

    def test_finding_render_mentions_severity_and_ratio(self):
        finding = Finding(
            metric="payload.x.wall_time_s", kind="wall", severity="fail",
            baseline=1.0, current=2.0, note="regression",
        )
        text = finding.render()
        assert "[FAIL]" in text and "2.00x" in text and "regression" in text


class TestFilePairing:
    def _write(self, path, report):
        path.write_text(report.to_json() + "\n")

    def test_directory_pairing_by_name(self, tmp_path):
        base_dir, cur_dir = tmp_path / "base", tmp_path / "cur"
        base_dir.mkdir(), cur_dir.mkdir()
        report = _bench_report(_replicated_rows())
        self._write(base_dir / "BENCH_a.json", report)
        self._write(base_dir / "BENCH_b.json", report)
        self._write(cur_dir / "BENCH_a.json", report)
        pairs = pair_bench_files(str(base_dir), str(cur_dir))
        assert [(name, cur is not None) for name, _, cur in pairs] == [
            ("BENCH_a.json", True),
            ("BENCH_b.json", False),
        ]
        results = compare_paths(str(base_dir), str(cur_dir))
        assert failures(results["BENCH_b.json"])  # missing file fails

    def test_mixed_file_and_directory_rejected(self, tmp_path):
        report = _bench_report([])
        self._write(tmp_path / "BENCH_a.json", report)
        with pytest.raises(ValueError):
            pair_bench_files(str(tmp_path), str(tmp_path / "BENCH_a.json"))

    def test_empty_baseline_directory_rejected(self, tmp_path):
        (tmp_path / "base").mkdir(), (tmp_path / "cur").mkdir()
        with pytest.raises(ValueError):
            pair_bench_files(str(tmp_path / "base"), str(tmp_path / "cur"))


class TestObsCli:
    def _write_pair(self, tmp_path, factor=1.0):
        rows = _replicated_rows()
        base = tmp_path / "base.json"
        base.write_text(_bench_report(rows).to_json())
        scaled = copy.deepcopy(rows)
        for row in scaled:
            row["wall_time_s"] *= factor
        cur = tmp_path / "cur.json"
        cur.write_text(_bench_report(scaled).to_json())
        return str(base), str(cur)

    def test_gate_exit_zero_on_identical(self, tmp_path, capsys):
        base, cur = self._write_pair(tmp_path, factor=1.0)
        assert main(["obs", "gate", base, cur]) == 0
        assert "regression gate passed" in capsys.readouterr().out

    def test_gate_exit_code_on_2x_regression(self, tmp_path, capsys):
        base, cur = self._write_pair(tmp_path, factor=2.0)
        assert main(["obs", "gate", base, cur]) == EXIT_REGRESSION
        captured = capsys.readouterr()
        assert "REGRESSION GATE FAILED" in captured.err
        assert "[FAIL]" in captured.out

    def test_diff_always_exits_zero(self, tmp_path, capsys):
        base, cur = self._write_pair(tmp_path, factor=2.0)
        assert main(["obs", "diff", base, cur]) == 0
        assert "[FAIL]" in capsys.readouterr().out

    def test_gate_threshold_flag(self, tmp_path):
        base, cur = self._write_pair(tmp_path, factor=1.3)
        assert main(["obs", "gate", base, cur]) == 0  # default +50%
        assert (
            main(["obs", "gate", base, cur, "--threshold", "0.1"])
            == EXIT_REGRESSION
        )

    def test_gate_rejects_bad_paths(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        code = main(["obs", "gate", str(tmp_path), missing])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_tail_reports_progress(self, tmp_path, capsys):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal._append({"kind": "header", "version": 1, "key": {"seed": 0}})
        journal._append(
            {
                "kind": "partition", "index": 0, "total": 50,
                "patterns_simulated": 10,
                "detected": [["g", 0, 1, 2]], "undetected": [],
            }
        )
        journal.heartbeat(
            partition=0, faults_graded=50, faults_total=200,
            partitions_done=1, partitions_total=4,
        )
        journal.close()
        assert main(["obs", "tail", str(tmp_path / "j.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "partitions 1/4" in out
        assert "faults graded 50/200" in out

    def test_tail_aggregates_resumed_sections(self, tmp_path, capsys):
        """A resumed run's fresh section still counts earlier checkpoints."""
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal._append({"kind": "header", "version": 1, "key": {"seed": 0}})
        journal._append(
            {
                "kind": "partition", "index": 0, "total": 50,
                "patterns_simulated": 10,
                "detected": [["g", 0, 1, 2]], "undetected": [],
            }
        )
        # Resume of the same campaign: same key, no new records yet.
        journal._append({"kind": "header", "version": 1, "key": {"seed": 0}})
        journal.close()
        assert main(["obs", "tail", str(tmp_path / "j.jsonl")]) == 0
        assert "faults graded 50" in capsys.readouterr().out
        # A different campaign key resets the tally.
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        journal._append({"kind": "header", "version": 1, "key": {"seed": 9}})
        journal.close()
        assert main(["obs", "tail", str(tmp_path / "j.jsonl")]) == 0
        assert "faults graded 0" in capsys.readouterr().out

    def test_tail_empty_journal(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "tail", str(path)]) == 0
        assert "no campaign sections" in capsys.readouterr().out


class TestBenchEnvelopeCompat:
    def test_committed_bench_files_are_comparable(self):
        """Every committed BENCH_*.json self-compares clean (gate idempotence)."""
        import pathlib

        bench_dir = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
        paths = sorted(bench_dir.glob("BENCH_*.json"))
        paths += sorted((bench_dir / "baselines").glob("BENCH_*.json"))
        assert paths, "expected committed BENCH_*.json envelopes under benchmarks/"
        for path in paths:
            report = RunReport.from_json(path.read_text())
            samples = collect_samples(report)
            assert samples, f"{path} flattened to no numeric samples"
            assert failures(compare_reports(report, report)) == [], str(path)
