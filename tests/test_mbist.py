"""Memory BIST: March runs and the coverage matrix."""

import pytest

from repro.bist.march import (
    ALL_MARCH_TESTS,
    MARCH_C_MINUS,
    MATS,
    MATS_PLUS,
)
from repro.bist.mbist import (
    coverage_matrix,
    detects_fault,
    format_matrix,
    run_march,
)
from repro.bist.memory import Memory, MemoryFault, sample_faults


class TestRunMarch:
    @pytest.mark.parametrize("test", ALL_MARCH_TESTS, ids=lambda t: t.name)
    def test_fault_free_memory_passes(self, test):
        result = run_march(Memory(64), test)
        assert result.passed
        assert result.operations == test.complexity * 64

    def test_saf_always_detected(self):
        for value in (0, 1):
            memory = Memory(32, faults=[MemoryFault("SAF", 7, value=value)])
            result = run_march(memory, MATS_PLUS, stop_on_first=True)
            assert not result.passed
            assert result.first_failure is not None

    def test_failure_location_reported(self):
        memory = Memory(32, faults=[MemoryFault("SAF", 7, value=1)])
        result = run_march(memory, MARCH_C_MINUS, stop_on_first=True)
        assert result.first_failure["address"] == 7

    def test_failure_count_without_stop(self):
        memory = Memory(32, faults=[MemoryFault("SAF", 7, value=1)])
        result = run_march(memory, MARCH_C_MINUS, stop_on_first=False)
        assert result.failures >= 1


class TestCoverageExpectations:
    """The textbook detection claims, verified by simulation."""

    def test_march_c_minus_covers_everything(self):
        matrix = coverage_matrix(
            tests=[MARCH_C_MINUS], n_cells=48, samples_per_kind=30, seed=2
        )
        row = matrix["March C-"]
        for kind, cell in row.items():
            assert cell.rate == 1.0, f"March C- missed {kind}"

    def test_mats_misses_coupling_faults(self):
        matrix = coverage_matrix(
            tests=[MATS], fault_kinds=("CFid",), n_cells=48, samples_per_kind=30
        )
        assert matrix["MATS"]["CFid"].rate < 0.5

    def test_coverage_improves_with_stronger_tests(self):
        matrix = coverage_matrix(
            tests=[MATS, MATS_PLUS, MARCH_C_MINUS],
            fault_kinds=("TF", "CFin"),
            n_cells=48,
            samples_per_kind=25,
            seed=1,
        )

        def total(name):
            return sum(cell.detected for cell in matrix[name].values())

        assert total("MATS") <= total("MATS+") <= total("March C-")

    def test_af_detected_by_mats_plus(self):
        matrix = coverage_matrix(
            tests=[MATS_PLUS], fault_kinds=("AF",), n_cells=48, samples_per_kind=30
        )
        assert matrix["MATS+"]["AF"].rate == 1.0


class TestReporting:
    def test_format_matrix(self):
        matrix = coverage_matrix(
            tests=[MATS, MARCH_C_MINUS],
            fault_kinds=("SAF", "TF"),
            n_cells=32,
            samples_per_kind=10,
        )
        text = format_matrix(matrix)
        assert "MATS" in text and "March C-" in text
        assert "SAF" in text and "TF" in text

    def test_detects_fault_helper(self):
        fault = MemoryFault("SAF", 3, value=1)
        assert detects_fault(MARCH_C_MINUS, fault, n_cells=16)
