"""Systolic array model: correctness, fault semantics, degradation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aichip.systolic import (
    PRODUCT_BITS,
    PEFault,
    SystolicArray,
    random_pe_faults,
)


class TestCleanMatmul:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        n, k, m = rng.integers(1, 12, size=3)
        x = rng.integers(-127, 128, size=(n, k))
        w = rng.integers(-127, 128, size=(k, m))
        array = SystolicArray(4, 4)
        assert np.array_equal(array.matmul(x, w), x @ w)

    def test_tiling_dimensions_bigger_than_array(self):
        rng = np.random.default_rng(1)
        x = rng.integers(-10, 10, size=(3, 20))
        w = rng.integers(-10, 10, size=(20, 17))
        array = SystolicArray(8, 8)
        assert np.array_equal(array.matmul(x, w), x @ w)

    def test_shape_validation(self):
        array = SystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.matmul(np.zeros((2, 3)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            array.matmul(np.zeros(3), np.zeros((3, 2)))

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4)


class TestFaultSemantics:
    def test_dead_pe_drops_contribution(self):
        array = SystolicArray(2, 2, faults=[PEFault(0, 0, "dead")])
        x = np.array([[1, 1]])
        w = np.array([[10, 0], [1, 0]])
        out = array.matmul(x, w)
        # PE(0,0) holds w[0,0]=10; its product is dropped.
        assert out[0, 0] == 1
        assert out[0, 1] == 0

    def test_stuck_bit_forces_product_bit(self):
        fault = PEFault(0, 0, "stuck_bit", bit=4, value=1)
        array = SystolicArray(1, 1, faults=[fault])
        x = np.array([[0]])
        w = np.array([[0]])
        out = array.matmul(x, w)
        assert out[0, 0] == 16  # 0 with bit 4 forced high

    def test_stuck_bit_zero_clears(self):
        fault = PEFault(0, 0, "stuck_bit", bit=0, value=0)
        array = SystolicArray(1, 1, faults=[fault])
        out = array.matmul(np.array([[1]]), np.array([[3]]))
        assert out[0, 0] == 2  # 3 with LSB cleared

    def test_weight_bit_flip(self):
        fault = PEFault(0, 0, "weight_bit", bit=1)
        array = SystolicArray(1, 1, faults=[fault])
        out = array.matmul(np.array([[1]]), np.array([[4]]))
        assert out[0, 0] == 6  # weight 4 ^ 2

    def test_fault_outside_array_rejected(self):
        with pytest.raises(ValueError):
            SystolicArray(2, 2, faults=[PEFault(5, 0, "dead")])

    def test_fault_describe(self):
        assert "dead" in PEFault(1, 2, "dead").describe()
        assert "s-a-1" in PEFault(0, 0, "stuck_bit", bit=3, value=1).describe()

    def test_faulty_differs_from_clean(self):
        rng = np.random.default_rng(3)
        x = rng.integers(-50, 50, size=(6, 8))
        w = rng.integers(-50, 50, size=(8, 8))
        clean = SystolicArray(8, 8).matmul(x, w)
        faults = random_pe_faults(8, 8, 3, seed=1)
        faulty = SystolicArray(8, 8, faults=faults).matmul(x, w)
        assert not np.array_equal(clean, faulty)


class TestDegradation:
    def test_mapped_out_rows_excluded(self):
        array = SystolicArray(4, 4, mapped_out=[(1, 2)])
        assert array.usable_rows() == [0, 2, 3]

    def test_matmul_still_correct_after_mapout(self):
        rng = np.random.default_rng(7)
        x = rng.integers(-20, 20, size=(4, 10))
        w = rng.integers(-20, 20, size=(10, 6))
        degraded = SystolicArray(4, 4, mapped_out=[(0, 0), (3, 2)])
        assert np.array_equal(degraded.matmul(x, w), x @ w)

    def test_faulty_pe_in_mapped_row_harmless(self):
        rng = np.random.default_rng(8)
        x = rng.integers(-20, 20, size=(3, 8))
        w = rng.integers(-20, 20, size=(8, 4))
        fault = PEFault(1, 1, "dead")
        degraded = SystolicArray(4, 4, faults=[fault], mapped_out=[(1, 1)])
        assert np.array_equal(degraded.matmul(x, w), x @ w)

    def test_all_rows_gone_raises(self):
        array = SystolicArray(2, 2, mapped_out=[(0, 0), (1, 1)])
        with pytest.raises(RuntimeError):
            array.matmul(np.ones((1, 2), dtype=int), np.ones((2, 2), dtype=int))

    def test_cycles_grow_with_mapout(self):
        clean = SystolicArray(8, 8)
        degraded = SystolicArray(8, 8, mapped_out=[(r, 0) for r in range(4)])
        assert degraded.cycles_for_matmul(32, 16, 16) > clean.cycles_for_matmul(
            32, 16, 16
        )


class TestRandomFaults:
    def test_distinct_pes(self):
        faults = random_pe_faults(8, 8, 10, seed=4)
        assert len({(f.row, f.col) for f in faults}) == 10

    def test_bit_ranges(self):
        faults = random_pe_faults(8, 8, 30, seed=5)
        for fault in faults:
            if fault.kind == "stuck_bit":
                assert 0 <= fault.bit < PRODUCT_BITS
            if fault.kind == "weight_bit":
                assert 0 <= fault.bit < 8
