"""Campaign journal: digests, round-trips, multi-section files, resume."""

import json

import pytest

from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks, generators
from repro.faults import collapse_faults, full_fault_list
from repro.faults.model import StuckAtFault
from repro.sim.chaos import ChaosPlan
from repro.sim.faultsim import FaultSimulator
from repro.sim.journal import (
    CampaignJournal,
    CampaignKey,
    JournalMismatchError,
    fault_digest,
    pattern_digest,
)
from repro.sim.supervisor import SupervisedPoolBackend, SupervisorConfig


def _setup(seed=5):
    netlist = generators.random_circuit(6, 35, seed=seed)
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, 64, seed=seed)
    return netlist, simulator, faults, patterns


class TestDigests:
    def test_pattern_digest_deterministic_and_sensitive(self):
        patterns = [[0, 1, 0], [1, 1, 1]]
        assert pattern_digest(patterns) == pattern_digest([list(p) for p in patterns])
        assert pattern_digest(patterns) != pattern_digest([[0, 1, 0]])
        assert pattern_digest(patterns) != pattern_digest([[1, 1, 1], [0, 1, 0]])
        flipped = [[0, 1, 1], [1, 1, 1]]
        assert pattern_digest(patterns) != pattern_digest(flipped)

    def test_fault_digest_order_insensitive(self):
        a = StuckAtFault(3, 0, 1)
        b = StuckAtFault(7, -1, 0)
        assert fault_digest([a, b]) == fault_digest([b, a])
        assert fault_digest([a, b]) != fault_digest([a])
        assert fault_digest([a]) != fault_digest([StuckAtFault(3, 0, 0)])

    def test_campaign_key_binds_every_dimension(self):
        netlist, _, faults, patterns = _setup()
        base = CampaignKey.build(netlist, patterns, faults, 0, 8, True)
        assert base == CampaignKey.build(netlist, patterns, faults, 0, 8, True)
        assert base != CampaignKey.build(netlist, patterns, faults, 1, 8, True)
        assert base != CampaignKey.build(netlist, patterns, faults, 0, 9, True)
        assert base != CampaignKey.build(netlist, patterns, faults, 0, 8, False)
        assert base != CampaignKey.build(netlist, patterns[:-1], faults, 0, 8, True)
        other = benchmarks.c17()
        other_faults, _ = collapse_faults(other, full_fault_list(other))
        key_other = CampaignKey.build(
            other, patterns, other_faults, 0, 8, True
        )
        assert base.signature != key_other.signature


class TestRoundTrip:
    def test_record_and_load_identity(self, tmp_path):
        netlist, simulator, faults, patterns = _setup()
        partial = simulator.simulate(patterns, faults[:10])
        key = CampaignKey.build(netlist, patterns, faults[:10], 0, 1, True)
        path = str(tmp_path / "j.jsonl")
        with CampaignJournal(path) as journal:
            assert journal.begin(key) == {}
            journal.record(0, partial)
        loaded = CampaignJournal(path).completed_for(key)
        assert set(loaded) == {0}
        restored = loaded[0]
        assert restored.detected == partial.detected
        assert restored.undetected == partial.undetected
        assert restored.total_faults == partial.total_faults
        assert restored.patterns_simulated == partial.patterns_simulated
        assert restored.stats["journaled"] is True

    def test_sections_are_isolated_by_key(self, tmp_path):
        netlist, simulator, faults, patterns = _setup()
        key_a = CampaignKey.build(netlist, patterns, faults, 0, 4, True)
        key_b = CampaignKey.build(netlist, patterns, faults, 1, 4, True)
        partial = simulator.simulate(patterns, faults[:3])
        path = str(tmp_path / "multi.jsonl")
        with CampaignJournal(path) as journal:
            journal.begin(key_a)
            journal.record(0, partial)
            journal.begin(key_b)
            journal.record(1, partial)
        assert set(CampaignJournal(path).completed_for(key_a)) == {0}
        assert set(CampaignJournal(path).completed_for(key_b)) == {1}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        netlist, simulator, faults, patterns = _setup()
        key = CampaignKey.build(netlist, patterns, faults[:6], 0, 2, True)
        path = str(tmp_path / "torn.jsonl")
        with CampaignJournal(path) as journal:
            journal.begin(key)
            journal.record(0, simulator.simulate(patterns, faults[:3]))
        with open(path, "a") as handle:
            handle.write('{"kind":"partition","index":1,"tot')  # kill mid-write
        loaded = CampaignJournal(path).completed_for(key)
        assert set(loaded) == {0}

    def test_strict_mismatch_raises(self, tmp_path):
        netlist, _, faults, patterns = _setup()
        path = str(tmp_path / "strict.jsonl")
        with CampaignJournal(path) as journal:
            journal.begin(CampaignKey.build(netlist, patterns, faults, 0, 4, True))
        wrong_seed = CampaignKey.build(netlist, patterns, faults, 9, 4, True)
        with pytest.raises(JournalMismatchError):
            CampaignJournal(path, strict=True).begin(wrong_seed)
        # Non-strict: same mismatch just opens a fresh section.
        assert CampaignJournal(path).begin(wrong_seed) == {}


class TestDurability:
    """Section headers are written atomically; shard lines are fsynced."""

    def test_begin_drops_torn_trailing_line(self, tmp_path):
        netlist, simulator, faults, patterns = _setup()
        key = CampaignKey.build(netlist, patterns, faults[:6], 0, 2, True)
        path = str(tmp_path / "torn-begin.jsonl")
        with CampaignJournal(path) as journal:
            journal.begin(key)
            journal.record(0, simulator.simulate(patterns, faults[:3]))
        with open(path, "a") as handle:
            handle.write('{"kind":"partition","index":1,"tot')  # kill mid-write
        # Re-opening the journal for a new section rewrites the file
        # atomically, which scrubs the torn line from a previous crash.
        with CampaignJournal(path) as journal:
            assert set(journal.begin(key)) == {0}
        raw = open(path).read()
        assert raw.endswith("\n")
        for line in raw.splitlines():
            json.loads(line)  # every surviving line parses

    def test_begin_leaves_no_temp_file(self, tmp_path):
        netlist, _, faults, patterns = _setup()
        key = CampaignKey.build(netlist, patterns, faults, 0, 4, True)
        path = tmp_path / "clean.jsonl"
        with CampaignJournal(str(path)) as journal:
            journal.begin(key)
            journal.begin(key)  # second section, same key
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_rewrite_preserves_prior_sections(self, tmp_path):
        netlist, simulator, faults, patterns = _setup()
        key_a = CampaignKey.build(netlist, patterns, faults, 0, 4, True)
        key_b = CampaignKey.build(netlist, patterns, faults, 1, 4, True)
        partial = simulator.simulate(patterns, faults[:3])
        path = str(tmp_path / "multi.jsonl")
        with CampaignJournal(path) as journal:
            journal.begin(key_a)
            journal.record(0, partial)
        # A later durable begin() for a different key rewrites the file;
        # the earlier section must survive byte-for-byte as valid JSONL.
        with CampaignJournal(path) as journal:
            journal.begin(key_b)
            journal.record(1, partial)
        assert set(CampaignJournal(path).completed_for(key_a)) == {0}
        assert set(CampaignJournal(path).completed_for(key_b)) == {1}

    def test_non_durable_journal_appends_in_place(self, tmp_path):
        netlist, simulator, faults, patterns = _setup()
        key = CampaignKey.build(netlist, patterns, faults[:6], 0, 2, True)
        path = str(tmp_path / "fast.jsonl")
        with CampaignJournal(path, durable=False) as journal:
            journal.begin(key)
            journal.record(0, simulator.simulate(patterns, faults[:3]))
        with open(path, "a") as handle:
            handle.write('{"kind":"partition","index":1,"tot')
        with CampaignJournal(path, durable=False) as journal:
            # Append-only mode never rewrites: the torn line stays on
            # disk, and readers simply stop at it.
            assert set(journal.begin(key)) == {0}
        assert '"tot' in open(path).read()


class TestResume:
    def test_resume_after_failed_campaign_matches_ppsfp(self, tmp_path):
        """Kill a campaign (no retries, no fallback), resume it, compare."""
        _, simulator, faults, patterns = _setup()
        reference = simulator.simulate(patterns, faults)
        path = str(tmp_path / "resume.jsonl")
        crashed = SupervisedPoolBackend(
            jobs=2,
            partitions=6,
            chaos=ChaosPlan.single(4, "crash"),
            config=SupervisorConfig(max_retries=0, inline_fallback=False),
            journal=CampaignJournal(path),
        ).run(simulator, patterns, faults)
        assert len(crashed.stats["failed_partitions"]) == 1
        assert crashed.coverage < reference.coverage

        resumed = SupervisedPoolBackend(
            jobs=2, partitions=6, journal=CampaignJournal(path)
        ).run(simulator, patterns, faults)
        assert resumed.stats["journal_skipped"] == 5
        assert resumed.detected == reference.detected
        assert resumed.undetected == reference.undetected
        partition4 = next(
            p for p in resumed.stats["partitions"] if p["partition"] == 4
        )
        assert partition4["source"] == "worker"  # the only shard re-graded

    def test_journaled_shards_revalidated_against_current_campaign(self, tmp_path):
        """A journal entry that no longer matches its shard is re-run."""
        netlist, simulator, faults, patterns = _setup()
        path = str(tmp_path / "tampered.jsonl")
        key = CampaignKey.build(netlist, patterns, faults, 0, 4, True)
        backend = SupervisedPoolBackend(
            jobs=2, partitions=4, journal=CampaignJournal(path)
        )
        reference = backend.run(simulator, patterns, faults)
        backend.journal.close()
        # Tamper with partition 2's accounting on disk.
        lines = [json.loads(l) for l in open(path)]
        for line in lines:
            if line.get("kind") == "partition" and line["index"] == 2:
                line["undetected"] = line["undetected"][:-1] or line["undetected"]
                line["total"] -= 1
        with open(path, "w") as handle:
            for line in lines:
                handle.write(json.dumps(line) + "\n")
        resumed = SupervisedPoolBackend(
            jobs=2, partitions=4, journal=CampaignJournal(path)
        ).run(simulator, patterns, faults)
        assert resumed.stats["journal_skipped"] == 3
        assert resumed.detected == reference.detected
        assert resumed.undetected == reference.undetected
