"""Int8 quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aichip.quantize import (
    QMAX,
    QMIN,
    QuantParams,
    calibrate,
    quantize_matmul_output_scale,
    requantize,
)


class TestCalibration:
    def test_scale_covers_peak(self):
        values = np.array([-3.0, 1.0, 2.5])
        params = calibrate(values)
        quantized = params.quantize(values)
        assert quantized.min() >= QMIN and quantized.max() <= QMAX
        assert abs(quantized[0]) == QMAX  # the peak maps to full range

    def test_zero_tensor(self):
        params = calibrate(np.zeros(4))
        assert params.scale > 0
        assert np.all(params.quantize(np.zeros(4)) == 0)

    def test_empty_tensor(self):
        params = calibrate(np.array([]))
        assert params.scale > 0


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_quantization_error_bounded(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(0, 2, size=50)
        params = calibrate(values)
        restored = params.dequantize(params.quantize(values))
        # Max error is half a quantization step.
        assert np.max(np.abs(restored - values)) <= params.scale / 2 + 1e-12

    def test_requantize_matches_float_path(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, size=(4, 8))
        w = rng.normal(0, 1, size=(8, 3))
        xp, wp = calibrate(x), calibrate(w)
        acc = xp.quantize(x) @ wp.quantize(w)
        acc_scale = quantize_matmul_output_scale(xp, wp)
        approx = acc.astype(np.float64) * acc_scale
        exact = x @ w
        assert np.max(np.abs(approx - exact)) < 0.15

    def test_requantize_clips(self):
        out_params = QuantParams(scale=0.01)
        acc = np.array([10**6])
        q = requantize(acc, acc_scale=1.0, out_params=out_params)
        assert q[0] == QMAX
