"""Scan insertion, chain integrity, and cycle-accurate pattern application."""

import random

import pytest

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.circuit.gates import GateType
from repro.faults import collapse_faults, full_fault_list
from repro.scan import (
    ScanScheduler,
    chain_flush_detects,
    insert_scan,
    partition_faults,
)
from repro.sim.logicsim import LogicSimulator
from repro.sim.view import CombinationalView


class TestInsertion:
    def test_flops_become_scan_flops(self, mac4):
        design = insert_scan(mac4, n_chains=2)
        for flop in design.netlist.flops:
            assert design.netlist.gates[flop].type == GateType.SDFF

    def test_original_untouched(self, mac4):
        n_before = len(mac4.gates)
        insert_scan(mac4, n_chains=2)
        assert len(mac4.gates) == n_before
        assert all(g.type != GateType.SDFF for g in mac4.gates)

    def test_chain_balance(self, small_seq):
        design = insert_scan(small_seq, n_chains=3)
        lengths = [len(chain) for chain in design.chains]
        assert max(lengths) - min(lengths) <= 1

    def test_more_chains_than_flops_clamped(self, small_seq):
        design = insert_scan(small_seq, n_chains=99)
        assert design.n_chains == len(small_seq.flops)
        assert design.max_chain_length == 1

    def test_combinational_circuit_rejected(self, adder4):
        with pytest.raises(ValueError):
            insert_scan(adder4, n_chains=1)

    def test_ports_added(self, mac4):
        design = insert_scan(mac4, n_chains=2)
        names = design.netlist.input_names()
        assert "scan_enable" in names
        assert "scan_in0" in names and "scan_in1" in names
        assert "scan_out0" in design.netlist.output_names()

    def test_function_preserved_in_capture_mode(self, mac4):
        """With scan_enable low, the scan design behaves like the original."""
        design = insert_scan(mac4, n_chains=2)
        original = LogicSimulator(mac4)
        scanned = LogicSimulator(design.netlist)
        rng = random.Random(7)
        state = [0] * len(mac4.flops)
        scan_state = list(state)
        for _ in range(5):
            inputs = [rng.randint(0, 1) for _ in range(len(mac4.inputs))]
            # Scan netlist PIs: original PIs + scan_enable + scan_ins (appended).
            scan_inputs = inputs + [0] * (
                len(design.netlist.inputs) - len(inputs)
            )
            a = original.step(inputs, state)
            b = scanned.step(scan_inputs, scan_state, scan_shift=False)
            assert a["state"] == b["state"]
            # Functional POs agree (scan_outs excluded).
            assert a["outputs"] == b["outputs"][: len(a["outputs"])]
            state, scan_state = a["state"], b["state"]


class TestChainStreams:
    def test_state_stream_roundtrip(self, small_seq):
        design = insert_scan(small_seq, n_chains=3)
        rng = random.Random(0)
        state = [rng.randint(0, 1) for _ in small_seq.flops]
        streams = design.state_to_chain_bits(state)
        assert design.chain_bits_to_state(streams) == state

    def test_flush_passes_on_clean_design(self, small_seq):
        design = insert_scan(small_seq, n_chains=2)
        assert chain_flush_detects(design)

    def test_flush_fails_with_broken_chain(self, small_seq):
        design = insert_scan(small_seq, n_chains=2)
        # Break the chain: disconnect one flop's scan-in (tie to const).
        netlist = design.netlist
        victim = design.chains[0][1]
        const = netlist.add(GateType.CONST0, "chain_break")
        netlist.gates[victim].fanin[1] = const
        netlist._topo = None
        netlist.finalize()
        assert not chain_flush_detects(design)


class TestFaultPartition:
    def test_chain_faults_identified(self, small_seq):
        design = insert_scan(small_seq, n_chains=2)
        faults = full_fault_list(design.netlist)
        capture, chain = partition_faults(design, faults)
        assert len(capture) + len(chain) == len(faults)
        assert chain  # scan_in/scan_enable stems exist
        chain_gates = {f.gate for f in chain}
        assert design.scan_enable in chain_gates


class TestScheduler:
    def test_scan_protocol_reproduces_combinational_response(self, small_seq):
        """Load-capture-unload must equal the ATPG view's prediction."""
        design = insert_scan(small_seq, n_chains=3)
        view = CombinationalView(design.netlist)
        logic = LogicSimulator(design.netlist)
        scheduler = ScanScheduler(design)
        rng = random.Random(5)
        for trial in range(4):
            pattern = [rng.randint(0, 1) for _ in range(view.num_inputs)]
            operation, _ = scheduler.apply_pattern(pattern, trial)
            predicted = logic.response(pattern)
            n_po = len(design.netlist.outputs)
            assert operation.unloaded_state == predicted[n_po:]

    def test_run_patterns_counts(self, small_seq):
        design = insert_scan(small_seq, n_chains=2)
        scheduler = ScanScheduler(design)
        view = CombinationalView(design.netlist)
        patterns = [[0] * view.num_inputs, [1] * view.num_inputs]
        operations = scheduler.run_patterns(patterns)
        assert len(operations) == 2
        assert operations[0].shift_cycles == 2 * design.max_chain_length


class TestScanAtpgFlow:
    def test_atpg_on_scan_design_reaches_coverage(self, small_seq):
        design = insert_scan(small_seq, n_chains=2)
        capture, chain = partition_faults(
            design, collapse_faults(design.netlist, full_fault_list(design.netlist))[0]
        )
        result = run_atpg(design.netlist, faults=capture, seed=1)
        assert result.test_coverage > 0.95
