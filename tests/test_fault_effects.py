"""PE fault detection, localization, and the accuracy sweep."""

import numpy as np
import pytest

from repro.aichip.fault_effects import (
    accuracy_fault_sweep,
    detect_faulty_pes,
    detection_is_complete,
    run_inference_on_array,
)
from repro.aichip.nn import QuantizedMLP, trained_reference_model
from repro.aichip.systolic import PEFault, SystolicArray, random_pe_faults


@pytest.fixture(scope="module")
def model_fixture():
    return trained_reference_model()


class TestDetection:
    def test_clean_array_reports_nothing(self):
        assert detect_faulty_pes(SystolicArray(8, 8)) == []

    def test_single_fault_localized(self):
        for kind_faults in (
            [PEFault(2, 3, "dead")],
            [PEFault(5, 1, "stuck_bit", bit=7, value=1)],
            [PEFault(0, 6, "weight_bit", bit=3)],
        ):
            array = SystolicArray(8, 8, faults=kind_faults)
            suspects = detect_faulty_pes(array)
            assert (kind_faults[0].row, kind_faults[0].col) in suspects

    def test_multiple_faults_all_found(self):
        faults = random_pe_faults(8, 8, 5, seed=21)
        suspects = set(detect_faulty_pes(SystolicArray(8, 8, faults=faults)))
        for fault in faults:
            assert (fault.row, fault.col) in suspects

    def test_detection_rate_metric(self):
        report = detection_is_complete(trials=15, seed=4)
        assert report["detection_rate"] >= 0.95


class TestInferenceOnArray:
    def test_clean_array_matches_reference(self, model_fixture):
        model, test_x, test_y = model_fixture
        quantized = QuantizedMLP.from_float(model, test_x)
        clean = run_inference_on_array(quantized, SystolicArray(8, 8), test_x)
        assert np.array_equal(clean, quantized.predict(test_x))


class TestSweep:
    def test_sweep_structure_and_recovery(self, model_fixture):
        result = accuracy_fault_sweep(
            fault_counts=(0, 4, 8), model_fixture=model_fixture, seed=5
        )
        assert result.quantized_accuracy > 0.9
        assert len(result.points) == 3
        zero = result.points[0]
        assert zero.accuracy == pytest.approx(result.quantized_accuracy)
        for point in result.points:
            # Map-out restores accuracy to near the clean level.
            assert point.accuracy_after_mapout >= result.quantized_accuracy - 0.03
            if point.n_faults > 0:
                # Degradation costs cycles.
                assert point.cycles_after_mapout >= point.cycles
