"""Fault diagnosis: dictionary, effect-cause, and compactor-aware."""

import pytest

from repro.atpg import run_atpg
from repro.circuit import benchmarks, generators
from repro.compression.compactor import CompactorConfig, XorCompactor
from repro.diagnosis import (
    CompactedDiagnoser,
    EffectCauseDiagnoser,
    FaultDictionary,
    inject_and_observe,
    signature_to_failures,
)
from repro.faults import collapse_faults, full_fault_list
from repro.scan import insert_scan, partition_faults
from repro.sim.faultsim import FaultSimulator


@pytest.fixture(scope="module")
def diag_setup():
    netlist = benchmarks.get_benchmark("alu4")
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = FaultSimulator(netlist)
    atpg = run_atpg(netlist, seed=3)
    return netlist, faults, simulator, atpg.patterns


class TestDictionary:
    def test_injected_defects_rank_first(self, diag_setup):
        netlist, faults, simulator, patterns = diag_setup
        dictionary = FaultDictionary.build(simulator, patterns, faults)
        hits = 0
        probes = faults[:: max(1, len(faults) // 20)]
        for defect in probes:
            observed = inject_and_observe(simulator, patterns, defect)
            if not observed:
                continue
            ranked = dictionary.lookup(observed, top=5)
            assert ranked, defect
            best_score = ranked[0][1]
            top = [f for f, s in ranked if s == best_score]
            if defect in top:
                hits += 1
        assert hits >= 0.9 * len(probes)

    def test_exact_match_class(self, diag_setup):
        netlist, faults, simulator, patterns = diag_setup
        dictionary = FaultDictionary.build(simulator, patterns, faults[:40])
        defect = faults[5]
        observed = inject_and_observe(simulator, patterns, defect)
        matches = dictionary.exact_matches(observed)
        if defect in dictionary.entries and observed:
            assert defect in matches

    def test_resolution_at_least_one(self, diag_setup):
        netlist, faults, simulator, patterns = diag_setup
        dictionary = FaultDictionary.build(simulator, patterns, faults[:60])
        assert dictionary.diagnostic_resolution() >= 1.0

    def test_more_patterns_improve_resolution(self, diag_setup):
        netlist, faults, simulator, patterns = diag_setup
        few = FaultDictionary.build(simulator, patterns[:3], faults[:60])
        many = FaultDictionary.build(simulator, patterns, faults[:60])
        assert many.diagnostic_resolution() <= few.diagnostic_resolution()


class TestEffectCause:
    def test_defect_in_top_suspects(self, diag_setup):
        netlist, faults, simulator, patterns = diag_setup
        diagnoser = EffectCauseDiagnoser(netlist, faults)
        probes = faults[:: max(1, len(faults) // 15)]
        hits = 0
        tried = 0
        for defect in probes:
            observed = inject_and_observe(simulator, patterns, defect)
            if not observed:
                continue
            tried += 1
            result = diagnoser.diagnose(patterns, observed)
            if defect in result.top_suspects:
                hits += 1
        assert tried > 0
        assert hits >= 0.9 * tried

    def test_structural_pruning_reduces_candidates(self, diag_setup):
        netlist, faults, simulator, patterns = diag_setup
        diagnoser = EffectCauseDiagnoser(netlist, faults)
        defect = faults[3]
        observed = inject_and_observe(simulator, patterns, defect)
        if observed:
            result = diagnoser.diagnose(patterns, observed)
            assert result.candidates_considered < len(faults)

    def test_empty_observation(self, diag_setup):
        netlist, faults, simulator, patterns = diag_setup
        diagnoser = EffectCauseDiagnoser(netlist, faults)
        result = diagnoser.diagnose(patterns, set())
        assert result.suspects == []


class TestCompactedDiagnosis:
    @pytest.fixture(scope="class")
    def compact_setup(self):
        netlist = generators.random_sequential(6, 80, 16, seed=9)
        design = insert_scan(netlist, n_chains=4)
        faults, _ = collapse_faults(
            design.netlist, full_fault_list(design.netlist)
        )
        capture, _ = partition_faults(design, faults)
        atpg = run_atpg(design.netlist, faults=capture, seed=2)
        compactor = XorCompactor(CompactorConfig(4, 2, seed=1))
        diagnoser = CompactedDiagnoser(design, compactor, capture[:80])
        return design, capture, atpg.patterns, diagnoser

    def test_compacted_signature_nonempty_for_detected(self, compact_setup):
        design, capture, patterns, diagnoser = compact_setup
        simulator = FaultSimulator(design.netlist)
        defect = capture[10]
        raw = simulator.failure_signature(patterns, defect)
        if raw:
            compacted = diagnoser.compacted_signature(patterns, defect)
            assert compacted  # single fault rarely aliases every cycle

    def test_diagnose_finds_defect(self, compact_setup):
        design, capture, patterns, diagnoser = compact_setup
        defect = diagnoser.faults[7]
        observed = diagnoser.compacted_signature(patterns, defect)
        if observed:
            ranked = diagnoser.diagnose(patterns, observed)
            best = ranked[0][1]
            top = [f for f, s in ranked if s == best]
            assert defect in top

    def test_resolution_report_fields(self, compact_setup):
        design, capture, patterns, diagnoser = compact_setup
        report = diagnoser.resolution_versus_raw(patterns, diagnoser.faults[:6])
        assert report["avg_suspects_raw"] >= 1.0 or report["defects_diagnosed"] == 0
        assert 0.0 <= report["hit_rate_compacted"] <= 1.0
        # Compaction cannot make resolution better than raw on average.
        assert (
            report["avg_suspects_compacted"] >= report["avg_suspects_raw"] - 1e-9
            or report["hit_rate_compacted"] <= report["hit_rate_raw"]
        )
