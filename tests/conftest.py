"""Shared fixtures: small circuits every test layer reuses."""

import pytest

from repro.circuit import benchmarks, generators
from repro.circuit.builder import NetlistBuilder


@pytest.fixture
def c17():
    return benchmarks.c17()


@pytest.fixture
def s27():
    return benchmarks.s27()


@pytest.fixture
def adder4():
    return generators.adder(4)


@pytest.fixture
def mac4():
    return generators.mac_unit(4)


@pytest.fixture
def alu4():
    return generators.alu(4)


@pytest.fixture
def small_seq():
    """A small sequential circuit for scan/TDF tests."""
    return generators.random_sequential(6, 80, 10, seed=2)


@pytest.fixture
def tiny_mux():
    """Single 2:1 mux netlist (exercises the MUX2 code paths)."""
    builder = NetlistBuilder("tiny_mux")
    select = builder.input("s")
    a = builder.input("a")
    b = builder.input("b")
    builder.output("y", builder.mux(select, a, b))
    return builder.build()
