"""D-algorithm engine: detection parity with PODEM, real untestability
proofs, frontier/mux propagation paths, and budget accounting."""

import random
import time

import pytest

from repro.atpg import DAlgorithm, GuidedPodem, Podem
from repro.atpg.engine import x_fill
from repro.circuit import benchmarks, generators
from repro.circuit.builder import NetlistBuilder
from repro.faults import OUTPUT_PIN, StuckAtFault, collapse_faults, full_fault_list
from repro.sim.faultsim import FaultSimulator

from tests.oracle_util import exhaustive_truth


def _confirm(netlist, fault, cube, seed=0):
    simulator = FaultSimulator(netlist)
    rng = random.Random(seed)
    for mode in ("zero", "one", "random"):
        pattern = x_fill(cube, rng, mode)
        result = simulator.simulate([pattern], [fault], drop=True)
        assert fault in result.detected, f"{mode}-fill missed {fault}"


class TestDetection:
    def test_c17_all_faults(self, c17):
        dalg = DAlgorithm(c17)
        for fault in full_fault_list(c17):
            outcome = dalg.generate(fault)
            assert outcome.detected, fault.describe(c17)
            _confirm(c17, fault, outcome.cube)

    def test_mux_paths(self, tiny_mux):
        dalg = DAlgorithm(tiny_mux)
        for fault in full_fault_list(tiny_mux):
            outcome = dalg.generate(fault)
            if outcome.detected:
                _confirm(tiny_mux, fault, outcome.cube)
            else:
                assert outcome.status == "untestable"

    def test_sequential_full_scan_view(self, mac4):
        dalg = DAlgorithm(mac4, backtrack_limit=512)
        faults, _ = collapse_faults(mac4, full_fault_list(mac4))
        sample = faults[:: max(1, len(faults) // 40)]
        for fault in sample:
            outcome = dalg.generate(fault)
            if outcome.detected:
                _confirm(mac4, fault, outcome.cube, seed=5)

    def test_branch_into_output_detected(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        builder.output("y1", a)
        builder.output("y2", a)
        netlist = builder.build()
        dalg = DAlgorithm(netlist)
        y1 = netlist.index_of("y1")
        fault = StuckAtFault(y1, 0, 1)
        outcome = dalg.generate(fault)
        assert outcome.detected
        _confirm(netlist, fault, outcome.cube)


class TestUntestabilityProofs:
    def test_redundant_fault_proved(self):
        """y = OR(a, NOT(a)) is constant 1: s-a-1 on y is untestable."""
        builder = NetlistBuilder()
        a = builder.input("a")
        g = builder.or_(a, builder.not_(a))
        builder.output("y", g)
        netlist = builder.build()
        dalg = DAlgorithm(netlist)
        outcome = dalg.generate(StuckAtFault(g, OUTPUT_PIN, 1))
        assert outcome.status == "untestable"
        outcome = dalg.generate(StuckAtFault(g, OUTPUT_PIN, 0))
        assert outcome.detected

    def test_unobservable_fault_proved(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        dangling = builder.not_(a)
        builder.output("y", builder.buf(a))
        netlist = builder.build()
        dalg = DAlgorithm(netlist)
        outcome = dalg.generate(StuckAtFault(dangling, OUTPUT_PIN, 0))
        assert outcome.status == "untestable"
        assert outcome.backtracks == 0  # rejected by the cone check

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: generators.random_circuit(5, 25, seed=101),
            lambda: generators.random_circuit(8, 60, seed=202),
            lambda: generators.adder(4),
            lambda: generators.mac_unit(2),
        ],
    )
    def test_verdicts_match_exhaustive_truth(self, factory):
        """Every fault settles, and every verdict matches ground truth —
        the property PODEM's budgeted search cannot offer."""
        netlist = factory()
        netlist.finalize()
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        testable, untestable = exhaustive_truth(netlist, faults)
        dalg = DAlgorithm(netlist, backtrack_limit=4096)
        for fault in faults:
            outcome = dalg.generate(fault)
            if outcome.status == "untestable":
                assert fault in untestable, fault.describe(netlist)
            else:
                assert outcome.detected, fault.describe(netlist)
                assert fault in testable, fault.describe(netlist)

    def test_settles_faults_podem_aborts(self):
        """On the random-resistant circuit the D-algorithm concludes
        (detects or proves) faults PODEM aborts on at the same budget."""
        netlist = generators.random_resistant(14, cones=3)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        podem = Podem(netlist, backtrack_limit=8)
        dalg = DAlgorithm(netlist, backtrack_limit=8 * 4)
        podem_aborts = [
            f for f in faults if podem.generate(f).status == "aborted"
        ]
        assert podem_aborts, "fixture no longer stresses PODEM"
        settled = [
            f for f in podem_aborts if dalg.generate(f).status != "aborted"
        ]
        assert settled, "D-algorithm settled none of PODEM's aborts"


class TestBudgets:
    def test_backtrack_limit_aborts_with_reason(self):
        netlist = generators.random_resistant(14, cones=3)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        dalg = DAlgorithm(netlist, backtrack_limit=0)
        outcomes = [dalg.generate(f) for f in faults]
        aborted = [o for o in outcomes if o.status == "aborted"]
        assert aborted and all(o.reason == "backtracks" for o in aborted)

    def test_expired_deadline_reports_time(self):
        netlist = generators.random_resistant(14, cones=3)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        dalg = DAlgorithm(netlist, backtrack_limit=10**6, time_budget_s=0.0)
        outcomes = [dalg.generate(f) for f in faults]
        aborted = [o for o in outcomes if o.status == "aborted"]
        assert aborted and all(o.reason == "time" for o in aborted)

    def test_first_tripped_budget_is_time(self):
        """Both budgets exhausted in the same step: the wall clock ran
        out first, so "time" must win (same contract as PODEM's)."""
        netlist = generators.random_resistant(14, cones=3)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        dalg = DAlgorithm(netlist, backtrack_limit=0, time_budget_s=0.0)
        outcomes = [dalg.generate(f) for f in faults]
        aborted = [o for o in outcomes if o.status == "aborted"]
        assert aborted and all(o.reason == "time" for o in aborted)

    def test_deterministic(self, adder4):
        first = DAlgorithm(adder4)
        second = DAlgorithm(adder4)
        for fault in full_fault_list(adder4):
            a = first.generate(fault)
            b = second.generate(fault)
            assert (a.status, a.cube, a.backtracks) == (
                b.status,
                b.cube,
                b.backtracks,
            )


class TestGuidedPodem:
    def test_c17_all_faults(self, c17):
        guided = GuidedPodem(c17)
        for fault in full_fault_list(c17):
            outcome = guided.generate(fault)
            assert outcome.detected, fault.describe(c17)
            _confirm(c17, fault, outcome.cube)

    def test_untestable_from_slice_is_final(self):
        builder = NetlistBuilder()
        a = builder.input("a")
        g = builder.or_(a, builder.not_(a))
        builder.output("y", g)
        netlist = builder.build()
        guided = GuidedPodem(netlist)
        outcome = guided.generate(StuckAtFault(g, OUTPUT_PIN, 1))
        assert outcome.status == "untestable"

    def test_restart_slices_accumulate_backtracks(self):
        from repro.atpg.guided import _budget_slices

        assert sum(_budget_slices(64, 3)) == 64
        assert _budget_slices(64, 1) == [64]
        assert all(s >= 1 for s in _budget_slices(2, 3))

    def test_deterministic(self, adder4):
        first = GuidedPodem(adder4)
        second = GuidedPodem(adder4)
        for fault in full_fault_list(adder4):
            a = first.generate(fault)
            b = second.generate(fault)
            assert (a.status, a.cube) == (b.status, b.cube)
