"""Property tests for the metric merge laws (``repro.obs.metrics``).

The observability layer's core claim is that per-partition worker metrics
merge back into the parent exactly like fault results min-merge: the
totals are independent of how the partials are grouped (associativity),
of the order they arrive in (commutativity), and — end to end — of the
pool's worker count and partition order.  Hypothesis holds all three.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.obs import MetricRegistry
from repro.sim.dispatch import partition_faults, partition_metrics
from repro.sim.faultsim import FaultSimulator

SMALL = dict(max_examples=12, deadline=None)
TINY = dict(max_examples=4, deadline=None)  # spawns process pools

seeds = st.integers(0, 10**6)

# Histogram bounds are part of a metric's identity; merges require equal
# bounds, so the strategy picks from a fixed palette per metric name.
_BOUNDS = (1.0, 10.0, 100.0)

# One operation on a registry.  Names are derived from the kind so a
# generated registry never has kind conflicts (a separate unit test pins
# that conflicting kinds raise).
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("counter"),
            st.integers(0, 3),
            st.integers(0, 1000),
        ),
        st.tuples(
            st.just("gauge"),
            st.integers(0, 3),
            st.integers(-50, 50),
        ),
        st.tuples(
            st.just("histogram"),
            st.integers(0, 3),
            st.integers(0, 200),
        ),
    ),
    max_size=20,
)


def _build(ops):
    registry = MetricRegistry()
    for kind, index, value in ops:
        labels = {"part": str(index % 2)} if index % 2 else {}
        if kind == "counter":
            registry.counter(f"c{index}", **labels).add(value)
        elif kind == "gauge":
            registry.gauge(f"g{index}", **labels).set(value)
        else:
            registry.histogram(f"h{index}", bounds=_BOUNDS, **labels).observe(value)
    return registry


def _copy(registry):
    return MetricRegistry.from_dict(registry.to_dict())


class TestMergeLaws:
    @settings(**SMALL)
    @given(a=_ops, b=_ops)
    def test_merge_commutative(self, a, b):
        left = _build(a).merge(_build(b))
        right = _build(b).merge(_build(a))
        assert left.to_dict() == right.to_dict()

    @settings(**SMALL)
    @given(a=_ops, b=_ops, c=_ops)
    def test_merge_associative(self, a, b, c):
        ra, rb, rc = _build(a), _build(b), _build(c)
        left = _copy(ra).merge(_copy(rb)).merge(_copy(rc))
        right = _copy(ra).merge(_copy(rb).merge(_copy(rc)))
        assert left.to_dict() == right.to_dict()

    @settings(**SMALL)
    @given(ops=_ops)
    def test_empty_is_identity(self, ops):
        registry = _build(ops)
        merged = _copy(registry).merge(MetricRegistry())
        assert merged.to_dict() == registry.to_dict()
        absorbed = MetricRegistry().merge(_copy(registry))
        assert absorbed.to_dict() == registry.to_dict()

    @settings(**SMALL)
    @given(ops=_ops, seed=seeds)
    def test_serialized_roundtrip_preserves_merge(self, ops, seed):
        """merge_dict(to_dict(r)) == merge(r): the process-pipe encoding
        loses nothing."""
        registry = _build(ops)
        via_dict = MetricRegistry().merge_dict(registry.to_dict())
        assert via_dict.to_dict() == registry.to_dict()


class TestPartitionMergeInvariance:
    """End-to-end mirror of the dispatch differential: however the fault
    universe is sharded and whatever order the shards come home in, the
    merged worker metrics are identical."""

    @settings(**SMALL)
    @given(seed=seeds, parts=st.integers(1, 6))
    def test_partition_order_irrelevant(self, seed, parts):
        netlist = generators.random_circuit(5, 30, seed=seed % 997)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        simulator = FaultSimulator(netlist, cache=None)
        patterns = random_patterns(simulator.view.num_inputs, 48, seed=seed)
        payloads = [
            partition_metrics(simulator.simulate(patterns, shard, drop=False))
            for shard in partition_faults(faults, parts, seed=seed)
        ]

        forward = MetricRegistry()
        for payload in payloads:
            forward.merge_dict(payload)
        shuffled = list(payloads)
        random.Random(seed).shuffle(shuffled)
        backward = MetricRegistry()
        for payload in shuffled:
            backward.merge_dict(payload)
        assert forward.to_dict() == backward.to_dict()

    @settings(**TINY)
    @given(seed=seeds)
    def test_worker_count_never_changes_counters(self, seed):
        """Published faultsim counters match the single-process reference
        for any --jobs, like detected maps do in test_dispatch."""
        netlist = generators.random_circuit(5, 30, seed=seed % 997)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        simulator = FaultSimulator(netlist, cache=None)
        patterns = random_patterns(simulator.view.num_inputs, 48, seed=seed)

        keys = (
            "faultsim.faults_simulated",
            "faultsim.faults_detected",
            "faultsim.events_propagated",
            "faultsim.words_evaluated",
            "faultsim.patterns_simulated",
        )

        def counters(jobs, engine):
            with obs.observe("run") as observation:
                result = simulator.simulate(
                    patterns, faults, engine=engine, jobs=jobs, seed=3
                )
            values = {key: observation.counter(key).value for key in keys}
            return values, result

        reference, ppsfp = counters(1, "ppsfp")
        for jobs in (1, 2):
            pooled, result = counters(jobs, "pool")
            assert pooled == reference
            assert result.detected == ppsfp.detected
            assert result.undetected == ppsfp.undetected
