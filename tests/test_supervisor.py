"""Supervised fault-sim pool: chaos-injection differential harness.

The supervisor's contract mirrors the dispatch layer's, under fire: for
ANY injected failure schedule — workers crashing, hanging, raising, or
returning corrupt partials — the recovered merged result must be
bit-identical to single-process PPSFP (same detected map, same
first-detection indices, same undetected list).  When recovery is
impossible, the run must degrade into an explicit partial result, never
a traceback.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks, generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim.chaos import CRASH_EXIT_CODE, ChaosError, ChaosPlan
from repro.sim.faultsim import FaultSimResult, FaultSimulator
from repro.sim.journal import CampaignJournal
from repro.sim.supervisor import (
    SupervisedPoolBackend,
    SupervisorConfig,
    validate_partial,
)


def _setup(n_inputs=6, n_gates=40, seed=7, n_patterns=96):
    netlist = generators.random_circuit(n_inputs, n_gates, seed=seed)
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, n_patterns, seed=seed)
    reference = simulator.simulate(patterns, faults, engine="ppsfp")
    return simulator, faults, patterns, reference


def _assert_identical(result, reference):
    assert result.detected == reference.detected
    assert result.undetected == reference.undetected
    assert result.total_faults == reference.total_faults


class TestCleanRuns:
    @pytest.mark.parametrize("index", range(3))
    def test_matches_ppsfp(self, index):
        circuits = [
            benchmarks.c17(),
            generators.random_circuit(5, 30, seed=101),
            generators.random_sequential(4, 40, 5, seed=303),
        ]
        netlist = circuits[index]
        simulator = FaultSimulator(netlist)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        patterns = random_patterns(simulator.view.num_inputs, 64, seed=index)
        for drop in (True, False):
            reference = simulator.simulate(patterns, faults, drop=drop)
            supervised = simulator.simulate(
                patterns, faults, drop=drop, engine="supervised", jobs=2
            )
            _assert_identical(supervised, reference)
            assert supervised.patterns_simulated == reference.patterns_simulated
            stats = supervised.stats
            assert stats["engine"] == "supervised"
            assert stats["worker_crashes"] == 0
            assert stats["retries"] == 0
            assert "failed_partitions" not in stats

    def test_partitions_override_threads_through(self):
        simulator, faults, patterns, reference = _setup()
        result = simulator.simulate(
            patterns, faults, engine="supervised", jobs=2, partitions=3
        )
        _assert_identical(result, reference)
        assert result.stats["n_partitions"] == 3
        assert len(result.stats["partitions"]) == 3

    def test_zero_faults(self):
        simulator, _, patterns, _ = _setup()
        result = simulator.simulate(patterns, [], engine="supervised")
        assert result.total_faults == 0
        assert result.detected == {} and result.undetected == []


class TestChaosRecovery:
    def test_crash_recovered(self):
        simulator, faults, patterns, reference = _setup()
        backend = SupervisedPoolBackend(
            jobs=2, chaos=ChaosPlan.single(2, "crash", times=2)
        )
        result = backend.run(simulator, patterns, faults)
        _assert_identical(result, reference)
        assert result.stats["worker_crashes"] == 2
        assert result.stats["retries"] == 2
        partition2 = next(
            p for p in result.stats["partitions"] if p["partition"] == 2
        )
        assert partition2["attempts"] == 3  # two crashes + one clean run

    def test_hang_killed_and_recovered(self):
        simulator, faults, patterns, reference = _setup()
        backend = SupervisedPoolBackend(
            jobs=2,
            chaos=ChaosPlan.single(1, "hang"),
            config=SupervisorConfig(timeout_s=0.5),
        )
        result = backend.run(simulator, patterns, faults)
        _assert_identical(result, reference)
        assert result.stats["timeouts"] == 1

    def test_raise_reported_and_recovered(self):
        simulator, faults, patterns, reference = _setup()
        backend = SupervisedPoolBackend(
            jobs=2, chaos=ChaosPlan.single(0, "raise")
        )
        result = backend.run(simulator, patterns, faults)
        _assert_identical(result, reference)
        assert result.stats["worker_crashes"] == 1  # error message, not timeout

    def test_corrupt_result_rejected_and_recovered(self):
        simulator, faults, patterns, reference = _setup()
        backend = SupervisedPoolBackend(
            jobs=2, chaos=ChaosPlan.single(3, "corrupt")
        )
        result = backend.run(simulator, patterns, faults)
        _assert_identical(result, reference)
        assert result.stats["invalid_results"] == 1

    def test_poisoned_partition_falls_back_inline(self):
        """Crashing every pool attempt forces the parent to grade inline."""
        simulator, faults, patterns, reference = _setup()
        backend = SupervisedPoolBackend(
            jobs=2, chaos=ChaosPlan.single(4, "crash", times=3)
        )
        result = backend.run(simulator, patterns, faults)
        _assert_identical(result, reference)
        assert result.stats["inline_fallbacks"] == 1
        partition4 = next(
            p for p in result.stats["partitions"] if p["partition"] == 4
        )
        assert partition4["source"] == "inline"

    def test_multiple_simultaneous_failures(self):
        simulator, faults, patterns, reference = _setup()
        chaos = ChaosPlan(
            schedule={0: ("crash",), 2: ("corrupt", "crash"), 5: ("raise",)}
        )
        backend = SupervisedPoolBackend(jobs=3, chaos=chaos)
        result = backend.run(simulator, patterns, faults)
        _assert_identical(result, reference)
        assert result.stats["retries"] == 4


class TestGracefulDegradation:
    def test_unrecoverable_partition_yields_partial_result(self):
        simulator, faults, patterns, reference = _setup()
        backend = SupervisedPoolBackend(
            jobs=2,
            chaos=ChaosPlan.single(3, "crash", times=3),
            config=SupervisorConfig(inline_fallback=False),
        )
        result = backend.run(simulator, patterns, faults)
        failed = result.stats["failed_partitions"]
        assert len(failed) == 1 and failed[0]["partition"] == 3
        assert failed[0]["faults"] > 0 and failed[0]["attempts"] == 3
        # The failed shard's faults stay conservatively undetected: the
        # result is a lower bound on coverage, and all accounting holds.
        assert result.coverage < reference.coverage
        assert result.stats["coverage_lower_bound"] == result.coverage
        assert set(result.detected) < set(reference.detected)
        assert all(
            result.detected[f] == reference.detected[f] for f in result.detected
        )
        assert len(result.detected) + len(result.undetected) == len(faults)

    def test_inline_chaos_defeats_the_fallback(self):
        """A schedule long enough to cover the inline attempt is fatal."""
        simulator, faults, patterns, _ = _setup()
        backend = SupervisedPoolBackend(
            jobs=2,
            chaos=ChaosPlan(schedule={1: ("crash", "crash", "crash", "raise")}),
        )
        result = backend.run(simulator, patterns, faults)
        failed = result.stats["failed_partitions"]
        assert len(failed) == 1
        assert "inline fallback failed" in failed[0]["reason"]
        assert result.stats["inline_fallbacks"] == 1

    def test_inline_crash_injection_cannot_kill_the_parent(self):
        """A crash scheduled for the inline attempt degrades to a failed
        shard — it must never ``os._exit`` the supervising process."""
        simulator, faults, patterns, _ = _setup()
        backend = SupervisedPoolBackend(
            jobs=2,
            chaos=ChaosPlan.single(0, "crash", times=2),
            config=SupervisorConfig(max_retries=0),
        )
        result = backend.run(simulator, patterns, faults)
        failed = result.stats["failed_partitions"]
        assert len(failed) == 1 and failed[0]["partition"] == 0
        assert "injected crash" in failed[0]["reason"]


class TestValidation:
    def test_validate_partial_accepts_clean_result(self):
        simulator, faults, patterns, _ = _setup()
        shard = faults[:5]
        partial = simulator.simulate(patterns, shard)
        assert validate_partial(partial, shard, len(patterns)) is None

    def test_validate_partial_rejects_structural_damage(self):
        simulator, faults, patterns, _ = _setup()
        shard = faults[:5]
        clean = simulator.simulate(patterns, shard)

        missing = FaultSimResult(
            total_faults=clean.total_faults,
            detected=dict(clean.detected),
            undetected=clean.undetected[:-1] if clean.undetected else [],
        )
        if clean.undetected:
            assert "not fully accounted" in validate_partial(
                missing, shard, len(patterns)
            )

        out_of_range = FaultSimResult(
            total_faults=clean.total_faults,
            detected=dict(clean.detected),
            undetected=list(clean.undetected),
        )
        fault = next(iter(out_of_range.detected))
        out_of_range.detected[fault] = len(patterns) + 1
        assert "out of range" in validate_partial(out_of_range, shard, len(patterns))

        foreign = FaultSimResult(
            total_faults=clean.total_faults,
            detected={**clean.detected, faults[10]: 0},
            undetected=list(clean.undetected),
        )
        assert validate_partial(foreign, shard, len(patterns)) is not None

    def test_config_and_argument_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            SupervisedPoolBackend(jobs=0)
        with pytest.raises(ValueError, match="partitions"):
            SupervisedPoolBackend(partitions=-1)
        with pytest.raises(ValueError, match="seed"):
            SupervisedPoolBackend(seed=-3)
        with pytest.raises(ValueError, match="timeout_s"):
            SupervisedPoolBackend(config=SupervisorConfig(timeout_s=0))
        with pytest.raises(ValueError, match="max_retries"):
            SupervisedPoolBackend(config=SupervisorConfig(max_retries=-1))
        with pytest.raises(ValueError, match="chaos mode"):
            ChaosPlan(schedule={0: ("explode",)})
        with pytest.raises(ValueError, match="partition index"):
            ChaosPlan(schedule={-1: ("crash",)})


class TestChaosPlan:
    def test_schedule_semantics(self):
        plan = ChaosPlan(schedule={2: ("crash", "hang")})
        assert plan.mode_for(2, 0) == "crash"
        assert plan.mode_for(2, 1) == "hang"
        assert plan.mode_for(2, 2) is None  # past the schedule: clean
        assert plan.mode_for(0, 0) is None  # unscheduled partition: clean

    def test_parse_round_trip(self):
        plan = ChaosPlan.parse(["2:crash,crash", "0:hang", "2:raise"])
        assert plan.schedule == {2: ("crash", "crash", "raise"), 0: ("hang",)}
        with pytest.raises(ValueError, match="chaos spec"):
            ChaosPlan.parse(["nonsense"])
        with pytest.raises(ValueError, match="no modes"):
            ChaosPlan.parse(["3:"])

    def test_raise_hook(self):
        plan = ChaosPlan.single(1, "raise")
        with pytest.raises(ChaosError):
            plan.execute_pre(1, 0)
        plan.execute_pre(1, 1)  # attempt past schedule: no-op
        plan.execute_pre(0, 0)  # other partition: no-op
        assert CRASH_EXIT_CODE != 0


class TestKeyboardInterruptTeardown:
    def test_workers_reaped_and_journal_flushed(self, tmp_path, monkeypatch):
        """An interrupt mid-campaign must kill children, keep the journal."""
        simulator, faults, patterns, _ = _setup()
        journal_path = tmp_path / "interrupted.jsonl"
        backend = SupervisedPoolBackend(
            jobs=1, partitions=4, journal=CampaignJournal(str(journal_path))
        )
        spawned = []
        original_spawn = SupervisedPoolBackend._spawn

        def interrupting_spawn(self, *args, **kwargs):
            if len(spawned) >= 2:
                raise KeyboardInterrupt
            slot = original_spawn(self, *args, **kwargs)
            spawned.append(slot)
            return slot

        monkeypatch.setattr(SupervisedPoolBackend, "_spawn", interrupting_spawn)
        with pytest.raises(KeyboardInterrupt):
            backend.run(simulator, patterns, faults)
        backend.journal.close()
        # Every spawned worker is dead, and completed shards are durable.
        for slot in spawned:
            assert not slot.process.is_alive()
        assert not multiprocessing.active_children()
        completed = sum(
            1
            for line in journal_path.read_text().splitlines()
            if '"kind":"partition"' in line
        )
        assert completed == 2
        monkeypatch.undo()
        # The interrupted campaign resumes: journal shards are skipped and
        # the final merge is bit-identical to a clean run.
        resumed = SupervisedPoolBackend(
            jobs=1, partitions=4, journal=CampaignJournal(str(journal_path))
        ).run(simulator, patterns, faults)
        reference = simulator.simulate(patterns, faults)
        _assert_identical(resumed, reference)
        assert resumed.stats["journal_skipped"] == 2


class TestChaosScheduleProperty:
    """Hypothesis: ANY recoverable injected schedule merges bit-identically."""

    @settings(max_examples=12, deadline=None)
    @given(
        schedule=st.dictionaries(
            keys=st.integers(min_value=0, max_value=3),
            values=st.lists(
                st.sampled_from(["crash", "raise", "corrupt"]),
                min_size=1,
                max_size=2,
            ).map(tuple),
            max_size=3,
        )
    )
    def test_recovered_merge_identical_to_ppsfp(self, schedule):
        netlist = generators.random_circuit(5, 25, seed=11)
        simulator = FaultSimulator(netlist)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        patterns = random_patterns(simulator.view.num_inputs, 48, seed=11)
        reference = simulator.simulate(patterns, faults)
        # Schedules are capped at max_retries entries, so the pool always
        # has one clean attempt left: recovery is guaranteed, identity must
        # hold exactly.
        backend = SupervisedPoolBackend(
            jobs=2,
            partitions=4,
            chaos=ChaosPlan(schedule=schedule),
            config=SupervisorConfig(max_retries=2, backoff_s=0.0),
        )
        result = backend.run(simulator, patterns, faults)
        _assert_identical(result, reference)
        assert "failed_partitions" not in result.stats
        injected = sum(len(modes) for p, modes in schedule.items() if p < 4)
        assert result.stats["retries"] == injected
