"""Builder helpers must implement correct word-level arithmetic."""

from hypothesis import given, settings, strategies as st

from repro.circuit.builder import NetlistBuilder
from repro.circuit.values import ONE, ZERO
from repro.sim.logicsim import LogicSimulator


def _bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def _to_int(bits):
    return sum(bit << i for i, bit in enumerate(bits))


def _eval_outputs(netlist, inputs):
    sim = LogicSimulator(netlist)
    response = sim.response(list(inputs))
    return response


class TestBasicConstruction:
    def test_auto_names_unique(self):
        b = NetlistBuilder()
        x, y = b.input(), b.input()
        g1 = b.and_(x, y)
        g2 = b.and_(x, y)
        names = [b.netlist.gates[i].name for i in (x, y, g1, g2)]
        assert len(set(names)) == 4

    def test_buses_are_lsb_first(self):
        b = NetlistBuilder()
        bus = b.input_bus("a", 3)
        assert [b.netlist.gates[i].name for i in bus] == ["a[0]", "a[1]", "a[2]"]

    def test_half_adder(self):
        b = NetlistBuilder()
        x, y = b.input("x"), b.input("y")
        s, c = b.half_adder(x, y)
        b.output("s", s)
        b.output("c", c)
        netlist = b.build()
        for a in (0, 1):
            for bb in (0, 1):
                out = _eval_outputs(netlist, [a, bb])
                assert out == [a ^ bb, a & bb]

    def test_full_adder_exhaustive(self):
        b = NetlistBuilder()
        x, y, cin = b.input("x"), b.input("y"), b.input("ci")
        s, c = b.full_adder(x, y, cin)
        b.output("s", s)
        b.output("c", c)
        netlist = b.build()
        for value in range(8):
            a, bb, ci = value & 1, (value >> 1) & 1, (value >> 2) & 1
            out = _eval_outputs(netlist, [a, bb, ci])
            total = a + bb + ci
            assert out == [total & 1, total >> 1]


class TestWordArithmetic:
    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_ripple_adder(self, a, b):
        builder = NetlistBuilder()
        abus = builder.input_bus("a", 8)
        bbus = builder.input_bus("b", 8)
        total, carry = builder.ripple_adder(abus, bbus)
        builder.output_bus("s", total)
        builder.output("c", carry)
        netlist = builder.build()
        out = _eval_outputs(netlist, _bits(a, 8) + _bits(b, 8))
        assert _to_int(out[:8]) == (a + b) & 0xFF
        assert out[8] == (a + b) >> 8

    @settings(max_examples=40, deadline=None)
    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    def test_array_multiplier(self, a, b):
        builder = NetlistBuilder()
        abus = builder.input_bus("a", 4)
        bbus = builder.input_bus("b", 4)
        product = builder.array_multiplier(abus, bbus)
        builder.output_bus("p", product)
        netlist = builder.build()
        out = _eval_outputs(netlist, _bits(a, 4) + _bits(b, 4))
        assert _to_int(out) == a * b

    @settings(max_examples=30, deadline=None)
    @given(value=st.integers(0, 63), constant=st.integers(0, 63))
    def test_equals_const(self, value, constant):
        builder = NetlistBuilder()
        bus = builder.input_bus("a", 6)
        builder.output("eq", builder.equals_const(bus, constant))
        netlist = builder.build()
        out = _eval_outputs(netlist, _bits(value, 6))
        assert out[0] == (1 if value == constant else 0)

    def test_mux_bus(self):
        builder = NetlistBuilder()
        sel = builder.input("sel")
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 4)
        builder.output_bus("y", builder.mux_bus(sel, a, b))
        netlist = builder.build()
        out0 = _eval_outputs(netlist, [0] + _bits(0b0101, 4) + _bits(0b0011, 4))
        out1 = _eval_outputs(netlist, [1] + _bits(0b0101, 4) + _bits(0b0011, 4))
        assert _to_int(out0) == 0b0101
        assert _to_int(out1) == 0b0011

    def test_mux_bus_width_mismatch(self):
        import pytest

        builder = NetlistBuilder()
        sel = builder.input("sel")
        with pytest.raises(ValueError):
            builder.mux_bus(sel, [sel], [sel, sel])
