"""Transition-delay fault ATPG (launch-on-capture)."""

import pytest

from repro.atpg.tdf import random_loc_pairs, run_tdf_atpg
from repro.circuit import generators
from repro.faults.transition import full_transition_list
from repro.sim.faultsim import FaultSimulator
from repro.sim.logicsim import LogicSimulator


class TestRandomLocPairs:
    def test_pairs_are_functionally_consistent(self, mac4):
        """Capture state must equal the good machine's next state of launch."""
        logic = LogicSimulator(mac4)
        n_pi = len(mac4.inputs)
        for launch, capture in random_loc_pairs(mac4, 12, seed=3):
            step = logic.step(launch[:n_pi], launch[n_pi:])
            expected = step["state"]
            assert capture[n_pi:] == expected

    def test_deterministic(self, mac4):
        assert random_loc_pairs(mac4, 5, seed=1) == random_loc_pairs(mac4, 5, seed=1)


class TestTdfAtpg:
    def test_mac_coverage(self, mac4):
        result = run_tdf_atpg(mac4, n_random_pairs=128, seed=1)
        assert result.coverage > 0.6
        assert result.detected == result.detected_random + result.detected_deterministic

    def test_emitted_pairs_regrade_to_same_detections(self, mac4):
        result = run_tdf_atpg(mac4, n_random_pairs=64, seed=2)
        simulator = FaultSimulator(mac4)
        faults = full_transition_list(mac4)
        regraded = simulator.simulate_transition(result.pairs, faults, drop=True)
        assert len(regraded.detected) >= result.detected_random

    def test_accounting(self, mac4):
        result = run_tdf_atpg(mac4, n_random_pairs=64, seed=4)
        assert (
            result.detected
            + len(result.unjustified)
            + len(result.untestable)
            <= result.total_faults
        )

    def test_pure_combinational_circuit(self):
        """No flops: LOC degenerates to PI-to-PI pairs; still works."""
        netlist = generators.parity_tree(8)
        result = run_tdf_atpg(netlist, n_random_pairs=128, seed=1)
        assert result.coverage > 0.9
