"""Lease-based shared shard store: multi-runner campaign differentials.

The store's contract extends the supervisor's to a second failure
domain, the host: for ANY host-level chaos schedule — a runner killed
outright, stalling its lease renewals, or partitioned from the store —
the survivors' merged result must be bit-identical to a clean
single-runner run (same detected map, same first-detection indices,
same undetected list), with zero leaked leases and zero /dev/shm
segments at exit.  The lease primitives themselves are pinned both by
unit tests with an injectable clock and by a hypothesis interleaving
property: no shard is ever double-graded into the merge, and every
shard terminates ``done``.
"""

import json
import multiprocessing
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.faults.model import StuckAtFault
from repro.obs.events import LEASE_CLAIM, LEASE_LOST, LEASE_STEAL, PUBLISH
from repro.sim import shm
from repro.sim.chaos import HOST_KILL_EXIT_CODE, HostChaosInjection, HostChaosPlan
from repro.sim.faultsim import FaultSimResult, FaultSimulator
from repro.sim.journal import CampaignKey
from repro.sim.store import (
    ShardStore,
    StoreCorruptionError,
    StoreMismatchError,
    read_store_progress,
    result_digest,
    validate_store_args,
)
from repro.sim.supervisor import SupervisedPoolBackend, SupervisorConfig


def _key(**overrides) -> CampaignKey:
    fields = dict(
        signature="sig", patterns="pat", faults="flt",
        seed=0, partitions=4, drop=True,
    )
    fields.update(overrides)
    return CampaignKey(**fields)


def _partial(shard: int) -> FaultSimResult:
    """A deterministic fake shard result (identical for every grader)."""
    partial = FaultSimResult(total_faults=2)
    partial.detected[StuckAtFault(f"g{shard}", "out", 0)] = shard
    partial.undetected = [StuckAtFault(f"g{shard}", "out", 1)]
    partial.patterns_simulated = 8
    partial.stats["wall_time_s"] = 0.125 * shard  # nondeterministic IRL
    return partial


class FakeClock:
    def __init__(self):
        self.t = 1000.0

    def __call__(self):
        return self.t


def _store(root, runner="r0", lease_s=10.0, clock=None):
    return ShardStore(
        root, runner_id=runner, lease_s=lease_s,
        clock=clock if clock is not None else FakeClock(),
    )


class TestValidation:
    def test_good_args_pass(self):
        validate_store_args(runner_id="runner-1.a_b", lease_s=0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(runner_id=""),
            dict(runner_id=None),
            dict(runner_id="x" * 65),
            dict(runner_id="has space"),
            dict(runner_id="slash/y"),
            dict(lease_s=0),
            dict(lease_s=-1.0),
            dict(lease_s="soon"),
        ],
    )
    def test_bad_args_rejected(self, kwargs):
        with pytest.raises(ValueError):
            validate_store_args(**kwargs)

    def test_host_chaos_requires_store(self):
        with pytest.raises(ValueError, match="store"):
            SupervisedPoolBackend(host_chaos=HostChaosPlan.single("r0", "kill"))

    def test_bad_injection_rejected(self):
        with pytest.raises(ValueError):
            HostChaosInjection("meteor")
        with pytest.raises(ValueError):
            HostChaosInjection("kill", after_publishes=-1)
        with pytest.raises(ValueError):
            HostChaosPlan.parse(["r0:kill@soon"])
        with pytest.raises(ValueError):
            HostChaosPlan.parse(["no-colon"])

    def test_parse_specs(self):
        plan = HostChaosPlan.parse(["r1:kill@2", "r0:partition@1,0.5"])
        assert plan.for_runner("r1") == HostChaosInjection("kill", 2, 0.0)
        assert plan.for_runner("r0") == HostChaosInjection("partition", 1, 0.5)
        assert plan.for_runner("r9") is None


class TestCampaignIdentity:
    def test_initialize_pins_and_attaches(self, tmp_path):
        store = _store(tmp_path)
        assert store.initialize(_key(), 4) is True
        peer = _store(tmp_path, runner="r1")
        assert peer.initialize(_key(), 4) is False  # attached, not created
        assert peer.n_shards == 4

    def test_mismatch_names_fields(self, tmp_path):
        _store(tmp_path).initialize(_key(), 4)
        with pytest.raises(StoreMismatchError) as excinfo:
            _store(tmp_path, runner="r1").initialize(
                _key(patterns="other", seed=9), 4
            )
        message = str(excinfo.value)
        assert "patterns" in message and "seed" in message
        assert "signature" not in message

    def test_shard_count_mismatch_rejected(self, tmp_path):
        _store(tmp_path).initialize(_key(), 4)
        with pytest.raises(StoreMismatchError, match="n_shards"):
            _store(tmp_path, runner="r1").initialize(_key(), 5)


class TestLeaseLifecycle:
    def test_claim_then_peer_blocked_until_expiry(self, tmp_path):
        clock = FakeClock()
        mine = _store(tmp_path, runner="r0", clock=clock)
        peer = _store(tmp_path, runner="r1", clock=clock)
        mine.initialize(_key(), 2)
        peer.initialize(_key(), 2)
        lease = mine.try_claim(0)
        assert lease is not None and lease.runner == "r0"
        assert mine.try_claim(0) is None  # own live lease: not re-claimable
        assert peer.try_claim(0) is None  # live peer holds it
        clock.t += 10.1  # past the deadline: stealable
        stolen = peer.try_claim(0)
        assert stolen is not None and stolen.stolen_from == "r0"
        assert peer.steals == 1
        kinds = [event.kind for event in peer.events.events]
        assert LEASE_STEAL in kinds

    def test_renew_extends_and_loses_after_steal(self, tmp_path):
        clock = FakeClock()
        mine = _store(tmp_path, runner="r0", clock=clock)
        peer = _store(tmp_path, runner="r1", clock=clock)
        mine.initialize(_key(), 1)
        peer.initialize(_key(), 1)
        lease = mine.try_claim(0)
        clock.t += 6.0
        renewed = mine.renew(lease)
        assert renewed is not None
        assert renewed.deadline == pytest.approx(clock.t + 10.0)
        clock.t += 10.1
        assert peer.try_claim(0) is not None  # steal
        assert mine.renew(renewed) is None  # lost: stealer owns it now
        kinds = [event.kind for event in mine.events.events]
        assert LEASE_LOST in kinds

    def test_release_frees_the_shard(self, tmp_path):
        clock = FakeClock()
        mine = _store(tmp_path, runner="r0", clock=clock)
        peer = _store(tmp_path, runner="r1", clock=clock)
        mine.initialize(_key(), 1)
        peer.initialize(_key(), 1)
        lease = mine.try_claim(0)
        mine.release(lease)
        assert peer.try_claim(0) is not None  # immediately claimable

    def test_needs_renewal_at_half_life(self, tmp_path):
        clock = FakeClock()
        store = _store(tmp_path, clock=clock)
        store.initialize(_key(), 1)
        lease = store.try_claim(0)
        assert not store.needs_renewal(lease)
        clock.t += 5.1  # less than half the 10s lease remains
        assert store.needs_renewal(lease)

    def test_claim_of_done_shard_refused(self, tmp_path):
        store = _store(tmp_path)
        store.initialize(_key(), 1)
        lease = store.try_claim(0)
        store.publish(0, _partial(0))
        assert store.try_claim(0) is None
        assert lease.shard == 0  # publish released the lease
        assert store.leases() == {}


class TestPublish:
    def test_first_write_wins_and_duplicates_converge(self, tmp_path):
        clock = FakeClock()
        mine = _store(tmp_path, runner="r0", clock=clock)
        peer = _store(tmp_path, runner="r1", clock=clock)
        mine.initialize(_key(), 1)
        peer.initialize(_key(), 1)
        assert mine.publish(0, _partial(0)) is True
        # A racing duplicate (identical grading, different wall stats —
        # the digest must ignore them) converges silently.
        duplicate = _partial(0)
        duplicate.stats["wall_time_s"] = 99.0
        assert peer.publish(0, duplicate) is False
        assert peer.publish_conflicts == 1
        results = peer.load_results()
        assert results[0].detected == _partial(0).detected
        assert results[0].stats["published_by"] == "r0"

    def test_divergent_duplicate_is_corruption(self, tmp_path):
        clock = FakeClock()
        mine = _store(tmp_path, runner="r0", clock=clock)
        peer = _store(tmp_path, runner="r1", clock=clock)
        mine.initialize(_key(), 1)
        peer.initialize(_key(), 1)
        mine.publish(0, _partial(0))
        divergent = _partial(0)
        divergent.detected[StuckAtFault("g0", "out", 0)] = 7  # different index
        with pytest.raises(StoreCorruptionError, match="diverge"):
            peer.publish(0, divergent)

    def test_tampered_result_file_detected_on_load(self, tmp_path):
        store = _store(tmp_path)
        store.initialize(_key(), 1)
        store.publish(0, _partial(0))
        path = os.path.join(str(tmp_path), "shards", "00000.result")
        payload = json.load(open(path))
        payload["partial"]["detected"][0][3] = 99
        os.unlink(path)  # result files are link-protected: replace whole file
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(StoreCorruptionError, match="corrupt"):
            store.load_results()

    def test_digest_ignores_stats(self):
        one, two = _partial(3), _partial(3)
        two.stats["wall_time_s"] = 1e9
        two.stats["metrics"] = {"different": True}
        from repro.sim.journal import serialize_partial

        assert result_digest(serialize_partial(3, one)) == result_digest(
            serialize_partial(3, two)
        )

    def test_sweep_removes_stale_leases_of_done_shards(self, tmp_path):
        clock = FakeClock()
        dead = _store(tmp_path, runner="dead", clock=clock)
        live = _store(tmp_path, runner="live", clock=clock)
        dead.initialize(_key(), 1)
        live.initialize(_key(), 1)
        dead.try_claim(0)  # never released: the runner "died"
        clock.t += 10.1
        live.publish(0, _partial(0))  # publish does not require the lease
        assert live.leases() != {}
        assert live.sweep() == 1
        assert live.leases() == {}


# Interleaving ops: (action, runner, shard).  ``advance`` moves the
# shared fake clock by 6s — two of them expire a 10s lease.
_ops = st.lists(
    st.tuples(
        st.sampled_from(["claim", "renew", "publish", "release", "advance"]),
        st.integers(0, 1),
        st.integers(0, 2),
    ),
    max_size=40,
)


class TestLeaseLifecycleProperties:
    @given(ops=_ops)
    @settings(max_examples=30, deadline=None)
    def test_any_interleaving_converges(self, ops):
        """No double grade into the merge; every shard terminates done."""
        root = tempfile.mkdtemp(prefix="repro_store_prop_")
        clock = FakeClock()
        n_shards = 3
        stores = [
            _store(root, runner=f"r{i}", clock=clock) for i in range(2)
        ]
        for store in stores:
            store.initialize(_key(partitions=n_shards), n_shards)
        held = [dict(), dict()]
        partials = {shard: _partial(shard) for shard in range(n_shards)}
        wins = {shard: 0 for shard in range(n_shards)}

        def publish(store, shard):
            if store.publish(shard, partials[shard]):
                wins[shard] += 1

        for action, runner, shard in ops:
            store = stores[runner]
            if action == "advance":
                clock.t += 6.0
            elif action == "claim":
                lease = store.try_claim(shard)
                if lease is not None:
                    held[runner][shard] = lease
            elif action == "renew":
                lease = held[runner].get(shard)
                if lease is not None:
                    renewed = store.renew(lease)
                    if renewed is None:
                        held[runner].pop(shard)
                    else:
                        held[runner][shard] = renewed
            elif action == "publish":
                lease = held[runner].pop(shard, None)
                if lease is not None:
                    publish(store, shard)
            elif action == "release":
                lease = held[runner].pop(shard, None)
                if lease is not None:
                    store.release(lease)
            # First-write-wins: never more than one winning publish per
            # shard, no matter the interleaving.
            assert all(count <= 1 for count in wins.values())
            # The filesystem is the lock: at most one lease file per shard.
            live = stores[0].leases()
            assert len(live) <= n_shards

        # Drain: one surviving runner steals whatever is left and finishes.
        survivor = stores[0]
        for _ in range(n_shards * 3):
            if survivor.is_complete():
                break
            clock.t += 11.0  # everything outstanding expires
            for shard in range(n_shards):
                if survivor.is_done(shard):
                    continue
                lease = survivor.try_claim(shard)
                if lease is not None:
                    publish(survivor, shard)
        assert survivor.is_complete()
        assert sorted(survivor.done_indices()) == list(range(n_shards))
        # Exactly one winning grade per shard reached the merge, and the
        # merged bytes are the winner's.
        assert all(count == 1 for count in wins.values())
        results = survivor.load_results()
        for shard in range(n_shards):
            assert results[shard].detected == partials[shard].detected
            assert results[shard].undetected == partials[shard].undetected
        survivor.sweep()
        assert survivor.leases() == {}


# ----------------------------------------------------------------------
# Campaign differentials (real simulations, real processes)
# ----------------------------------------------------------------------


def _setup(n_inputs=6, n_gates=40, seed=7, n_patterns=96):
    netlist = generators.random_circuit(n_inputs, n_gates, seed=seed)
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, n_patterns, seed=seed)
    reference = simulator.simulate(patterns, faults, engine="ppsfp")
    return simulator, faults, patterns, reference


def _assert_identical(result, reference):
    assert result.detected == reference.detected
    assert result.undetected == reference.undetected
    assert result.total_faults == reference.total_faults


def _run_runner(root, runner_id, netlist, patterns, faults, queue,
                host_chaos=None, lease_s=1.0, partitions=6, jobs=2):
    """One independent runner process (the unit host chaos kills)."""
    store = ShardStore(root, runner_id=runner_id, lease_s=lease_s)
    backend = SupervisedPoolBackend(
        jobs=jobs, seed=0, partitions=partitions,
        config=SupervisorConfig(poll_interval_s=0.005),
        store=store, host_chaos=host_chaos,
    )
    result = FaultSimulator(netlist).simulate(patterns, faults, engine=backend)
    queue.put(
        {
            "runner": runner_id,
            "detected": sorted(
                (f.gate, f.pin, f.value, first)
                for f, first in result.detected.items()
            ),
            "undetected": sorted(
                (f.gate, f.pin, f.value) for f in result.undetected
            ),
            "total": result.total_faults,
            "store": result.stats["store"],
        }
    )


def _launch_fleet(root, netlist, patterns, faults, runner_ids, **kwargs):
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    processes = [
        context.Process(
            target=_run_runner,
            args=(root, runner_id, netlist, patterns, faults, queue),
            kwargs=kwargs,
        )
        for runner_id in runner_ids
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
    exit_codes = {
        runner_id: process.exitcode
        for runner_id, process in zip(runner_ids, processes)
    }
    reports = []
    while not queue.empty():
        reports.append(queue.get())
    return exit_codes, reports


def _assert_report_identical(report, reference):
    assert report["total"] == reference.total_faults
    assert report["detected"] == sorted(
        (f.gate, f.pin, f.value, first)
        for f, first in reference.detected.items()
    )
    assert report["undetected"] == sorted(
        (f.gate, f.pin, f.value) for f in reference.undetected
    )


def _assert_clean_exit(root):
    shards_dir = os.path.join(str(root), "shards")
    leases = [n for n in os.listdir(shards_dir) if n.endswith(".lease")]
    assert leases == [], f"leaked leases: {leases}"
    tmp = [n for n in os.listdir(shards_dir) if n.startswith(".tmp-")]
    assert tmp == [], f"leaked temp files: {tmp}"
    assert shm.segment_names() == []


class TestStoreCampaigns:
    def test_single_runner_matches_ppsfp(self, tmp_path):
        simulator, faults, patterns, reference = _setup()
        store = ShardStore(str(tmp_path), runner_id="solo", lease_s=5.0)
        backend = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4, store=store
        )
        result = simulator.simulate(patterns, faults, engine=backend)
        _assert_identical(result, reference)
        stats = result.stats["store"]
        assert stats["shards_graded_here"] == 4
        assert stats["published"] == 4
        assert stats["steals"] == 0
        assert not stats["finished_by_peers"]
        kinds = [event.kind for event in store.events.events]
        assert LEASE_CLAIM in kinds and PUBLISH in kinds
        _assert_clean_exit(tmp_path)

    def test_event_payloads_reach_result_stats(self, tmp_path):
        simulator, faults, patterns, reference = _setup()
        store = ShardStore(str(tmp_path), runner_id="solo", lease_s=5.0)
        backend = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=3, store=store
        )
        result = simulator.simulate(patterns, faults, engine=backend)
        payloads = result.stats["events"]
        kinds = {
            event["kind"]
            for payload in payloads
            for event in payload["events"]
        }
        assert LEASE_CLAIM in kinds and PUBLISH in kinds
        # Worker partition timelines were stitched in too.
        assert "partition_begin" in kinds

    def test_second_runner_finished_by_peers(self, tmp_path):
        simulator, faults, patterns, reference = _setup()
        first = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4,
            store=ShardStore(str(tmp_path), runner_id="r0", lease_s=5.0),
        )
        simulator.simulate(patterns, faults, engine=first)
        late = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4,
            store=ShardStore(str(tmp_path), runner_id="r1", lease_s=5.0),
        )
        result = FaultSimulator(simulator.netlist).simulate(
            patterns, faults, engine=late
        )
        _assert_identical(result, reference)
        stats = result.stats["store"]
        assert stats["finished_by_peers"]
        assert stats["shards_graded_here"] == 0
        assert all(
            row["source"] == "peer" for row in result.stats["partitions"]
        )
        _assert_clean_exit(tmp_path)

    def test_mismatched_campaign_rejected(self, tmp_path):
        simulator, faults, patterns, _ = _setup()
        first = SupervisedPoolBackend(
            jobs=1, seed=0, partitions=4,
            store=ShardStore(str(tmp_path), runner_id="r0"),
        )
        simulator.simulate(patterns, faults, engine=first)
        wrong_seed = SupervisedPoolBackend(
            jobs=1, seed=1, partitions=4,
            store=ShardStore(str(tmp_path), runner_id="r1"),
        )
        with pytest.raises(StoreMismatchError, match="seed"):
            FaultSimulator(simulator.netlist).simulate(
                patterns, faults, engine=wrong_seed
            )

    def test_three_concurrent_runners_bit_identical(self, tmp_path):
        simulator, faults, patterns, reference = _setup()
        exit_codes, reports = _launch_fleet(
            str(tmp_path), simulator.netlist, patterns, faults,
            ["r0", "r1", "r2"],
        )
        assert set(exit_codes.values()) == {0}
        assert len(reports) == 3
        for report in reports:
            _assert_report_identical(report, reference)
        graded = sum(report["store"]["shards_graded_here"] for report in reports)
        assert graded >= 6  # every shard graded at least once, somewhere
        _assert_clean_exit(tmp_path)

    def test_host_kill_differential(self, tmp_path):
        """The acceptance scenario: 3 runners, one killed mid-campaign.

        Survivors must steal the dead runner's shards and produce results
        bit-identical to clean single-runner PPSFP, with the steal visible
        in the telemetry and nothing leaked.
        """
        simulator, faults, patterns, reference = _setup()
        plan = HostChaosPlan.single("r1", "kill", after=1)
        # The doomed runner goes first, alone, so the kill lands
        # deterministically: it claims shards, publishes one, and dies
        # hard still holding at least one lease.
        exit_codes, reports = _launch_fleet(
            str(tmp_path), simulator.netlist, patterns, faults,
            ["r1"], host_chaos=plan, lease_s=0.8,
        )
        assert exit_codes["r1"] == HOST_KILL_EXIT_CODE
        assert reports == []  # killed mid-campaign: no result escaped
        progress = read_store_progress(str(tmp_path))
        assert not progress["complete"]
        assert progress["leased"] >= 1  # the dead runner's leases linger
        # Survivors arrive, wait out the dead runner's lease deadline,
        # steal its shards, and finish the campaign.
        exit_codes, reports = _launch_fleet(
            str(tmp_path), simulator.netlist, patterns, faults,
            ["r0", "r2"], host_chaos=plan, lease_s=0.8,
        )
        assert exit_codes == {"r0": 0, "r2": 0}
        assert len(reports) == 2
        for report in reports:
            _assert_report_identical(report, reference)
        progress = read_store_progress(str(tmp_path))
        assert progress["complete"]
        assert progress["steals"] >= 1  # the steal is visible in telemetry
        _assert_clean_exit(tmp_path)

    def test_host_stall_converges(self, tmp_path):
        """A stalled runner keeps grading while peers steal its shards;
        the double grades must converge first-write-wins."""
        simulator, faults, patterns, reference = _setup()
        plan = HostChaosPlan.single("r0", "stall", after=0, duration_s=0.0)
        exit_codes, reports = _launch_fleet(
            str(tmp_path), simulator.netlist, patterns, faults,
            ["r0", "r1"], host_chaos=plan, lease_s=0.5,
        )
        assert set(exit_codes.values()) == {0}
        for report in reports:
            _assert_report_identical(report, reference)
        _assert_clean_exit(tmp_path)

    def test_host_partition_converges(self, tmp_path):
        """A runner partitioned from the store queues publishes and lands
        them late, idempotently, once the window heals."""
        simulator, faults, patterns, reference = _setup()
        store = ShardStore(str(tmp_path), runner_id="r0", lease_s=5.0)
        backend = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4,
            config=SupervisorConfig(poll_interval_s=0.005),
            store=store,
            host_chaos=HostChaosPlan.single(
                "r0", "partition", after=1, duration_s=0.3
            ),
        )
        result = simulator.simulate(patterns, faults, engine=backend)
        _assert_identical(result, reference)
        assert result.stats["store"]["published"] == 4
        _assert_clean_exit(tmp_path)

    def test_worker_chaos_still_recovers_in_store_mode(self, tmp_path):
        """Worker-level chaos composes with the store: a crashing worker
        is retried locally, not surrendered to peers."""
        from repro.sim.chaos import ChaosPlan

        simulator, faults, patterns, reference = _setup()
        backend = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4,
            store=ShardStore(str(tmp_path), runner_id="r0", lease_s=5.0),
            chaos=ChaosPlan.single(1, "crash"),
        )
        result = simulator.simulate(patterns, faults, engine=backend)
        _assert_identical(result, reference)
        assert result.stats["worker_crashes"] == 1
        assert result.stats["retries"] == 1
        _assert_clean_exit(tmp_path)

    def test_journal_replay_publishes_to_store(self, tmp_path):
        """A journaled campaign resumed in store mode publishes its
        checkpointed shards instead of re-grading them."""
        from repro.sim.journal import CampaignJournal

        simulator, faults, patterns, reference = _setup()
        journal_path = str(tmp_path / "campaign.jsonl")
        first = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4,
            journal=CampaignJournal(journal_path),
        )
        simulator.simulate(patterns, faults, engine=first)
        store_dir = str(tmp_path / "store")
        resumed = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4,
            journal=CampaignJournal(journal_path),
            store=ShardStore(store_dir, runner_id="r0"),
        )
        result = FaultSimulator(simulator.netlist).simulate(
            patterns, faults, engine=resumed
        )
        _assert_identical(result, reference)
        assert result.stats["journal_skipped"] == 4
        assert result.stats["store"]["shards_graded_here"] == 4
        assert all(
            row["source"] == "journal" for row in result.stats["partitions"]
        )

    def test_progress_view_fields(self, tmp_path):
        simulator, faults, patterns, _ = _setup()
        backend = SupervisedPoolBackend(
            jobs=2, seed=0, partitions=4,
            store=ShardStore(str(tmp_path), runner_id="viewer"),
        )
        simulator.simulate(patterns, faults, engine=backend)
        progress = read_store_progress(str(tmp_path))
        assert progress["partitions_done_count"] == 4
        assert progress["partitions_total"] == 4
        assert progress["complete"]
        assert progress["leased"] == 0
        assert progress["runners"]["viewer"]["published"] == 4
        assert progress["faults_graded"] > 0
