"""MISR signature compaction."""

import random

import pytest

from repro.compression.misr import (
    MISR,
    measure_aliasing,
    theoretical_aliasing_probability,
)


class TestSignature:
    def test_deterministic(self):
        stream = [[1, 0, 1], [0, 1, 1], [1, 1, 1]]
        a = MISR(8).absorb_stream(stream)
        b = MISR(8).absorb_stream(stream)
        assert a == b

    def test_sensitive_to_any_flip(self):
        rng = random.Random(2)
        stream = [[rng.randint(0, 1) for _ in range(8)] for _ in range(20)]
        reference = MISR(16).absorb_stream(stream)
        for trial in range(10):
            cycle = rng.randrange(20)
            bit = rng.randrange(8)
            mutated = [row[:] for row in stream]
            mutated[cycle][bit] ^= 1
            assert MISR(16).absorb_stream(mutated) != reference

    def test_order_matters(self):
        a = MISR(8).absorb_stream([[1, 0], [0, 1]])
        b = MISR(8).absorb_stream([[0, 1], [1, 0]])
        assert a != b

    def test_slice_width_checked(self):
        misr = MISR(4)
        with pytest.raises(ValueError):
            misr.absorb([1] * 5)

    def test_x_rejected(self):
        misr = MISR(8)
        with pytest.raises(ValueError, match="mask unknowns"):
            misr.absorb([1, 2, 0])


class TestAliasing:
    def test_theoretical(self):
        assert theoretical_aliasing_probability(16) == pytest.approx(2**-16)

    def test_measured_aliasing_is_rare(self):
        rng = random.Random(0)
        good = [[rng.randint(0, 1) for _ in range(12)] for _ in range(16)]
        faulty_streams = []
        for _ in range(200):
            mutated = [row[:] for row in good]
            flips = rng.randint(1, 5)
            for _ in range(flips):
                mutated[rng.randrange(16)][rng.randrange(12)] ^= 1
            if mutated != good:
                faulty_streams.append(mutated)
        rate = measure_aliasing(16, good, faulty_streams)
        assert rate < 0.02

    def test_empty_faulty_set(self):
        assert measure_aliasing(8, [[1, 0]], []) == 0.0
