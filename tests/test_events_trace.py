"""Telemetry event streams and Chrome trace export (``repro.obs.events``,
``repro.obs.trace``).

Covers the cross-process round trip end to end: clock-skew stitching of
shipped payloads, JSONL side files (torn-line tolerance included), the
backend wiring that carries worker events home inside
``FaultSimResult.stats``, and the trace-event JSON the acceptance
criterion loads into Perfetto — one track per worker, instant markers
for supervisor moments, counter series from heartbeats.
"""

import json

import pytest

from repro import obs
from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.obs import EventLog, RunReport, TelemetryEvent, chrome_trace
from repro.obs.events import (
    CHAOS,
    CRASH,
    HEARTBEAT,
    PARTITION_BEGIN,
    PARTITION_END,
    RETRY,
    read_jsonl,
    stitch_payloads,
)
from repro.obs.trace import write_chrome_trace
from repro.sim.chaos import ChaosPlan
from repro.sim.faultsim import FaultSimulator
from repro.sim.supervisor import SupervisedPoolBackend, SupervisorConfig


def _campaign(seed=21, n_gates=40, n_patterns=96):
    netlist = generators.random_circuit(6, n_gates, seed=seed)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = FaultSimulator(netlist, cache=None)
    patterns = random_patterns(simulator.view.num_inputs, n_patterns, seed=seed)
    return simulator, patterns, faults


class TestTelemetryEvent:
    def test_roundtrip_omits_empty_fields(self):
        event = TelemetryEvent(kind=RETRY, name="retry", t_mono=1.5, t_wall=2.5, pid=7)
        payload = event.to_dict()
        assert "partition" not in payload and "args" not in payload
        assert TelemetryEvent.from_dict(payload) == event

    def test_roundtrip_keeps_identity(self):
        event = TelemetryEvent(
            kind=PARTITION_END, name="partition", t_mono=3.0, t_wall=4.0,
            pid=9, partition=2, attempt=1, args={"detected": 5},
        )
        clone = TelemetryEvent.from_dict(json.loads(json.dumps(event.to_dict())))
        assert clone == event


class TestEventLogStitching:
    def test_emit_stamps_both_clocks_and_pid(self):
        log = EventLog()
        event = log.emit(HEARTBEAT, "beat", partition=1, faults_graded=10)
        assert event.pid == log.pid
        assert event.t_wall > 0 and event.t_mono > 0
        assert event.args == {"faults_graded": 10}

    def test_ingest_rebases_onto_local_monotonic_clock(self):
        """A worker with a shifted perf_counter epoch lines up after ingest."""
        parent = EventLog()
        anchor = parent.emit(PARTITION_BEGIN, "anchor")

        worker = EventLog()
        # Simulate a different perf_counter zero point in the worker: its
        # wall clock agrees but its monotonic clock is offset by 1000s.
        shift = 1000.0
        worker.wall_minus_mono -= shift
        worker.events.append(
            TelemetryEvent(
                kind=PARTITION_END, name="w", pid=worker.pid,
                t_mono=anchor.t_mono + shift + 0.5,
                t_wall=anchor.t_wall + 0.5,
            )
        )
        added = parent.ingest(worker.to_payload())
        assert added == 1
        merged = parent.merged()
        assert [e.name for e in merged] == ["anchor", "w"]
        # After re-basing, the worker event sits ~0.5s after the anchor on
        # the PARENT's monotonic timeline, not 1000s away.
        assert merged[1].t_mono - merged[0].t_mono == pytest.approx(0.5, abs=1e-6)

    def test_ingest_preserves_worker_spacing_exactly(self):
        worker = EventLog()
        worker.wall_minus_mono += 123.456
        first = TelemetryEvent(kind=PARTITION_BEGIN, t_mono=10.0, pid=worker.pid)
        second = TelemetryEvent(kind=PARTITION_END, t_mono=10.25, pid=worker.pid)
        worker.events.extend([first, second])
        parent = EventLog()
        parent.ingest(worker.to_payload())
        a, b = parent.merged()
        assert b.t_mono - a.t_mono == pytest.approx(0.25, abs=1e-9)

    def test_ingest_tolerates_none_and_empty(self):
        log = EventLog()
        assert log.ingest(None) == 0
        assert log.ingest({}) == 0
        assert log.ingest({"clock": {}, "events": []}) == 0

    def test_stitch_payloads_merges_multiple_sources(self):
        logs = [EventLog() for _ in range(3)]
        for index, log in enumerate(logs):
            log.emit(PARTITION_BEGIN, f"p{index}", partition=index)
        stitched = stitch_payloads([log.to_payload() for log in logs])
        assert len(stitched) == 3
        assert {e.partition for e in stitched.merged()} == {0, 1, 2}


class TestJsonlSideFiles:
    def test_write_and_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog()
        log.emit(PARTITION_BEGIN, "p", partition=0)
        log.emit(PARTITION_END, "p", partition=0, detected=3)
        log.write_jsonl(path)
        (payload,) = read_jsonl(path)
        assert payload["clock"]["pid"] == log.pid
        assert len(payload["events"]) == 2
        restored = stitch_payloads([payload])
        assert [e.kind for e in restored.merged()] == [
            PARTITION_BEGIN, PARTITION_END,
        ]

    def test_multiple_appends_become_multiple_payloads(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        for _ in range(2):
            log = EventLog()
            log.emit(HEARTBEAT, "beat")
            log.write_jsonl(path)
        assert len(read_jsonl(path)) == 2

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog()
        log.emit(PARTITION_BEGIN, "p", partition=0)
        log.emit(PARTITION_END, "p", partition=0)
        log.write_jsonl(path)
        with open(path, "a") as handle:
            handle.write('{"kind": "partition_beg')  # kill mid-write
        (payload,) = read_jsonl(path)
        assert len(payload["events"]) == 2  # intact prefix survives


class TestBackendEventWiring:
    @pytest.mark.parametrize("engine", ["pool", "supervised"])
    def test_sharded_runs_ship_partition_events(self, engine):
        simulator, patterns, faults = _campaign()
        with obs.observe("run") as observation:
            result = simulator.simulate(
                patterns, faults, engine=engine, jobs=2, partitions=4
            )
        payloads = result.stats.get("events")
        assert payloads, "sharded backends must ship event payloads home"
        merged = observation.events.merged()
        begins = [e for e in merged if e.kind == PARTITION_BEGIN]
        ends = [e for e in merged if e.kind == PARTITION_END]
        assert {e.partition for e in begins} == set(range(4))
        assert {e.partition for e in ends} == set(range(4))
        for begin, end in zip(sorted(begins, key=lambda e: e.partition),
                              sorted(ends, key=lambda e: e.partition)):
            assert end.t_mono >= begin.t_mono  # stitched onto one timeline

    def test_supervised_emits_heartbeats_and_chaos_instants(self):
        simulator, patterns, faults = _campaign()
        backend = SupervisedPoolBackend(
            jobs=2, partitions=4,
            config=SupervisorConfig(backoff_s=0.0),
            chaos=ChaosPlan.single(1, "crash"),
        )
        with obs.observe("run") as observation:
            result = simulator.simulate(patterns, faults, engine=backend)
        kinds = {e.kind for e in observation.events.merged()}
        assert {HEARTBEAT, CHAOS, CRASH, RETRY} <= kinds
        beats = [
            e for e in observation.events.merged() if e.kind == HEARTBEAT
        ]
        # One heartbeat per recorded shard, gauges monotonically rising.
        assert len(beats) == 4
        graded = [e.args["faults_graded"] for e in beats]
        assert graded == sorted(graded)
        assert beats[-1].args["faults_graded"] == result.total_faults
        assert beats[-1].args["partitions_done"] == 4

    def test_unobserved_run_still_carries_payloads(self):
        """Event payloads ride stats even with no observation active."""
        simulator, patterns, faults = _campaign()
        result = simulator.simulate(
            patterns, faults, engine="pool", jobs=1, partitions=3
        )
        assert len(result.stats["events"]) == 3


class TestMetricsLossAnnotation:
    def test_crashed_attempts_annotate_lower_bound(self):
        simulator, patterns, faults = _campaign()
        backend = SupervisedPoolBackend(
            jobs=2, partitions=4,
            config=SupervisorConfig(backoff_s=0.0),
            chaos=ChaosPlan.single(2, "crash", times=2),
        )
        result = backend.run(simulator, patterns, faults)
        assert result.stats["metrics_lost_attempts"] == 2
        assert result.stats["metrics_lower_bound"] is True
        row = next(
            p for p in result.stats["partitions"] if p["partition"] == 2
        )
        assert row["metrics_lost_attempts"] == 2
        registry = obs.MetricRegistry.from_dict(result.stats["metrics"])
        assert registry.counter("faultsim.metrics_lost_attempts").value == 2

    def test_clean_run_has_no_loss_annotation(self):
        simulator, patterns, faults = _campaign()
        backend = SupervisedPoolBackend(jobs=2, partitions=4)
        result = backend.run(simulator, patterns, faults)
        assert "metrics_lost_attempts" not in result.stats
        assert "metrics_lower_bound" not in result.stats
        for row in result.stats["partitions"]:
            assert "metrics_lost_attempts" not in row


class TestChromeTrace:
    def _report(self, chaos=None):
        simulator, patterns, faults = _campaign()
        backend = SupervisedPoolBackend(
            jobs=2, partitions=4,
            config=SupervisorConfig(backoff_s=0.0), chaos=chaos,
        )
        with obs.observe("repro.faultsim", command="faultsim") as observation:
            simulator.simulate(patterns, faults, engine=backend)
        return RunReport.from_observation(observation)

    def test_one_track_per_worker_process(self):
        report = self._report()
        trace = chrome_trace(report)
        events = trace["traceEvents"]
        parent_pid = report.events_payload["clock"]["pid"]
        worker_pids = {
            e["pid"]
            for e in events
            if e["ph"] == "X" and e.get("cat") == "partition"
        }
        assert worker_pids and parent_pid not in worker_pids
        named = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for pid in worker_pids:
            assert named[pid] == f"worker pid={pid}"
        # The span tree rides the parent track.
        span_names = {
            e["name"] for e in events
            if e["ph"] == "X" and e["pid"] == parent_pid
        }
        assert "repro.faultsim" in span_names and "faultsim" in span_names

    def test_chaos_schedule_appears_as_instants(self):
        report = self._report(chaos=ChaosPlan.single(0, "crash"))
        events = chrome_trace(report)["traceEvents"]
        instants = {e["name"] for e in events if e["ph"] == "i"}
        assert "chaos:crash p0" in instants
        assert "worker_crash p0" in instants
        assert "retry p0" in instants

    def test_heartbeats_become_counter_series(self):
        report = self._report()
        counters = [
            e for e in chrome_trace(report)["traceEvents"] if e["ph"] == "C"
        ]
        assert len(counters) == 4
        values = [c["args"]["faults_graded"] for c in counters]
        assert values == sorted(values)

    def test_timestamps_relative_and_nonnegative(self):
        report = self._report()
        for event in chrome_trace(report)["traceEvents"]:
            if "ts" in event:
                assert event["ts"] >= 0.0

    def test_written_file_is_valid_json_with_trace_keys(self, tmp_path):
        report = self._report()
        path = str(tmp_path / "out.trace.json")
        write_chrome_trace(path, report)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["name"] == "repro.faultsim"
        assert isinstance(loaded["traceEvents"], list) and loaded["traceEvents"]

    def test_trace_from_deserialized_report_matches(self, tmp_path):
        """Trace export works from a --report file read back from disk."""
        report = self._report()
        clone = RunReport.from_json(report.to_json())
        assert chrome_trace(clone) == chrome_trace(report)

    def test_report_without_events_still_traces_spans(self):
        with obs.observe("bare") as observation:
            with obs.span("phase"):
                pass
        report = RunReport.from_observation(observation)
        assert not report.events_payload
        events = chrome_trace(report)["traceEvents"]
        assert {e["name"] for e in events if e["ph"] == "X"} == {"bare", "phase"}
