"""Command-line interface."""

import pytest

from repro.cli import main


class TestCommands:
    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "mac4" in out

    def test_stats(self, capsys):
        assert main(["stats", "c17"]) == 0
        out = capsys.readouterr().out
        assert "collapsed" in out

    def test_atpg_and_faultsim_roundtrip(self, tmp_path, capsys):
        pattern_file = tmp_path / "c17.pat"
        assert main(["atpg", "c17", "-o", str(pattern_file), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "test_coverage: 1.0" in out
        assert main(["faultsim", "c17", str(pattern_file)]) == 0
        out = capsys.readouterr().out
        assert "100.00%" in out

    @pytest.mark.parametrize("engine", ["podem", "dalg", "guided", "portfolio"])
    def test_atpg_engine_selection(self, tmp_path, capsys, engine):
        pattern_file = tmp_path / f"c17_{engine}.pat"
        assert (
            main(
                [
                    "atpg",
                    "c17",
                    "-o",
                    str(pattern_file),
                    "--seed",
                    "3",
                    "--engine",
                    engine,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "test_coverage: 1.0" in out
        assert f"engine: {engine}" in out

    def test_atpg_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["atpg", "c17", "--engine", "quantum"])

    def test_atpg_on_bench_file(self, tmp_path, capsys):
        from repro.circuit.bench import save_bench
        from repro.circuit import benchmarks

        path = tmp_path / "c.bench"
        save_bench(benchmarks.c17(), str(path))
        assert main(["atpg", str(path)]) == 0
        assert "fault_coverage" in capsys.readouterr().out

    def test_atpg_on_verilog_file(self, tmp_path, capsys):
        from repro.circuit.verilog import save_verilog
        from repro.circuit import benchmarks

        path = tmp_path / "c.v"
        save_verilog(benchmarks.c17(), str(path))
        assert main(["atpg", str(path)]) == 0
        assert "fault_coverage" in capsys.readouterr().out

    def test_lbist(self, capsys):
        assert main(["lbist", "par16", "--patterns", "128"]) == 0
        out = capsys.readouterr().out
        assert "final coverage" in out
        assert "signature" in out

    def test_mbist(self, capsys):
        assert main(["mbist", "--cells", "32", "--samples", "5"]) == 0
        out = capsys.readouterr().out
        assert "March C-" in out

    def test_plan(self, capsys):
        assert main(["plan"]) == 0
        assert "scheduled_cycles" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSupervisedCampaigns:
    @pytest.fixture()
    def pattern_file(self, tmp_path, capsys):
        path = tmp_path / "alu4.pat"
        assert main(["atpg", "alu4", "-o", str(path), "--seed", "3"]) == 0
        capsys.readouterr()
        return str(path)

    def test_supervised_backend_roundtrip(self, pattern_file, capsys):
        code = main(
            ["faultsim", "alu4", pattern_file,
             "--backend", "supervised", "--jobs", "2", "--partitions", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[supervised" in out and "4 partitions" in out

    def test_partitions_flag_threads_through_pool(self, pattern_file, capsys):
        code = main(
            ["faultsim", "alu4", pattern_file,
             "--backend", "pool", "--jobs", "2", "--partitions", "3"]
        )
        assert code == 0
        assert "3 partitions" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flags",
        [
            ["--partitions", "0"],
            ["--jobs", "-2"],
            ["--seed", "-1"],
            ["--timeout", "0"],
            ["--retries", "-1"],
        ],
    )
    def test_invalid_arguments_rejected(self, pattern_file, flags):
        with pytest.raises(SystemExit):
            main(["faultsim", "alu4", pattern_file] + flags)

    def test_chaos_recovered_exit_zero(self, pattern_file, capsys):
        code = main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--chaos", "1:crash"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "upgraded to supervised" in out
        assert "recovered: 1 retries, 1 worker crashes" in out

    def test_chaos_unrecoverable_exit_partial(self, pattern_file, capsys):
        code = main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--retries", "0", "--chaos", "0:crash,crash"]
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "LOWER BOUND" in captured.err

    def test_resume_skips_journaled_partitions(self, pattern_file, tmp_path, capsys):
        journal = str(tmp_path / "campaign.jsonl")
        first = main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--partitions", "4", "--resume", journal]
        )
        first_out = capsys.readouterr().out
        assert first == 0
        second = main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--partitions", "4", "--resume", journal]
        )
        second_out = capsys.readouterr().out
        assert second == 0
        assert "resumed from journal: 4/4 partitions skipped" in second_out
        assert first_out.splitlines()[1] == second_out.splitlines()[1]  # coverage

    def test_resume_wrong_campaign_exits_two(self, pattern_file, tmp_path, capsys):
        journal = str(tmp_path / "campaign.jsonl")
        assert main(
            ["faultsim", "alu4", pattern_file, "--resume", journal]
        ) == 0
        capsys.readouterr()
        code = main(
            ["faultsim", "alu4", pattern_file, "--seed", "9",
             "--resume", journal]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_atpg_resume_flag(self, tmp_path, capsys):
        journal = str(tmp_path / "atpg.jsonl")
        assert main(["atpg", "alu4", "--resume", journal, "--jobs", "2"]) == 0
        assert "fault_coverage" in capsys.readouterr().out
        import os

        assert os.path.exists(journal)

    def test_store_first_runner_grades_everything(self, pattern_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--partitions", "4", "--store", store, "--runner-id", "r0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "store" in out and "[r0]: 4/4 shards graded by this runner" in out

    def test_store_second_runner_exits_peers(self, pattern_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--partitions", "4", "--store", store, "--runner-id", "r0"]
        ) == 0
        first_out = capsys.readouterr().out
        code = main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--partitions", "4", "--store", store, "--runner-id", "r1"]
        )
        second_out = capsys.readouterr().out
        assert code == 5
        assert "finished by peer runners" in second_out
        assert "[r1]: 0/4 shards graded by this runner" in second_out
        # The merged result is real: coverage line identical to run one.
        assert first_out.splitlines()[1] == second_out.splitlines()[1]

    def test_store_wrong_campaign_exits_two(self, pattern_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["faultsim", "alu4", pattern_file, "--store", store]
        ) == 0
        capsys.readouterr()
        code = main(
            ["faultsim", "alu4", pattern_file, "--seed", "9", "--store", store]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--runner-id", "r0"],                      # runner without store
            ["--host-chaos", "r0:kill"],                # chaos without store
            ["--store", "S", "--runner-id", "bad id"],  # invalid runner name
            ["--store", "S", "--lease-s", "0"],
            ["--store", "S", "--host-chaos", "r0:frobnicate"],
            ["--store", "S", "--host-chaos", "r0"],     # missing mode
        ],
    )
    def test_store_invalid_arguments_exit_two(
        self, pattern_file, tmp_path, flags, capsys
    ):
        flags = [str(tmp_path / "store") if f == "S" else f for f in flags]
        try:
            code = main(["faultsim", "alu4", pattern_file] + flags)
        except SystemExit as exc:  # argparse-level rejections
            code = exc.code
        capsys.readouterr()
        assert code == 2

    def test_obs_tail_renders_store_ownership(self, pattern_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(
            ["faultsim", "alu4", pattern_file, "--jobs", "2",
             "--partitions", "4", "--store", store, "--runner-id", "r0"]
        ) == 0
        capsys.readouterr()
        assert main(["obs", "tail", store]) == 0
        out = capsys.readouterr().out
        assert "partitions 4/4 done" in out
        assert "r0: 4 published" in out
        assert "campaign complete" in out

    def test_keyboard_interrupt_exits_130(self, monkeypatch, capsys):
        import repro.cli as cli

        def interrupted(_args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_cmd_plan", interrupted)
        assert main(["plan"]) == 130
        assert "--resume" in capsys.readouterr().err
