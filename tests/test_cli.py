"""Command-line interface."""

import pytest

from repro.cli import main


class TestCommands:
    def test_circuits(self, capsys):
        assert main(["circuits"]) == 0
        out = capsys.readouterr().out
        assert "c17" in out and "mac4" in out

    def test_stats(self, capsys):
        assert main(["stats", "c17"]) == 0
        out = capsys.readouterr().out
        assert "collapsed" in out

    def test_atpg_and_faultsim_roundtrip(self, tmp_path, capsys):
        pattern_file = tmp_path / "c17.pat"
        assert main(["atpg", "c17", "-o", str(pattern_file), "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "test_coverage: 1.0" in out
        assert main(["faultsim", "c17", str(pattern_file)]) == 0
        out = capsys.readouterr().out
        assert "100.00%" in out

    def test_atpg_on_bench_file(self, tmp_path, capsys):
        from repro.circuit.bench import save_bench
        from repro.circuit import benchmarks

        path = tmp_path / "c.bench"
        save_bench(benchmarks.c17(), str(path))
        assert main(["atpg", str(path)]) == 0
        assert "fault_coverage" in capsys.readouterr().out

    def test_atpg_on_verilog_file(self, tmp_path, capsys):
        from repro.circuit.verilog import save_verilog
        from repro.circuit import benchmarks

        path = tmp_path / "c.v"
        save_verilog(benchmarks.c17(), str(path))
        assert main(["atpg", str(path)]) == 0
        assert "fault_coverage" in capsys.readouterr().out

    def test_lbist(self, capsys):
        assert main(["lbist", "par16", "--patterns", "128"]) == 0
        out = capsys.readouterr().out
        assert "final coverage" in out
        assert "signature" in out

    def test_mbist(self, capsys):
        assert main(["mbist", "--cells", "32", "--samples", "5"]) == 0
        out = capsys.readouterr().out
        assert "March C-" in out

    def test_plan(self, capsys):
        assert main(["plan"]) == 0
        assert "scheduled_cycles" in capsys.readouterr().out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
