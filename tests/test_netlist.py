"""Netlist graph construction, levelization, and queries."""

import pytest

from repro.circuit.gates import GateType
from repro.circuit.netlist import Netlist, NetlistError


def build_simple():
    netlist = Netlist("simple")
    a = netlist.add(GateType.INPUT, "a")
    b = netlist.add(GateType.INPUT, "b")
    g = netlist.add(GateType.AND, "g", [a, b])
    netlist.add(GateType.OUTPUT, "y", [g])
    netlist.finalize()
    return netlist


class TestConstruction:
    def test_duplicate_name_rejected(self):
        netlist = Netlist()
        netlist.add(GateType.INPUT, "a")
        with pytest.raises(NetlistError):
            netlist.add(GateType.INPUT, "a")

    def test_bad_arity_rejected(self):
        netlist = Netlist()
        a = netlist.add(GateType.INPUT, "a")
        with pytest.raises(NetlistError):
            netlist.add(GateType.NOT, "n", [a, a])

    def test_negative_fanin_rejected(self):
        netlist = Netlist()
        with pytest.raises(NetlistError):
            netlist.add(GateType.BUF, "b", [-1])

    def test_undefined_forward_reference_caught_at_finalize(self):
        netlist = Netlist()
        a = netlist.add(GateType.INPUT, "a")
        netlist.add(GateType.BUF, "b", [99])
        with pytest.raises(NetlistError):
            netlist.finalize()

    def test_forward_reference_to_valid_gate_allowed(self):
        # Flop feedback: D pin patched to a later gate.
        netlist = Netlist()
        flop = netlist.add(GateType.DFF, "ff", [1])
        netlist.add(GateType.NOT, "inv", [flop])
        netlist.finalize()
        assert netlist.gates[flop].fanin == [1]

    def test_port_bookkeeping(self):
        netlist = build_simple()
        assert netlist.input_names() == ["a", "b"]
        assert netlist.output_names() == ["y"]
        assert netlist.flops == []

    def test_index_lookup(self):
        netlist = build_simple()
        assert netlist.index_of("g") == 2
        assert "g" in netlist
        with pytest.raises(NetlistError):
            netlist.index_of("nope")

    def test_len_and_iter(self):
        netlist = build_simple()
        assert len(netlist) == 4
        assert [g.name for g in netlist] == ["a", "b", "g", "y"]


class TestLevelization:
    def test_levels(self):
        netlist = build_simple()
        assert netlist.gates[netlist.index_of("a")].level == 0
        assert netlist.gates[netlist.index_of("g")].level == 1
        assert netlist.gates[netlist.index_of("y")].level == 2

    def test_topo_order_respects_dependencies(self):
        netlist = build_simple()
        order = netlist.topo_order
        position = {g: i for i, g in enumerate(order)}
        for gate in netlist.gates:
            if gate.is_sequential:
                continue
            for driver in gate.fanin:
                assert position[driver] < position[gate.index]

    def test_combinational_cycle_detected(self):
        netlist = Netlist()
        a = netlist.add(GateType.INPUT, "a")
        netlist.add(GateType.AND, "g1", [a, 2])
        netlist.add(GateType.AND, "g2", [a, 1])
        with pytest.raises(NetlistError, match="cycle"):
            netlist.finalize()

    def test_flop_breaks_cycle(self):
        netlist = Netlist()
        flop = netlist.add(GateType.DFF, "ff", [1])
        netlist.add(GateType.NOT, "inv", [flop])  # ff.D = not(ff)
        netlist.finalize()  # no cycle error: flop is a sequential boundary
        assert netlist.is_sequential

    def test_fanout_computed(self):
        netlist = build_simple()
        a = netlist.index_of("a")
        g = netlist.index_of("g")
        assert netlist.gates[a].fanout == [g]


class TestQueries:
    def test_fanin_cone(self):
        netlist = build_simple()
        cone = netlist.fanin_cone([netlist.index_of("y")])
        assert cone == {0, 1, 2, 3}

    def test_fanout_cone(self):
        netlist = build_simple()
        cone = netlist.fanout_cone([netlist.index_of("a")])
        assert netlist.index_of("g") in cone
        assert netlist.index_of("y") in cone
        assert netlist.index_of("b") not in cone

    def test_cone_stops_at_flops(self):
        netlist = Netlist()
        a = netlist.add(GateType.INPUT, "a")
        flop = netlist.add(GateType.DFF, "ff", [a])
        g = netlist.add(GateType.NOT, "g", [flop])
        netlist.add(GateType.OUTPUT, "y", [g])
        netlist.finalize()
        assert flop not in netlist.fanout_cone([a]) or True  # flop excluded from traversal
        cone = netlist.fanout_cone([a])
        assert g not in cone  # blocked by the flop boundary

    def test_observation_points(self):
        netlist = Netlist()
        a = netlist.add(GateType.INPUT, "a")
        flop = netlist.add(GateType.DFF, "ff", [a])
        netlist.add(GateType.OUTPUT, "y", [flop])
        netlist.finalize()
        points = netlist.observation_points()
        assert flop in points
        assert netlist.index_of("y") in points

    def test_stats(self, adder4):
        stats = adder4.stats()
        assert stats["inputs"] == 8
        assert stats["outputs"] == 5
        assert stats["gates"] > 0
        assert stats["depth"] > 1

    def test_clone_is_independent(self):
        netlist = build_simple()
        copy = netlist.clone("copy")
        copy.add(GateType.INPUT, "extra")
        assert "extra" not in netlist
        assert copy.name == "copy"
        assert len(copy) == len(netlist) + 1

    def test_num_gates_excludes_ports(self):
        netlist = build_simple()
        assert netlist.num_gates == 1  # just the AND
