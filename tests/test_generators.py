"""Generated circuits must compute what they claim."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import generators
from repro.circuit.benchmarks import benchmark_names, get_benchmark
from repro.sim.logicsim import LogicSimulator


def _bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def _to_int(bits):
    return sum(bit << i for i, bit in enumerate(bits))


class TestCombinationalGenerators:
    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_adder(self, a, b):
        netlist = generators.adder(8)
        sim = LogicSimulator(netlist)
        out = sim.response(_bits(a, 8) + _bits(b, 8))
        assert _to_int(out[:8]) == (a + b) & 0xFF

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 15), b=st.integers(0, 15))
    def test_multiplier(self, a, b):
        netlist = generators.multiplier(4)
        sim = LogicSimulator(netlist)
        out = sim.response(_bits(a, 4) + _bits(b, 4))
        assert _to_int(out) == a * b

    @settings(max_examples=25, deadline=None)
    @given(a=st.integers(0, 15), b=st.integers(0, 15), op=st.integers(0, 3))
    def test_alu_ops(self, a, b, op):
        netlist = generators.alu(4)
        sim = LogicSimulator(netlist)
        pattern = _bits(a, 4) + _bits(b, 4) + [op & 1, op >> 1]
        out = sim.response(pattern)
        result = _to_int(out[:4])
        expected = [(a + b) & 0xF, a & b, a | b, a ^ b][op]
        assert result == expected

    @settings(max_examples=20, deadline=None)
    @given(value=st.integers(0, 2**16 - 1))
    def test_parity_tree(self, value):
        netlist = generators.parity_tree(16)
        sim = LogicSimulator(netlist)
        out = sim.response(_bits(value, 16))
        assert out[0] == bin(value).count("1") % 2

    def test_wide_comparator_hits_only_constant(self):
        netlist = generators.wide_comparator(10, constant=0b1011001110)
        sim = LogicSimulator(netlist)
        assert sim.response(_bits(0b1011001110, 10)) == [1]
        assert sim.response(_bits(0b1011001111, 10)) == [0]

    def test_chain_of_inverters(self):
        even = generators.chain_of_inverters(4)
        odd = generators.chain_of_inverters(5)
        assert LogicSimulator(even).response([1]) == [1]
        assert LogicSimulator(odd).response([1]) == [0]


class TestSequentialGenerators:
    def test_mac_accumulates(self):
        netlist = generators.mac_unit(4)
        sim = LogicSimulator(netlist)
        state = sim.initial_state(0)
        acc = 0
        rng = random.Random(1)
        for _ in range(6):
            a, b = rng.randrange(16), rng.randrange(16)
            step = sim.step(_bits(a, 4) + _bits(b, 4), state)
            state = step["state"]
            acc = (acc + a * b) % (1 << 12)
            observed = _to_int(
                [v for v in sim.step([0] * 8, state)["outputs"]]
            )
            # acc_out reads the registered accumulator after the update.
            assert _to_int(step["state"]) == acc

    def test_systolic_pe_mac_behaviour(self):
        netlist = generators.systolic_pe(4)
        sim = LogicSimulator(netlist)
        n_pi = len(netlist.inputs)
        names = sim.view.input_names()[:n_pi]

        def pattern(a, w, psum, load):
            values = []
            for name in names:
                if name.startswith("a_in"):
                    values.append((a >> int(name[5:-1])) & 1)
                elif name.startswith("w_in"):
                    values.append((w >> int(name[5:-1])) & 1)
                elif name.startswith("psum_in"):
                    values.append((psum >> int(name[8:-1])) & 1)
                else:  # load_w
                    values.append(load)
            return values

        state = sim.initial_state(0)
        # Cycle 1: load weight 5.
        step = sim.step(pattern(0, 5, 0, 1), state)
        state = step["state"]
        # Cycle 2: stream activation 7, psum_in 3 -> psum register = 3 + 5*7.
        step = sim.step(pattern(7, 0, 3, 0), state)
        psum_positions = [
            i for i, ff in enumerate(netlist.flops)
            if netlist.gates[ff].name.startswith("ps_reg")
        ]
        psum = _to_int([step["state"][i] for i in psum_positions])
        assert psum == 3 + 5 * 7

    def test_random_sequential_has_feedback(self):
        netlist = generators.random_sequential(6, 80, 10, seed=2)
        assert len(netlist.flops) == 10
        netlist.finalize()  # no combinational cycles


class TestRandomCircuits:
    def test_deterministic_by_seed(self):
        a = generators.random_circuit(8, 50, seed=3)
        b = generators.random_circuit(8, 50, seed=3)
        assert [g.type for g in a.gates] == [g.type for g in b.gates]

    def test_different_seeds_differ(self):
        a = generators.random_circuit(8, 50, seed=3)
        b = generators.random_circuit(8, 50, seed=4)
        assert [g.type for g in a.gates] != [g.type for g in b.gates]

    def test_requested_outputs(self):
        netlist = generators.random_circuit(8, 60, n_outputs=5, seed=1)
        assert len(netlist.outputs) == 5

    def test_every_gate_observable_by_default(self):
        netlist = generators.random_circuit(8, 40, seed=2)
        netlist.finalize()
        dangling = [
            g for g in netlist.gates
            if not g.fanout and g.type.value not in ("output",)
        ]
        assert dangling == []


class TestBenchmarkRegistry:
    def test_all_benchmarks_build(self):
        for name in benchmark_names():
            netlist = get_benchmark(name)
            netlist.finalize()
            assert netlist.stats()["gates"] > 0

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_benchmark("nope")

    def test_fresh_instances(self):
        a = get_benchmark("c17")
        b = get_benchmark("c17")
        assert a is not b
