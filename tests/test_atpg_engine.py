"""The full ATPG flow: coverage, compaction, fill modes, bookkeeping."""

import random

import pytest

from repro.atpg import run_atpg, x_fill
from repro.atpg.engine import atpg_table_row
from repro.circuit import benchmarks
from repro.circuit.values import X
from repro.faults import collapse_faults, full_fault_list
from repro.sim.faultsim import FaultSimulator


class TestFlowCoverage:
    @pytest.mark.parametrize("name", ["c17", "s27", "add8", "mul4", "par16"])
    def test_full_test_coverage(self, name):
        netlist = benchmarks.get_benchmark(name)
        result = run_atpg(netlist, seed=1)
        assert result.test_coverage == 1.0
        assert not result.consistency_errors

    def test_final_patterns_reach_reported_coverage(self, alu4):
        """Re-simulating the emitted pattern set must reproduce coverage."""
        result = run_atpg(alu4, seed=2)
        faults, _ = collapse_faults(alu4, full_fault_list(alu4))
        simulator = FaultSimulator(alu4)
        check = simulator.simulate(result.patterns, faults, drop=True)
        assert len(check.detected) >= result.detected

    def test_deterministic_given_seed(self, c17):
        a = run_atpg(c17, seed=7)
        b = run_atpg(c17, seed=7)
        assert a.patterns == b.patterns

    def test_zero_random_batches_forces_deterministic(self, c17):
        result = run_atpg(c17, random_batches=0, seed=1)
        assert result.random_pattern_count == 0
        assert result.detected_deterministic > 0
        assert result.test_coverage == 1.0
        assert len(result.cubes) > 0

    def test_compaction_preserves_coverage(self, alu4):
        compacted = run_atpg(alu4, random_batches=0, compact=True, seed=3)
        loose = run_atpg(alu4, random_batches=0, compact=False, seed=3)
        assert compacted.test_coverage == loose.test_coverage == 1.0
        assert len(compacted.patterns) <= len(loose.patterns)
        # Compacted patterns still reach full coverage when re-simulated.
        faults, _ = collapse_faults(alu4, full_fault_list(alu4))
        simulator = FaultSimulator(alu4)
        check = simulator.simulate(compacted.patterns, faults, drop=True)
        undetected_testable = [
            f for f in check.undetected if f not in set(compacted.untestable)
        ]
        assert not undetected_testable

    def test_table_row_fields(self, c17):
        result = run_atpg(c17, seed=1)
        row = atpg_table_row(c17, result)
        for key in ("circuit", "gates", "patterns", "fault_coverage"):
            assert key in row


class TestXFill:
    def test_modes(self):
        rng = random.Random(0)
        cube = [1, X, 0, X, X]
        assert x_fill(cube, rng, "zero") == [1, 0, 0, 0, 0]
        assert x_fill(cube, rng, "one") == [1, 1, 0, 1, 1]
        repeat = x_fill(cube, rng, "repeat")
        assert repeat == [1, 1, 0, 0, 0]

    def test_random_fill_specified_bits_fixed(self):
        rng = random.Random(1)
        cube = [1, X, 0]
        for _ in range(10):
            filled = x_fill(cube, rng, "random")
            assert filled[0] == 1 and filled[2] == 0
            assert filled[1] in (0, 1)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            x_fill([X], random.Random(0), "diagonal")


class TestFaultAccounting:
    def test_partition_is_exact(self, alu4):
        result = run_atpg(alu4, seed=5)
        total = (
            result.detected
            + len(result.untestable)
            + len(result.aborted)
            + len(result.consistency_errors)
        )
        assert total == result.total_faults

    def test_fault_coverage_le_test_coverage(self, alu4):
        result = run_atpg(alu4, seed=5)
        assert result.fault_coverage <= result.test_coverage

    def test_custom_fault_list(self, c17):
        faults = full_fault_list(c17)[:8]
        result = run_atpg(c17, faults=faults, seed=1)
        assert result.total_faults == 8
        assert result.test_coverage == 1.0


class TestEngineFlow:
    """The --engine axis through the full campaign flow."""

    @pytest.mark.parametrize("engine", ["podem", "dalg", "guided", "portfolio"])
    def test_full_test_coverage_any_engine(self, alu4, engine):
        result = run_atpg(alu4, seed=1, engine=engine)
        assert result.test_coverage == 1.0
        summary = result.summary()
        assert summary["engine"] == engine
        assert summary["proved_untestable"] == len(result.untestable)

    def test_portfolio_summary_records_winners(self, alu4):
        result = run_atpg(alu4, seed=1, engine="portfolio")
        summary = result.summary()
        assert "winner_engine" in summary
        assert set(summary["winner_engine"]) <= {"podem", "guided", "dalg"}
        assert sum(summary["winner_engine"].values()) >= len(result.untestable)

    def test_unknown_engine_rejected(self, c17):
        with pytest.raises(ValueError, match="engine"):
            run_atpg(c17, engine="quantum")

    def test_compressed_flow_takes_engine(self):
        from repro.compression import EdtSystem, run_compressed_atpg
        from repro.circuit import generators
        from repro.dft import wrap_core
        from repro.scan import insert_scan

        core = generators.systolic_pe(2)
        design = insert_scan(wrap_core(core).netlist, n_chains=4)
        edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
        flow = run_compressed_atpg(edt, seed=1, engine="portfolio")
        assert flow.summary()["test_coverage"] == 1.0
