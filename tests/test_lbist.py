"""Logic BIST (STUMPS) behaviour."""

import pytest

from repro.bist.lbist import LbistConfig, StumpsController, coverage_curve
from repro.circuit import benchmarks, generators
from repro.faults import collapse_faults, full_fault_list


class TestPatternGeneration:
    def test_deterministic_stream(self, alu4):
        a = StumpsController(alu4).generate_patterns(10)
        b = StumpsController(alu4).generate_patterns(10)
        assert a == b

    def test_pattern_width(self, alu4):
        controller = StumpsController(alu4)
        patterns = controller.generate_patterns(5)
        assert all(len(p) == controller.simulator.view.num_inputs for p in patterns)

    def test_streams_advance(self, alu4):
        controller = StumpsController(alu4)
        first = controller.generate_patterns(5)
        second = controller.generate_patterns(5)
        assert first != second


class TestCoverage:
    def test_curve_is_monotone(self, alu4):
        points = coverage_curve(alu4, 256, checkpoint_every=64)
        coverages = [p["coverage"] for p in points]
        assert coverages == sorted(coverages)
        assert coverages[-1] > 0.85

    def test_random_resistant_circuit_saturates_low(self):
        netlist = generators.random_resistant(14, cones=3)
        result = StumpsController(netlist).run(512)
        # The wide-AND cones stay undetected by pure pseudo-random patterns.
        assert result.final_coverage < 0.999
        assert result.undetected

    def test_easy_circuit_saturates_high(self):
        netlist = generators.parity_tree(12)
        result = StumpsController(netlist).run(256)
        assert result.final_coverage == 1.0


class TestSignature:
    def test_signature_reproducible(self, alu4):
        a = StumpsController(alu4).run(128)
        b = StumpsController(alu4).run(128)
        assert a.signature == b.signature

    def test_signature_depends_on_seed(self, alu4):
        a = StumpsController(alu4, LbistConfig(seed=1)).run(128)
        b = StumpsController(alu4, LbistConfig(seed=2)).run(128)
        assert a.signature != b.signature

    def test_custom_fault_list(self, alu4):
        faults, _ = collapse_faults(alu4, full_fault_list(alu4))
        result = StumpsController(alu4).run(64, faults=faults[:20])
        assert result.total_faults == 20
