"""Word-oriented memory test with data backgrounds."""

import random

import pytest

from repro.bist.march import MARCH_C_MINUS, MATS_PLUS
from repro.bist.memory import MemoryFault
from repro.bist.word_memory import (
    WordMemory,
    intra_word_coupling_fault,
    run_march_word,
    standard_backgrounds,
)


class TestWordMemory:
    def test_word_read_write(self):
        memory = WordMemory(8, 8)
        memory.write_word(3, 0xA5)
        assert memory.read_word(3) == 0xA5
        assert memory.read_word(2) == 0

    def test_cell_index_layout(self):
        memory = WordMemory(4, 8)
        assert memory.cell_index(0, 0) == 0
        assert memory.cell_index(1, 0) == 8
        assert memory.cell_index(2, 3) == 19

    def test_bounds(self):
        memory = WordMemory(4, 8)
        with pytest.raises(IndexError):
            memory.cell_index(4, 0)
        with pytest.raises(ValueError):
            WordMemory(1, 8)

    def test_bit_fault_visible_through_word_api(self):
        fault = MemoryFault("SAF", cell=2 * 8 + 5, value=1)
        memory = WordMemory(4, 8, faults=[fault])
        memory.write_word(2, 0)
        assert memory.read_word(2) == 1 << 5


class TestBackgrounds:
    def test_count_is_log2_plus_one(self):
        assert len(standard_backgrounds(8)) == 4
        assert len(standard_backgrounds(16)) == 5
        assert len(standard_backgrounds(1)) == 1

    def test_patterns(self):
        assert standard_backgrounds(8) == [0x00, 0xAA, 0xCC, 0xF0]

    def test_every_bit_pair_distinguished(self):
        width = 16
        backgrounds = standard_backgrounds(width)
        for i in range(width):
            for j in range(i + 1, width):
                assert any(
                    ((b >> i) & 1) != ((b >> j) & 1) for b in backgrounds
                ), (i, j)


class TestWordMarch:
    def test_clean_memory_passes(self):
        memory = WordMemory(16, 8)
        result = run_march_word(memory, MARCH_C_MINUS)
        assert result.passed
        expected_ops = MARCH_C_MINUS.complexity * 16 * len(result.backgrounds)
        assert result.operations == expected_ops

    def test_inter_word_fault_detected_with_solid_background(self):
        fault = MemoryFault("SAF", cell=9, value=1)
        memory = WordMemory(8, 8, faults=[fault])
        result = run_march_word(memory, MARCH_C_MINUS, backgrounds=[0])
        assert not result.passed

    def test_intra_word_coupling_escapes_solid_background(self):
        """The motivating escape: victim and aggressor written identically
        under a solid background, so the coupling never shows."""
        fault = intra_word_coupling_fault(
            word=3, victim_bit=2, aggressor_bit=5, width=8
        )
        memory = WordMemory(8, 8, faults=[fault])
        solid_only = run_march_word(memory, MARCH_C_MINUS, backgrounds=[0])
        assert solid_only.passed  # escape!

    def test_intra_word_coupling_caught_with_full_backgrounds(self):
        caught = 0
        total = 0
        rng = random.Random(3)
        for _ in range(12):
            victim, aggressor = rng.sample(range(8), 2)
            fault = intra_word_coupling_fault(
                word=rng.randrange(8), victim_bit=victim,
                aggressor_bit=aggressor, width=8,
                value=rng.randint(0, 1),
            )
            memory = WordMemory(8, 8, faults=[fault])
            result = run_march_word(memory, MARCH_C_MINUS)
            total += 1
            if not result.passed:
                caught += 1
        assert caught == total

    def test_detected_by_reports_background(self):
        fault = intra_word_coupling_fault(2, 1, 3, width=8)
        memory = WordMemory(8, 8, faults=[fault])
        result = run_march_word(memory, MARCH_C_MINUS)
        assert result.detected_by  # some non-solid background caught it
        assert 0 not in result.detected_by

    def test_weaker_algorithm_weaker_word_coverage(self):
        rng = random.Random(5)
        strong_hits, weak_hits = 0, 0
        for trial in range(10):
            victim, aggressor = rng.sample(range(8), 2)
            fault = intra_word_coupling_fault(
                word=1, victim_bit=victim, aggressor_bit=aggressor, width=8
            )
            strong = run_march_word(
                WordMemory(8, 8, faults=[fault]), MARCH_C_MINUS
            )
            weak = run_march_word(WordMemory(8, 8, faults=[fault]), MATS_PLUS)
            strong_hits += 0 if strong.passed else 1
            weak_hits += 0 if weak.passed else 1
        assert strong_hits >= weak_hits
        assert strong_hits == 10
