"""End-to-end EDT compression over a scan design."""

import pytest

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.compression.edt import EdtSystem
from repro.faults import collapse_faults, full_fault_list
from repro.scan import insert_scan, partition_faults
from repro.sim.faultsim import FaultSimulator


@pytest.fixture(scope="module")
def edt_setup():
    """Scan design + deterministic cubes + EDT system (module-scoped: slow)."""
    netlist = generators.random_sequential(8, 150, 32, seed=6)
    design = insert_scan(netlist, n_chains=8)
    faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
    capture, _ = partition_faults(design, faults)
    atpg = run_atpg(design.netlist, faults=capture, random_batches=0, seed=1)
    edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
    return design, capture, atpg, edt


class TestEncoding:
    def test_most_cubes_encode(self, edt_setup):
        design, capture, atpg, edt = edt_setup
        result = edt.encode_cubes(atpg.cubes)
        assert result.encoding_success_rate > 0.85

    def test_expanded_patterns_preserve_targeted_coverage(self, edt_setup):
        """Decompressed patterns must detect what their cubes promised."""
        design, capture, atpg, edt = edt_setup
        result = edt.encode_cubes(atpg.cubes)
        expanded = edt.expanded_patterns(result)
        simulator = FaultSimulator(design.netlist)
        baseline = simulator.simulate(atpg.patterns, capture, drop=True)
        compressed = simulator.simulate(expanded, capture, drop=True)
        # The compressed set covers nearly everything the cube set did
        # (unencodable cubes fall back to bypass in a real flow).
        assert len(compressed.detected) >= 0.85 * len(baseline.detected)

    def test_care_bits_counted(self, edt_setup):
        design, capture, atpg, edt = edt_setup
        result = edt.encode_cubes(atpg.cubes)
        assert result.care_bits_total > 0

    def test_cube_coordinates_roundtrip(self, edt_setup):
        design, capture, atpg, edt = edt_setup
        from repro.circuit.values import X

        cube = atpg.cubes[0]
        pi_part, care = edt.cube_to_care_bits(cube)
        n_pi = len(design.netlist.inputs)
        specified_flops = sum(1 for v in cube[n_pi:] if v != X)
        assert len(care) == specified_flops


class TestResponseSide:
    def test_fault_visible_through_compactor(self, edt_setup):
        design, capture, atpg, edt = edt_setup
        state = [0] * len(design.netlist.flops)
        faulty = list(state)
        faulty[3] ^= 1
        assert edt.fault_visible_through_compactor(state, faulty)

    def test_identical_states_invisible(self, edt_setup):
        design, capture, atpg, edt = edt_setup
        state = [0] * len(design.netlist.flops)
        assert not edt.fault_visible_through_compactor(state, list(state))

    def test_compact_response_shape(self, edt_setup):
        design, capture, atpg, edt = edt_setup
        state = [0] * len(design.netlist.flops)
        compacted = edt.compact_response(state)
        assert len(compacted) == design.max_chain_length
        assert all(len(slice_) == 2 for slice_ in compacted)


class TestCostModel:
    def test_compression_wins(self, edt_setup):
        design, capture, atpg, edt = edt_setup
        row = edt.cost_versus_bypass(len(atpg.patterns))
        assert row["data_volume_x"] > 1.0
        assert row["test_time_x"] > 1.0
