"""LFSRs, ring generators, phase shifters."""

import pytest

from repro.compression.lfsr import (
    LFSR,
    PhaseShifter,
    RingGenerator,
    primitive_taps,
)


class TestLFSR:
    @pytest.mark.parametrize("length", [4, 5, 6, 7, 8, 12])
    def test_maximal_period(self, length):
        lfsr = LFSR(length, seed=1)
        assert lfsr.period_lower_bound() == (1 << length) - 1

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=0)

    def test_bad_taps_rejected(self):
        with pytest.raises(ValueError):
            LFSR(4, taps=(9,))

    def test_unknown_length_rejected(self):
        with pytest.raises(ValueError):
            primitive_taps(13)

    def test_patterns_shape(self):
        lfsr = LFSR(8, seed=3)
        patterns = lfsr.patterns(5, 12)
        assert len(patterns) == 5
        assert all(len(p) == 12 for p in patterns)
        assert all(bit in (0, 1) for p in patterns for bit in p)

    def test_deterministic(self):
        a = LFSR(8, seed=5).pattern(32)
        b = LFSR(8, seed=5).pattern(32)
        assert a == b

    def test_roughly_balanced(self):
        bits = LFSR(16, seed=1).pattern(4096)
        ones = sum(bits)
        assert 0.45 < ones / 4096 < 0.55


class TestRingGenerator:
    def test_symbolic_predicts_concrete(self):
        """The symbolic variable masks must exactly model concrete runs."""
        import random

        from repro.compression.gf2 import dot_bits

        rng = random.Random(9)
        generator = RingGenerator(16, n_channels=2, seed=4)
        cycles = 12
        # Symbolic pass.
        generator.reset()
        symbolic_states = []
        for _ in range(cycles):
            generator.step_symbolic()
            symbolic_states.append(list(generator.symbolic))
        n_vars = generator.n_variables
        assert n_vars == cycles * 2
        # Concrete pass with random channel data.
        data = [rng.randint(0, 1) for _ in range(n_vars)]
        generator.reset()
        position = 0
        for cycle in range(cycles):
            channel_bits = data[position : position + 2]
            position += 2
            generator.step_concrete(channel_bits)
            for cell in range(16):
                predicted = dot_bits(symbolic_states[cycle][cell], data)
                assert generator.state_bits[cell] == predicted

    def test_channel_count_checked(self):
        generator = RingGenerator(16, n_channels=2)
        with pytest.raises(ValueError):
            generator.step_concrete([1])

    def test_injector_positions_distinct(self):
        generator = RingGenerator(24, n_channels=4, seed=1)
        assert len(set(generator.injectors)) == 4

    def test_reset_clears(self):
        generator = RingGenerator(16, n_channels=2)
        generator.step_symbolic()
        generator.reset()
        assert generator.n_variables == 0
        assert all(v == 0 for v in generator.symbolic)


class TestPhaseShifter:
    def test_output_count_and_tap_bound(self):
        shifter = PhaseShifter(16, 40, taps_per_output=3, seed=2)
        assert len(shifter.rows) == 40
        assert all(1 <= len(row) <= 3 for row in shifter.rows)

    def test_rows_distinct(self):
        shifter = PhaseShifter(24, 30, taps_per_output=3, seed=2)
        assert len({tuple(r) for r in shifter.rows}) == 30

    def test_concrete_is_xor(self):
        shifter = PhaseShifter(4, 2, taps_per_output=2, seed=0)
        cells = [1, 0, 1, 1]
        outputs = shifter.concrete(cells)
        for row, out in zip(shifter.rows, outputs):
            expected = 0
            for cell in row:
                expected ^= cells[cell]
            assert out == expected
