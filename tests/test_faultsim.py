"""Fault-simulation engines: correctness and cross-engine agreement."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atpg.random_gen import exhaustive_patterns, random_patterns
from repro.circuit import benchmarks, generators
from repro.faults import (
    OUTPUT_PIN,
    StuckAtFault,
    full_fault_list,
    full_transition_list,
    sample_bridging_faults,
)
from repro.sim.faultsim import FaultSimulator


class TestStuckAtCorrectness:
    def test_c17_known_fault(self, c17):
        """s-a-1 on gate 10's output is detected by a vector driving 10=0
        and propagating through 22."""
        simulator = FaultSimulator(c17)
        fault = StuckAtFault(c17.index_of("10"), OUTPUT_PIN, 1)
        patterns = exhaustive_patterns(5)
        result = simulator.simulate(patterns, [fault], drop=True)
        assert fault in result.detected

    def test_undetectable_without_excitation(self, c17):
        """A fault whose stuck value equals the applied value never shows."""
        simulator = FaultSimulator(c17)
        pi = c17.inputs[0]
        fault = StuckAtFault(pi, OUTPUT_PIN, 0)
        # Pattern drives that PI to 0: no excitation.
        pattern = [0, 1, 1, 1, 1]
        result = simulator.simulate([pattern], [fault], drop=True)
        assert fault not in result.detected

    def test_full_coverage_with_exhaustive_patterns(self, c17):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        result = simulator.simulate(exhaustive_patterns(5), faults, drop=True)
        assert result.coverage == 1.0  # c17 has no redundant faults

    def test_drop_vs_nodrop_same_detection_set(self, c17):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        patterns = random_patterns(5, 20, seed=9)
        dropped = simulator.simulate(patterns, faults, drop=True)
        kept = simulator.simulate(patterns, faults, drop=False)
        assert set(dropped.detected) == set(kept.detected)
        # First-detection indices agree too.
        assert dropped.detected == kept.detected

    def test_detections_by_pattern_histogram(self, c17):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        patterns = exhaustive_patterns(5)
        result = simulator.simulate(patterns, faults, drop=True)
        histogram = result.detections_by_pattern()
        assert sum(histogram.values()) == len(result.detected)


class TestEngineAgreement:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_serial_matches_ppsfp_on_c17(self, seed):
        netlist = benchmarks.c17()
        simulator = FaultSimulator(netlist)
        faults = full_fault_list(netlist)
        patterns = random_patterns(5, 12, seed=seed)
        serial = simulator.simulate(patterns, faults, drop=False, engine="serial")
        ppsfp = simulator.simulate(patterns, faults, drop=False, engine="ppsfp")
        assert serial.detected == ppsfp.detected

    def test_serial_matches_ppsfp_on_sequential(self):
        netlist = generators.random_sequential(5, 40, 6, seed=4)
        simulator = FaultSimulator(netlist)
        faults = full_fault_list(netlist)
        width = simulator.view.num_inputs
        patterns = random_patterns(width, 10, seed=2)
        serial = simulator.simulate(patterns, faults, drop=False, engine="serial")
        ppsfp = simulator.simulate(patterns, faults, drop=False, engine="ppsfp")
        assert serial.detected == ppsfp.detected

    def test_unknown_engine_rejected(self, c17):
        simulator = FaultSimulator(c17)
        with pytest.raises(ValueError):
            simulator.simulate([[0] * 5], [], engine="quantum")


class TestTransitionFaults:
    def test_transition_needs_launch(self):
        """A single vector pair with no transition at the site detects
        nothing even though the capture vector alone would."""
        netlist = generators.chain_of_inverters(2)
        simulator = FaultSimulator(netlist)
        fault = full_transition_list(netlist)[0]  # STR on the input line
        static_pair = ([1], [1])  # no 0->1 launch
        result = simulator.simulate_transition([static_pair], [fault])
        assert fault not in result.detected
        launch_pair = ([0], [1])
        result = simulator.simulate_transition([launch_pair], [fault])
        assert fault in result.detected

    def test_str_and_stf_need_opposite_launches(self):
        netlist = generators.chain_of_inverters(1)
        simulator = FaultSimulator(netlist)
        faults = full_transition_list(netlist)
        str_faults = [f for f in faults if f.slow_to == 1]
        stf_faults = [f for f in faults if f.slow_to == 0]
        rise = [([0], [1])]
        fall = [([1], [0])]
        rise_result = simulator.simulate_transition(rise, faults, drop=False)
        fall_result = simulator.simulate_transition(fall, faults, drop=False)
        # Rising pair detects STR at the PI; falling detects STF there.
        pi_str = [f for f in str_faults if f.pin == OUTPUT_PIN and netlist.gates[f.gate].type.value == "input"]
        pi_stf = [f for f in stf_faults if f.pin == OUTPUT_PIN and netlist.gates[f.gate].type.value == "input"]
        assert all(f in rise_result.detected for f in pi_str)
        assert all(f in fall_result.detected for f in pi_stf)
        assert all(f not in fall_result.detected for f in pi_str)

    def test_transition_coverage_with_many_pairs(self, adder4):
        simulator = FaultSimulator(adder4)
        faults = full_transition_list(adder4)
        rng = random.Random(0)
        width = simulator.view.num_inputs
        pairs = [
            (
                [rng.randint(0, 1) for _ in range(width)],
                [rng.randint(0, 1) for _ in range(width)],
            )
            for _ in range(300)
        ]
        result = simulator.simulate_transition(pairs, faults)
        assert result.coverage > 0.85


class TestBridgingFaults:
    def test_dominant_bridge_detected(self, alu4):
        simulator = FaultSimulator(alu4)
        faults = sample_bridging_faults(alu4, 30, seed=5)
        width = simulator.view.num_inputs
        patterns = random_patterns(width, 200, seed=6)
        result = simulator.simulate_bridging(patterns, faults)
        # Most sampled bridges are detectable with enough random patterns.
        assert result.coverage > 0.5

    def test_bridge_between_identical_nets_undetected(self):
        """Bridging two copies of the same signal changes nothing."""
        from repro.circuit.builder import NetlistBuilder
        from repro.faults.model import BridgingFault

        builder = NetlistBuilder()
        a = builder.input("a")
        g1 = builder.buf(a)
        g2 = builder.buf(a)
        builder.output("y1", g1)
        builder.output("y2", g2)
        netlist = builder.build()
        simulator = FaultSimulator(netlist)
        fault = BridgingFault(g1, g2, "and")
        result = simulator.simulate_bridging(
            [[0], [1]], [fault], drop=False
        )
        assert fault not in result.detected


class TestFailureSignature:
    def test_signature_matches_detection(self, c17):
        simulator = FaultSimulator(c17)
        faults = full_fault_list(c17)
        patterns = exhaustive_patterns(5)
        for fault in faults[:12]:
            signature = simulator.failure_signature(patterns, fault)
            detected = simulator.simulate(patterns, [fault], drop=True)
            assert bool(signature) == (fault in detected.detected)
            if signature:
                first = min(signature)
                assert detected.detected[fault] == first

    def test_signature_positions_valid(self, c17):
        simulator = FaultSimulator(c17)
        fault = full_fault_list(c17)[0]
        signature = simulator.failure_signature(exhaustive_patterns(5), fault)
        n_outputs = simulator.view.num_outputs
        for outputs in signature.values():
            assert all(0 <= pos < n_outputs for pos in outputs)
