"""Yield / defect-level / test-cost models."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.dft.economics import (
    coverage_dppm_table,
    coverage_for_dppm,
    defect_level,
    dppm,
    mapout_yield_uplift,
    negative_binomial_yield,
    poisson_yield,
)

# Aliased imports: the library names collide with pytest collection rules.
from repro.dft.economics import TestCostModel as CostModel
from repro.dft.economics import tester_cost_per_die as cost_per_die


class TestYieldModels:
    def test_poisson_limits(self):
        assert poisson_yield(0.0, 1.0) == 1.0
        assert poisson_yield(1.0, 0.0) == 1.0
        assert poisson_yield(1.0, 1.0) == pytest.approx(math.exp(-1))

    def test_negative_binomial_above_poisson(self):
        """Clustering concentrates defects on fewer dies: higher yield."""
        area, density = 2.0, 0.5
        assert negative_binomial_yield(area, density, 2.0) > poisson_yield(
            area, density
        )

    def test_negative_binomial_approaches_poisson(self):
        area, density = 1.0, 0.4
        loose = negative_binomial_yield(area, density, clustering=1000.0)
        assert loose == pytest.approx(poisson_yield(area, density), rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_yield(-1.0, 0.1)
        with pytest.raises(ValueError):
            negative_binomial_yield(1.0, 0.1, clustering=0.0)


class TestWilliamsBrown:
    def test_endpoints(self):
        assert defect_level(0.9, 1.0) == pytest.approx(0.0)
        assert defect_level(0.9, 0.0) == pytest.approx(0.1)

    def test_classic_numbers(self):
        # The canonical example: Y=50%, T=99% -> ~0.69% DL (6900 DPPM).
        assert dppm(0.5, 0.99) == pytest.approx(6908, rel=0.01)

    @given(
        y=st.floats(0.05, 0.99),
        t=st.floats(0.0, 1.0),
    )
    def test_monotone_in_coverage(self, y, t):
        assert defect_level(y, t) >= defect_level(y, min(1.0, t + 0.05)) - 1e-12

    @given(y=st.floats(0.05, 0.95), target=st.floats(10, 100000))
    def test_inverse_roundtrip(self, y, target):
        coverage = coverage_for_dppm(y, target)
        if 0.0 < coverage < 1.0:
            assert dppm(y, coverage) == pytest.approx(target, rel=1e-6)

    def test_table_shape(self):
        table = coverage_dppm_table(0.8)
        values = [row["dppm"] for row in table]
        assert values == sorted(values, reverse=True)
        assert values[-1] == 0.0


class TestCost:
    def test_cost_components(self):
        model = CostModel(
            tester_cost_per_second=0.1, shift_clock_hz=1e6, insertion_overhead_s=1.0
        )
        assert cost_per_die(1_000_000, model) == pytest.approx(0.2)

    def test_mapout_uplift(self):
        report = mapout_yield_uplift(0.6, salvage_fraction=0.5)
        assert report["yield_with_mapout"] == pytest.approx(0.8)
        assert report["salvaged"] == pytest.approx(0.2)

    def test_mapout_validation(self):
        with pytest.raises(ValueError):
            mapout_yield_uplift(1.5, 0.5)
