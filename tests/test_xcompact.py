"""X-compact: X-tolerant spatial compaction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.values import X
from repro.compression.compactor import CompactorConfig, XorCompactor
from repro.compression.xcompact import (
    XCompactConfig,
    XCompactor,
    minimum_channels,
)


def make(n_chains=10, n_channels=6, weight=3):
    return XCompactor(XCompactConfig(n_chains, n_channels, weight))


class TestConfig:
    def test_capacity_enforced(self):
        with pytest.raises(ValueError, match="support at most"):
            XCompactConfig(n_chains=100, n_channels=5, row_weight=3)

    def test_weight_bounds(self):
        with pytest.raises(ValueError):
            XCompactConfig(4, 4, row_weight=0)
        with pytest.raises(ValueError):
            XCompactConfig(4, 4, row_weight=5)

    def test_minimum_channels(self):
        assert minimum_channels(10, 3) == 5  # C(5,3)=10
        assert minimum_channels(11, 3) == 6
        assert minimum_channels(1, 1) == 1

    def test_rows_distinct_constant_weight(self):
        compactor = make(15, 6, 3)
        assert len(set(compactor.rows)) == 15
        assert all(len(row) == 3 for row in compactor.rows)


class TestXTolerance:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_single_error_visible_under_one_x_chain(self, seed):
        """The defining guarantee: any single-chain error stays observable
        with any single X-dirty chain."""
        rng = random.Random(seed)
        compactor = make(10, 6, 3)
        cycles = 4
        good = [[rng.randint(0, 1) for _ in range(cycles)] for _ in range(10)]
        x_chain = rng.randrange(10)
        error_chain = rng.choice([c for c in range(10) if c != x_chain])
        for chain in (x_chain,):
            for cycle in range(cycles):
                good[chain][cycle] = X
        faulty = [row[:] for row in good]
        faulty[error_chain][rng.randrange(cycles)] ^= 1
        assert compactor.observable_difference(good, faulty)

    def test_plain_xor_compactor_loses_same_case(self):
        """Contrast: the unmasked XOR compactor misses an error sharing a
        group with an X chain."""
        plain = XorCompactor(CompactorConfig(n_chains=4, n_channels=1, seed=1))
        good = [[X], [0], [0], [0]]
        faulty = [row[:] for row in good]
        faulty[1][0] ^= 1
        assert not plain.observable_difference(good, faulty)
        xc = make(4, 4, 3)
        assert xc.observable_difference(good, faulty)


class TestLocalization:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_single_failing_chain_located(self, seed):
        rng = random.Random(seed)
        compactor = make(10, 6, 3)
        cycles = 3
        good = [[rng.randint(0, 1) for _ in range(cycles)] for _ in range(10)]
        victim = rng.randrange(10)
        faulty = [row[:] for row in good]
        faulty[victim][rng.randrange(cycles)] ^= 1
        assert compactor.locate_failing_chain(good, faulty) == victim

    def test_no_failure_returns_none(self):
        compactor = make(6, 6, 3)
        good = [[0, 1], [1, 0], [0, 0], [1, 1], [0, 1], [1, 1]]
        assert compactor.locate_failing_chain(good, good) is None

    def test_double_chain_failure_usually_unlocatable(self):
        compactor = make(10, 6, 3)
        good = [[0] * 3 for _ in range(10)]
        faulty = [row[:] for row in good]
        faulty[0][0] ^= 1
        faulty[5][1] ^= 1
        located = compactor.locate_failing_chain(good, faulty)
        assert located not in (0, 5) or located is None or True
        # The syndrome is the union of two codewords (weight > 3): no match.
        assert located is None


class TestCompaction:
    def test_xor_semantics(self):
        compactor = make(4, 4, 3)
        outputs = compactor.compact_slice([1, 0, 0, 0])
        assert outputs.count(1) == 3  # chain 0's codeword weight

    def test_unload_shape(self):
        compactor = make(5, 5, 2)
        streams = [[0, 1]] * 5
        compacted = compactor.compact_unload(streams)
        assert len(compacted) == 2
        assert all(len(slice_) == 5 for slice_ in compacted)
