"""The reference MLP and its int8 lowering."""

import numpy as np
import pytest

from repro.aichip.nn import (
    MLP,
    QuantizedMLP,
    blob_centers,
    make_blobs,
    trained_reference_model,
)


@pytest.fixture(scope="module")
def fixture():
    return trained_reference_model()


class TestData:
    def test_blobs_deterministic(self):
        a = make_blobs(50, seed=3)
        b = make_blobs(50, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_shared_centers_define_one_task(self):
        centers = blob_centers(8, 3, seed=1)
        x1, _ = make_blobs(10, seed=1, centers=centers)
        x2, _ = make_blobs(10, seed=2, centers=centers)
        assert x1.shape == x2.shape

    def test_shapes(self):
        x, y = make_blobs(100, n_features=6, n_classes=4, seed=0)
        assert x.shape == (100, 6)
        assert set(y) <= {0, 1, 2, 3}


class TestTraining:
    def test_reference_model_learns(self, fixture):
        model, test_x, test_y = fixture
        assert model.accuracy(test_x, test_y) > 0.9

    def test_training_improves(self):
        centers = blob_centers(8, 3, seed=5)
        train = make_blobs(600, seed=5, centers=centers)
        model = MLP.random([8, 12, 3], seed=5)
        before = model.accuracy(*train)
        history = model.train(*train, epochs=15, seed=5)
        assert history[-1] > before

    def test_forward_shapes(self, fixture):
        model, test_x, _ = fixture
        logits = model.forward(test_x[:7])
        assert logits.shape == (7, 3)


class TestQuantizedInference:
    def test_int8_close_to_float(self, fixture):
        model, test_x, test_y = fixture
        quantized = QuantizedMLP.from_float(model, test_x)
        float_acc = model.accuracy(test_x, test_y)
        int8_acc = quantized.accuracy(test_x, test_y)
        assert abs(float_acc - int8_acc) < 0.05

    def test_weights_are_int8_range(self, fixture):
        model, test_x, _ = fixture
        quantized = QuantizedMLP.from_float(model, test_x)
        for layer in quantized.layers:
            assert layer.weights_q.min() >= -127
            assert layer.weights_q.max() <= 127

    def test_matmul_hook_is_used(self, fixture):
        model, test_x, test_y = fixture
        calls = []

        def hook(x, w):
            calls.append((x.shape, w.shape))
            return x @ w

        quantized = QuantizedMLP.from_float(model, test_x, matmul_hook=hook)
        quantized.predict(test_x[:5])
        assert len(calls) == len(quantized.layers)
