"""XOR spatial compaction and X-masking."""

import pytest

from repro.circuit.values import ONE, X, ZERO
from repro.compression.compactor import (
    CompactorConfig,
    XorCompactor,
    greedy_x_mask,
)


def make(n_chains=8, n_channels=2, seed=0):
    return XorCompactor(CompactorConfig(n_chains, n_channels, seed))


class TestGroups:
    def test_partition_covers_all_chains(self):
        compactor = make(10, 3)
        seen = sorted(chain for group in compactor.groups for chain in group)
        assert seen == list(range(10))

    def test_balanced(self):
        compactor = make(10, 3)
        sizes = [len(g) for g in compactor.groups]
        assert max(sizes) - min(sizes) <= 1


class TestCompaction:
    def test_xor_semantics(self):
        compactor = make(4, 1, seed=1)
        assert compactor.compact_slice([1, 1, 0, 0]) == [0]
        assert compactor.compact_slice([1, 0, 0, 0]) == [1]

    def test_x_poisons_group(self):
        compactor = make(4, 1, seed=1)
        assert compactor.compact_slice([1, X, 0, 0]) == [X]

    def test_mask_blocks_x(self):
        compactor = make(4, 1, seed=1)
        bits = [1, X, 0, 0]
        mask = [1, 0, 1, 1]  # block the X chain
        assert compactor.compact_slice(bits, mask) == [1]

    def test_unload_shapes(self):
        compactor = make(4, 2, seed=0)
        streams = [[0, 1], [1, 1], [0, 0], [1, 0]]
        compacted = compactor.compact_unload(streams)
        assert len(compacted) == 2
        assert all(len(slice_) == 2 for slice_ in compacted)

    def test_ragged_streams_padded(self):
        compactor = make(3, 1, seed=0)
        compacted = compactor.compact_unload([[1], [1, 1], [0, 1]])
        assert len(compacted) == 2


class TestObservableDifference:
    def test_detects_single_bit_flip(self):
        compactor = make(6, 2, seed=3)
        good = [[0, 1, 0], [1, 1, 0], [0, 0, 0], [1, 0, 1], [0, 1, 1], [1, 1, 1]]
        faulty = [row[:] for row in good]
        faulty[2][1] ^= 1
        assert compactor.observable_difference(good, faulty)

    def test_even_flips_in_same_group_alias(self):
        """Two flips in one XOR group, same cycle, cancel — the classic
        spatial-compactor aliasing case."""
        compactor = make(4, 1, seed=1)
        good = [[0], [0], [0], [0]]
        faulty = [[1], [1], [0], [0]]  # two flips, one group, same cycle
        assert not compactor.observable_difference(good, faulty)

    def test_x_hides_difference_without_mask(self):
        compactor = make(4, 1, seed=1)
        good = [[0], [X], [0], [0]]
        faulty = [[1], [X], [0], [0]]
        assert not compactor.observable_difference(good, faulty)
        mask = [1, 0, 1, 1]
        assert compactor.observable_difference(good, faulty, mask)


class TestGreedyMask:
    def test_masks_dirtiest_chains(self):
        mask = greedy_x_mask([0.0, 0.9, 0.1, 0.7], budget=2)
        assert mask == [1, 0, 1, 0]

    def test_budget_zero(self):
        assert greedy_x_mask([0.5, 0.5], budget=0) == [1, 1]

    def test_clean_chains_never_masked(self):
        mask = greedy_x_mask([0.0, 0.0, 0.5], budget=3)
        assert mask == [1, 1, 0]
