"""Integrated EDT-ATPG flow (compression/flow.py)."""

import pytest

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.compression.edt import EdtSystem
from repro.compression.flow import run_compressed_atpg
from repro.faults import collapse_faults, full_fault_list
from repro.scan import insert_scan, partition_faults
from repro.sim.faultsim import FaultSimulator


@pytest.fixture(scope="module")
def flow_setup():
    netlist = generators.random_sequential(6, 120, 24, seed=8)
    design = insert_scan(netlist, n_chains=6)
    faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
    capture, _ = partition_faults(design, faults)
    edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
    flow = run_compressed_atpg(edt, faults=capture, seed=3)
    return design, capture, edt, flow


class TestCompressedAtpg:
    def test_matches_bypass_coverage(self, flow_setup):
        design, capture, edt, flow = flow_setup
        bypass = run_atpg(design.netlist, faults=capture, seed=3)
        assert flow.test_coverage >= bypass.test_coverage - 0.03

    def test_applied_patterns_regrade(self, flow_setup):
        """The flow's own coverage accounting must match an independent
        fault simulation of the applied patterns."""
        design, capture, edt, flow = flow_setup
        simulator = FaultSimulator(design.netlist)
        regrade = simulator.simulate(flow.applied_patterns, capture, drop=True)
        assert len(regrade.detected) == flow.detected

    def test_encoded_patterns_expand_consistently(self, flow_setup):
        """Each stored channel stream must re-expand to the stored state."""
        design, capture, edt, flow = flow_setup
        for encoded in flow.encoded[:10]:
            flat = [
                bit for cycle in encoded.channel_stream for bit in cycle
            ]
            loads = edt.decompressor.expand(flat)
            assert edt.loads_to_state(loads) == encoded.expanded_state

    def test_accounting_adds_up(self, flow_setup):
        design, capture, edt, flow = flow_setup
        assert (
            flow.detected + flow.untestable + flow.aborted <= flow.total_faults
        )
        assert flow.total_faults == len(capture)

    def test_deterministic(self, flow_setup):
        design, capture, edt, flow = flow_setup
        again = run_compressed_atpg(
            EdtSystem(design, 2, 2), faults=capture, seed=3
        )
        assert again.detected == flow.detected
        assert len(again.applied_patterns) == len(flow.applied_patterns)

    def test_summary_fields(self, flow_setup):
        *_, flow = flow_setup
        summary = flow.summary()
        for key in ("encoded_patterns", "fault_coverage", "unencodable"):
            assert key in summary
