"""E10 — Table: diagnosis resolution, raw vs through the compactor.

Claim: effect-cause diagnosis pins a logged failure to a handful of
equivalent suspects when raw responses are visible; behind an XOR
compactor the observation is lossy, so resolution degrades somewhat but
the defect still lands in the top suspect set — the trade compressed-scan
diagnosis lives with.

Regenerates: average suspect-set size and defect-hit rate for raw
effect-cause diagnosis and for compactor-aware diagnosis on the same
injected defect population.
"""

import random

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.compression.compactor import CompactorConfig, XorCompactor
from repro.diagnosis import (
    CompactedDiagnoser,
    EffectCauseDiagnoser,
    inject_and_observe,
)
from repro.faults import collapse_faults, full_fault_list
from repro.scan import insert_scan, partition_faults
from repro.sim.faultsim import FaultSimulator

from .util import print_table, run_once

N_DEFECTS = 10


def _run():
    netlist = generators.random_sequential(6, 90, 16, seed=9)
    design = insert_scan(netlist, n_chains=4)
    faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
    capture, _ = partition_faults(design, faults)
    atpg = run_atpg(design.netlist, faults=capture, seed=2)
    patterns = atpg.patterns
    simulator = FaultSimulator(design.netlist)

    rng = random.Random(4)
    defects = rng.sample(capture, N_DEFECTS)

    raw_diagnoser = EffectCauseDiagnoser(design.netlist, capture)
    raw_hits, raw_sizes = 0, []
    for defect in defects:
        observed = inject_and_observe(simulator, patterns, defect)
        if not observed:
            continue
        result = raw_diagnoser.diagnose(patterns, observed)
        raw_sizes.append(len(result.top_suspects))
        if defect in result.top_suspects:
            raw_hits += 1

    compactor = XorCompactor(CompactorConfig(design.n_chains, 2, seed=3))
    compact_diagnoser = CompactedDiagnoser(design, compactor, capture)
    compact_hits, compact_sizes = 0, []
    for defect in defects:
        observed = compact_diagnoser.compacted_signature(patterns, defect)
        if not observed:
            continue
        ranked = compact_diagnoser.diagnose(patterns, observed)
        best = ranked[0][1]
        top = [fault for fault, score in ranked if score == best]
        compact_sizes.append(len(top))
        if defect in top:
            compact_hits += 1

    return {
        "raw": (raw_hits, raw_sizes),
        "compact": (compact_hits, compact_sizes),
        "defects": len(defects),
    }


def test_e10_diagnosis_resolution(benchmark):
    data = run_once(benchmark, _run)
    raw_hits, raw_sizes = data["raw"]
    compact_hits, compact_sizes = data["compact"]
    rows = [
        {
            "observation": "raw responses",
            "defects": len(raw_sizes),
            "hit_rate": raw_hits / max(1, len(raw_sizes)),
            "avg_suspects": sum(raw_sizes) / max(1, len(raw_sizes)),
        },
        {
            "observation": "XOR-compacted",
            "defects": len(compact_sizes),
            "hit_rate": compact_hits / max(1, len(compact_sizes)),
            "avg_suspects": sum(compact_sizes) / max(1, len(compact_sizes)),
        },
    ]
    print_table("E10: diagnosis resolution raw vs compacted", rows)
    assert rows[0]["hit_rate"] >= 0.9
    assert rows[1]["hit_rate"] >= 0.7
    # Compaction cannot *improve* average resolution.
    assert rows[1]["avg_suspects"] >= rows[0]["avg_suspects"] - 1e-9
