"""Wide-word kernel — Table: E3 word-width ladder + good-machine cache.

Times single-process PPSFP fault simulation on a replicated MAC-array
chip (>=5k gates) at each word width of the ladder (64 -> 4096 patterns
per packed word) and records the rows to ``BENCH_widesim.json``.  The
detection maps must be bit-identical at every width — the timing sweep
doubles as the differential correctness check.

A second **kernel ladder** extends E3 past the python-bigint width wall:
the numpy uint64-lane kernel (:mod:`repro.sim.npsim`) is timed at widths
4096, 8192, and 16384 against the python kernel at 4096 on the same
16384-pattern campaign.  Each rung is one warm-up run plus replicated
timed runs summarized by the median (bigint arithmetic and numpy ufunc
dispatch both have noisy cold paths on shared machines), and every rung's
detection map must be bit-identical to the python reference.

Acceptance pins:

* width=1024 sustains >=3x the fault-simulation throughput of width=64
  on the MAC array (asserted in the full pytest-benchmark run);
* the numpy kernel sustains >=3x the python kernel's throughput at
  word_width 4096 on the same array (asserted on warm medians);
* the good-machine response cache eliminates repeated fault-free passes —
  a re-run of the same ``run_atpg`` flow replays its blocks from cache
  (shown via the cache's hit/miss counters), and an identical
  ``FaultSimulator`` block re-grade reports ``good_passes == 0``.

``python -m benchmarks.bench_widesim --smoke`` runs a ~30 s subset
(smaller array, widths 64 and 1024) asserting a modest >=1.3x speedup,
gated on the baseline running long enough for timer noise not to matter —
the same capability-gate style as ``bench_dispatch``'s core-count check.

``python -m benchmarks.bench_widesim --np-smoke`` is the CI envelope for
the kernel comparison: replicated python and numpy runs on a smaller
array, written to ``BENCH_widesim_np_smoke.json`` with ``<base>_x<N>``
row names so ``repro obs gate`` collapses the replicates into one
median+MAD sample per kernel and pins the deterministic work counters
exactly against ``benchmarks/baselines/``.
"""

import os
import sys
import time

from repro import obs
from repro.atpg.engine import run_atpg
from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.dft.flatten import replicate_netlist
from repro.faults import collapse_faults, full_fault_list
from repro.sim.faultsim import FaultSimulator
from repro.sim.goodcache import DEFAULT_CACHE
from repro.sim.parallel import WORD_WIDTHS

from .util import print_table, run_once, write_bench_json

# 32 copies of the 158-gate mac_unit(4) core -> 5056 gates.
MAC_COPIES = 32
N_PATTERNS = 4096
FAULT_SAMPLE = 320  # every k-th collapsed fault — keeps 64-bit rung tractable

# Kernel ladder: one 16384-pattern campaign so the tallest rung still packs
# into a single word, python reference at 4096 (its characterized sweet
# spot), numpy at 4096 and beyond the bigint wall.
KERNEL_PATTERNS = 16384
KERNEL_BASE_WIDTH = 4096
KERNEL_WIDTHS = (4096, 8192, 16384)
KERNEL_REPLICATES = 3
KERNEL_MIN_SPEEDUP = 3.0  # numpy vs python at width 4096, warm medians

SMOKE_COPIES = 8
SMOKE_PATTERNS = 1024
SMOKE_FAULTS = 200
# Below this baseline wall time the smoke speedup ratio is timer noise, so
# the assertion is skipped (mirrors bench_dispatch's cpu-count gate).
SMOKE_MIN_BASELINE_S = 0.2

# --np-smoke: the kernel-comparison CI envelope.  Sized so the python
# baseline clears SMOKE_MIN_BASELINE_S on a cold CI runner while the whole
# mode stays under a few seconds.
NP_SMOKE_COPIES = 16
NP_SMOKE_PATTERNS = 8192
NP_SMOKE_FAULTS = 240
NP_SMOKE_WIDTH = 4096
NP_SMOKE_REPLICATES = 3
NP_SMOKE_MIN_SPEEDUP = 1.5  # coarse sanity bound; the obs gate owns drift


def _mac_array(copies):
    return replicate_netlist(generators.mac_unit(4), copies)


def _fault_sample(netlist, count):
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    if len(faults) <= count:
        return faults
    step = len(faults) // count
    return faults[::step][:count]


def _width_ladder(netlist, faults, n_patterns, widths):
    """One timed drop=False PPSFP run per width; identical work each rung."""
    n_inputs = FaultSimulator(netlist).view.num_inputs  # PIs + scan cells
    patterns = random_patterns(n_inputs, n_patterns, seed=42)
    rows = []
    reference = None
    for width in widths:
        simulator = FaultSimulator(netlist, word_width=width, cache=None)
        start = time.perf_counter()
        result = simulator.simulate(patterns, faults, drop=False)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = result
        else:  # differential: every width is bit-identical to the 64-bit run
            assert result.detected == reference.detected
            assert result.undetected == reference.undetected
        throughput = len(faults) * n_patterns / elapsed
        speedup = rows[0]["wall_time_s"] / elapsed if rows else 1.0
        rows.append(
            {
                "word_width": width,
                "wall_time_s": elapsed,
                "fault_patterns_per_s": throughput,
                "speedup_vs_64": speedup,
                "good_passes": result.stats["good_passes"],
                "words_evaluated": result.stats["words_evaluated"],
            }
        )
    return rows


def _timed_replicates(simulator, patterns, faults, replicates):
    """One warm-up pass, then ``replicates`` timed drop=False runs.

    Returns the last result and the list of timed wall seconds.  The
    warm-up run absorbs one-time costs (pattern packing buffers, numpy
    ufunc dispatch caches, branch warm-up) that would otherwise land on
    whichever kernel runs first and skew the ratio.
    """
    simulator.simulate(patterns, faults, drop=False)
    walls = []
    result = None
    for _ in range(replicates):
        start = time.perf_counter()
        result = simulator.simulate(patterns, faults, drop=False)
        walls.append(time.perf_counter() - start)
    return result, walls


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _kernel_ladder(netlist, faults, n_patterns, replicates):
    """python@4096 vs numpy@{4096, 8192, 16384} on one campaign.

    Every rung's detection map must equal the python reference's — the
    timing sweep doubles as the cross-kernel differential check at widths
    the conformance suite cannot afford to sweep.
    """
    n_inputs = FaultSimulator(netlist).view.num_inputs
    patterns = random_patterns(n_inputs, n_patterns, seed=42)
    rungs = [("python", KERNEL_BASE_WIDTH)]
    rungs += [("numpy", width) for width in KERNEL_WIDTHS]
    rows = []
    reference = None
    python_median = None
    for kernel, width in rungs:
        simulator = FaultSimulator(
            netlist, word_width=width, cache=None, kernel=kernel
        )
        result, walls = _timed_replicates(simulator, patterns, faults, replicates)
        median = _median(walls)
        if reference is None:
            reference = result
            python_median = median
        else:
            assert result.detected == reference.detected
            assert result.undetected == reference.undetected
        rows.append(
            {
                "name": f"{kernel}_w{width}",
                "kernel": kernel,
                "word_width": width,
                "wall_time_s": median,
                "fault_patterns_per_s": len(faults) * n_patterns / median,
                "speedup_vs_python": python_median / median,
                "good_passes": result.stats["good_passes"],
                "words_evaluated": result.stats["words_evaluated"],
            }
        )
    return rows


def _cache_demo():
    """Good-machine cache counters across a repeated ATPG flow."""
    netlist = generators.random_resistant(12, 4)
    DEFAULT_CACHE.clear()
    before = dict(DEFAULT_CACHE.stats())
    run_atpg(netlist, seed=3, random_batches=2)
    after_first = dict(DEFAULT_CACHE.stats())
    run_atpg(netlist, seed=3, random_batches=2)
    after_second = dict(DEFAULT_CACHE.stats())

    first = {k: after_first[k] - before[k] for k in ("hits", "misses")}
    second = {k: after_second[k] - after_first[k] for k in ("hits", "misses")}

    # Identical block re-grade: the second pass costs zero good passes.
    grade_net = generators.random_circuit(8, 80, seed=5)
    faults, _ = collapse_faults(grade_net, full_fault_list(grade_net))
    patterns = random_patterns(len(grade_net.inputs), 256, seed=5)
    simulator = FaultSimulator(grade_net, word_width=256)
    first_grade = simulator.simulate(patterns, faults, drop=False)
    second_grade = simulator.simulate(patterns, faults, drop=False)
    assert second_grade.detected == first_grade.detected

    return {
        "atpg_first_run": first,
        "atpg_second_run": second,
        "regrade_first_good_passes": first_grade.stats["good_passes"],
        "regrade_second_good_passes": second_grade.stats["good_passes"],
        "regrade_second_cache_hits": second_grade.stats["good_cache_hits"],
    }


def _run_full():
    netlist = _mac_array(MAC_COPIES)
    faults = _fault_sample(netlist, FAULT_SAMPLE)
    rows = _width_ladder(netlist, faults, N_PATTERNS, WORD_WIDTHS)
    kernel_rows = _kernel_ladder(
        netlist, faults, KERNEL_PATTERNS, KERNEL_REPLICATES
    )
    cache = _cache_demo()
    return netlist, faults, rows, kernel_rows, cache


def test_widesim_width_ladder(benchmark):
    with obs.observe("bench.widesim") as observation:
        netlist, faults, rows, kernel_rows, cache = run_once(benchmark, _run_full)
    print_table(f"E3 word-width ladder on {netlist.name}", rows)
    print_table(
        f"E3 kernel ladder on {netlist.name} ({KERNEL_PATTERNS} patterns)",
        kernel_rows,
    )
    path = write_bench_json(
        "widesim",
        {
            "circuit": netlist.name,
            "gates": len(netlist.gates),
            "faults_sampled": len(faults),
            "n_patterns": N_PATTERNS,
            "kernel_n_patterns": KERNEL_PATTERNS,
            "rows": rows,
            "kernel_rows": kernel_rows,
            "cache_demo": cache,
        },
        observation=observation,
    )
    print(f"wrote {path} ({len(netlist.gates)} gates)")

    assert len(netlist.gates) >= 5000
    by_width = {row["word_width"]: row for row in rows}
    # Acceptance: >=3x single-process throughput at width 1024 vs 64.
    assert by_width[1024]["speedup_vs_64"] >= 3.0
    # Acceptance: the numpy kernel beats the python kernel >=3x at the
    # python ladder's tallest rung, and keeps scaling past the bigint wall.
    by_kernel_width = {
        (row["kernel"], row["word_width"]): row for row in kernel_rows
    }
    assert (
        by_kernel_width[("numpy", KERNEL_BASE_WIDTH)]["speedup_vs_python"]
        >= KERNEL_MIN_SPEEDUP
    )
    assert ("numpy", 16384) in by_kernel_width  # the ladder really extends
    # The cache makes repeated flows and re-grades free of good passes.
    assert cache["atpg_second_run"]["hits"] > cache["atpg_first_run"]["hits"]
    assert cache["regrade_second_good_passes"] == 0
    assert cache["regrade_second_cache_hits"] > 0


def _run_smoke():
    """Quick capability-gated check for CI: wide word beats 64-bit."""
    netlist = _mac_array(SMOKE_COPIES)
    faults = _fault_sample(netlist, SMOKE_FAULTS)
    rows = _width_ladder(netlist, faults, SMOKE_PATTERNS, (64, 1024))
    print_table(f"widesim smoke on {netlist.name}", rows)
    baseline = rows[0]["wall_time_s"]
    speedup = rows[1]["speedup_vs_64"]
    if baseline < SMOKE_MIN_BASELINE_S:
        print(
            f"(smoke speedup assertion skipped: baseline {baseline:.3f}s "
            f"< {SMOKE_MIN_BASELINE_S}s, ratio would be timer noise)"
        )
        return 0
    if speedup < 1.3:
        print(f"FAIL: width-1024 speedup {speedup:.2f}x < 1.3x")
        return 1
    print(f"OK: width-1024 speedup {speedup:.2f}x (baseline {baseline:.2f}s)")
    return 0


def _run_np_smoke():
    """Kernel-comparison CI envelope -> ``BENCH_widesim_np_smoke.json``.

    Each kernel contributes one warm-up pass plus ``NP_SMOKE_REPLICATES``
    timed rows named ``<kernel>_x<N>`` — the ``repro obs gate`` replicate
    convention — carrying the wall time and the deterministic work
    counters the gate pins exactly.
    """
    netlist = _mac_array(NP_SMOKE_COPIES)
    faults = _fault_sample(netlist, NP_SMOKE_FAULTS)
    n_inputs = FaultSimulator(netlist).view.num_inputs
    patterns = random_patterns(n_inputs, NP_SMOKE_PATTERNS, seed=42)
    rows = []
    medians = {}
    reference = None
    for kernel in ("python", "numpy"):
        simulator = FaultSimulator(
            netlist, word_width=NP_SMOKE_WIDTH, cache=None, kernel=kernel
        )
        result, walls = _timed_replicates(
            simulator, patterns, faults, NP_SMOKE_REPLICATES
        )
        if reference is None:
            reference = result
        else:  # differential: kernels must agree bit-for-bit
            assert result.detected == reference.detected
            assert result.undetected == reference.undetected
        medians[kernel] = _median(walls)
        for rep, wall in enumerate(walls):
            rows.append(
                {
                    "name": f"{kernel}_x{rep}",
                    "wall_time_s": wall,
                    "events_propagated": result.stats["events_propagated"],
                    "words_evaluated": result.stats["words_evaluated"],
                    "good_passes": result.stats["good_passes"],
                    "detected": len(result.detected),
                    "faults": result.total_faults,
                }
            )
    speedup = medians["python"] / medians["numpy"]
    rows.append({"name": "speedup", "numpy_vs_python_x": speedup})
    print_table(f"widesim np smoke on {netlist.name}", rows)
    path = write_bench_json(
        "widesim_np_smoke",
        {
            "circuit": netlist.name,
            "gates": len(netlist.gates),
            "n_patterns": NP_SMOKE_PATTERNS,
            "word_width": NP_SMOKE_WIDTH,
            "cpu_count": os.cpu_count() or 1,
            "rows": rows,
        },
    )
    print(f"wrote {path}")
    if medians["python"] < SMOKE_MIN_BASELINE_S:
        print(
            f"(np-smoke speedup assertion skipped: python baseline "
            f"{medians['python']:.3f}s < {SMOKE_MIN_BASELINE_S}s, ratio "
            f"would be timer noise)"
        )
        return 0
    if speedup < NP_SMOKE_MIN_SPEEDUP:
        print(
            f"FAIL: numpy kernel speedup {speedup:.2f}x "
            f"< {NP_SMOKE_MIN_SPEEDUP}x"
        )
        return 1
    print(
        f"OK: numpy kernel speedup {speedup:.2f}x "
        f"(python baseline {medians['python']:.2f}s)"
    )
    return 0


if __name__ == "__main__":
    if "--np-smoke" in sys.argv:
        sys.exit(_run_np_smoke())
    sys.exit(_run_smoke() if "--smoke" in sys.argv else 0)
