"""E3 — Table: fault-simulation engine comparison.

Claim: bit-parallel PPSFP with fault dropping is one to two orders of
magnitude faster than serial (one fault, one pattern) simulation — the
reason every production grader uses it.  Fault dropping alone contributes
a large factor.

Regenerates: per circuit, wall time for serial vs PPSFP (both no-drop, for
a fair per-work comparison) plus PPSFP with dropping and the multiprocess
pool backend; identical detection sets double as a correctness check.
See ``bench_dispatch.py`` for the dedicated backend-scaling table.
"""

import os
import time

from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks
from repro.faults import full_fault_list
from repro.sim.faultsim import FaultSimulator

from .util import print_table, run_once

CIRCUITS = ["c17", "add8", "alu4", "mul4"]
N_PATTERNS = 256  # several 64-pattern words, so fault dropping can bite


def _compare(name):
    netlist = benchmarks.get_benchmark(name)
    simulator = FaultSimulator(netlist)
    faults = full_fault_list(netlist)
    patterns = random_patterns(simulator.view.num_inputs, N_PATTERNS, seed=1)

    start = time.perf_counter()
    serial = simulator.simulate(patterns, faults, drop=False, engine="serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    ppsfp = simulator.simulate(patterns, faults, drop=False, engine="ppsfp")
    ppsfp_s = time.perf_counter() - start

    start = time.perf_counter()
    dropped = simulator.simulate(patterns, faults, drop=True, engine="ppsfp")
    drop_s = time.perf_counter() - start

    jobs = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    pool = simulator.simulate(patterns, faults, drop=False, engine="pool", jobs=jobs)
    pool_s = time.perf_counter() - start

    assert serial.detected == ppsfp.detected == pool.detected  # engines agree
    return {
        "circuit": name,
        "faults": len(faults),
        "serial_s": serial_s,
        "ppsfp_s": ppsfp_s,
        "ppsfp_drop_s": drop_s,
        f"pool{jobs}_s": pool_s,
        "speedup_x": serial_s / ppsfp_s if ppsfp_s else float("inf"),
        "drop_speedup_x": serial_s / drop_s if drop_s else float("inf"),
    }


def _run_all():
    return [_compare(name) for name in CIRCUITS]


def test_e3_engine_comparison(benchmark):
    rows = run_once(benchmark, _run_all)
    print_table("E3: serial vs PPSFP fault simulation", rows)
    for row in rows:
        if row["circuit"] != "c17":  # tiny circuits amortize nothing
            assert row["speedup_x"] > 3
            assert row["drop_speedup_x"] > row["speedup_x"]
