"""Dispatch — Table: fault-simulation backend scaling (serial/ppsfp/pool).

Times the three backends of :mod:`repro.sim.dispatch` on generated
circuits of increasing size and records the rows to ``BENCH_dispatch.json``
for cross-run comparison.  The pool backend is measured at 1, 2, and 4
workers; identical detection results across every backend and worker count
double as the differential correctness check.

On a multi-core host the 4-worker pool should beat single-process PPSFP by
>1.5x on the largest circuit (asserted when >=4 CPUs are available).  On a
single-core container the pool rows still run — they measure dispatch
overhead honestly — but the speedup assertion is skipped and the core
count is recorded in the JSON.
"""

import os
import time

from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim.faultsim import FaultSimulator

from .util import print_table, run_once, write_bench_json

# (n_inputs, n_gates, seed) — the standard generated-circuit ladder; the
# last entry is the "largest generated circuit" of the acceptance check.
SIZES = [(8, 120, 1), (10, 240, 2), (12, 480, 3)]
N_PATTERNS = 256
POOL_JOBS = (1, 2, 4)
# Serial is O(faults x patterns x gates) in pure Python — minutes on the
# larger rungs — so it is timed only up to this gate count and reported as
# None above it (ppsfp is the meaningful single-process baseline there).
SERIAL_GATE_LIMIT = 150


def _time_backend(simulator, patterns, faults, **kwargs):
    start = time.perf_counter()
    result = simulator.simulate(patterns, faults, drop=False, **kwargs)
    return result, time.perf_counter() - start


def _compare(n_inputs, n_gates, seed):
    netlist = generators.random_circuit(n_inputs, n_gates, seed=seed)
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, N_PATTERNS, seed=seed)

    serial = None
    serial_s = None
    if n_gates <= SERIAL_GATE_LIMIT:
        serial, serial_s = _time_backend(simulator, patterns, faults, engine="serial")
    ppsfp, ppsfp_s = _time_backend(simulator, patterns, faults, engine="ppsfp")

    row = {
        "circuit": netlist.name,
        "faults": len(faults),
        "serial_s": serial_s,
        "ppsfp_s": ppsfp_s,
    }
    pool_stats = {}
    for jobs in POOL_JOBS:
        pool, pool_s = _time_backend(
            simulator, patterns, faults, engine="pool", jobs=jobs
        )
        assert pool.detected == ppsfp.detected  # differential check
        assert pool.undetected == ppsfp.undetected
        row[f"pool{jobs}_s"] = pool_s
        pool_stats[jobs] = {
            "wall_time_s": pool_s,
            "speedup_vs_ppsfp": ppsfp_s / pool_s if pool_s else float("inf"),
            "load_imbalance": pool.stats["load_imbalance"],
            "partitions": len(pool.stats["partitions"]),
        }
    if serial is not None:
        assert serial.detected == ppsfp.detected
    best_jobs = max(POOL_JOBS)
    row["pool_speedup_x"] = pool_stats[best_jobs]["speedup_vs_ppsfp"]
    row["imbalance"] = pool_stats[best_jobs]["load_imbalance"]
    return row, pool_stats


def _run_all():
    rows = []
    detail = {}
    for size in SIZES:
        row, pool_stats = _compare(*size)
        rows.append(row)
        detail[row["circuit"]] = pool_stats
    return rows, detail


# Acceptance: 4-worker pool beats single-process PPSFP by this factor on
# the largest circuit.  Only meaningful with real parallelism, so the
# assertion is capability-gated on the core count — and the gate's verdict
# is recorded in the envelope instead of vanishing into stdout.
REQUIRED_CORES = 4
MIN_POOL_SPEEDUP = 1.5


def test_dispatch_backend_scaling(benchmark):
    rows, detail = run_once(benchmark, _run_all)
    print_table("Dispatch: serial vs ppsfp vs pool", rows)
    cores = os.cpu_count() or 1
    asserted = cores >= REQUIRED_CORES
    skipped_reason = (
        None
        if asserted
        else f"host has {cores} CPU core(s), speedup assertion needs "
        f">={REQUIRED_CORES} for real parallelism"
    )
    path = write_bench_json(
        "dispatch",
        {
            "n_patterns": N_PATTERNS,
            "cpu_count": cores,
            "pool_jobs": list(POOL_JOBS),
            "rows": rows,
            "pool_detail": detail,
            "speedup_assertion": {
                "cpu_count": cores,
                "required_cores": REQUIRED_CORES,
                "min_speedup_x": MIN_POOL_SPEEDUP,
                "asserted": asserted,
                "skipped_reason": skipped_reason,
            },
        },
    )
    print(f"wrote {path} (cpu_count={cores})")
    for row in rows:
        if row["serial_s"] is not None:
            assert row["serial_s"] > row["ppsfp_s"]  # PPSFP wins vs serial
    if asserted:
        assert rows[-1]["pool_speedup_x"] > MIN_POOL_SPEEDUP
    else:
        print(f"(pool speedup assertion skipped: {skipped_reason})")
