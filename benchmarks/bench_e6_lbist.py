"""E6 — Table: logic BIST coverage with and without test points.

Claim: STUMPS pseudo-random coverage saturates below target on circuits
with random-resistant structures; inserting a few control/observation
points on the worst SCOAP lines recovers most of the gap — the standard
LBIST-readiness flow.  The MISR signature distinguishes good from faulty
machines with ~2^-n aliasing.

Regenerates: per circuit, random coverage before/after test points, test
point counts, and the good-machine signature.
"""

from repro.bist.lbist import LbistConfig, StumpsController
from repro.bist.testpoints import insert_test_points
from repro.circuit import generators

from .util import print_table, run_once

N_PATTERNS = 512


def _run():
    rows = []
    for width, cones in ((12, 3), (14, 4), (16, 4)):
        netlist = generators.random_resistant(width, cones=cones)
        before = StumpsController(netlist).run(N_PATTERNS)
        plan = insert_test_points(netlist, n_control=8, n_observe=8)
        after = StumpsController(plan.netlist).run(N_PATTERNS)
        rows.append(
            {
                "circuit": netlist.name,
                "patterns": N_PATTERNS,
                "cov_no_tp": before.final_coverage,
                "cov_with_tp": after.final_coverage,
                "test_points": plan.n_points,
                "signature": hex(after.signature),
            }
        )
    return rows


def test_e6_lbist_test_points(benchmark):
    rows = run_once(benchmark, _run)
    print_table("E6: LBIST coverage, +/- test points", rows)
    for row in rows:
        assert row["cov_with_tp"] > row["cov_no_tp"]
        assert row["cov_with_tp"] > 0.9
