"""E9 — Figure: NN inference accuracy vs PE fault count, +map-out.

Claim (the tutorial's "DFT on real AI chips" case study): random PE
defects degrade quantized-inference accuracy with wide variance (some
faults are benign, high-order stuck bits are catastrophic); after test
locates the faulty PEs and the rows are mapped out, accuracy returns to
the clean level while throughput drops by the lost-row fraction —
yield-saving graceful degradation.

Regenerates: the accuracy/cycles series over fault counts, before and
after map-out, plus the PE screen's detection rate.
"""

from repro.aichip.fault_effects import accuracy_fault_sweep, detection_is_complete
from repro.aichip.nn import trained_reference_model

from .util import print_series, run_once

FAULT_COUNTS = (0, 1, 2, 4, 8, 16)


def _run():
    fixture = trained_reference_model()
    sweep = accuracy_fault_sweep(
        fault_counts=FAULT_COUNTS, model_fixture=fixture, seed=9
    )
    detection = detection_is_complete(trials=25, seed=2)
    return sweep, detection


def test_e9_accuracy_vs_faults(benchmark):
    sweep, detection = run_once(benchmark, _run)
    points = [
        {
            "pe_faults": p.n_faults,
            "accuracy": p.accuracy,
            "acc_after_mapout": p.accuracy_after_mapout,
            "cycles": p.cycles,
            "cycles_after_mapout": p.cycles_after_mapout,
        }
        for p in sweep.points
    ]
    print_series("E9: inference accuracy vs PE faults", points)
    print(f"PE screen detection rate: {detection['detection_rate']:.2f}")

    assert sweep.quantized_accuracy > 0.9
    assert detection["detection_rate"] >= 0.95
    clean = sweep.points[0]
    survivors = [p for p in sweep.points if p.cycles_after_mapout > 0]
    assert len(survivors) >= len(sweep.points) - 1  # 16 faults may kill all rows
    for point in survivors:
        # Map-out restores accuracy to near-clean...
        assert point.accuracy_after_mapout >= sweep.quantized_accuracy - 0.05
        # ...at a throughput cost once faults exist.
        if point.n_faults >= 4:
            assert point.cycles_after_mapout > clean.cycles
