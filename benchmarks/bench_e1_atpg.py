"""E1 — ATPG summary table.

Claim (tutorial: "DFT technologies" / ATPG basics): deterministic ATPG with
a random-pattern warm-up reaches ~100 % coverage of testable stuck-at
faults with a compact pattern set, across circuit styles, and the
deterministic phase is what closes the gap the random phase leaves.

Regenerates: one row per benchmark circuit with pattern count, fault
counts, fault/test coverage, untestable/aborted counts, and CPU time.

``python -m benchmarks.bench_e1_atpg --smoke`` is the engine-portfolio
CI envelope: PODEM-only vs the portfolio on a random-pattern-resistant
circuit at a deliberately tight backtrack budget, so a hard-fault tail
exists for the portfolio to close.  Each engine contributes
``<engine>_x<N>`` replicate rows (the ``repro obs gate`` convention)
carrying wall time plus the deterministic campaign counters, written to
``BENCH_atpg_smoke.json`` and gated against
``baselines/BENCH_atpg_smoke.json``.
"""

import sys
import time

from repro.atpg import atpg_table_row, run_atpg
from repro.circuit import benchmarks, generators

from .util import print_table, run_once, write_bench_json

CIRCUITS = ["c17", "s27", "add8", "mul4", "mul8", "alu8", "mac4", "pe4", "rand200"]

# --smoke: tight enough that PODEM alone strands a hard-fault tail, small
# enough to finish in seconds on one CI core.
SMOKE_ENGINES = ("podem", "portfolio")
SMOKE_REPLICATES = 2
SMOKE_BACKTRACK_LIMIT = 16
SMOKE_SEED = 1

# --ladder: the E1b hard-fault-tail experiment (EXPERIMENTS.md) — the
# replicated accelerator array at a rising backtrack budget.
LADDER_CIRCUIT = "mac4_x32"
LADDER_LIMITS = (4, 16, 64)


def _run_all():
    rows = []
    for name in CIRCUITS:
        netlist = benchmarks.get_benchmark(name)
        result = run_atpg(netlist, seed=1)
        rows.append(atpg_table_row(netlist, result))
    return rows


def test_e1_atpg_summary(benchmark):
    rows = run_once(benchmark, _run_all)
    print_table("E1: ATPG summary (stuck-at)", rows)
    for row in rows:
        assert row["test_coverage"] >= 0.75
    # The non-random circuits should all close to 100 % test coverage.
    for row in rows:
        if not str(row["circuit"]).startswith("rand"):
            assert row["test_coverage"] == 1.0


def _smoke_campaign(engine):
    netlist = generators.random_resistant(14, cones=3)
    start = time.perf_counter()
    result = run_atpg(
        netlist,
        engine=engine,
        seed=SMOKE_SEED,
        random_batches=2,
        backtrack_limit=SMOKE_BACKTRACK_LIMIT,
    )
    wall = time.perf_counter() - start
    return result, wall


def _run_smoke():
    rows = []
    settled = {}
    for engine in SMOKE_ENGINES:
        replicates = []
        for rep in range(SMOKE_REPLICATES):
            result, wall = _smoke_campaign(engine)
            summary = result.summary()
            replicates.append(result)
            rows.append(
                {
                    "name": f"{engine}_x{rep}",
                    "engine": engine,
                    "wall_time_s": wall,
                    "detected": result.detected,
                    "faults": result.total_faults,
                    "patterns_simulated": len(result.patterns),
                    "proved_untestable": summary["proved_untestable"],
                    "aborted": len(result.aborted),
                    "test_coverage": summary["test_coverage"],
                }
            )
        # Same seed, same engine: campaigns must be bit-identical.
        first, second = replicates
        assert first.patterns == second.patterns, engine
        assert first.aborted == second.aborted, engine
        assert set(first.untestable) == set(second.untestable), engine
        settled[engine] = first.detected + len(first.untestable)
    print_table("E1: ATPG engine smoke (podem vs portfolio)", rows)
    path = write_bench_json(
        "atpg_smoke",
        {
            "circuit": "rand_resistant14c3",
            "backtrack_limit": SMOKE_BACKTRACK_LIMIT,
            "seed": SMOKE_SEED,
            "rows": rows,
        },
    )
    print(f"wrote {path}")
    if settled["portfolio"] < settled["podem"]:
        print(
            f"FAIL: portfolio settled {settled['portfolio']} faults "
            f"< podem-only {settled['podem']}"
        )
        return 1
    print(
        f"OK: portfolio settled {settled['portfolio']} faults "
        f"(podem-only {settled['podem']})"
    )
    return 0


def _run_ladder():
    """Regenerate the E1b hard-fault-tail table (PODEM vs portfolio on
    the replicated MAC array, backtrack-budget ladder)."""
    rows = []
    for limit in LADDER_LIMITS:
        for engine in SMOKE_ENGINES:
            netlist = benchmarks.get_benchmark(LADDER_CIRCUIT)
            start = time.perf_counter()
            result = run_atpg(
                netlist,
                engine=engine,
                seed=SMOKE_SEED,
                random_batches=2,
                backtrack_limit=limit,
            )
            wall = time.perf_counter() - start
            summary = result.summary()
            rows.append(
                {
                    "backtrack_limit": limit,
                    "engine": engine,
                    "detected": result.detected,
                    "proved_untestable": summary["proved_untestable"],
                    "aborted": len(result.aborted),
                    "fault_coverage": round(summary["fault_coverage"], 4),
                    "test_coverage": round(summary["test_coverage"], 4),
                    "patterns": len(result.patterns),
                    "wall_s": round(wall, 2),
                }
            )
    print_table(f"E1b: hard-fault tail on {LADDER_CIRCUIT}", rows)
    return 0


if __name__ == "__main__":
    if "--ladder" in sys.argv:
        sys.exit(_run_ladder())
    sys.exit(_run_smoke() if "--smoke" in sys.argv else 0)
