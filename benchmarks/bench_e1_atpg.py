"""E1 — ATPG summary table.

Claim (tutorial: "DFT technologies" / ATPG basics): deterministic ATPG with
a random-pattern warm-up reaches ~100 % coverage of testable stuck-at
faults with a compact pattern set, across circuit styles, and the
deterministic phase is what closes the gap the random phase leaves.

Regenerates: one row per benchmark circuit with pattern count, fault
counts, fault/test coverage, untestable/aborted counts, and CPU time.
"""

from repro.atpg import atpg_table_row, run_atpg
from repro.circuit import benchmarks

from .util import print_table, run_once

CIRCUITS = ["c17", "s27", "add8", "mul4", "mul8", "alu8", "mac4", "pe4", "rand200"]


def _run_all():
    rows = []
    for name in CIRCUITS:
        netlist = benchmarks.get_benchmark(name)
        result = run_atpg(netlist, seed=1)
        rows.append(atpg_table_row(netlist, result))
    return rows


def test_e1_atpg_summary(benchmark):
    rows = run_once(benchmark, _run_all)
    print_table("E1: ATPG summary (stuck-at)", rows)
    for row in rows:
        assert row["test_coverage"] >= 0.75
    # The non-random circuits should all close to 100 % test coverage.
    for row in rows:
        if not str(row["circuit"]).startswith("rand"):
            assert row["test_coverage"] == 1.0
