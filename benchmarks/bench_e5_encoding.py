"""E5 — Figure: encoding success vs care-bit count.

Claim: EDT encoding is essentially lossless while a cube's care bits stay
below the injected-variable budget, then collapses sharply at the
channel-capacity knee — the design rule that sets channel count for a
target care-bit density.  A ring generator with phase shifter sustains
higher capacity than the same machine with fewer channels.

Regenerates: success-rate series over care-bit counts for 1/2/4-channel
configurations of the same decompressor.
"""

from repro.compression.decompressor import EdtConfig, encoding_probability

from .util import print_series, run_once

CARE_COUNTS = [4, 8, 16, 24, 32, 40, 48, 64, 96]


def _run():
    series = {}
    for n_channels in (1, 2, 4):
        config = EdtConfig(
            n_channels=n_channels,
            n_chains=8,
            chain_length=16,
            generator_length=24,
        )
        series[n_channels] = dict(
            encoding_probability(config, CARE_COUNTS, seed=7)
        )
    return series


def test_e5_encoding_capacity(benchmark):
    series = run_once(benchmark, _run)
    points = [
        {
            "care_bits": count,
            "p_encode_1ch": series[1][count],
            "p_encode_2ch": series[2][count],
            "p_encode_4ch": series[4][count],
        }
        for count in CARE_COUNTS
    ]
    print_series("E5: encoding success vs care-bit count", points)
    # Low care-bit cubes always encode; far past capacity they never do.
    assert series[2][4] == 1.0
    assert series[2][96] < 0.1
    # More channels push the knee right.
    assert series[4][40] >= series[2][40] >= series[1][40]
    # Monotone trend within each configuration.
    for n_channels in (1, 2, 4):
        values = [series[n_channels][c] for c in CARE_COUNTS]
        for earlier, later in zip(values, values[2:]):
            assert later <= earlier + 0.08  # allow Monte-Carlo jitter
