"""E8 — Table: hierarchical vs flat DFT for replicated AI cores.

Claim (the tutorial's headline case study): on a chip built from N
identical cores, hierarchical DFT generates patterns once at core level
and *broadcasts* them, so ATPG CPU time and stimulus volume stay constant
in N, while the flat flow's ATPG effort grows at least linearly and its
data volume with N.  Broadcast retargeting wins by ~N in stimulus data.

Regenerates: one row per core count with measured flat/hierarchical ATPG
CPU and patterns, plus broadcast/serial/flat data volumes, and verifies
broadcast semantics (core patterns detect every replica's faults).
"""

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.dft import (
    broadcast_detects_all_cores,
    compare_flat_hierarchical,
    replicate_netlist,
)

from .util import print_table, run_once

CORE_COUNTS = (1, 2, 4, 8)


def _run():
    core = generators.mac_unit(2)
    rows = compare_flat_hierarchical(core, core_counts=CORE_COUNTS, seed=1)
    # Semantic check once (largest chip).
    atpg = run_atpg(core, seed=1)
    chip = replicate_netlist(core, CORE_COUNTS[-1])
    broadcast_ok = broadcast_detects_all_cores(
        core, atpg.patterns, chip, CORE_COUNTS[-1]
    )
    return rows, broadcast_ok


def test_e8_hierarchical_vs_flat(benchmark):
    rows, broadcast_ok = run_once(benchmark, _run)
    print_table("E8: hierarchical vs flat DFT", [r.as_dict() for r in rows])
    assert broadcast_ok

    first, last = rows[0], rows[-1]
    # Hierarchical effort constant in N.
    assert last.hier_patterns == first.hier_patterns
    # Flat ATPG effort grows with N (CPU roughly linear; allow noise).
    assert last.flat_cpu_s > first.flat_cpu_s * (CORE_COUNTS[-1] / 4)
    # Broadcast stimulus volume is constant in N; serial grows ~N (total
    # volume includes per-core responses either way, so compare growth).
    assert last.broadcast_data_bits < last.serial_data_bits
    assert last.serial_data_bits >= (CORE_COUNTS[-1] - 1) * first.serial_data_bits
    broadcast_growth = last.broadcast_data_bits / first.broadcast_data_bits
    serial_growth = last.serial_data_bits / first.serial_data_bits
    assert broadcast_growth < serial_growth
    # Coverage equal either way.
    assert abs(last.flat_coverage - last.hier_coverage) < 0.02
