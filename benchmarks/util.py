"""Shared helpers for the experiment benchmarks (E1-E10).

Each ``bench_eN_*.py`` regenerates one table or figure from EXPERIMENTS.md:
the measurement runs once under ``benchmark.pedantic`` (so pytest-benchmark
records wall time without re-running a multi-second experiment dozens of
times) and the rows print to stdout in a fixed-width table for comparison
against the recorded results.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Optional, Sequence

from repro.obs import Observation, RunReport


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Render a list of dict rows as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def print_series(title: str, points: Sequence[Dict[str, object]]) -> None:
    """Render a figure's (x, y, ...) series."""
    print_table(title, points)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def write_bench_json(
    name: str, payload: object, observation: Optional[Observation] = None
) -> Path:
    """Persist a benchmark's machine-readable results.

    Written as ``BENCH_<name>.json`` next to the benchmark modules so
    successive runs (and CI) can diff measured numbers without re-parsing
    the stdout tables.  Every file is a :class:`repro.obs.RunReport`
    envelope — the same stable schema as ``repro <cmd> --report`` files —
    with the benchmark's rows under ``payload``.  Pass the
    :class:`~repro.obs.Observation` the benchmark ran under to include
    its span tree and counters alongside the rows.
    """
    if observation is not None:
        report = RunReport.from_observation(observation, payload=payload)
        report.name = f"bench.{name}"
    else:
        report = RunReport(
            name=f"bench.{name}", payload=payload, generated_unix_s=time.time()
        )
    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(report.to_json() + "\n")
    return path
