"""Observability — Table: instrumentation overhead and stitching cost.

The obs layer's contract is that instrumented hot paths pay effectively
nothing unless someone is watching.  This benchmark pins that contract
with numbers and records them to ``BENCH_obs.json``:

* ``e3_xN`` / ``e3_observed_xN`` — replicated E3-style fault-simulation
  campaigns without and with an active observation (spans + counters +
  telemetry events all live).  The deterministic work counters
  (``events_propagated``, ``detected``) double as the regression gate's
  drift check.
* ``noop_hook`` — per-call cost of the inactive fast path
  (``obs.emit_event`` / ``obs.counter`` with no observation active),
  plus its projected share of one E3 campaign.  Acceptance pin: that
  share stays under ``OVERHEAD_BOUND`` (2%).
* ``stitch_xN`` — cost of re-basing and merging worker event payloads
  (:func:`repro.obs.stitch_payloads`) at trace-export scale.

``python -m benchmarks.bench_obs --smoke`` runs a small circuit with
fewer replicates in a few seconds and writes ``BENCH_obs_smoke.json``
— the envelope CI gates against ``benchmarks/baselines/``.
"""

import os
import sys
import time

from repro import obs
from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.obs.events import EventLog, HEARTBEAT, SPAN_BEGIN
from repro.sim.faultsim import FaultSimulator

from .util import print_table, run_once, write_bench_json

FULL_SIZE = (12, 480, 3)
FULL_PATTERNS = 256
FULL_REPLICATES = 5
SMOKE_SIZE = (8, 90, 1)
SMOKE_PATTERNS = 64
SMOKE_REPLICATES = 3
NOOP_CALLS = 200_000
FULL_STITCH = (16, 2_000)  # (sources, events per source)
SMOKE_STITCH = (8, 500)
OVERHEAD_BOUND = 0.02  # inactive hooks must cost <2% of an E3 campaign


def _setup(size, n_patterns):
    netlist = generators.random_circuit(*size[:2], seed=size[2])
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, n_patterns, seed=size[2])
    return netlist, simulator, faults, patterns


def _e3_rows(simulator, faults, patterns, replicates):
    """The E3 campaign, replicated plain and replicated under observation."""
    rows = []
    hooks_per_run = 0
    for rep in range(replicates):
        assert obs.current() is None  # the plain runs must hit the no-op path
        start = time.perf_counter()
        result = simulator.simulate(patterns, faults, drop=False)
        rows.append(
            {
                "name": f"e3_x{rep}",
                "wall_time_s": time.perf_counter() - start,
                "events_propagated": result.stats.get("events_propagated", 0),
                "faults": result.total_faults,
                "detected": len(result.detected),
            }
        )
    for rep in range(replicates):
        start = time.perf_counter()
        with obs.observe("bench.obs.e3") as observation:
            result = simulator.simulate(patterns, faults, drop=False)
        hooks_per_run = (
            len(observation.events)
            + len(observation.metrics)
            + len(observation.root.tree_lines())
        )
        rows.append(
            {
                "name": f"e3_observed_x{rep}",
                "wall_time_s": time.perf_counter() - start,
                "events_propagated": result.stats.get("events_propagated", 0),
                "detected": len(result.detected),
            }
        )
    return rows, hooks_per_run


def _noop_row(e3_wall_s, hooks_per_run):
    """Microbench the inactive fast path and project it onto one campaign."""
    assert obs.current() is None
    calls = NOOP_CALLS
    start = time.perf_counter()
    for _ in range(calls // 2):
        obs.emit_event(SPAN_BEGIN, "noop")
        obs.add_counters("bench.noop", {})
    elapsed = time.perf_counter() - start
    per_call_s = elapsed / calls
    projected = per_call_s * hooks_per_run
    return {
        "name": "noop_hook",
        "calls": calls,
        "wall_time_s": elapsed,
        "per_call_ns": per_call_s * 1e9,
        "hooks_per_run": hooks_per_run,
        "overhead_fraction": projected / e3_wall_s if e3_wall_s else 0.0,
    }


def _stitch_rows(replicates, stitch):
    """Worker-payload re-basing + merge at trace-export scale."""
    sources, events_per_source = stitch
    payloads = []
    for source in range(sources):
        log = EventLog()
        log.wall_minus_mono += float(source)  # force per-source re-basing
        for index in range(events_per_source):
            log.emit(HEARTBEAT, "hb", partition=source, faults_graded=index)
        payloads.append(log.to_payload())
    rows = []
    obs.stitch_payloads(payloads)  # warm-up: allocator + dict churn
    for rep in range(replicates):
        start = time.perf_counter()
        merged = obs.stitch_payloads(payloads)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "name": f"stitch_x{rep}",
                "sources": sources,
                "events": len(merged),
                "wall_time_s": elapsed,
            }
        )
    return rows


def _measure(size, n_patterns, replicates, stitch):
    netlist, simulator, faults, patterns = _setup(size, n_patterns)
    rows, hooks_per_run = _e3_rows(simulator, faults, patterns, replicates)
    e3_walls = sorted(
        row["wall_time_s"] for row in rows if row["name"].startswith("e3_x")
    )
    e3_median = e3_walls[len(e3_walls) // 2]
    rows.append(_noop_row(e3_median, hooks_per_run))
    rows.extend(_stitch_rows(replicates, stitch))
    for row in rows:
        row["circuit"] = netlist.name
    return rows


def _check_and_write(rows, name):
    noop = next(row for row in rows if row["name"] == "noop_hook")
    assert noop["overhead_fraction"] < OVERHEAD_BOUND, noop
    path = write_bench_json(
        name, {"cpu_count": os.cpu_count() or 1, "rows": rows}
    )
    print(f"wrote {path}")
    return noop


def test_obs_overhead(benchmark):
    rows = run_once(
        benchmark, _measure, FULL_SIZE, FULL_PATTERNS, FULL_REPLICATES, FULL_STITCH
    )
    print_table("Observability: instrumentation overhead", rows)
    _check_and_write(rows, "obs")


def _run_smoke():
    """Quick CI envelope: small circuit, same row shape, same 2% pin."""
    rows = _measure(SMOKE_SIZE, SMOKE_PATTERNS, SMOKE_REPLICATES, SMOKE_STITCH)
    print_table("obs smoke", rows)
    noop = _check_and_write(rows, "obs_smoke")
    print(
        f"OK: inactive hook {noop['per_call_ns']:.0f}ns/call, "
        f"{noop['overhead_fraction'] * 100:.4f}% of an E3 campaign"
    )
    return 0


if __name__ == "__main__":
    sys.exit(_run_smoke() if "--smoke" in sys.argv else 0)
