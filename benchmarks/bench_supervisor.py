"""Supervisor — Table: supervision overhead and recovery cost.

Times one fault-simulation campaign on a generated circuit under four
regimes and records the rows to ``BENCH_supervisor.json``:

* ``pool``            — the unsupervised multiprocess baseline;
* ``supervised``      — same campaign under the supervisor, no failures
  (the steady-state overhead of per-partition processes + validation);
* ``supervised+chaos``— two injected worker crashes mid-campaign (the
  cost of detection, backoff, and re-grading two shards);
* ``resume``          — the campaign replayed from a complete journal
  (every shard skipped; measures the checkpoint read path).

Every regime must produce a detection map bit-identical to single-process
PPSFP — the timing sweep doubles as the differential correctness check.
Acceptance pin: a clean supervised run stays within 3x of the pool
baseline (it is usually far closer; the bound only guards against the
supervision loop going quadratic).

``python -m benchmarks.bench_supervisor --smoke`` runs a small circuit
through all four regimes in a few seconds for CI, asserting identity but
not timing ratios (containers are too noisy for that).
"""

import os
import sys
import tempfile
import time

from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim.chaos import ChaosPlan
from repro.sim.faultsim import FaultSimulator
from repro.sim.journal import CampaignJournal
from repro.sim.supervisor import SupervisedPoolBackend, SupervisorConfig

from .util import print_table, run_once, write_bench_json

FULL_SIZE = (12, 480, 3)  # matches bench_dispatch's largest rung
FULL_PATTERNS = 256
SMOKE_SIZE = (8, 90, 1)
SMOKE_PATTERNS = 64
JOBS = 4
PARTITIONS = 8
OVERHEAD_BOUND_X = 3.0


def _setup(size, n_patterns):
    netlist = generators.random_circuit(*size[:2], seed=size[2])
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, n_patterns, seed=size[2])
    return netlist, simulator, faults, patterns


def _timed(backend, simulator, patterns, faults):
    start = time.perf_counter()
    result = backend.run(simulator, patterns, faults, drop=False)
    return result, time.perf_counter() - start


def _campaign(size, n_patterns, journal_dir):
    netlist, simulator, faults, patterns = _setup(size, n_patterns)
    reference = simulator.simulate(patterns, faults, drop=False)

    regimes = []

    def check(name, result, seconds, **extra):
        assert result.detected == reference.detected, name
        assert result.undetected == reference.undetected, name
        regimes.append({"regime": name, "wall_time_s": seconds, **extra})

    pool, pool_s = _timed(
        SupervisedPoolBackend(jobs=JOBS, partitions=PARTITIONS),
        simulator, patterns, faults,
    )
    # The pool baseline proper (no supervision at all).
    base = simulator.simulate(
        patterns, faults, drop=False, engine="pool", jobs=JOBS,
        partitions=PARTITIONS,
    )
    assert base.detected == reference.detected
    base_s = base.stats["wall_time_s"]
    regimes.append({"regime": "pool", "wall_time_s": base_s})
    check("supervised", pool, pool_s, overhead_x=pool_s / base_s if base_s else 0.0)

    chaos, chaos_s = _timed(
        SupervisedPoolBackend(
            jobs=JOBS,
            partitions=PARTITIONS,
            chaos=ChaosPlan(schedule={1: ("crash",), 5: ("crash",)}),
            config=SupervisorConfig(backoff_s=0.0),
        ),
        simulator, patterns, faults,
    )
    assert chaos.stats["worker_crashes"] == 2
    check(
        "supervised+chaos", chaos, chaos_s,
        recovery_cost_x=chaos_s / pool_s if pool_s else 0.0,
    )

    journal_path = os.path.join(journal_dir, f"{netlist.name}.jsonl")
    full, _ = _timed(
        SupervisedPoolBackend(
            jobs=JOBS, partitions=PARTITIONS,
            journal=CampaignJournal(journal_path),
        ),
        simulator, patterns, faults,
    )
    check("journaled", full, full.stats["wall_time_s"])
    resumed, resumed_s = _timed(
        SupervisedPoolBackend(
            jobs=JOBS, partitions=PARTITIONS,
            journal=CampaignJournal(journal_path),
        ),
        simulator, patterns, faults,
    )
    assert resumed.stats["journal_skipped"] == PARTITIONS
    check("resume", resumed, resumed_s)

    for row in regimes:
        row["circuit"] = netlist.name
        row["faults"] = len(faults)
    return regimes


def test_supervision_overhead(benchmark):
    with tempfile.TemporaryDirectory() as journal_dir:
        rows = run_once(benchmark, _campaign, FULL_SIZE, FULL_PATTERNS, journal_dir)
    print_table("Supervisor: overhead and recovery cost", rows)
    path = write_bench_json(
        "supervisor",
        {
            "jobs": JOBS,
            "partitions": PARTITIONS,
            "cpu_count": os.cpu_count() or 1,
            "rows": rows,
        },
    )
    print(f"wrote {path}")
    supervised = next(r for r in rows if r["regime"] == "supervised")
    assert supervised["overhead_x"] < OVERHEAD_BOUND_X


def _run_smoke():
    """Quick CI check: all four regimes, identical detection maps."""
    with tempfile.TemporaryDirectory() as journal_dir:
        rows = _campaign(SMOKE_SIZE, SMOKE_PATTERNS, journal_dir)
    print_table("supervisor smoke", rows)
    print("OK: pool/supervised/chaos/resume all bit-identical to ppsfp")
    return 0


if __name__ == "__main__":
    sys.exit(_run_smoke() if "--smoke" in sys.argv else 0)
