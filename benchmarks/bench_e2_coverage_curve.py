"""E2 — Figure: fault coverage vs pattern count.

Claim: random-pattern coverage rises steeply then *saturates* below 100 %
(random-resistant faults), and a deterministic top-off closes the gap with
a handful of additional patterns.  This is the canonical figure motivating
deterministic ATPG and test points.

Regenerates: coverage(n) series for random patterns on a random-resistant
circuit, plus the deterministic top-off end point.
"""

from repro.atpg import run_atpg
from repro.bist.lbist import coverage_curve
from repro.circuit import generators

from .util import print_series, run_once


def _run():
    netlist = generators.random_resistant(14, cones=4)
    points = coverage_curve(netlist, 1024, checkpoint_every=128)
    # A deeper backtrack budget lets PODEM *prove* the redundant residue
    # untestable instead of aborting, so test coverage closes to 100 %.
    atpg = run_atpg(netlist, seed=2, backtrack_limit=256)
    return netlist, points, atpg


def test_e2_coverage_curve(benchmark):
    netlist, points, atpg = run_once(benchmark, _run)
    series = [
        {"patterns": int(p["patterns"]), "random_coverage": p["coverage"]}
        for p in points
    ]
    series.append(
        {
            "patterns": f"+{len(atpg.patterns)} deterministic",
            "random_coverage": atpg.test_coverage,
        }
    )
    print_series("E2: coverage vs patterns (random saturates, ATPG closes)", series)
    random_final = points[-1]["coverage"]
    # Saturation: the last 3 checkpoints gain almost nothing.
    assert points[-1]["coverage"] - points[-3]["coverage"] < 0.02
    # Deterministic top-off beats saturated random coverage.
    assert atpg.test_coverage > random_final
    assert atpg.test_coverage == 1.0
