"""E4 — Table: EDT compression vs bypass scan.

Claim (tutorial's compression section): an EDT-style architecture cuts
test data volume and test time by roughly the chain-count/channel-count
ratio — 10-100x in practice — at *equal coverage*, because internal chains
can be many and short while the tester drives only a few channels, and
pattern generation is integrated with encoding so nothing is lost.

Regenerates: for a scan-inserted core, one row per internal-chain count
with the coverage of the bypass reference ATPG, the integrated EDT-ATPG
flow's coverage, an independent regrade of the applied compressed set,
and the data-volume / test-time ratios versus single-channel bypass scan.
"""

from repro.atpg import run_atpg
from repro.circuit import generators
from repro.compression.edt import EdtSystem
from repro.compression.flow import run_compressed_atpg
from repro.faults import collapse_faults, full_fault_list
from repro.scan import insert_scan, partition_faults
from repro.sim.faultsim import FaultSimulator

from .util import print_table, run_once

CHAIN_COUNTS = [4, 8, 16, 32]


def _run():
    netlist = generators.random_sequential(8, 200, 64, seed=12)
    rows = []
    for n_chains in CHAIN_COUNTS:
        design = insert_scan(netlist, n_chains=n_chains)
        faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
        capture, _ = partition_faults(design, faults)
        # Reference: plain (bypass) ATPG on the same fault list.
        atpg = run_atpg(design.netlist, faults=capture, seed=1)
        # Integrated EDT-ATPG: fault dropping on decompressed patterns.
        edt = EdtSystem(design, n_input_channels=2, n_output_channels=2)
        flow = run_compressed_atpg(edt, faults=capture, seed=1)
        # Independent regrade of the applied compressed set.
        simulator = FaultSimulator(design.netlist)
        regrade = simulator.simulate(flow.applied_patterns, capture, drop=True)
        cost = edt.cost_versus_bypass(len(flow.applied_patterns))
        rows.append(
            {
                "chains": n_chains,
                "bypass_cov": atpg.test_coverage,
                "edt_cov": flow.test_coverage,
                "regrade_cov": len(regrade.detected) / len(capture),
                "patterns": len(flow.applied_patterns),
                "unencodable": flow.unencodable,
                "data_x": cost["data_volume_x"],
                "time_x": cost["test_time_x"],
            }
        )
    return rows


def test_e4_compression_table(benchmark):
    rows = run_once(benchmark, _run)
    print_table("E4: EDT compression vs bypass scan", rows)
    for row in rows:
        # Equal coverage through compression — the headline claim.
        assert row["edt_cov"] >= row["bypass_cov"] - 0.03
        # The independent regrade confirms the flow's own accounting.
        assert row["regrade_cov"] >= row["edt_cov"] * 0.85
    # Ratios grow with internal chain count (the headline scaling).
    times = [row["time_x"] for row in rows]
    assert times == sorted(times)
    assert times[-1] > 5
