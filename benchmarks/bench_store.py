"""Shard store — Table: lease-store overhead, peer merge, and steal cost.

Times one fault-simulation campaign on a generated circuit under four
store regimes and records the rows to ``BENCH_store.json``:

* ``supervised``  — the single-process supervised baseline (no store);
* ``store``       — the same campaign claimed shard-by-shard from a
  shared lease store by one runner (claim + publish + merge-from-store
  overhead on top of supervision);
* ``peer_merge``  — a second runner pointed at the finished store: every
  shard already published, so this measures the pure merge/verify path
  (``finished_by_peers``);
* ``steal``       — every shard pre-leased by a ghost runner whose
  leases have expired, so the runner must steal all of them before
  grading (the recovery path after a host death).

Every regime must produce a detection map bit-identical to
single-process PPSFP — the timing sweep doubles as the differential
correctness check.  The deterministic counters (published shards,
steals, conflicts) are recorded per row so ``repro obs gate`` pins them
exactly while wall times get the usual median/MAD noise band.

``python -m benchmarks.bench_store --smoke`` runs a small circuit
through all four regimes (three replicates each for MAD grouping) and
writes ``BENCH_store_smoke.json`` for the CI gate.
"""

import os
import shutil
import sys
import tempfile
import time

from repro.atpg.random_gen import random_patterns
from repro.circuit import generators
from repro.faults import collapse_faults, full_fault_list
from repro.sim.dispatch import partition_faults
from repro.sim.faultsim import FaultSimulator
from repro.sim.journal import CampaignKey
from repro.sim.store import ShardStore
from repro.sim.supervisor import SupervisedPoolBackend

from .util import print_table, run_once, write_bench_json

FULL_SIZE = (12, 480, 3)
FULL_PATTERNS = 256
SMOKE_SIZE = (8, 90, 1)
SMOKE_PATTERNS = 64
JOBS = 2
PARTITIONS = 6
REPLICATES = 3


def _setup(size, n_patterns):
    netlist = generators.random_circuit(*size[:2], seed=size[2])
    simulator = FaultSimulator(netlist)
    faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    patterns = random_patterns(simulator.view.num_inputs, n_patterns, seed=size[2])
    return netlist, simulator, faults, patterns


def _timed(backend, simulator, patterns, faults):
    start = time.perf_counter()
    result = backend.run(simulator, patterns, faults, drop=False)
    return result, time.perf_counter() - start


def _campaign(size, n_patterns, work_dir, replicates):
    netlist, simulator, faults, patterns = _setup(size, n_patterns)
    reference = simulator.simulate(patterns, faults, drop=False)
    shards = partition_faults(faults, PARTITIONS, 0)
    key = CampaignKey.build(netlist, patterns, faults, 0, len(shards), False)

    rows = []

    def check(name, result, seconds, **extra):
        assert result.detected == reference.detected, name
        assert result.undetected == reference.undetected, name
        rows.append(
            {
                "name": name,
                "circuit": netlist.name,
                "faults": len(faults),
                "wall_time_s": seconds,
                **extra,
            }
        )

    for rep in range(replicates):
        base, base_s = _timed(
            SupervisedPoolBackend(jobs=JOBS, partitions=PARTITIONS),
            simulator, patterns, faults,
        )
        check(f"supervised_x{rep}", base, base_s)

        root = os.path.join(work_dir, f"store-{rep}")
        fresh, fresh_s = _timed(
            SupervisedPoolBackend(
                jobs=JOBS, partitions=PARTITIONS,
                store=ShardStore(root, runner_id="bench"),
            ),
            simulator, patterns, faults,
        )
        stats = fresh.stats["store"]
        assert stats["published"] == len(shards)
        assert stats["steals"] == 0
        check(
            f"store_x{rep}", fresh, fresh_s,
            published=stats["published"], steals=stats["steals"],
            publish_conflicts=stats["publish_conflicts"],
        )

        peer, peer_s = _timed(
            SupervisedPoolBackend(
                jobs=JOBS, partitions=PARTITIONS,
                store=ShardStore(root, runner_id="late"),
            ),
            simulator, patterns, faults,
        )
        stats = peer.stats["store"]
        assert stats["finished_by_peers"] is True
        check(
            f"peer_merge_x{rep}", peer, peer_s,
            published=stats["published"], steals=stats["steals"],
        )

        ghost_root = os.path.join(work_dir, f"ghost-{rep}")
        ghost = ShardStore(ghost_root, runner_id="ghost", lease_s=0.01)
        ghost.initialize(key, len(shards))
        for index in range(len(shards)):
            assert ghost.try_claim(index) is not None
        time.sleep(0.05)  # every ghost lease is now expired
        stolen, stolen_s = _timed(
            SupervisedPoolBackend(
                jobs=JOBS, partitions=PARTITIONS,
                store=ShardStore(ghost_root, runner_id="bench"),
            ),
            simulator, patterns, faults,
        )
        stats = stolen.stats["store"]
        assert stats["steals"] == len(shards)
        assert stats["published"] == len(shards)
        check(
            f"steal_x{rep}", stolen, stolen_s,
            published=stats["published"], steals=stats["steals"],
        )
        shutil.rmtree(root)
        shutil.rmtree(ghost_root)

    return rows


def test_store_overhead(benchmark):
    with tempfile.TemporaryDirectory() as work_dir:
        rows = run_once(
            benchmark, _campaign, FULL_SIZE, FULL_PATTERNS, work_dir, REPLICATES
        )
    print_table("Shard store: lease overhead, peer merge, steal cost", rows)
    path = write_bench_json(
        "store",
        {
            "jobs": JOBS,
            "partitions": PARTITIONS,
            "cpu_count": os.cpu_count() or 1,
            "rows": rows,
        },
    )
    print(f"wrote {path}")


def _run_smoke():
    """Quick CI check: all four regimes, identical detection maps."""
    with tempfile.TemporaryDirectory() as work_dir:
        rows = _campaign(SMOKE_SIZE, SMOKE_PATTERNS, work_dir, REPLICATES)
    print_table("store smoke", rows)
    path = write_bench_json(
        "store_smoke",
        {
            "jobs": JOBS,
            "partitions": PARTITIONS,
            "cpu_count": os.cpu_count() or 1,
            "rows": rows,
        },
    )
    print(f"wrote {path}")
    print("OK: supervised/store/peer-merge/steal all bit-identical to ppsfp")
    return 0


if __name__ == "__main__":
    sys.exit(_run_smoke() if "--smoke" in sys.argv else 0)
