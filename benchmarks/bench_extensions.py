"""Extension experiments (X1-X5): the tutorial's adjacent claims.

X1  Reseeding vs EDT capacity: a seed register caps care bits at the LFSR
    length; EDT's continuous injection scales with shift length.
X2  Weighted-random LBIST: COP-derived weights rescue wide-AND coverage
    that uniform pseudo-random patterns cannot reach.
X3  Low-power X-fill: adjacent (repeat) fill cuts shift power several-fold
    versus random fill at identical coverage.
X4  SIB access network: sparse instrument access is several times faster
    than a flat daisy chain; access-everything flips the winner.
X5  Sequential (non-scan) ATPG: time-frame deterministic sequences lift
    coverage over random sequences from reset.
X6  Test economics: the Williams-Brown DPPM table that justifies chasing
    the last coverage percent.
"""

from repro.atpg import run_atpg
from repro.atpg.timeframe import run_sequential_atpg
from repro.bist.lbist import StumpsController, run_weighted_lbist
from repro.circuit import benchmarks, generators
from repro.compression.decompressor import EdtConfig, encoding_probability
from repro.compression.reseeding import (
    ReseedingConfig,
    reseeding_encoding_probability,
)
from repro.dft.access import Instrument, access_schedule_comparison
from repro.dft.economics import coverage_dppm_table, poisson_yield
from repro.faults import collapse_faults, full_fault_list
from repro.scan import fill_policy_comparison, insert_scan, partition_faults
from repro.sim.seqfaultsim import SequentialFaultSimulator

from .util import print_table, run_once


def _x1_reseeding():
    counts = [8, 16, 24, 32, 40, 56]
    reseed_config = ReseedingConfig(lfsr_length=32, n_chains=8, chain_length=16)
    edt_config = EdtConfig(n_channels=2, n_chains=8, chain_length=16)
    reseed = dict(reseeding_encoding_probability(reseed_config, counts, seed=4))
    edt = dict(encoding_probability(edt_config, counts, seed=4))
    return [
        {"care_bits": c, "reseeding_32b_seed": reseed[c], "edt_2ch": edt[c]}
        for c in counts
    ]


def test_x1_reseeding_vs_edt(benchmark):
    rows = run_once(benchmark, _x1_reseeding)
    print_table("X1: reseeding vs EDT encoding capacity", rows)
    by_count = {row["care_bits"]: row for row in rows}
    assert by_count[8]["reseeding_32b_seed"] > 0.9
    assert by_count[40]["reseeding_32b_seed"] == 0.0  # > seed length
    assert by_count[40]["edt_2ch"] > by_count[40]["reseeding_32b_seed"]


def _x2_weighted():
    rows = []
    for width in (12, 14, 16):
        netlist = generators.wide_comparator(width)
        uniform = StumpsController(netlist).run(256).final_coverage
        weighted = run_weighted_lbist(netlist, 256, seed=2).final_coverage
        rows.append(
            {
                "circuit": netlist.name,
                "uniform_cov": uniform,
                "weighted_cov": weighted,
            }
        )
    return rows


def test_x2_weighted_lbist(benchmark):
    rows = run_once(benchmark, _x2_weighted)
    print_table("X2: uniform vs COP-weighted random LBIST", rows)
    for row in rows:
        assert row["weighted_cov"] > row["uniform_cov"]


def _x3_fill_power():
    netlist = generators.random_sequential(6, 150, 48, seed=9)
    design = insert_scan(netlist, n_chains=4)
    faults, _ = collapse_faults(design.netlist, full_fault_list(design.netlist))
    capture, _ = partition_faults(design, faults)
    atpg = run_atpg(
        design.netlist, faults=capture, random_batches=0, compact=False, seed=2
    )
    reports = fill_policy_comparison(design, atpg.cubes, seed=1)
    return [
        {
            "fill": mode,
            "total_wtm": report.total_wtm,
            "peak_wtm": report.peak_wtm,
        }
        for mode, report in reports.items()
    ]


def test_x3_low_power_fill(benchmark):
    rows = run_once(benchmark, _x3_fill_power)
    print_table("X3: shift power by X-fill policy", rows)
    by_mode = {row["fill"]: row for row in rows}
    assert by_mode["repeat"]["total_wtm"] < by_mode["random"]["total_wtm"]
    # Chain-aware adjacent fill is the real low-power policy: several-fold.
    assert by_mode["adjacent_chain"]["total_wtm"] < by_mode["random"]["total_wtm"] / 2


def _x4_access():
    instruments = [Instrument(f"mbist{k}", 64) for k in range(32)]
    sparse = [[f"mbist{k}"] for k in (0, 7, 19, 31)]
    dense = [[i.name for i in instruments]]
    return (
        access_schedule_comparison(instruments, sparse),
        access_schedule_comparison(instruments, dense),
    )


def test_x4_sib_network(benchmark):
    sparse, dense = run_once(benchmark, _x4_access)
    print_table("X4: SIB network vs flat chain", [
        {"schedule": "sparse (4 singles)", **sparse},
        {"schedule": "dense (all at once)", **dense},
    ])
    assert sparse["sib_cycles"] < sparse["flat_cycles"]
    assert dense["sib_cycles"] > dense["flat_cycles"]


def _x5_sequential():
    rows = []
    for name, netlist in (
        ("s27", benchmarks.s27()),
        ("seq50", generators.random_sequential(4, 50, 6, seed=11)),
    ):
        random_only = run_sequential_atpg(
            netlist, n_frames=4, n_random_sequences=8, seed=3
        )
        # Random-only baseline with deterministic phase disabled is
        # approximated by grading the random sequences alone.
        simulator = SequentialFaultSimulator(netlist)
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        import random as _random

        from repro.atpg.random_gen import random_patterns

        detected = set()
        for index in range(8):
            sequence = random_patterns(
                len(netlist.inputs), 8, seed=3 * 977 + index
            )
            graded = simulator.simulate(sequence, faults, drop=True)
            detected.update(graded.detected)
        rows.append(
            {
                "circuit": name,
                "random_cov": len(detected) / len(faults),
                "with_deterministic": random_only.coverage,
                "unvalidated": random_only.unvalidated,
            }
        )
    return rows


def test_x5_sequential_atpg(benchmark):
    rows = run_once(benchmark, _x5_sequential)
    print_table("X5: sequential ATPG (reset-based, 4-frame window)", rows)
    for row in rows:
        assert row["with_deterministic"] >= row["random_cov"]


def _x6_economics():
    yield_fraction = poisson_yield(die_area_cm2=4.0, defect_density_per_cm2=0.1)
    table = coverage_dppm_table(yield_fraction)
    for row in table:
        row["yield"] = round(yield_fraction, 3)
    return table


def test_x6_dppm_table(benchmark):
    rows = run_once(benchmark, _x6_economics)
    print_table("X6: fault coverage vs shipped DPPM (Williams-Brown)", rows)
    values = [row["dppm"] for row in rows]
    assert values == sorted(values, reverse=True)
    assert values[-1] == 0.0
    assert values[0] > 10_000  # 90 % coverage ships >1 % defective parts
