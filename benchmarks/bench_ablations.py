"""Ablations for the design choices DESIGN.md records.

A1  Decompressor warm-up cycles: without them, some scan cells are
    uncontrollable (zero equations) and encoding success suffers.
A2  Static compaction: merging compatible cubes cuts deterministic pattern
    count without losing coverage.
A3  Fault dropping in the ATPG random phase: dropping is what makes the
    random phase nearly free.
A4  X-masking in the compactor: with X-producing responses, masking
    recovers detections an unmasked XOR tree loses.
"""

import time

from repro.atpg import run_atpg
from repro.atpg.random_gen import random_patterns
from repro.circuit import benchmarks, generators
from repro.circuit.values import X
from repro.compression.compactor import CompactorConfig, XorCompactor, greedy_x_mask
from repro.compression.decompressor import Decompressor, EdtConfig, encoding_probability
from repro.faults import full_fault_list
from repro.sim.faultsim import FaultSimulator

from .util import print_table, run_once


def _a1_warmup():
    rows = []
    for warmup in (0, 4, 8):
        config = EdtConfig(
            n_channels=2, n_chains=8, chain_length=16, warmup_cycles=warmup
        )
        decompressor = Decompressor(config)
        equations = decompressor.cell_equations()
        dead = sum(
            1
            for cycle in range(config.chain_length)
            for chain in range(config.n_chains)
            if equations[cycle][chain] == 0
        )
        success = dict(encoding_probability(config, [16], seed=3))[16]
        rows.append(
            {
                "warmup_cycles": warmup,
                "uncontrollable_cells": dead,
                "p_encode_16_care_bits": success,
            }
        )
    return rows


def test_ablation_warmup(benchmark):
    rows = run_once(benchmark, _a1_warmup)
    print_table("A1: decompressor warm-up cycles", rows)
    assert rows[0]["uncontrollable_cells"] > 0
    assert rows[-1]["uncontrollable_cells"] == 0
    assert rows[-1]["p_encode_16_care_bits"] >= rows[0]["p_encode_16_care_bits"]


def _a2_compaction():
    netlist = benchmarks.get_benchmark("alu8")
    with_compact = run_atpg(netlist, random_batches=0, compact=True, seed=4)
    without = run_atpg(netlist, random_batches=0, compact=False, seed=4)
    return {
        "patterns_compacted": len(with_compact.patterns),
        "patterns_loose": len(without.patterns),
        "cov_compacted": with_compact.test_coverage,
        "cov_loose": without.test_coverage,
    }


def test_ablation_static_compaction(benchmark):
    row = run_once(benchmark, _a2_compaction)
    print_table("A2: static compaction", [row])
    assert row["patterns_compacted"] <= row["patterns_loose"]
    assert row["cov_compacted"] == row["cov_loose"] == 1.0


def _a3_dropping():
    netlist = benchmarks.get_benchmark("mul8")
    simulator = FaultSimulator(netlist)
    faults = full_fault_list(netlist)
    patterns = random_patterns(simulator.view.num_inputs, 256, seed=5)
    start = time.perf_counter()
    simulator.simulate(patterns, faults, drop=True)
    drop_s = time.perf_counter() - start
    start = time.perf_counter()
    simulator.simulate(patterns, faults, drop=False)
    nodrop_s = time.perf_counter() - start
    return {"drop_s": drop_s, "nodrop_s": nodrop_s, "speedup_x": nodrop_s / drop_s}


def test_ablation_fault_dropping(benchmark):
    row = run_once(benchmark, _a3_dropping)
    print_table("A3: fault dropping", [row])
    assert row["speedup_x"] > 2


def _a4_x_masking():
    compactor = XorCompactor(CompactorConfig(n_chains=8, n_channels=2, seed=1))
    import random as _random

    rng = _random.Random(6)
    recovered, lost = 0, 0
    trials = 200
    for _ in range(trials):
        # One X-dirty chain; a single-bit fault effect on another chain.
        good = [[rng.randint(0, 1) for _ in range(6)] for _ in range(8)]
        dirty = rng.randrange(8)
        for cycle in range(6):
            good[dirty][cycle] = X
        faulty = [row[:] for row in good]
        victim = rng.choice([c for c in range(8) if c != dirty])
        cycle = rng.randrange(6)
        faulty[victim][cycle] ^= 1
        unmasked = compactor.observable_difference(good, faulty)
        density = [1.0 if c == dirty else 0.0 for c in range(8)]
        mask = greedy_x_mask(density, budget=1)
        masked = compactor.observable_difference(good, faulty, mask)
        if masked and not unmasked:
            recovered += 1
        if not masked and unmasked:
            lost += 1
    return {"trials": trials, "recovered_by_mask": recovered, "lost_by_mask": lost}


def test_ablation_x_masking(benchmark):
    row = run_once(benchmark, _a4_x_masking)
    print_table("A4: X-masking in the compactor", [row])
    assert row["recovered_by_mask"] > 0
    assert row["lost_by_mask"] == 0
