"""E7 — Table: March algorithm x memory-fault-model coverage matrix.

Claim (tutorial's MBIST section, standard memory-test theory): MATS-class
tests catch stuck-at and address faults but miss transition/coupling
faults; March C- covers the full unlinked SAF/TF/CF set at 10N cost.  Cost
grows linearly with complexity — the coverage/cost trade the MBIST
controller designer makes for the accelerator's big SRAMs.

Regenerates: the detection-rate matrix over sampled fault populations plus
the per-algorithm operation cost on a 4 Kbit array.
"""

from repro.bist.march import ALL_MARCH_TESTS, operation_count
from repro.bist.mbist import coverage_matrix

from .util import print_table, run_once

N_CELLS = 64
SAMPLES = 40


def _run():
    return coverage_matrix(n_cells=N_CELLS, samples_per_kind=SAMPLES, seed=1)


def test_e7_march_matrix(benchmark):
    matrix = run_once(benchmark, _run)
    rows = []
    for test in ALL_MARCH_TESTS:
        row = {"algorithm": test.name, "cost": f"{test.complexity}N"}
        row.update(
            {kind: cell.rate for kind, cell in matrix[test.name].items()}
        )
        row["ops_4kbit"] = operation_count(test, 4096)
        rows.append(row)
    print_table("E7: March coverage matrix", rows)

    c_minus = matrix["March C-"]
    assert all(cell.rate == 1.0 for cell in c_minus.values())
    assert matrix["MATS"]["CFid"].rate < 0.5
    assert matrix["MATS"]["TF"].rate < matrix["MATS++"]["TF"].rate
    # Cost ordering matches complexity ordering.
    costs = [operation_count(t, 4096) for t in ALL_MARCH_TESTS]
    assert costs == sorted(costs)
