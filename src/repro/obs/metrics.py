"""Typed metrics with deterministic, associative merge semantics.

Three metric kinds, chosen so that per-partition metrics from pool and
supervised fault-sim workers merge back into the parent *exactly* like
the fault results themselves min-merge — independent of worker count,
completion order, and partition order:

* :class:`Counter` — a monotone sum.  Merge adds values; integer counters
  (events, words, faults) merge exactly, so the merged total is
  bit-identical however the partials are grouped.
* :class:`Gauge` — a point-in-time value.  Merge takes the maximum, the
  only order-free choice that needs no timestamps.
* :class:`Histogram` — fixed-boundary buckets plus count/total/min/max.
  Merge adds bucket counts element-wise, so distributions from any number
  of workers fold into one.

All three merges are associative and commutative (for integer
observations, exactly; ``tests/test_obs_properties.py`` holds them to
that with hypothesis).  :class:`MetricRegistry` keys metrics by
``(name, sorted labels)`` and round-trips through plain dicts so worker
registries can travel across process boundaries inside
``FaultSimResult.stats``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram boundaries: a seconds-oriented geometric ladder that
#: also buckets small integer observations sensibly.  The last bucket is
#: implicit +Inf.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)

#: Key type inside a registry: metric name plus sorted label pairs.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def metric_id(name: str, labels: Dict[str, str]) -> str:
    """Stable textual identity: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in _label_key(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A summed metric.  ``add`` accumulates; merge is addition."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: Number = 0):
        self.value: Number = value

    def add(self, amount: Number = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, object]:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Counter":
        return cls(payload.get("value", 0))


class Gauge:
    """A point-in-time value.  ``set`` overwrites; merge keeps the max."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, value: Optional[Number] = None):
        self.value: Optional[Number] = value

    def set(self, value: Number) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value is None:
            return
        if self.value is None or other.value > self.value:
            self.value = other.value

    def to_dict(self) -> Dict[str, object]:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Gauge":
        return cls(payload.get("value"))


class Histogram:
    """Fixed-boundary bucketed distribution (Prometheus-style, cumulative
    only at export time — internal counts are per-bucket).

    ``bounds`` are the inclusive upper edges; one implicit overflow bucket
    collects everything above the last edge.  Merging requires identical
    bounds — a deliberate error otherwise, since silently resampling
    would break the associativity guarantee.
    """

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bounds must be non-empty and sorted, got {bounds!r}")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        position = len(self.bounds)
        for index, edge in enumerate(self.bounds):
            if value <= edge:
                position = index
                break
        self.bucket_counts[position] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, count in enumerate(other.bucket_counts):
            self.bucket_counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Histogram":
        histogram = cls(tuple(payload["bounds"]))
        counts = list(payload.get("bucket_counts", []))
        if len(counts) != len(histogram.bucket_counts):
            raise ValueError(
                f"bucket_counts length {len(counts)} does not match "
                f"{len(histogram.bounds)} bounds"
            )
        histogram.bucket_counts = counts
        histogram.count = payload.get("count", 0)
        histogram.total = payload.get("total", 0)
        histogram.min = payload.get("min")
        histogram.max = payload.get("max")
        return histogram


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricRegistry:
    """All metrics of one observation, keyed by name + labels.

    ``merge`` folds another registry in (creating missing metrics), which
    is how per-partition worker metrics come home: each worker serializes
    its registry with :meth:`to_dict`, the dict rides back inside the
    partial result's ``stats``, and the parent merges them in any order —
    the totals are independent of worker count and completion order.
    """

    def __init__(self):
        self._metrics: Dict[MetricKey, object] = {}
        self._labels: Dict[MetricKey, Dict[str, str]] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def _get(self, name: str, labels: Dict[str, str], kind: str, factory):
        key: MetricKey = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
            self._labels[key] = {str(k): str(v) for k, v in labels.items()}
        elif metric.kind != kind:
            raise TypeError(
                f"metric {metric_id(name, labels)!r} already registered "
                f"as {metric.kind}, requested as {kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, labels, "counter", Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, labels, "gauge", Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS, **labels: str
    ) -> Histogram:
        return self._get(name, labels, "histogram", lambda: Histogram(bounds))

    def items(self) -> Iterable[Tuple[str, Dict[str, str], object]]:
        """``(name, labels, metric)`` triples in sorted key order."""
        for key in sorted(self._metrics):
            yield key[0], self._labels[key], self._metrics[key]

    def merge(self, other: "MetricRegistry") -> "MetricRegistry":
        """Fold ``other`` into this registry (associative, commutative)."""
        for key in sorted(other._metrics):
            theirs = other._metrics[key]
            mine = self._metrics.get(key)
            if mine is None:
                if isinstance(theirs, Histogram):
                    mine = Histogram(theirs.bounds)
                else:
                    mine = type(theirs)()
                self._metrics[key] = mine
                self._labels[key] = dict(other._labels[key])
            elif mine.kind != theirs.kind:
                raise TypeError(
                    f"metric {metric_id(key[0], dict(key[1]))!r} is a "
                    f"{mine.kind} here but a {theirs.kind} in the merged "
                    f"registry"
                )
            mine.merge(theirs)
        return self

    def merge_dict(self, payload: Dict[str, object]) -> "MetricRegistry":
        """Merge a registry previously serialized with :meth:`to_dict`."""
        return self.merge(MetricRegistry.from_dict(payload))

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Stable-schema dict: one section per kind, keyed by metric id."""
        sections: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        section_of = {"counter": "counters", "gauge": "gauges", "histogram": "histograms"}
        for name, labels, metric in self.items():
            entry = {"name": name, "labels": dict(labels)}
            entry.update(metric.to_dict())
            sections[section_of[metric.kind]][metric_id(name, labels)] = entry
        return sections

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MetricRegistry":
        registry = cls()
        kind_of = {"counters": Counter, "gauges": Gauge, "histograms": Histogram}
        for section, metric_cls in kind_of.items():
            for entry in payload.get(section, {}).values():
                labels = {str(k): str(v) for k, v in entry.get("labels", {}).items()}
                key: MetricKey = (entry["name"], _label_key(labels))
                registry._metrics[key] = metric_cls.from_dict(entry)
                registry._labels[key] = labels
        return registry

    # ------------------------------------------------------------------
    # Prometheus text export
    # ------------------------------------------------------------------

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text-format exposition of every metric."""
        lines: List[str] = []
        typed: Dict[str, str] = {}
        for name, labels, metric in self.items():
            flat = _prom_name(prefix, name)
            if metric.kind == "histogram":
                if flat not in typed:
                    typed[flat] = "histogram"
                    lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                for edge, count in zip(metric.bounds, metric.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{flat}_bucket{_prom_labels(labels, le=_fmt(edge))} {cumulative}"
                    )
                lines.append(
                    f"{flat}_bucket{_prom_labels(labels, le='+Inf')} {metric.count}"
                )
                lines.append(f"{flat}_sum{_prom_labels(labels)} {_fmt(metric.total)}")
                lines.append(f"{flat}_count{_prom_labels(labels)} {metric.count}")
                continue
            if flat not in typed:
                typed[flat] = metric.kind
                lines.append(f"# TYPE {flat} {metric.kind}")
            value = metric.value
            if value is None:
                continue
            lines.append(f"{flat}{_prom_labels(labels)} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(prefix: str, name: str) -> str:
    flat = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{flat}" if prefix else flat


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping: ``\\``, ``"``, newline.

    Backslash must be escaped first or the other escapes' own
    backslashes would be doubled.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Dict[str, str], **extra: str) -> str:
    merged = dict(labels)
    merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def _fmt(value: Number) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)
