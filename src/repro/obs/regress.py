"""Noise-aware benchmark regression detection over RunReport envelopes.

``BENCH_*.json`` files are :class:`~repro.obs.report.RunReport`
envelopes; this module turns an accumulating pile of them into an
enforceable performance trajectory:

* every numeric leaf of a report's ``payload`` (plus its
  ``metrics.counters`` section) flattens to a stable dotted path, with
  list rows keyed by their natural discriminator (``name``, ``regime``,
  ``word_width``, ...) instead of their index;
* measurements replicated under the ``<base>_x<N>`` naming convention
  (e.g. rows named ``e3_x0 .. e3_x4``) collapse into one **sample** per
  base path, summarized by the median and the MAD (median absolute
  deviation) — robust statistics that one OS hiccup cannot drag around;
* wall-time metrics (paths whose leaf ends in ``_s``) regress only when
  the current median exceeds the baseline median by more than *both* the
  relative threshold and the baseline's noise band
  (``mad_k * 1.4826 * MAD``, the normal-consistent MAD scale), with a
  small absolute floor so microsecond-scale timings cannot flap;
* deterministic work counters (``events_propagated``,
  ``words_evaluated``, ...) are machine-independent, so any drift beyond
  ``counter_tolerance`` (default: exact) fails — a counter drift means
  the *workload* changed, which is a different bug than slowness.

Consumed by the ``repro obs diff`` / ``repro obs gate`` CLI commands;
``gate`` is the CI sentinel that exits non-zero on any failing finding.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .report import RunReport

#: Rows in a payload list are keyed by the first of these fields they
#: carry (falling back to the list index): stable identity beats
#: positional identity when rows are reordered or appended.
DISCRIMINATOR_KEYS = ("name", "regime", "engine", "word_width", "partition", "jobs")

#: Leaf names treated as deterministic work counters: identical inputs
#: must produce identical values on any machine, so drift is gated.
COUNTER_LEAVES = frozenset(
    {
        "events_propagated",
        "words_evaluated",
        "faults_simulated",
        "faults_detected",
        "patterns_simulated",
        "faults",
        "good_passes",
        "detected",
        "gates",
    }
)

#: ``<base>_x<N>`` replicate suffix (same convention as replicated
#: circuits, applied to measurement names).
_REPLICATE = re.compile(r"^(?P<base>.*[^_])_x(?P<rep>\d+)(?P<tail>\]?)$")

#: Normal-consistency constant: ``1.4826 * MAD`` estimates one standard
#: deviation for normally distributed noise.
MAD_SCALE = 1.4826


@dataclass
class RegressConfig:
    """Comparator tunables (CLI flags map onto these one-to-one)."""

    wall_threshold: float = 0.5  # relative wall-time regression gate
    mad_k: float = 3.0  # noise band half-width, in scaled MADs
    counter_tolerance: float = 0.0  # relative counter drift allowed
    abs_floor_s: float = 0.005  # ignore wall deltas under 5 ms

    def validate(self) -> None:
        if self.wall_threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.wall_threshold}")
        if self.mad_k < 0:
            raise ValueError(f"mad_k must be >= 0, got {self.mad_k}")
        if self.counter_tolerance < 0:
            raise ValueError(
                f"counter tolerance must be >= 0, got {self.counter_tolerance}"
            )


@dataclass
class Sample:
    """One metric's replicate values, summarized robustly."""

    values: List[float] = field(default_factory=list)

    @property
    def median(self) -> float:
        ordered = sorted(self.values)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def mad(self) -> float:
        center = self.median
        return Sample([abs(v - center) for v in self.values]).median


@dataclass
class Finding:
    """One comparison outcome for one metric path."""

    metric: str
    kind: str  # wall | counter | info | missing | new
    severity: str  # fail | warn | ok | info
    baseline: Optional[float] = None
    current: Optional[float] = None
    baseline_mad: float = 0.0
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline is None or self.current is None or self.baseline == 0:
            return None
        return self.current / self.baseline

    def render(self) -> str:
        marker = {"fail": "FAIL", "warn": "warn", "ok": "ok", "info": "info"}[
            self.severity
        ]
        parts = [f"[{marker}] {self.metric}"]
        if self.baseline is not None and self.current is not None:
            parts.append(f"{self.baseline:.6g} -> {self.current:.6g}")
            if self.ratio is not None:
                parts.append(f"({self.ratio:.2f}x)")
        if self.note:
            parts.append(f"- {self.note}")
        return " ".join(parts)


# ----------------------------------------------------------------------
# Flattening and replicate grouping
# ----------------------------------------------------------------------


def _flatten(node: object, prefix: str) -> Iterator[Tuple[str, float]]:
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield prefix, float(node)
        return
    if isinstance(node, dict):
        for key in sorted(node):
            child_prefix = f"{prefix}.{key}" if prefix else str(key)
            yield from _flatten(node[key], child_prefix)
        return
    if isinstance(node, (list, tuple)):
        for index, item in enumerate(node):
            discriminator = _discriminate(item, index)
            yield from _flatten(item, f"{prefix}[{discriminator}]")


def _discriminate(item: object, index: int) -> str:
    if isinstance(item, dict):
        for key in DISCRIMINATOR_KEYS:
            if key in item and isinstance(item[key], (str, int)):
                return f"{key}={item[key]}"
    return str(index)


def _strip_replicate(component: str) -> Tuple[str, Optional[int]]:
    """Split a path component into (base, replicate index or None)."""
    match = _REPLICATE.match(component)
    if match is None:
        return component, None
    return match.group("base") + match.group("tail"), int(match.group("rep"))


def collect_samples(report: RunReport) -> Dict[str, Sample]:
    """Replicate-grouped numeric samples of one report.

    Keys are dotted flattened paths with any ``_x<N>`` replicate suffix
    stripped from their components; each :class:`Sample` holds the
    replicate values in replicate order (a lone measurement is a
    one-value sample).
    """
    raw: List[Tuple[str, Optional[int], float]] = []
    for path, value in _flatten(report.payload, "payload"):
        raw.append(_group_key(path) + (value,))
    counters = report.metrics.get("counters", {}) if report.metrics else {}
    for identity in sorted(counters):
        entry = counters[identity]
        value = entry.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        base, rep = _group_key(f"metrics.{identity}")
        raw.append((base, rep, float(value)))
    samples: Dict[str, List[Tuple[int, float]]] = {}
    for base, rep, value in raw:
        samples.setdefault(base, []).append((-1 if rep is None else rep, value))
    return {
        base: Sample([value for _, value in sorted(pairs)])
        for base, pairs in samples.items()
    }


def _group_key(path: str) -> Tuple[str, Optional[int]]:
    components = path.split(".")
    replicate: Optional[int] = None
    for position, component in enumerate(components):
        base, rep = _strip_replicate(component)
        if rep is not None:
            components[position] = base
            replicate = rep  # innermost marker wins
    return ".".join(components), replicate


def _leaf(path: str) -> str:
    leaf = path.split(".")[-1]
    return leaf.split("[")[0] or leaf


def _metric_kind(path: str) -> str:
    leaf = _leaf(path)
    if leaf.endswith("_s"):
        return "wall"
    if leaf in COUNTER_LEAVES:
        return "counter"
    return "info"


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------


def compare_reports(
    baseline: RunReport,
    current: RunReport,
    config: Optional[RegressConfig] = None,
) -> List[Finding]:
    """All findings from comparing ``current`` against ``baseline``."""
    config = config or RegressConfig()
    config.validate()
    base_samples = collect_samples(baseline)
    cur_samples = collect_samples(current)
    findings: List[Finding] = []
    for path in sorted(base_samples):
        kind = _metric_kind(path)
        base = base_samples[path]
        cur = cur_samples.get(path)
        if cur is None:
            findings.append(
                Finding(
                    metric=path,
                    kind="missing",
                    severity="fail" if kind in ("wall", "counter") else "info",
                    baseline=base.median,
                    note="present in baseline, absent in current",
                )
            )
            continue
        if kind == "wall":
            findings.append(_compare_wall(path, base, cur, config))
        elif kind == "counter":
            findings.append(_compare_counter(path, base, cur, config))
        else:
            findings.append(
                Finding(
                    metric=path,
                    kind="info",
                    severity="info",
                    baseline=base.median,
                    current=cur.median,
                )
            )
    for path in sorted(set(cur_samples) - set(base_samples)):
        findings.append(
            Finding(
                metric=path,
                kind="new",
                severity="info",
                current=cur_samples[path].median,
                note="absent in baseline",
            )
        )
    return findings


def _compare_wall(path: str, base: Sample, cur: Sample, config: RegressConfig) -> Finding:
    base_med, cur_med = base.median, cur.median
    band = max(
        base_med * config.wall_threshold,
        config.mad_k * MAD_SCALE * base.mad,
        config.abs_floor_s,
    )
    finding = Finding(
        metric=path,
        kind="wall",
        severity="ok",
        baseline=base_med,
        current=cur_med,
        baseline_mad=base.mad,
    )
    if cur_med > base_med + band:
        finding.severity = "fail"
        finding.note = (
            f"wall-time regression beyond noise band "
            f"(+{band:.6g}s = max({config.wall_threshold:.0%} rel, "
            f"{config.mad_k:g}*MAD, {config.abs_floor_s:g}s floor))"
        )
    elif cur_med < base_med - band:
        finding.severity = "info"
        finding.note = "improvement beyond noise band"
    return finding


def _compare_counter(
    path: str, base: Sample, cur: Sample, config: RegressConfig
) -> Finding:
    base_med, cur_med = base.median, cur.median
    allowed = config.counter_tolerance * abs(base_med)
    finding = Finding(
        metric=path,
        kind="counter",
        severity="ok",
        baseline=base_med,
        current=cur_med,
        baseline_mad=base.mad,
    )
    # Replicate-by-replicate, not median-vs-median: a deterministic
    # counter drifting in even ONE replicate is a workload change the
    # median would happily hide.
    base_values = sorted(base.values)
    cur_values = sorted(cur.values)
    if len(base_values) != len(cur_values):
        finding.severity = "fail"
        finding.note = (
            f"replicate count changed: {len(base_values)} baseline vs "
            f"{len(cur_values)} current"
        )
        return finding
    worst = max(
        (abs(c - b) for b, c in zip(base_values, cur_values)), default=0.0
    )
    if worst > allowed:
        finding.severity = "fail"
        finding.note = (
            "deterministic counter drifted (same inputs must grade the "
            "same work on any machine) — the workload changed, not just "
            f"the speed (worst replicate delta {worst:g})"
        )
    return finding


# ----------------------------------------------------------------------
# File / directory pairing
# ----------------------------------------------------------------------


def load_report(path: str) -> RunReport:
    with open(path, "r") as handle:
        return RunReport.from_json(handle.read())


def pair_bench_files(baseline: str, current: str) -> List[Tuple[str, str, Optional[str]]]:
    """Resolve two files or two directories into comparable pairs.

    Directories pair their ``BENCH_*.json`` files by name (the baseline
    directory decides what is gated).  Returns
    ``(name, baseline_path, current_path_or_None)`` tuples.
    """
    if os.path.isdir(baseline) != os.path.isdir(current):
        raise ValueError(
            f"baseline and current must both be files or both directories "
            f"({baseline!r} vs {current!r})"
        )
    if not os.path.isdir(baseline):
        return [(os.path.basename(baseline), baseline, current)]
    pairs: List[Tuple[str, str, Optional[str]]] = []
    for name in sorted(os.listdir(baseline)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        candidate = os.path.join(current, name)
        pairs.append(
            (name, os.path.join(baseline, name), candidate if os.path.exists(candidate) else None)
        )
    if not pairs:
        raise ValueError(f"no BENCH_*.json files under {baseline!r}")
    return pairs


def compare_paths(
    baseline: str, current: str, config: Optional[RegressConfig] = None
) -> Dict[str, List[Finding]]:
    """Findings per benchmark file for two paths (files or directories)."""
    results: Dict[str, List[Finding]] = {}
    for name, base_path, cur_path in pair_bench_files(baseline, current):
        if cur_path is None:
            results[name] = [
                Finding(
                    metric=name,
                    kind="missing",
                    severity="fail",
                    note="baseline benchmark file has no current counterpart",
                )
            ]
            continue
        results[name] = compare_reports(
            load_report(base_path), load_report(cur_path), config
        )
    return results


def failures(findings: Iterable[Finding]) -> List[Finding]:
    return [finding for finding in findings if finding.severity == "fail"]


def format_findings(
    results: Dict[str, List[Finding]], verbose: bool = False
) -> List[str]:
    """Human-readable report lines, failing findings always included."""
    lines: List[str] = []
    for name in sorted(results):
        findings = results[name]
        failed = failures(findings)
        interesting = [
            f for f in findings if verbose or f.severity in ("fail", "warn")
            or (f.severity == "info" and f.note)
        ]
        lines.append(
            f"{name}: {len(findings)} metrics compared, "
            f"{len(failed)} failing"
        )
        for finding in interesting:
            lines.append(f"  {finding.render()}")
    return lines
