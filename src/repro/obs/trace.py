"""Chrome trace-event export: one timeline across every process.

Turns one observed run — the span tree a :class:`~repro.obs.report.RunReport`
serializes plus the stitched :mod:`~repro.obs.events` stream — into the
Chrome trace-event JSON format, viewable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* the parent process contributes one track holding the span tree as
  complete (``ph: "X"``) slices — ATPG phases, fault-sim passes, the
  good-machine response;
* every worker process contributes its own track, one slice per
  partition attempt (from ``partition_begin``/``partition_end`` event
  pairs), so load imbalance and retry gaps are visible at a glance;
* supervisor moments — retries, timeout kills, crashes, chaos
  injections, inline fallbacks, journal skips — render as instant
  (``ph: "i"``) markers;
* heartbeats carrying ``faults_graded`` render as a counter
  (``ph: "C"``) series, the campaign's live progress curve.

Timestamps are microseconds relative to the run's root span, on the
parent's monotonic clock — worker events were already re-based onto that
clock when they were stitched (see :meth:`repro.obs.events.EventLog.ingest`),
so slices from different processes line up without trusting any wall
clock.  Wired to every CLI subcommand as ``--trace out.trace.json``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .events import (
    HEARTBEAT,
    INSTANT_KINDS,
    PARTITION_BEGIN,
    PARTITION_END,
    TelemetryEvent,
)
from .report import RunReport

#: ``pid`` used for the parent/span track when the report predates event
#: payloads (no clock record to take the real pid from).
FALLBACK_PID = 1


def chrome_trace(report: RunReport) -> Dict[str, object]:
    """Build a Chrome trace-event dict from one serialized run."""
    trace_events: List[Dict[str, object]] = []
    payload = report.events_payload or {}
    clock = payload.get("clock") or {}
    parent_pid = int(clock.get("pid", FALLBACK_PID)) or FALLBACK_PID
    epoch = payload.get("epoch_mono")

    _emit_process_meta(trace_events, parent_pid, f"{report.name} (parent)", 0)
    _emit_thread_meta(trace_events, parent_pid, parent_pid, "flow")
    if report.span:
        _span_slices(report.span, parent_pid, trace_events)

    events = [
        TelemetryEvent.from_dict(entry) for entry in payload.get("events", ())
    ]
    if events:
        if epoch is None:
            epoch = min(event.t_mono for event in events)
        _event_slices(events, float(epoch), parent_pid, trace_events)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "name": report.name,
            "labels": dict(report.labels),
            "schema_version": report.schema_version,
        },
    }


def write_chrome_trace(path: str, report: RunReport) -> str:
    """Serialize :func:`chrome_trace` of ``report`` to ``path``."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(report), handle, indent=1, sort_keys=True)
        handle.write("\n")
    return path


# ----------------------------------------------------------------------
# Span tree -> complete slices on the parent track
# ----------------------------------------------------------------------


def _span_slices(
    span: Dict[str, object], pid: int, out: List[Dict[str, object]]
) -> None:
    out.append(
        {
            "ph": "X",
            "name": str(span.get("name", "?")),
            "cat": "span",
            "ts": round(float(span.get("start_s", 0.0)) * 1e6, 3),
            "dur": round(float(span.get("wall_time_s", 0.0)) * 1e6, 3),
            "pid": pid,
            "tid": pid,
            "args": dict(span.get("labels", {})),
        }
    )
    for child in span.get("children", []):
        _span_slices(child, pid, out)


# ----------------------------------------------------------------------
# Telemetry events -> worker tracks, instants, progress counter
# ----------------------------------------------------------------------


def _event_slices(
    events: List[TelemetryEvent],
    epoch: float,
    parent_pid: int,
    out: List[Dict[str, object]],
) -> None:
    def ts(event: TelemetryEvent) -> float:
        return round((event.t_mono - epoch) * 1e6, 3)

    # One named track per worker process, ordered below the parent.
    worker_pids = sorted(
        {event.pid for event in events if event.pid != parent_pid}
    )
    for order, pid in enumerate(worker_pids, start=1):
        _emit_process_meta(out, pid, f"worker pid={pid}", order)
        _emit_thread_meta(out, pid, pid, "partitions")

    open_partitions: Dict[Tuple[int, Optional[int], Optional[int]], TelemetryEvent] = {}
    for event in sorted(events, key=lambda item: item.t_mono):
        key = (event.pid, event.partition, event.attempt)
        if event.kind == PARTITION_BEGIN:
            open_partitions[key] = event
        elif event.kind == PARTITION_END:
            begin = open_partitions.pop(key, None)
            start = begin.t_mono if begin is not None else event.t_mono
            args: Dict[str, object] = {}
            if begin is not None:
                args.update(begin.args)
            args.update(event.args)
            out.append(
                {
                    "ph": "X",
                    "name": f"partition {event.partition}"
                    + (f" (attempt {event.attempt})" if event.attempt else ""),
                    "cat": "partition",
                    "ts": round((start - epoch) * 1e6, 3),
                    "dur": round(max(0.0, event.t_mono - start) * 1e6, 3),
                    "pid": event.pid,
                    "tid": event.pid,
                    "args": args,
                }
            )
        elif event.kind == HEARTBEAT and "faults_graded" in event.args:
            out.append(
                {
                    "ph": "C",
                    "name": "faults_graded",
                    "cat": "progress",
                    "ts": ts(event),
                    "pid": parent_pid,
                    "args": {
                        "faults_graded": event.args.get("faults_graded", 0)
                    },
                }
            )
        elif event.kind in INSTANT_KINDS:
            out.append(
                {
                    "ph": "i",
                    "s": "p",
                    "name": _instant_name(event),
                    "cat": event.kind,
                    "ts": ts(event),
                    "pid": event.pid if event.pid in worker_pids else parent_pid,
                    "tid": event.pid if event.pid in worker_pids else parent_pid,
                    "args": dict(event.args),
                }
            )
    # A begin with no matching end (killed worker): render what we know
    # as an instant so the timeline still shows the attempt started.
    for begin in open_partitions.values():
        out.append(
            {
                "ph": "i",
                "s": "p",
                "name": f"partition {begin.partition} (unfinished)",
                "cat": "partition",
                "ts": round((begin.t_mono - epoch) * 1e6, 3),
                "pid": begin.pid,
                "tid": begin.pid,
                "args": dict(begin.args),
            }
        )


def _instant_name(event: TelemetryEvent) -> str:
    base = event.name or event.kind
    if event.partition is not None:
        return f"{base} p{event.partition}"
    return base


def _emit_process_meta(
    out: List[Dict[str, object]], pid: int, name: str, sort_index: int
) -> None:
    out.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "args": {"name": name},
        }
    )
    out.append(
        {
            "ph": "M",
            "name": "process_sort_index",
            "pid": pid,
            "args": {"sort_index": sort_index},
        }
    )


def _emit_thread_meta(
    out: List[Dict[str, object]], pid: int, tid: int, name: str
) -> None:
    out.append(
        {
            "ph": "M",
            "name": "thread_name",
            "pid": pid,
            "tid": tid,
            "args": {"name": name},
        }
    )
