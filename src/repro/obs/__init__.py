"""``repro.obs`` — dependency-free tracing, metrics, and run reports.

The toolkit's flows (fault simulation, ATPG, compression, LBIST, MBIST)
instrument themselves against *whatever observation is currently active*:

* :func:`observe` opens an :class:`~repro.obs.span.Observation` and makes
  it current for the duration of the ``with`` block;
* :func:`span`, :func:`add_counters`, :func:`counter`, :func:`gauge`,
  :func:`histogram`, and :func:`merge_metrics` all no-op (at a single
  list-lookup's cost) when nothing is active, so instrumented hot paths
  pay effectively nothing unless someone asked to watch — the CLI's
  ``--report``/``--profile`` flags, a benchmark, or a test.

Example::

    from repro import obs
    from repro.atpg.engine import run_atpg

    with obs.observe("repro.atpg", circuit="mac4") as o:
        run_atpg(netlist)
    report = obs.RunReport.from_observation(o)
    print(report.to_json())        # stable-schema JSON
    print(report.to_prometheus())  # Prometheus text format

Observations nest (the innermost wins), which keeps library code
composable: a benchmark can observe a whole sweep while each CLI-style
run inside it observes itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from .events import EventLog, TelemetryEvent, read_jsonl, stitch_payloads
from .metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    metric_id,
)
from .report import SCHEMA_VERSION, RunReport
from .span import Observation, Span
from .trace import chrome_trace, write_chrome_trace

__all__ = [
    "Counter",
    "DEFAULT_BOUNDS",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Observation",
    "RunReport",
    "SCHEMA_VERSION",
    "Span",
    "TelemetryEvent",
    "add_counters",
    "chrome_trace",
    "counter",
    "current",
    "emit_event",
    "gauge",
    "histogram",
    "merge_events",
    "merge_metrics",
    "metric_id",
    "observe",
    "read_jsonl",
    "set_gauge",
    "span",
    "stitch_payloads",
    "write_chrome_trace",
]

# The active-observation stack.  Deliberately a plain module-level list:
# observations are per-run (CLI invocation, benchmark, test), workers in
# other processes build their own, and the no-op fast path must stay a
# single attribute load + truth test.
_ACTIVE: List[Observation] = []


def current() -> Optional[Observation]:
    """The innermost active observation, or ``None``."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def observe(name: str, **labels: object) -> Iterator[Observation]:
    """Open an observation and make it current inside the ``with`` block."""
    observation = Observation(name, **labels)
    _ACTIVE.append(observation)
    try:
        yield observation
    finally:
        observation.finish()
        if observation in _ACTIVE:
            _ACTIVE.remove(observation)


@contextmanager
def span(name: str, **labels: object) -> Iterator[Optional[Span]]:
    """A child span of the current observation (no-op when inactive)."""
    observation = current()
    if observation is None:
        yield None
        return
    with observation.span(name, **labels) as opened:
        yield opened


def add_counters(prefix: str, values: Dict[str, object], **labels: str) -> None:
    """Bulk-add numeric ``values`` as ``prefix.key`` counters (no-op when
    inactive).  Non-numeric values are skipped, so a raw stats dict works."""
    observation = current()
    if observation is not None:
        observation.add_counters(prefix, values, **labels)


def counter(name: str, **labels: str) -> Optional[Counter]:
    """The named counter of the current observation, or ``None``."""
    observation = current()
    return None if observation is None else observation.counter(name, **labels)


def gauge(name: str, **labels: str) -> Optional[Gauge]:
    """The named gauge of the current observation, or ``None``."""
    observation = current()
    return None if observation is None else observation.gauge(name, **labels)


def histogram(
    name: str, bounds: Sequence[float] = DEFAULT_BOUNDS, **labels: str
) -> Optional[Histogram]:
    """The named histogram of the current observation, or ``None``."""
    observation = current()
    return (
        None if observation is None else observation.histogram(name, bounds, **labels)
    )


def merge_metrics(payload: Optional[Dict[str, object]]) -> None:
    """Merge a serialized worker registry into the current observation.

    This is the parent half of the worker-metrics round trip: pool and
    supervised workers serialize their registry into the partial result's
    ``stats["metrics"]``, and the parent folds every partial's registry in
    (in any order — the merge is associative and commutative).
    """
    observation = current()
    if observation is not None and payload:
        observation.merge_metrics(payload)


def set_gauge(name: str, value: object, **labels: str) -> None:
    """Set a gauge on the current observation (no-op when inactive)."""
    observation = current()
    if observation is not None and isinstance(value, (int, float)):
        observation.gauge(name, **labels).set(value)


def emit_event(kind: str, name: str = "", **kwargs: object) -> None:
    """Append a telemetry event to the current observation (no-op when
    inactive).  ``partition=``/``attempt=`` identify sharded work; other
    keywords land in the event's free-form ``args``."""
    observation = current()
    if observation is not None:
        observation.emit_event(kind, name, **kwargs)


def merge_events(payload: Optional[Dict[str, object]]) -> None:
    """Stitch a shipped worker event payload into the current observation.

    The parent half of the worker-events round trip: workers ship
    ``EventLog.to_payload()`` envelopes home inside
    ``FaultSimResult.stats`` and the parent re-bases each onto its own
    monotonic timeline (see :meth:`~repro.obs.events.EventLog.ingest`).
    """
    observation = current()
    if observation is not None and payload:
        observation.merge_events(payload)
