"""RunReport: the serialized form of one observed run.

A RunReport is the single schema every flow in the toolkit reports
through — CLI ``--report`` files, ``BENCH_*.json`` entries, and anything
a test wants to snapshot.  The schema is *append-only*: new code may add
keys but must never remove or rename them (``tests/test_report_schema.py``
holds the key tree to that), so downstream consumers written against an
old report keep working.

Top-level schema (version 1)::

    {
      "schema_version": 1,
      "name": "repro.atpg",
      "labels": {"command": "atpg", ...},
      "generated_unix_s": 1754500000.0,
      "meta": {...},                      # argv, circuit, free-form
      "span": {"name", "labels", "start_s", "wall_time_s", "children": [...]},
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
      "payload": ...,                     # optional: bench rows, etc.
      "events": {"clock": {...}, "events": [...], "epoch_mono": ...}  # optional
    }

``to_prometheus`` renders the metrics (plus every span's wall time as a
``repro_span_seconds`` sample labeled by its path) in the Prometheus
text exposition format, for scraping long campaigns.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .metrics import MetricRegistry, _prom_labels
from .span import Observation

#: Current report schema version.  Bump only for *incompatible* changes;
#: additive keys do not require a bump.
SCHEMA_VERSION = 1


@dataclass
class RunReport:
    """One run's span tree, metrics, and metadata in stable-schema form."""

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    span: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, object] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    payload: object = None
    generated_unix_s: float = 0.0
    schema_version: int = SCHEMA_VERSION
    #: Stitched telemetry event payload (see ``repro.obs.events``):
    #: ``{"clock": {...}, "events": [...], "epoch_mono": <root span start>}``.
    #: Empty dict when the run emitted no events; serialized as the
    #: optional ``events`` key (schema-additive).
    events_payload: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_observation(
        cls,
        observation: Observation,
        meta: Optional[Dict[str, object]] = None,
        payload: object = None,
    ) -> "RunReport":
        observation.finish()
        events_payload: Dict[str, object] = {}
        if len(observation.events):
            events_payload = observation.events.to_payload()
            # Anchor the event timeline to the span timeline: spans
            # serialize relative to the root's start, so exporters need
            # that same zero point in monotonic terms.
            events_payload["epoch_mono"] = observation.root.start_mono
        return cls(
            name=observation.root.name,
            labels=dict(observation.root.labels),
            span=observation.root.to_dict(),
            metrics=observation.metrics.to_dict(),
            meta=dict(meta or {}),
            payload=payload,
            generated_unix_s=time.time(),
            events_payload=events_payload,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        report: Dict[str, object] = {
            "schema_version": self.schema_version,
            "name": self.name,
            "labels": dict(self.labels),
            "generated_unix_s": self.generated_unix_s,
            "meta": dict(self.meta),
            "span": self.span,
            "metrics": self.metrics,
        }
        if self.payload is not None:
            report["payload"] = self.payload
        if self.events_payload:
            report["events"] = self.events_payload
        return report

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunReport":
        version = payload.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"not a RunReport: bad schema_version {version!r}")
        return cls(
            name=payload.get("name", "?"),
            labels=dict(payload.get("labels", {})),
            span=dict(payload.get("span", {})),
            metrics=dict(payload.get("metrics", {})),
            meta=dict(payload.get("meta", {})),
            payload=payload.get("payload"),
            generated_unix_s=payload.get("generated_unix_s", 0.0),
            schema_version=version,
            events_payload=dict(payload.get("events", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def registry(self) -> MetricRegistry:
        """The metrics section rehydrated into a live registry."""
        return MetricRegistry.from_dict(self.metrics)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text format: all metrics + span durations."""
        text = self.registry().to_prometheus(prefix=prefix)
        lines: List[str] = []
        if self.span:
            lines.append(f"# TYPE {prefix}_span_seconds gauge")
            _span_samples(self.span, "", prefix, lines)
        return text + ("\n".join(lines) + "\n" if lines else "")

    def counter_value(self, name: str, default: object = 0) -> object:
        """Convenience: a counter's value by bare name (no labels)."""
        entry = self.metrics.get("counters", {}).get(name)
        if entry is None:
            return default
        return entry.get("value", default)

    # ------------------------------------------------------------------
    # Schema-compat support
    # ------------------------------------------------------------------

    def key_paths(self) -> List[str]:
        """Sorted structural key paths of the serialized report.

        List elements collapse to ``[]`` so the paths describe the shape,
        not the cardinality — the golden-schema test snapshots these and
        asserts later versions only ever *add* paths.
        """
        paths: set = set()
        _collect_paths(self.to_dict(), "", paths)
        return sorted(paths)


def _collect_paths(node: object, prefix: str, paths: set) -> None:
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            paths.add(path)
            _collect_paths(value, path, paths)
    elif isinstance(node, list):
        path = f"{prefix}[]"
        for item in node:
            _collect_paths(item, path, paths)


def _span_samples(
    span: Dict[str, object], parent: str, prefix: str, lines: List[str]
) -> None:
    path = f"{parent}/{span.get('name', '?')}" if parent else str(span.get("name", "?"))
    labels = _prom_labels({"path": path})
    lines.append(f"{prefix}_span_seconds{labels} {span.get('wall_time_s', 0.0)!r}")
    for child in span.get("children", []):
        _span_samples(child, path, prefix, lines)
