"""Hierarchical spans and the observation that collects them.

A :class:`Span` is one timed region of a flow — an ATPG phase, a
fault-simulation pass, an LBIST coverage loop — with a name, string
labels, and children nested inside it.  Durations come exclusively from
``time.perf_counter()`` (monotonic), never the wall clock, so a span's
end can never precede its start even across clock adjustments
(``tests/test_obs.py`` pins that).

An :class:`Observation` owns one root span plus a
:class:`~repro.obs.metrics.MetricRegistry`; it is the unit the CLI's
``--report``/``--profile`` flags create and the unit a
:class:`~repro.obs.report.RunReport` serializes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence

from .events import EventLog
from .metrics import DEFAULT_BOUNDS, MetricRegistry


class Span:
    """One timed, labeled, nestable region."""

    __slots__ = ("name", "labels", "children", "_start", "_elapsed")

    def __init__(self, name: str, labels: Optional[Dict[str, str]] = None):
        self.name = name
        self.labels: Dict[str, str] = {
            str(k): str(v) for k, v in (labels or {}).items()
        }
        self.children: List["Span"] = []
        self._start = time.perf_counter()
        self._elapsed: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self._elapsed is not None

    @property
    def start_mono(self) -> float:
        """``time.perf_counter()`` reading at span open (process-local)."""
        return self._start

    @property
    def wall_time_s(self) -> float:
        """Elapsed monotonic seconds (still ticking until finished)."""
        if self._elapsed is not None:
            return self._elapsed
        return time.perf_counter() - self._start

    def finish(self) -> "Span":
        if self._elapsed is None:
            # perf_counter is monotonic, but defend the invariant anyway:
            # a span's duration is never negative.
            self._elapsed = max(0.0, time.perf_counter() - self._start)
        return self

    def annotate(self, **labels: object) -> "Span":
        """Attach labels after the fact (values are stringified)."""
        for key, value in labels.items():
            self.labels[str(key)] = str(value)
        return self

    def child(self, name: str, labels: Optional[Dict[str, str]] = None) -> "Span":
        span = Span(name, labels)
        self.children.append(span)
        return span

    def to_dict(self, epoch: Optional[float] = None) -> Dict[str, object]:
        """Stable-schema dict: name, labels, start_s, wall_time_s, children.

        ``start_s`` is the span's open time relative to ``epoch`` (the
        root span's own start when omitted), which is what timeline
        exporters need to place slices without trusting the wall clock.
        """
        if epoch is None:
            epoch = self._start
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "start_s": max(0.0, self._start - epoch),
            "wall_time_s": self.wall_time_s,
            "children": [child.to_dict(epoch) for child in self.children],
        }

    def tree_lines(self, indent: int = 0) -> List[str]:
        """Human-readable indented rendering (the ``--profile`` output)."""
        label_text = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(self.labels.items())) + "]"
            if self.labels
            else ""
        )
        lines = [f"{'  ' * indent}{self.name:<24s} {self.wall_time_s * 1e3:10.2f} ms{label_text}"]
        for child in self.children:
            lines.extend(child.tree_lines(indent + 1))
        return lines

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class Observation:
    """One traced run: a root span, nested child spans, and metrics."""

    def __init__(self, name: str, **labels: object):
        self.metrics = MetricRegistry()
        self.events = EventLog()
        self.root = Span(name, {str(k): str(v) for k, v in labels.items()})
        self._stack: List[Span] = [self.root]

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    @property
    def current_span(self) -> Span:
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Span]:
        """Open a child span of the innermost open span."""
        child = self.current_span.child(
            name, {str(k): str(v) for k, v in labels.items()}
        )
        self._stack.append(child)
        try:
            yield child
        finally:
            child.finish()
            # Tolerate out-of-order closes (a crashed generator mid-tree):
            # pop back to the parent of the closing span.
            if child in self._stack:
                while self._stack[-1] is not child:
                    self._stack.pop().finish()
                self._stack.pop()

    def finish(self) -> "Observation":
        while len(self._stack) > 1:
            self._stack.pop().finish()
        self.root.finish()
        return self

    # ------------------------------------------------------------------
    # Metrics passthrough
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: str):
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: str):
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BOUNDS, **labels: str):
        return self.metrics.histogram(name, bounds, **labels)

    def add_counters(
        self, prefix: str, values: Dict[str, object], **labels: str
    ) -> None:
        """Bulk-add numeric ``values`` as counters named ``prefix.key``.

        Non-numeric entries (engine names, nested partition lists) are
        skipped, which lets callers feed a ``FaultSimResult.stats`` dict
        straight in without curating it first.
        """
        for key, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.metrics.counter(f"{prefix}.{key}", **labels).add(value)

    def merge_metrics(self, payload: Dict[str, object]) -> None:
        """Merge a serialized worker registry (see MetricRegistry.to_dict)."""
        self.metrics.merge_dict(payload)

    # ------------------------------------------------------------------
    # Telemetry events passthrough
    # ------------------------------------------------------------------

    def emit_event(self, kind: str, name: str = "", **kwargs: object):
        """Append a telemetry event to this observation's event log."""
        return self.events.emit(kind, name, **kwargs)

    def merge_events(self, payload: Optional[Dict[str, object]]) -> int:
        """Stitch a shipped worker event payload onto this timeline."""
        return self.events.ingest(payload)
