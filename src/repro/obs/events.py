"""Append-only telemetry event stream with cross-process stitching.

Spans (:mod:`repro.obs.span`) answer *how long* each region of a flow
took; the event stream answers *when things happened and in which
process* — partition begin/end on each worker, supervisor retries,
timeout kills, chaos injections, heartbeats.  Every
:class:`TelemetryEvent` carries **both clocks**:

* ``t_mono`` — ``time.perf_counter()`` in the emitting process.  Spacing
  between two events of one process is exact, but the zero point is
  per-process (perf_counter's epoch is unspecified).
* ``t_wall`` — ``time.time()``.  Comparable across processes but subject
  to NTP steps, so never used for durations.

Workers therefore ship their events home as a *payload*: the event list
plus a ``clock`` record holding the process's wall-minus-monotonic
offset.  :meth:`EventLog.ingest` stitches a payload onto the receiving
log's own monotonic timeline by re-basing each event through the wall
clock::

    t_mono' = t_mono + (worker_offset - parent_offset)

which preserves the worker's exact monotonic spacing while aligning its
zero point with the parent's — the per-process clock-skew normalization
a merged timeline needs.  The stitched log exports to Chrome trace-event
JSON via :mod:`repro.obs.trace` and to JSONL side files for ad-hoc
tooling.

Event payloads are plain JSON-safe dicts on purpose: they ride across
``multiprocessing`` pipes inside ``FaultSimResult.stats`` exactly like
the worker metric registries do.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: Event kinds emitted by the toolkit.  The stream is open — consumers
#: must tolerate kinds they do not know — but these are the ones the
#: backends produce and the trace exporter styles.
SPAN_BEGIN = "span_begin"
SPAN_END = "span_end"
PARTITION_BEGIN = "partition_begin"
PARTITION_END = "partition_end"
HEARTBEAT = "heartbeat"
RETRY = "retry"
CRASH = "crash"
TIMEOUT = "timeout"
INVALID = "invalid"
CHAOS = "chaos"
INLINE_FALLBACK = "inline_fallback"
JOURNAL_SKIP = "journal_skip"
# Shared shard-store lifecycle (multi-runner campaigns, repro.sim.store):
# claims, heartbeat renewals, steals from expired peers, losing a lease
# to a stealer, first-write publishes, and converged duplicate publishes.
LEASE_CLAIM = "lease_claim"
LEASE_RENEW = "lease_renew"
LEASE_STEAL = "lease_steal"
LEASE_LOST = "lease_lost"
PUBLISH = "publish"
PUBLISH_CONFLICT = "publish_conflict"
HOST_CHAOS = "host_chaos"

#: Kinds rendered as instant markers on a timeline (everything that is a
#: moment, not a region).
INSTANT_KINDS = (
    HEARTBEAT,
    RETRY,
    CRASH,
    TIMEOUT,
    INVALID,
    CHAOS,
    INLINE_FALLBACK,
    JOURNAL_SKIP,
    LEASE_CLAIM,
    LEASE_RENEW,
    LEASE_STEAL,
    LEASE_LOST,
    PUBLISH,
    PUBLISH_CONFLICT,
    HOST_CHAOS,
)


@dataclass
class TelemetryEvent:
    """One timestamped telemetry instant.

    ``partition`` and ``attempt`` identify the unit of sharded work the
    event belongs to (``None`` for whole-run events); ``args`` is free-
    form JSON-safe detail (reasons, counts, modes).
    """

    kind: str
    name: str = ""
    t_mono: float = 0.0
    t_wall: float = 0.0
    pid: int = 0
    partition: Optional[int] = None
    attempt: Optional[int] = None
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "name": self.name,
            "t_mono": self.t_mono,
            "t_wall": self.t_wall,
            "pid": self.pid,
        }
        if self.partition is not None:
            payload["partition"] = self.partition
        if self.attempt is not None:
            payload["attempt"] = self.attempt
        if self.args:
            payload["args"] = dict(self.args)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "TelemetryEvent":
        return cls(
            kind=str(payload.get("kind", "?")),
            name=str(payload.get("name", "")),
            t_mono=float(payload.get("t_mono", 0.0)),
            t_wall=float(payload.get("t_wall", 0.0)),
            pid=int(payload.get("pid", 0)),
            partition=payload.get("partition"),
            attempt=payload.get("attempt"),
            args=dict(payload.get("args", {})),
        )


class EventLog:
    """An append-only, per-process telemetry event stream.

    Each process owns one log per unit of shipped work (a worker owns one
    per partition attempt; a backend owns one per campaign; an
    :class:`~repro.obs.span.Observation` owns one per run).  Emitting is
    append-only and cheap — one perf_counter read, one wall read, one
    list append — so it is safe from supervision loops.
    """

    def __init__(self):
        self.events: List[TelemetryEvent] = []
        self.pid = os.getpid()
        # The wall-minus-monotonic offset is this process's clock
        # identity: two samples of it differ only by scheduling jitter,
        # and the *difference* between two processes' offsets is exactly
        # the shift needed to stitch their monotonic timelines together.
        self.wall_minus_mono = time.time() - time.perf_counter()

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        kind: str,
        name: str = "",
        partition: Optional[int] = None,
        attempt: Optional[int] = None,
        **args: object,
    ) -> TelemetryEvent:
        """Append one event stamped with both clocks of this process."""
        event = TelemetryEvent(
            kind=kind,
            name=name,
            t_mono=time.perf_counter(),
            t_wall=time.time(),
            pid=self.pid,
            partition=partition,
            attempt=attempt,
            args=dict(args),
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Shipping and stitching
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe envelope: clock identity plus the event list."""
        return {
            "clock": {"pid": self.pid, "wall_minus_mono": self.wall_minus_mono},
            "events": [event.to_dict() for event in self.events],
        }

    def ingest(self, payload: Optional[Dict[str, object]]) -> int:
        """Stitch a shipped payload onto this log's monotonic timeline.

        Every ingested event's ``t_mono`` is re-based through the wall
        clock (``t_mono + other_offset - my_offset``) so all events in
        this log share one zero point while keeping each source process's
        exact monotonic spacing.  ``pid``/``t_wall`` are preserved, so
        per-process tracks can still be reconstructed.  Returns the
        number of events added; tolerates ``None`` and empty payloads.
        """
        if not payload:
            return 0
        clock = payload.get("clock") or {}
        skew = float(clock.get("wall_minus_mono", self.wall_minus_mono))
        shift = skew - self.wall_minus_mono
        added = 0
        for entry in payload.get("events", ()):
            event = TelemetryEvent.from_dict(entry)
            event.t_mono += shift
            self.events.append(event)
            added += 1
        return added

    def merged(self) -> List[TelemetryEvent]:
        """All events sorted by (stitched) monotonic time."""
        return sorted(self.events, key=lambda event: event.t_mono)

    # ------------------------------------------------------------------
    # JSONL side files
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str) -> str:
        """Append this log to a JSONL side file (one event per line).

        The first line of each appended block is the clock record, so a
        reader can stitch several processes' files the same way
        :meth:`ingest` stitches payloads.
        """
        with open(path, "a") as handle:
            handle.write(
                json.dumps(
                    {
                        "kind": "clock",
                        "pid": self.pid,
                        "wall_minus_mono": self.wall_minus_mono,
                    },
                    separators=(",", ":"),
                )
                + "\n"
            )
            for event in self.events:
                handle.write(json.dumps(event.to_dict(), separators=(",", ":")) + "\n")
        return path


def read_jsonl(path: str) -> List[Dict[str, object]]:
    """Read a JSONL event side file into payloads :meth:`EventLog.ingest`
    accepts: one payload per ``clock`` record, torn trailing line tolerated."""
    payloads: List[Dict[str, object]] = []
    current: Optional[Dict[str, object]] = None
    with open(path, "r") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError:
                break  # torn trailing line from a kill mid-write
            if line.get("kind") == "clock":
                current = {
                    "clock": {
                        "pid": line.get("pid", 0),
                        "wall_minus_mono": line.get("wall_minus_mono", 0.0),
                    },
                    "events": [],
                }
                payloads.append(current)
            elif current is not None:
                current["events"].append(line)
            else:  # eventless preamble: tolerate files without a clock line
                payloads.append({"clock": {}, "events": [line]})
                current = payloads[-1]
    return payloads


def stitch_payloads(payloads: Iterable[Dict[str, object]]) -> EventLog:
    """Convenience: a fresh log with every payload ingested and stitched."""
    log = EventLog()
    for payload in payloads:
        log.ingest(payload)
    return log
