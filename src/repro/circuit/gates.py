"""Gate primitives: types, truth semantics, and evaluation helpers.

The netlist uses a small primitive library — the same one the ISCAS
benchmarks and most ATPG papers use — plus pseudo-gates for ports and
sequential elements:

===========  =========================================================
``INPUT``    primary input (no fanin)
``OUTPUT``   primary output marker (single fanin, transparent)
``BUF``      buffer
``NOT``      inverter
``AND/NAND`` n-input
``OR/NOR``   n-input
``XOR/XNOR`` n-input (parity / inverted parity)
``CONST0``   constant 0 driver
``CONST1``   constant 1 driver
``MUX2``     2:1 mux, fanin order ``(select, a, b)``; out = a when sel=0
``DFF``      D flip-flop, fanin ``(d,)``; clock is implicit
``SDFF``     scan D flip-flop, fanin ``(d, scan_in, scan_enable)``
===========  =========================================================

Evaluation is provided for all three algebras in :mod:`repro.circuit.values`
plus 64-way bit-parallel 2-valued evaluation (one Python int per signal,
``width`` patterns per word).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence, Tuple

from .values import ONE, X, ZERO, v_and, v_not, v_or, v_xor


class GateType(Enum):
    """Primitive gate kinds supported by the netlist."""

    INPUT = "input"
    OUTPUT = "output"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    CONST0 = "const0"
    CONST1 = "const1"
    MUX2 = "mux2"
    DFF = "dff"
    SDFF = "sdff"


#: Gate types that hold state between clock cycles.
SEQUENTIAL_TYPES = frozenset({GateType.DFF, GateType.SDFF})

#: Gate types that take no fanin.
SOURCE_TYPES = frozenset({GateType.INPUT, GateType.CONST0, GateType.CONST1})

#: Controlling input value per gate type (None when no single value controls).
CONTROLLING_VALUE = {
    GateType.AND: ZERO,
    GateType.NAND: ZERO,
    GateType.OR: ONE,
    GateType.NOR: ONE,
}

#: Output inversion parity per gate type (True when output inverts).
INVERTING = {
    GateType.NAND: True,
    GateType.NOR: True,
    GateType.NOT: True,
    GateType.XNOR: True,
}


def controlling_value(gate_type: GateType):
    """The input value that alone determines the output, or ``None``."""
    return CONTROLLING_VALUE.get(gate_type)


def controlled_value(gate_type: GateType):
    """The output produced when a controlling input is present, or ``None``."""
    control = CONTROLLING_VALUE.get(gate_type)
    if control is None:
        return None
    if INVERTING.get(gate_type, False):
        return 1 - control
    return control


def noncontrolling_value(gate_type: GateType):
    """The input value that does not by itself decide the output."""
    control = CONTROLLING_VALUE.get(gate_type)
    if control is None:
        return None
    return 1 - control


def is_inverting(gate_type: GateType) -> bool:
    """True when the gate's output inverts its defining function."""
    return INVERTING.get(gate_type, False)


def evaluate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a gate over 4-valued inputs, returning a 4-valued output.

    ``DFF``/``SDFF`` evaluate *combinationally transparent* here (returning
    their D input); sequential behaviour lives in the simulators, which treat
    flop outputs as state.
    """
    if gate_type == GateType.CONST0:
        return ZERO
    if gate_type == GateType.CONST1:
        return ONE
    if gate_type == GateType.INPUT:
        raise ValueError("INPUT gates are driven externally, not evaluated")
    if gate_type in (GateType.BUF, GateType.OUTPUT, GateType.DFF, GateType.SDFF):
        return inputs[0]
    if gate_type == GateType.NOT:
        return v_not(inputs[0])
    if gate_type == GateType.MUX2:
        select, when0, when1 = inputs
        if select == ZERO:
            return when0
        if select == ONE:
            return when1
        # Unknown select: output known only when both data inputs agree.
        if when0 == when1 and when0 in (ZERO, ONE):
            return when0
        return X
    if gate_type in (GateType.AND, GateType.NAND):
        acc = ONE
        for value in inputs:
            acc = v_and(acc, value)
        return v_not(acc) if gate_type == GateType.NAND else acc
    if gate_type in (GateType.OR, GateType.NOR):
        acc = ZERO
        for value in inputs:
            acc = v_or(acc, value)
        return v_not(acc) if gate_type == GateType.NOR else acc
    if gate_type in (GateType.XOR, GateType.XNOR):
        acc = ZERO
        for value in inputs:
            acc = v_xor(acc, value)
        return v_not(acc) if gate_type == GateType.XNOR else acc
    raise ValueError(f"unsupported gate type: {gate_type}")


def evaluate_parallel(gate_type: GateType, inputs: Sequence[int], mask: int) -> int:
    """Bit-parallel 2-valued evaluation.

    Each input is an integer whose bits carry one pattern each; ``mask``
    selects the valid bit positions (e.g. ``(1 << 64) - 1``).  Returns the
    output word, masked.
    """
    if gate_type == GateType.CONST0:
        return 0
    if gate_type == GateType.CONST1:
        return mask
    if gate_type == GateType.INPUT:
        raise ValueError("INPUT gates are driven externally, not evaluated")
    if gate_type in (GateType.BUF, GateType.OUTPUT, GateType.DFF, GateType.SDFF):
        return inputs[0] & mask
    if gate_type == GateType.NOT:
        return ~inputs[0] & mask
    if gate_type == GateType.MUX2:
        select, when0, when1 = inputs
        return ((~select & when0) | (select & when1)) & mask
    if gate_type in (GateType.AND, GateType.NAND):
        acc = mask
        for word in inputs:
            acc &= word
        return (~acc & mask) if gate_type == GateType.NAND else acc
    if gate_type in (GateType.OR, GateType.NOR):
        acc = 0
        for word in inputs:
            acc |= word
        return (~acc & mask) if gate_type == GateType.NOR else (acc & mask)
    if gate_type in (GateType.XOR, GateType.XNOR):
        acc = 0
        for word in inputs:
            acc ^= word
        return (~acc & mask) if gate_type == GateType.XNOR else (acc & mask)
    raise ValueError(f"unsupported gate type: {gate_type}")


def compile_parallel_evaluator(gate_type: GateType, arity: int):
    """A specialized closure equivalent to :func:`evaluate_parallel`.

    Returns ``fn(inputs, mask) -> word`` with the gate type's dispatch chain
    resolved once at compile time and 2-input forms unrolled — the hot inner
    call of wide-word fault simulation, where the generic evaluator's
    ``if``-ladder and loop dominate the per-event cost.

    Precondition: every input word is already masked (all simulation engines
    maintain that invariant), so only inverting outputs re-mask.
    """
    if gate_type == GateType.CONST0:
        return lambda inputs, mask: 0
    if gate_type == GateType.CONST1:
        return lambda inputs, mask: mask
    if gate_type in (GateType.BUF, GateType.OUTPUT, GateType.DFF, GateType.SDFF):
        return lambda inputs, mask: inputs[0]
    if gate_type == GateType.NOT:
        return lambda inputs, mask: ~inputs[0] & mask
    if gate_type == GateType.MUX2:
        def mux2(inputs, mask):
            select = inputs[0]
            return (~select & inputs[1]) | (select & inputs[2])

        return mux2
    if gate_type in (GateType.AND, GateType.NAND):
        if arity == 2 and gate_type == GateType.AND:
            return lambda inputs, mask: inputs[0] & inputs[1]
        if arity == 2:
            return lambda inputs, mask: ~(inputs[0] & inputs[1]) & mask

        def and_n(inputs, mask, invert=gate_type == GateType.NAND):
            acc = inputs[0]
            for word in inputs[1:]:
                acc &= word
            return (~acc & mask) if invert else acc

        return and_n
    if gate_type in (GateType.OR, GateType.NOR):
        if arity == 2 and gate_type == GateType.OR:
            return lambda inputs, mask: inputs[0] | inputs[1]
        if arity == 2:
            return lambda inputs, mask: ~(inputs[0] | inputs[1]) & mask

        def or_n(inputs, mask, invert=gate_type == GateType.NOR):
            acc = inputs[0]
            for word in inputs[1:]:
                acc |= word
            return (~acc & mask) if invert else acc

        return or_n
    if gate_type in (GateType.XOR, GateType.XNOR):
        if arity == 2 and gate_type == GateType.XOR:
            return lambda inputs, mask: inputs[0] ^ inputs[1]
        if arity == 2:
            return lambda inputs, mask: ~(inputs[0] ^ inputs[1]) & mask

        def xor_n(inputs, mask, invert=gate_type == GateType.XNOR):
            acc = inputs[0]
            for word in inputs[1:]:
                acc ^= word
            return (~acc & mask) if invert else acc

        return xor_n
    if gate_type == GateType.INPUT:
        raise ValueError("INPUT gates are driven externally, not evaluated")
    raise ValueError(f"unsupported gate type: {gate_type}")


def evaluate_d(gate_type: GateType, inputs: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
    """D-calculus evaluation: evaluate the good and faulty rails separately."""
    good = evaluate(gate_type, [value[0] for value in inputs])
    faulty = evaluate(gate_type, [value[1] for value in inputs])
    return (good, faulty)


def fanin_count_valid(gate_type: GateType, count: int) -> bool:
    """Check the arity constraints of a gate type."""
    if gate_type in SOURCE_TYPES:
        return count == 0
    if gate_type in (GateType.BUF, GateType.NOT, GateType.OUTPUT, GateType.DFF):
        return count == 1
    if gate_type == GateType.MUX2:
        return count == 3
    if gate_type == GateType.SDFF:
        return count == 3
    return count >= 1
