"""Netlist clean-up: constant propagation, buffer collapse, dead-logic sweep.

Generated and instrumented netlists accumulate debris — constant nets from
tied-off inputs, buffer chains from wrapping, logic left unobservable by
rewiring.  Untestable-fault counts then overstate the real redundancy.
:func:`simplify` performs the classic safe transforms:

1. **constant propagation** — a gate with enough constant inputs becomes a
   constant; controlled inputs drop (e.g. ``AND(x, 1) -> BUF(x)``);
2. **buffer collapse** — ``BUF`` gates forward their driver;
3. **dead-logic sweep** — gates reaching no output or flop are removed.

The result is functionally identical on every primary output (verified by
the tests pattern-for-pattern) with a strictly smaller redundant-fault
population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .gates import GateType
from .netlist import Netlist

_CONST = {GateType.CONST0: 0, GateType.CONST1: 1}


@dataclass
class SimplifyReport:
    """What the clean-up removed."""

    gates_before: int
    gates_after: int
    constants_propagated: int
    buffers_collapsed: int
    dead_gates_removed: int

    @property
    def removed(self) -> int:
        return self.gates_before - self.gates_after


def _propagate_gate(
    gate_type: GateType, drivers: List[int], consts: Dict[int, int]
) -> Tuple[Optional[int], Optional[int], Optional[List[int]], Optional[GateType]]:
    """Resolve one gate against known constants.

    Returns ``(constant, forward, reduced_fanin, new_type)``: a constant
    value, a driver index to forward to (wire), or a reduced fanin list —
    with ``new_type`` set when dropping constants changes the function
    (XOR absorbing an odd number of 1s becomes XNOR, and vice versa).
    """
    known = [(d, consts[d]) for d in drivers if d in consts]
    unknown = [d for d in drivers if d not in consts]

    if gate_type in (GateType.BUF, GateType.OUTPUT):
        if drivers[0] in consts:
            return consts[drivers[0]], None, None, None
        return None, drivers[0], None, None
    if gate_type == GateType.NOT:
        if drivers[0] in consts:
            return 1 - consts[drivers[0]], None, None, None
        return None, None, None, None
    if gate_type in (GateType.AND, GateType.NAND):
        inverted = gate_type == GateType.NAND
        if any(value == 0 for _, value in known):
            return (1 if inverted else 0), None, None, None
        if not unknown:
            return (0 if inverted else 1), None, None, None
        if len(unknown) == 1 and not inverted:
            return None, unknown[0], None, None
        if len(unknown) < len(drivers):
            # Dropped constants are all non-controlling 1s: type unchanged.
            return None, None, unknown, None
        return None, None, None, None
    if gate_type in (GateType.OR, GateType.NOR):
        inverted = gate_type == GateType.NOR
        if any(value == 1 for _, value in known):
            return (0 if inverted else 1), None, None, None
        if not unknown:
            return (1 if inverted else 0), None, None, None
        if len(unknown) == 1 and not inverted:
            return None, unknown[0], None, None
        if len(unknown) < len(drivers):
            return None, None, unknown, None
        return None, None, None, None
    if gate_type in (GateType.XOR, GateType.XNOR):
        # Effective parity the dropped constants contribute (XNOR's output
        # inversion folded in as one extra flip).
        flips = sum(value for _, value in known) % 2
        if gate_type == GateType.XNOR:
            flips ^= 1
        if not unknown:
            return flips, None, None, None
        if len(unknown) == 1:
            if flips == 0:
                return None, unknown[0], None, None
            return None, None, unknown, GateType.XNOR  # XNOR(x) == NOT(x)
        if len(unknown) < len(drivers):
            new_type = GateType.XNOR if flips else GateType.XOR
            return None, None, unknown, new_type
        return None, None, None, None
    if gate_type == GateType.MUX2:
        select, when0, when1 = drivers
        if select in consts:
            return None, (when0 if consts[select] == 0 else when1), None, None
        if when0 in consts and when1 in consts and consts[when0] == consts[when1]:
            return consts[when0], None, None, None
        return None, None, None, None
    return None, None, None, None


def simplify(netlist: Netlist, name: Optional[str] = None) -> Tuple[Netlist, SimplifyReport]:
    """Return a cleaned functional twin of ``netlist`` plus a report.

    Primary inputs, outputs, and flops are always preserved (flops keep
    their D connectivity even when constant — state behaviour must not
    change across reset sequences this pass cannot see).
    """
    netlist.finalize()
    gates = netlist.gates

    # Pass 1: forward constants and wire-forwards, in topo order.
    consts: Dict[int, int] = {}
    forward: Dict[int, int] = {}
    reduced: Dict[int, List[int]] = {}
    retyped: Dict[int, GateType] = {}
    constants_propagated = 0
    buffers_collapsed = 0

    def resolve(index: int) -> int:
        while index in forward:
            index = forward[index]
        return index

    for index in netlist.topo_order:
        gate = gates[index]
        if gate.type in _CONST:
            consts[index] = _CONST[gate.type]
            continue
        if gate.type == GateType.INPUT or gate.is_sequential:
            continue
        drivers = [resolve(d) for d in gate.fanin]
        constant, wire, smaller, new_type = _propagate_gate(
            gate.type, drivers, consts
        )
        if gate.type == GateType.OUTPUT:
            continue  # markers stay; their driver resolution happens later
        if constant is not None:
            consts[index] = constant
            constants_propagated += 1
        elif wire is not None:
            forward[index] = wire
            if gate.type == GateType.BUF:
                buffers_collapsed += 1
            else:
                constants_propagated += 1
        elif smaller is not None:
            reduced[index] = smaller
            if new_type is not None:
                retyped[index] = new_type

    # Pass 2: rebuild, keeping only live logic.
    rebuilt = Netlist(name or f"{netlist.name}_simplified")
    const_gates: Dict[int, int] = {}

    def const_gate(value: int) -> int:
        if value not in const_gates:
            const_gates[value] = rebuilt.add(
                GateType.CONST1 if value else GateType.CONST0,
                f"__const{value}",
            )
        return const_gates[value]

    # Liveness: walk back from outputs and flop D pins.
    live: Set[int] = set()
    stack = [resolve(gates[po].fanin[0]) for po in netlist.outputs]
    stack += [resolve(gates[ff].fanin[0]) for ff in netlist.flops]
    stack += list(netlist.flops)
    while stack:
        index = stack.pop()
        index = resolve(index)
        if index in live or index in consts:
            continue
        live.add(index)
        gate = gates[index]
        drivers = reduced.get(index, [resolve(d) for d in gate.fanin])
        if gate.is_sequential:
            drivers = [resolve(gate.fanin[0])]
        stack.extend(drivers)

    mapping: Dict[int, int] = {}
    # Inputs always survive (interface stability).
    for pi in netlist.inputs:
        mapping[pi] = rebuilt.add(GateType.INPUT, gates[pi].name)

    def mapped(index: int) -> int:
        index = resolve(index)
        if index in consts:
            return const_gate(consts[index])
        return mapping[index]

    # Flops first (they may reference later gates; patched afterwards).
    for flop in netlist.flops:
        mapping[flop] = rebuilt.add(GateType.DFF, gates[flop].name, [0])

    for index in netlist.topo_order:
        gate = gates[index]
        if (
            index not in live
            or gate.type == GateType.INPUT
            or gate.is_sequential
            or index in consts
            or index in forward
        ):
            continue
        drivers = reduced.get(index, [resolve(d) for d in gate.fanin])
        gate_type = retyped.get(index, gate.type)
        mapping[index] = rebuilt.add(
            gate_type, gate.name, [mapped(d) for d in drivers]
        )

    for flop in netlist.flops:
        rebuilt.gates[mapping[flop]].fanin[0] = mapped(gates[flop].fanin[0])

    for po in netlist.outputs:
        rebuilt.add(GateType.OUTPUT, gates[po].name, [mapped(gates[po].fanin[0])])

    rebuilt._topo = None
    rebuilt.finalize()
    dead = sum(
        1
        for gate in gates
        if gate.type
        not in (GateType.INPUT, GateType.OUTPUT, GateType.CONST0, GateType.CONST1)
        and not gate.is_sequential
        and gate.index not in live
        and gate.index not in consts
        and gate.index not in forward
    )
    report = SimplifyReport(
        gates_before=netlist.num_gates,
        gates_after=rebuilt.num_gates,
        constants_propagated=constants_propagated,
        buffers_collapsed=buffers_collapsed,
        dead_gates_removed=dead,
    )
    return rebuilt, report
