"""Reader/writer for the ISCAS ``.bench`` netlist format.

The ``.bench`` dialect accepted here is the common one used by the ISCAS-85
and ISCAS-89 benchmark distributions::

    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G3)
    G5  = DFF(G10)

Gate keywords (case-insensitive): ``AND OR NAND NOR XOR XNOR NOT BUF BUFF
DFF MUX`` plus ``CONST0``/``CONST1`` extensions.  An ``OUTPUT(x)`` line
creates an ``OUTPUT`` port gate named ``x_po`` driven by net ``x`` so the
original net name stays addressable.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .gates import GateType
from .netlist import Netlist, NetlistError

_GATE_KEYWORDS = {
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "DFF": GateType.DFF,
    "MUX": GateType.MUX2,
    "MUX2": GateType.MUX2,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

_TYPE_KEYWORDS = {
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.DFF: "DFF",
    GateType.MUX2: "MUX",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}

_ASSIGN_RE = re.compile(r"^\s*([\w.\[\]$]+)\s*=\s*(\w+)\s*\(([^)]*)\)\s*$")
_PORT_RE = re.compile(r"^\s*(INPUT|OUTPUT)\s*\(\s*([\w.\[\]$]+)\s*\)\s*$", re.IGNORECASE)


class BenchFormatError(NetlistError):
    """Raised when a ``.bench`` source cannot be parsed."""


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a :class:`Netlist`.

    Definitions may appear in any order; a two-pass scheme resolves forward
    references.  Scan flops (``SDFF``) are not part of the classic format —
    scan insertion produces them later.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    assigns: List[Tuple[str, GateType, List[str], int]] = []

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        port = _PORT_RE.match(line)
        if port:
            kind, net = port.group(1).upper(), port.group(2)
            (inputs if kind == "INPUT" else outputs).append(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if assign:
            target, keyword, arg_text = assign.groups()
            gate_type = _GATE_KEYWORDS.get(keyword.upper())
            if gate_type is None:
                raise BenchFormatError(
                    f"line {line_number}: unknown gate keyword {keyword!r}"
                )
            args = [a.strip() for a in arg_text.split(",") if a.strip()]
            assigns.append((target, gate_type, args, line_number))
            continue
        raise BenchFormatError(f"line {line_number}: cannot parse {raw.strip()!r}")

    netlist = Netlist(name)
    # Pre-assign indices so definitions may appear in any order (ISCAS-89
    # files routinely declare DFFs before the logic that feeds them).
    index_of: Dict[str, int] = {}
    for position, net in enumerate(inputs):
        index_of[net] = position
    for offset, (target, _, __, line_number) in enumerate(assigns):
        if target in index_of:
            raise BenchFormatError(f"line {line_number}: net {target!r} redefined")
        index_of[target] = len(inputs) + offset

    for net in inputs:
        netlist.add(GateType.INPUT, net)
    for target, gate_type, args, line_number in assigns:
        missing = [arg for arg in args if arg not in index_of]
        if missing:
            raise BenchFormatError(
                f"line {line_number}: undefined net(s) {missing}"
            )
        netlist.add(gate_type, target, [index_of[arg] for arg in args])

    for net in outputs:
        if net not in index_of:
            raise BenchFormatError(f"OUTPUT({net}) references undefined net")
        netlist.add(GateType.OUTPUT, f"{net}_po", [index_of[net]])
    netlist.finalize()
    return netlist


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist back to ``.bench`` text.

    ``SDFF`` gates are written as plain ``DFF`` of their functional D pin
    (the classic format has no scan construct); ``OUTPUT`` gates emit an
    ``OUTPUT(driver)`` line.
    """
    lines: List[str] = [f"# {netlist.name}"]
    for index in netlist.inputs:
        lines.append(f"INPUT({netlist.gates[index].name})")
    for index in netlist.outputs:
        driver = netlist.gates[index].fanin[0]
        lines.append(f"OUTPUT({netlist.gates[driver].name})")
    for gate in netlist.gates:
        if gate.type in (GateType.INPUT, GateType.OUTPUT):
            continue
        if gate.type == GateType.SDFF:
            driver = netlist.gates[gate.fanin[0]].name
            lines.append(f"{gate.name} = DFF({driver})")
            continue
        keyword = _TYPE_KEYWORDS[gate.type]
        args = ", ".join(netlist.gates[i].name for i in gate.fanin)
        lines.append(f"{gate.name} = {keyword}({args})")
    return "\n".join(lines) + "\n"


def load_bench(path: str) -> Netlist:
    """Read and parse a ``.bench`` file from disk."""
    with open(path) as handle:
        return parse_bench(handle.read(), name=path.rsplit("/", 1)[-1])


def save_bench(netlist: Netlist, path: str) -> None:
    """Serialize ``netlist`` and write it to ``path``."""
    with open(path, "w") as handle:
        handle.write(write_bench(netlist))
