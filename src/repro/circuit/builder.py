"""Convenience builder for constructing netlists by name.

:class:`NetlistBuilder` wraps :class:`~repro.circuit.netlist.Netlist` with
auto-named gates and small structural helpers so generator code reads like a
hardware description:

>>> b = NetlistBuilder("half_adder")
>>> a, c = b.input("a"), b.input("b")
>>> b.output("sum", b.xor(a, c))
>>> b.output("carry", b.and_(a, c))
>>> netlist = b.build()
>>> netlist.stats()["gates"]
2

All helper methods return gate indices, which are also valid netlist signal
handles everywhere else in the toolkit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .gates import GateType
from .netlist import Netlist


class NetlistBuilder:
    """Incrementally build a :class:`Netlist` with auto-generated names."""

    def __init__(self, name: str = "top"):
        self.netlist = Netlist(name)
        self._counters: Dict[str, int] = {}

    def _auto_name(self, prefix: str) -> str:
        count = self._counters.get(prefix, 0)
        self._counters[prefix] = count + 1
        name = f"{prefix}{count}"
        while name in self.netlist:
            count += 1
            self._counters[prefix] = count + 1
            name = f"{prefix}{count}"
        return name

    def _gate(self, gate_type: GateType, fanin: Sequence[int], name: Optional[str]) -> int:
        if name is None:
            name = self._auto_name(f"{gate_type.value}_")
        return self.netlist.add(gate_type, name, fanin)

    # ------------------------------------------------------------------
    # Ports and state
    # ------------------------------------------------------------------

    def input(self, name: Optional[str] = None) -> int:
        return self._gate(GateType.INPUT, (), name or self._auto_name("in_"))

    def output(self, name: str, signal: int) -> int:
        return self._gate(GateType.OUTPUT, (signal,), name)

    def input_bus(self, name: str, width: int) -> List[int]:
        """Create ``width`` inputs named ``name[0] .. name[width-1]`` (LSB first)."""
        return [self.input(f"{name}[{bit}]") for bit in range(width)]

    def output_bus(self, name: str, signals: Sequence[int]) -> List[int]:
        """Expose a bus of signals as outputs, LSB first."""
        return [self.output(f"{name}[{bit}]", sig) for bit, sig in enumerate(signals)]

    def dff(self, data: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.DFF, (data,), name)

    def sdff(self, data: int, scan_in: int, scan_enable: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.SDFF, (data, scan_in, scan_enable), name)

    # ------------------------------------------------------------------
    # Combinational primitives
    # ------------------------------------------------------------------

    def const0(self, name: Optional[str] = None) -> int:
        return self._gate(GateType.CONST0, (), name)

    def const1(self, name: Optional[str] = None) -> int:
        return self._gate(GateType.CONST1, (), name)

    def buf(self, signal: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.BUF, (signal,), name)

    def not_(self, signal: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.NOT, (signal,), name)

    def and_(self, *signals: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.AND, signals, name)

    def nand(self, *signals: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.NAND, signals, name)

    def or_(self, *signals: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.OR, signals, name)

    def nor(self, *signals: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.NOR, signals, name)

    def xor(self, *signals: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.XOR, signals, name)

    def xnor(self, *signals: int, name: Optional[str] = None) -> int:
        return self._gate(GateType.XNOR, signals, name)

    def mux(self, select: int, when0: int, when1: int, name: Optional[str] = None) -> int:
        """2:1 mux: output follows ``when0`` if ``select`` is 0, else ``when1``."""
        return self._gate(GateType.MUX2, (select, when0, when1), name)

    # ------------------------------------------------------------------
    # Word-level helpers (LSB-first buses)
    # ------------------------------------------------------------------

    def mux_bus(self, select: int, when0: Sequence[int], when1: Sequence[int]) -> List[int]:
        if len(when0) != len(when1):
            raise ValueError("mux_bus requires equal-width buses")
        return [self.mux(select, a, b) for a, b in zip(when0, when1)]

    def half_adder(self, a: int, b: int) -> Tuple[int, int]:
        """Return ``(sum, carry)``."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: int, b: int, carry_in: int) -> Tuple[int, int]:
        """Return ``(sum, carry_out)`` of a full adder."""
        partial = self.xor(a, b)
        total = self.xor(partial, carry_in)
        carry = self.or_(self.and_(a, b), self.and_(partial, carry_in))
        return total, carry

    def ripple_adder(
        self, a: Sequence[int], b: Sequence[int], carry_in: Optional[int] = None
    ) -> Tuple[List[int], int]:
        """Ripple-carry add two equal-width buses; return ``(sum_bus, carry_out)``."""
        if len(a) != len(b):
            raise ValueError("ripple_adder requires equal-width buses")
        carry = carry_in if carry_in is not None else self.const0()
        total: List[int] = []
        for bit_a, bit_b in zip(a, b):
            s, carry = self.full_adder(bit_a, bit_b, carry)
            total.append(s)
        return total, carry

    def array_multiplier(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """Unsigned array multiplier; returns a ``len(a)+len(b)`` wide product."""
        width_out = len(a) + len(b)
        columns: List[List[int]] = [[] for _ in range(width_out)]
        for i, bit_a in enumerate(a):
            for j, bit_b in enumerate(b):
                columns[i + j].append(self.and_(bit_a, bit_b))
        product: List[int] = []
        carries: List[int] = []
        for col in range(width_out):
            terms = columns[col] + carries
            carries = []
            while len(terms) > 1:
                if len(terms) >= 3:
                    s, c = self.full_adder(terms[0], terms[1], terms[2])
                    terms = terms[3:] + [s]
                else:
                    s, c = self.half_adder(terms[0], terms[1])
                    terms = terms[2:] + [s]
                carries.append(c)
            product.append(terms[0] if terms else self.const0())
        return product[:width_out]

    def and_tree(self, signals: Sequence[int]) -> int:
        """Balanced tree of 2-input ANDs (how synthesis maps wide ANDs)."""
        level = list(signals)
        if not level:
            raise ValueError("and_tree needs at least one signal")
        while len(level) > 1:
            nxt: List[int] = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.and_(level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def equals_const(self, bus: Sequence[int], value: int) -> int:
        """Comparator: 1 when ``bus`` equals the constant ``value``.

        Built as a balanced 2-input AND tree so the cone has internal
        nodes — matching synthesized netlists and giving test-point
        insertion somewhere to cut random-resistance.
        """
        bits = []
        for position, signal in enumerate(bus):
            if (value >> position) & 1:
                bits.append(signal)
            else:
                bits.append(self.not_(signal))
        if len(bits) == 1:
            return self.buf(bits[0])
        return self.and_tree(bits)

    # ------------------------------------------------------------------

    def build(self) -> Netlist:
        """Finalize and return the netlist."""
        self.netlist.finalize()
        return self.netlist
