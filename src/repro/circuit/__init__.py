"""Gate-level circuit substrate: values, gates, netlists, generators, I/O."""

from .builder import NetlistBuilder
from .bench import load_bench, parse_bench, save_bench, write_bench
from .gates import GateType
from .verilog import load_verilog, parse_verilog, save_verilog, write_verilog
from .netlist import Gate, Netlist, NetlistError
from .simplify import SimplifyReport, simplify
from .values import ONE, X, Z, ZERO

__all__ = [
    "NetlistBuilder",
    "GateType",
    "Gate",
    "Netlist",
    "NetlistError",
    "parse_bench",
    "write_bench",
    "load_bench",
    "save_bench",
    "parse_verilog",
    "write_verilog",
    "load_verilog",
    "save_verilog",
    "simplify",
    "SimplifyReport",
    "ZERO",
    "ONE",
    "X",
    "Z",
]
