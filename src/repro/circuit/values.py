"""Logic-value algebras used across the toolkit.

Three algebras appear in classic test literature and all are provided here:

* **2-valued** (``0``/``1``) — used by bit-parallel good-machine and fault
  simulation after X-filling.
* **4-valued** (``0``/``1``/``X``/``Z``) — used by event-driven simulation of
  circuits whose inputs may be unassigned (``X``) or undriven (``Z``).
* **5-valued D-calculus** (``0``/``1``/``X``/``D``/``D'``) — used by the ATPG
  engines.  A D-value is a *pair* of the good-machine value and the
  faulty-machine value; ``D`` means good=1/faulty=0 and ``D'`` the reverse.

Values are plain small integers so they can index truth tables quickly; the
module is deliberately free of classes on the hot path.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

# ---------------------------------------------------------------------------
# 4-valued logic constants
# ---------------------------------------------------------------------------

ZERO = 0
ONE = 1
X = 2
Z = 3

_FOUR_VALUED_CHARS = "01XZ"

#: All 4-valued constants, in index order.
FOUR_VALUES: Tuple[int, int, int, int] = (ZERO, ONE, X, Z)


def value_to_char(value: int) -> str:
    """Render a 4-valued logic constant as its conventional character."""
    return _FOUR_VALUED_CHARS[value]


def char_to_value(char: str) -> int:
    """Parse ``0``, ``1``, ``X``/``x``, ``Z``/``z`` into a logic constant."""
    upper = char.upper()
    index = _FOUR_VALUED_CHARS.find(upper)
    if index < 0:
        raise ValueError(f"not a logic value character: {char!r}")
    return index


def values_to_string(values: Iterable[int]) -> str:
    """Render a vector of 4-valued constants, e.g. ``[1, 0, 2] -> '10X'``."""
    return "".join(value_to_char(v) for v in values)


def string_to_values(text: str) -> List[int]:
    """Parse a string such as ``'10XZ'`` into logic constants."""
    return [char_to_value(c) for c in text]


# ---------------------------------------------------------------------------
# 4-valued operators
#
# Z behaves as X for logic gates: an undriven input is an unknown one.  The
# tables are 4x4 tuples indexed by the constants above.
# ---------------------------------------------------------------------------


def _norm(value: int) -> int:
    """Collapse Z to X for gate evaluation."""
    return X if value == Z else value


def v_not(value: int) -> int:
    """4-valued NOT."""
    value = _norm(value)
    if value == X:
        return X
    return 1 - value


def v_and(left: int, right: int) -> int:
    """4-valued AND: 0 is controlling, X otherwise unless both 1."""
    left, right = _norm(left), _norm(right)
    if left == ZERO or right == ZERO:
        return ZERO
    if left == ONE and right == ONE:
        return ONE
    return X


def v_or(left: int, right: int) -> int:
    """4-valued OR: 1 is controlling, X otherwise unless both 0."""
    left, right = _norm(left), _norm(right)
    if left == ONE or right == ONE:
        return ONE
    if left == ZERO and right == ZERO:
        return ZERO
    return X


def v_xor(left: int, right: int) -> int:
    """4-valued XOR: X if either side is unknown."""
    left, right = _norm(left), _norm(right)
    if left == X or right == X:
        return X
    return left ^ right


# ---------------------------------------------------------------------------
# 5-valued D-calculus
#
# Encoded as (good, faulty) pairs of *2-valued-or-X* values.  The canonical
# five values get dedicated constants for readability in the ATPG code.
# ---------------------------------------------------------------------------

#: D-calculus constants: (good value, faulty value).
D_ZERO = (ZERO, ZERO)
D_ONE = (ONE, ONE)
D_X = (X, X)
D = (ONE, ZERO)
D_BAR = (ZERO, ONE)

_D_NAMES = {D_ZERO: "0", D_ONE: "1", D_X: "X", D: "D", D_BAR: "D'"}


def d_name(value: Tuple[int, int]) -> str:
    """Human-readable name of a D-calculus value."""
    return _D_NAMES.get(value, f"({value_to_char(value[0])},{value_to_char(value[1])})")


def d_not(value: Tuple[int, int]) -> Tuple[int, int]:
    """D-calculus NOT, applied rail-wise."""
    return (v_not(value[0]), v_not(value[1]))


def d_and(left: Tuple[int, int], right: Tuple[int, int]) -> Tuple[int, int]:
    """D-calculus AND, applied rail-wise."""
    return (v_and(left[0], right[0]), v_and(left[1], right[1]))


def d_or(left: Tuple[int, int], right: Tuple[int, int]) -> Tuple[int, int]:
    """D-calculus OR, applied rail-wise."""
    return (v_or(left[0], right[0]), v_or(left[1], right[1]))


def d_xor(left: Tuple[int, int], right: Tuple[int, int]) -> Tuple[int, int]:
    """D-calculus XOR, applied rail-wise."""
    return (v_xor(left[0], right[0]), v_xor(left[1], right[1]))


def is_faulted(value: Tuple[int, int]) -> bool:
    """True when the good and faulty rails hold opposite known values."""
    return value in (D, D_BAR)


def has_unknown(value: Tuple[int, int]) -> bool:
    """True when either rail is unknown."""
    return value[0] == X or value[1] == X
