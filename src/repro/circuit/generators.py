"""Parametric netlist generators.

These produce the gate-level workloads the experiments run on: datapath
blocks (adders, multipliers, MACs), the systolic processing element used by
the AI-core case studies, random synthetic logic, and deliberately
random-pattern-resistant structures for the LBIST/test-point experiments.

All generators return finalized :class:`~repro.circuit.netlist.Netlist`
objects; buses are LSB-first.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .builder import NetlistBuilder
from .gates import GateType
from .netlist import Netlist


def adder(width: int, name: Optional[str] = None) -> Netlist:
    """Ripple-carry adder: ``sum = a + b`` with carry out."""
    builder = NetlistBuilder(name or f"add{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_adder(a, b)
    builder.output_bus("sum", total)
    builder.output("cout", carry)
    return builder.build()


def multiplier(width: int, name: Optional[str] = None) -> Netlist:
    """Unsigned array multiplier: ``p = a * b`` (2*width product)."""
    builder = NetlistBuilder(name or f"mul{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    product = builder.array_multiplier(a, b)
    builder.output_bus("p", product)
    return builder.build()


def mac_unit(width: int, acc_width: Optional[int] = None, name: Optional[str] = None) -> Netlist:
    """Multiply-accumulate unit: ``acc' = acc + a * b`` (sequential).

    The accumulator is a register bank of DFFs; this is the canonical AI-chip
    datapath cell the tutorial's case studies revolve around.
    """
    if acc_width is None:
        acc_width = 2 * width + 4
    builder = NetlistBuilder(name or f"mac{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    product = builder.array_multiplier(a, b)
    zero = builder.const0()
    product = (product + [zero] * acc_width)[:acc_width]

    # Registers are declared after their next-state logic; build feedback by
    # creating placeholder buffers is unnecessary because Netlist.add demands
    # defined fanins — instead declare flops last, reading adder outputs that
    # reference the *previous* flop values through the builder's two-phase
    # trick: create flop output proxies as inputs is wrong for DFT, so we
    # build the adder on flop gates created with a forward-less scheme:
    # first create flops fed by a temporary const, then rewire.  The netlist
    # API is append-only, so we use the standard trick: compute next-state
    # from flop *outputs*, which requires flops to exist first.  Flops need a
    # fanin at creation; we bootstrap with const0 and patch the D pin below.
    acc_flops = [builder.dff(zero, name=f"acc{i}") for i in range(acc_width)]
    total, _ = builder.ripple_adder(acc_flops, product)
    for flop_index, next_state in zip(acc_flops, total):
        builder.netlist.gates[flop_index].fanin[0] = next_state
    builder.output_bus("acc_out", acc_flops)
    netlist = builder.netlist
    netlist._topo = None  # invalidate: fanins were patched in place
    netlist.finalize()
    return netlist


def systolic_pe(width: int = 4, name: Optional[str] = None) -> Netlist:
    """Weight-stationary systolic processing element.

    Ports::

        a_in[width]      activation entering from the west
        w_in[width]      weight value (loaded when load_w=1)
        psum_in[2w+4]    partial sum entering from the north
        load_w           weight-load enable
        a_out[width]     registered activation forwarded east
        psum_out[2w+4]   registered psum_in + w * a_in forwarded south

    This is the gate-level PE replicated across the accelerator's systolic
    array; the hierarchical-DFT experiments wrap and broadcast-test it.
    """
    psum_width = 2 * width + 4
    builder = NetlistBuilder(name or f"pe{width}")
    a_in = builder.input_bus("a_in", width)
    w_in = builder.input_bus("w_in", width)
    psum_in = builder.input_bus("psum_in", psum_width)
    load_w = builder.input("load_w")
    zero = builder.const0()

    # Weight register with load enable (w' = load_w ? w_in : w).
    weight = [builder.dff(zero, name=f"w{i}") for i in range(width)]
    for index, (flop, new_bit) in enumerate(zip(weight, w_in)):
        hold = builder.mux(load_w, weight[index], new_bit)
        builder.netlist.gates[flop].fanin[0] = hold

    product = builder.array_multiplier(a_in, weight)
    product = (product + [zero] * psum_width)[:psum_width]
    total, _ = builder.ripple_adder(psum_in, product)

    a_reg = [builder.dff(bit, name=f"a_reg{i}") for i, bit in enumerate(a_in)]
    psum_reg = [builder.dff(bit, name=f"ps_reg{i}") for i, bit in enumerate(total)]
    builder.output_bus("a_out", a_reg)
    builder.output_bus("psum_out", psum_reg)
    netlist = builder.netlist
    netlist._topo = None
    netlist.finalize()
    return netlist


def alu(width: int, name: Optional[str] = None) -> Netlist:
    """Small ALU: op ``00``=ADD ``01``=AND ``10``=OR ``11``=XOR."""
    builder = NetlistBuilder(name or f"alu{width}")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    op0 = builder.input("op0")
    op1 = builder.input("op1")
    add_bus, carry = builder.ripple_adder(a, b)
    and_bus = [builder.and_(x, y) for x, y in zip(a, b)]
    or_bus = [builder.or_(x, y) for x, y in zip(a, b)]
    xor_bus = [builder.xor(x, y) for x, y in zip(a, b)]
    low = builder.mux_bus(op0, add_bus, and_bus)
    high = builder.mux_bus(op0, or_bus, xor_bus)
    result = builder.mux_bus(op1, low, high)
    builder.output_bus("y", result)
    builder.output("cout", carry)
    return builder.build()


def parity_tree(width: int, name: Optional[str] = None) -> Netlist:
    """Balanced XOR tree computing the parity of ``width`` inputs."""
    builder = NetlistBuilder(name or f"par{width}")
    level = builder.input_bus("d", width)
    while len(level) > 1:
        nxt: List[int] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(builder.xor(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    builder.output("parity", level[0])
    return builder.build()


def wide_comparator(width: int, constant: Optional[int] = None, name: Optional[str] = None) -> Netlist:
    """Equality comparator against a constant — a random-resistant circuit.

    Detecting a stuck-at-0 on the wide AND output requires the single input
    combination equal to ``constant`` (probability ``2**-width`` per random
    pattern), making this the classic motivation for LBIST test points.
    """
    rng = random.Random(width)
    if constant is None:
        constant = rng.getrandbits(width)
    builder = NetlistBuilder(name or f"cmp{width}")
    bus = builder.input_bus("a", width)
    hit = builder.equals_const(bus, constant)
    builder.output("eq", hit)
    return builder.build()


def random_resistant(width: int = 12, cones: int = 4, name: Optional[str] = None) -> Netlist:
    """Mostly easy random logic plus a few wide-AND detection cones.

    This is the realistic LBIST situation: the bulk of the circuit reaches
    high pseudo-random coverage quickly, while a handful of wide comparator
    cones (address decoders, tag matches) saturate the curve below target —
    exactly where test-point insertion earns its keep (E6).
    """
    rng = random.Random(width * 1000 + cones)
    builder = NetlistBuilder(name or f"rres{width}x{cones}")
    bus = builder.input_bus("a", width)

    # Easy bulk: a few layers of random 2-input logic over the inputs, with
    # every dangling signal observable (constant-valued draws rejected).
    from .gates import evaluate_parallel

    word_mask = (1 << 64) - 1
    words = {s: rng.getrandbits(64) for s in bus}
    signals = list(bus)
    consumed = set()
    for _ in range(width * 6):
        for _attempt in range(8):
            gate_type = rng.choice(
                (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR)
            )
            fanin = rng.sample(signals[-16:], 2)
            word = evaluate_parallel(gate_type, [words[f] for f in fanin], word_mask)
            if 2 <= bin(word).count("1") <= 62:
                break
        new = builder._gate(gate_type, fanin, None)
        words[new] = word
        consumed.update(fanin)
        signals.append(new)
    dangling = [s for s in signals[width:] if s not in consumed]
    for position, signal in enumerate(dangling):
        builder.output(f"easy{position}", signal)

    # Resistant cones: detecting faults inside needs one exact input match.
    hits = []
    for cone in range(cones):
        constant = rng.getrandbits(width)
        hits.append(builder.equals_const(bus, constant))
    acc = hits[0]
    for other in hits[1:]:
        acc = builder.xor(acc, other)
    builder.output("hit", acc)
    return builder.build()


_RANDOM_GATE_TYPES = (
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
    GateType.NOT,
)


def random_circuit(
    n_inputs: int,
    n_gates: int,
    n_outputs: Optional[int] = None,
    seed: int = 0,
    max_fanin: int = 3,
    locality: int = 24,
) -> Netlist:
    """Random levelized combinational logic.

    Gates draw fanins preferentially from recently created signals
    (``locality`` controls the window), which produces ISCAS-like depth
    rather than a flat two-level soup.  Dangling signals are collected into
    the outputs so every gate is observable.
    """
    from .gates import evaluate_parallel

    rng = random.Random(seed)
    builder = NetlistBuilder(f"rand{n_inputs}x{n_gates}s{seed}")
    signals = [builder.input(f"pi{i}") for i in range(n_inputs)]
    # Track each signal's response to 64 random patterns; gates that come
    # out (nearly) constant are rejected and re-drawn, which keeps the
    # redundant-fault population realistic instead of XOR-reconvergence soup.
    word_mask = (1 << 64) - 1
    words = {s: rng.getrandbits(64) for s in signals}
    weights = [4 if t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR) else 1
               for t in _RANDOM_GATE_TYPES]
    consumed = set()
    for _ in range(n_gates):
        for _attempt in range(8):
            gate_type = rng.choices(_RANDOM_GATE_TYPES, weights=weights)[0]
            arity = 1 if gate_type == GateType.NOT else rng.randint(2, max_fanin)
            window = signals[-locality:]
            fanin = rng.sample(window, min(arity, len(window)))
            word = evaluate_parallel(gate_type, [words[f] for f in fanin], word_mask)
            ones = bin(word).count("1")
            if 2 <= ones <= 62:
                break
        new = builder._gate(gate_type, fanin, None)
        words[new] = word
        consumed.update(fanin)
        signals.append(new)
    dangling = [s for s in signals if s not in consumed]
    if n_outputs is None:
        chosen = dangling
    elif len(dangling) >= n_outputs:
        chosen = dangling[-n_outputs:]
    else:
        extra = [s for s in reversed(signals) if s not in dangling]
        chosen = dangling + extra[: n_outputs - len(dangling)]
    for position, signal in enumerate(chosen):
        builder.output(f"po{position}", signal)
    return builder.build()


def random_sequential(
    n_inputs: int,
    n_gates: int,
    n_flops: int,
    seed: int = 0,
) -> Netlist:
    """Random logic wrapped with a register ring — a scan-insertion workload.

    Flop next-state functions tap random combinational signals; flop outputs
    feed back into the logic (the classic structure scan must break).
    """
    from .gates import evaluate_parallel

    rng = random.Random(seed ^ 0x5EED)
    builder = NetlistBuilder(f"seq{n_inputs}g{n_gates}f{n_flops}s{seed}")
    zero = builder.const0()
    flops = [builder.dff(zero, name=f"ff{i}") for i in range(n_flops)]
    signals = [builder.input(f"pi{i}") for i in range(n_inputs)] + flops
    # Same constant-rejection discipline as random_circuit (flop outputs act
    # as pseudo-PIs for the 64-pattern probe).
    word_mask = (1 << 64) - 1
    words = {s: rng.getrandbits(64) for s in signals}
    weights = [
        4 if t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR) else 1
        for t in _RANDOM_GATE_TYPES
    ]
    consumed = set()
    for _ in range(n_gates):
        for _attempt in range(8):
            gate_type = rng.choices(_RANDOM_GATE_TYPES, weights=weights)[0]
            arity = 1 if gate_type == GateType.NOT else rng.randint(2, 3)
            window = signals[-24:]
            fanin = rng.sample(window, min(arity, len(window)))
            word = evaluate_parallel(gate_type, [words[f] for f in fanin], word_mask)
            ones = bin(word).count("1")
            if 2 <= ones <= 62:
                break
        new = builder._gate(gate_type, fanin, None)
        words[new] = word
        consumed.update(fanin)
        signals.append(new)
    logic_signals = signals[n_inputs + n_flops :]
    for flop in flops:
        target = rng.choice(logic_signals)
        builder.netlist.gates[flop].fanin[0] = target
        consumed.add(target)
    # Every dangling gate becomes observable, exactly as in random_circuit.
    dangling = [s for s in logic_signals if s not in consumed]
    for position, signal in enumerate(dangling):
        builder.output(f"po{position}", signal)
    if not dangling:
        builder.output("po0", logic_signals[-1])
    netlist = builder.netlist
    netlist._topo = None
    netlist.finalize()
    return netlist


def chain_of_inverters(length: int, name: Optional[str] = None) -> Netlist:
    """A single inverter chain — the smallest useful path-delay workload."""
    builder = NetlistBuilder(name or f"invchain{length}")
    signal = builder.input("a")
    for _ in range(length):
        signal = builder.not_(signal)
    builder.output("y", signal)
    return builder.build()
