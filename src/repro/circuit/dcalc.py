"""Table-driven D-calculus for the ATPG hot path.

A D-pair (good, faulty) with rails in {0, 1, X} is encoded as one integer
``good * 3 + faulty`` (X encoded as 2), giving nine values.  All gate
operations become tuple lookups — roughly 3x faster than evaluating the
two rails through the general 4-valued functions, which profiling shows is
where PODEM spends its time.

Canonical encodings::

    D0 = 0   (0,0)      D  = 3   (1,0)
    DB = 1   (0,1)      D1 = 4   (1,1)
    DX = 8   (X,X)
"""

from __future__ import annotations

from typing import Tuple

#: Rail encoding inside a packed value.
_R0, _R1, _RX = 0, 1, 2

#: Packed constants.
D0 = _R0 * 3 + _R0  # good 0, faulty 0
DB = _R0 * 3 + _R1  # D-bar: good 0, faulty 1
D = _R1 * 3 + _R0  # D: good 1, faulty 0
D1 = _R1 * 3 + _R1  # good 1, faulty 1
DX = _RX * 3 + _RX  # both unknown


def pack(good: int, faulty: int) -> int:
    """Pack two rails (0/1/2) into one encoded value."""
    return good * 3 + faulty


def good_rail(value: int) -> int:
    return value // 3


def faulty_rail(value: int) -> int:
    return value % 3


def _rail_and(a: int, b: int) -> int:
    if a == _R0 or b == _R0:
        return _R0
    if a == _R1 and b == _R1:
        return _R1
    return _RX


def _rail_or(a: int, b: int) -> int:
    if a == _R1 or b == _R1:
        return _R1
    if a == _R0 and b == _R0:
        return _R0
    return _RX


def _rail_xor(a: int, b: int) -> int:
    if a == _RX or b == _RX:
        return _RX
    return a ^ b


def _rail_not(a: int) -> int:
    if a == _RX:
        return _RX
    return 1 - a


def _build_binary(rail_op) -> Tuple[Tuple[int, ...], ...]:
    table = []
    for left in range(9):
        row = []
        for right in range(9):
            good = rail_op(left // 3, right // 3)
            faulty = rail_op(left % 3, right % 3)
            row.append(good * 3 + faulty)
        table.append(tuple(row))
    return tuple(table)


#: Binary operation tables indexed ``TABLE[a][b]``.
AND_TABLE = _build_binary(_rail_and)
OR_TABLE = _build_binary(_rail_or)
XOR_TABLE = _build_binary(_rail_xor)

#: Unary NOT table.
NOT_TABLE = tuple(
    _rail_not(v // 3) * 3 + _rail_not(v % 3) for v in range(9)
)

#: Values whose two rails are known and differ (a visible fault effect).
FAULTED = frozenset({D, DB})


def has_x(value: int) -> bool:
    """Either rail unknown?"""
    return value // 3 == _RX or value % 3 == _RX


def is_faulted(value: int) -> bool:
    """Both rails known and different?"""
    return value == D or value == DB


def from_fourvalued(good: int, faulty: int) -> int:
    """Pack two 4-valued rails (Z treated as X)."""
    g = _RX if good > 1 else good
    f = _RX if faulty > 1 else faulty
    return g * 3 + f
