"""Reader/writer for a structural-Verilog netlist subset.

The accepted dialect is gate-level structural Verilog as synthesis tools
emit for primitive libraries::

    module top (a, b, y);
      input a, b;
      output y;
      wire w1;
      nand g1 (w1, a, b);   // first port is the output
      not  g2 (y, w1);
      dff  ff1 (q, d);      // non-standard primitive for state
    endmodule

Supported primitives: ``and or nand nor xor xnor not buf`` (native
Verilog), plus ``dff`` (output, data) and ``mux2`` (output, select, a, b)
as library extensions.  One module per file; scalar nets only (bus bits
arrive from the writer as escaped scalar names).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .gates import GateType
from .netlist import Netlist, NetlistError

_PRIMITIVES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "dff": GateType.DFF,
    "mux2": GateType.MUX2,
}

_KEYWORDS = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
    GateType.DFF: "dff",
    GateType.SDFF: "dff",  # scan flops serialize as plain flops
    GateType.MUX2: "mux2",
}

_MODULE_RE = re.compile(
    r"module\s+(\w+)\s*\(([^)]*)\)\s*;(.*?)endmodule", re.DOTALL
)
_DECL_RE = re.compile(r"(input|output|wire)\s+([^;]+);")
_INST_RE = re.compile(r"(\w+)\s+(\w+)\s*\(([^)]*)\)\s*;")


class VerilogFormatError(NetlistError):
    """Raised when Verilog source cannot be parsed."""


def sanitize_net_name(name: str) -> str:
    """Map internal names (with ``[ ] / .``) to legal Verilog identifiers."""
    return re.sub(r"[^A-Za-z0-9_]", "_", name)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)


def parse_verilog(text: str) -> Netlist:
    """Parse one structural module into a :class:`Netlist`."""
    source = _strip_comments(text)
    module = _MODULE_RE.search(source)
    if module is None:
        raise VerilogFormatError("no module ... endmodule block found")
    name, _port_list, body = module.groups()

    inputs: List[str] = []
    outputs: List[str] = []
    for kind, nets in _DECL_RE.findall(body):
        names = [n.strip() for n in nets.split(",") if n.strip()]
        for net in names:
            if "[" in net:
                raise VerilogFormatError(
                    f"vector declarations are not supported: {net!r}"
                )
        if kind == "input":
            inputs.extend(names)
        elif kind == "output":
            outputs.extend(names)
        # wires need no bookkeeping: every net is named by its driver.

    instances: List[Tuple[GateType, str, List[str]]] = []
    declared = set(("input", "output", "wire", "module"))
    body_no_decl = _DECL_RE.sub("", body)
    for keyword, instance_name, ports in _INST_RE.findall(body_no_decl):
        if keyword in declared:
            continue
        gate_type = _PRIMITIVES.get(keyword)
        if gate_type is None:
            raise VerilogFormatError(f"unknown primitive {keyword!r}")
        nets = [p.strip() for p in ports.split(",") if p.strip()]
        if len(nets) < 2:
            raise VerilogFormatError(
                f"instance {instance_name!r} needs an output and inputs"
            )
        instances.append((gate_type, instance_name, nets))

    # Nets are named by their drivers; build the index map first so
    # definitions may appear in any order (flop feedback included).
    netlist = Netlist(name)
    index_of: Dict[str, int] = {}
    for position, net in enumerate(inputs):
        index_of[net] = position
    # Literal constants used as instance inputs get shared driver gates.
    literals_used = {
        net
        for _, __, nets in instances
        for net in nets[1:]
        if net in ("1'b0", "1'b1")
    }
    next_index = len(inputs)
    for literal in sorted(literals_used):
        index_of[literal] = next_index
        next_index += 1
    for gate_type, instance_name, nets in instances:
        driven = nets[0]
        if driven in index_of:
            raise VerilogFormatError(f"net {driven!r} driven twice")
        index_of[driven] = next_index
        next_index += 1

    for net in inputs:
        netlist.add(GateType.INPUT, net)
    for literal in sorted(literals_used):
        gate_type = GateType.CONST0 if literal == "1'b0" else GateType.CONST1
        netlist.add(gate_type, "__const0" if literal == "1'b0" else "__const1")
    for gate_type, instance_name, nets in instances:
        driven, drivers = nets[0], nets[1:]
        missing = [d for d in drivers if d not in index_of]
        if missing:
            raise VerilogFormatError(
                f"instance {instance_name!r} references undriven nets {missing}"
            )
        if gate_type == GateType.MUX2 and len(drivers) != 3:
            raise VerilogFormatError("mux2 takes (out, select, a, b)")
        netlist.add(gate_type, driven, [index_of[d] for d in drivers])

    for net in outputs:
        if net not in index_of:
            raise VerilogFormatError(f"output {net!r} is never driven")
        netlist.add(GateType.OUTPUT, f"{net}_po", [index_of[net]])
    netlist.finalize()
    return netlist


def write_verilog(netlist: Netlist, module_name: Optional[str] = None) -> str:
    """Serialize a netlist as one structural Verilog module.

    ``SDFF`` gates are emitted as plain ``dff`` of the functional D pin
    (scan structure is a netlist-level concern, matching ``.bench``).
    Names are sanitized; collisions after sanitization get a numeric
    suffix.
    """
    netlist.finalize()
    rename: Dict[int, str] = {}
    used = set()
    for gate in netlist.gates:
        base = sanitize_net_name(gate.name)
        candidate = base
        counter = 0
        while candidate in used:
            counter += 1
            candidate = f"{base}_{counter}"
        used.add(candidate)
        rename[gate.index] = candidate

    input_names = [rename[i] for i in netlist.inputs]
    output_nets = []
    output_lines = []
    for po in netlist.outputs:
        driver = netlist.gates[po].fanin[0]
        port = rename[po]
        output_nets.append(port)
        output_lines.append((port, rename[driver]))

    lines = [
        f"module {module_name or sanitize_net_name(netlist.name)} "
        f"({', '.join(input_names + output_nets)});"
    ]
    if input_names:
        lines.append(f"  input {', '.join(input_names)};")
    if output_nets:
        lines.append(f"  output {', '.join(output_nets)};")
    wires = [
        rename[g.index]
        for g in netlist.gates
        if g.type not in (GateType.INPUT, GateType.OUTPUT)
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")

    counter = 0
    for gate in netlist.gates:
        if gate.type in (GateType.INPUT, GateType.OUTPUT):
            continue
        counter += 1
        if gate.type == GateType.CONST0:
            lines.append(f"  buf g{counter} ({rename[gate.index]}, 1'b0);")
            continue
        if gate.type == GateType.CONST1:
            lines.append(f"  buf g{counter} ({rename[gate.index]}, 1'b1);")
            continue
        keyword = _KEYWORDS[gate.type]
        if gate.type == GateType.SDFF:
            drivers = [rename[gate.fanin[0]]]
        else:
            drivers = [rename[d] for d in gate.fanin]
        ports = ", ".join([rename[gate.index]] + drivers)
        lines.append(f"  {keyword} g{counter} ({ports});")

    for port, driver in output_lines:
        counter += 1
        lines.append(f"  buf g{counter} ({port}, {driver});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def load_verilog(path: str) -> Netlist:
    """Read and parse a structural Verilog file."""
    with open(path) as handle:
        return parse_verilog(handle.read())


def save_verilog(netlist: Netlist, path: str) -> None:
    """Serialize ``netlist`` to a Verilog file."""
    with open(path, "w") as handle:
        handle.write(write_verilog(netlist))
