"""Built-in benchmark circuits.

Two classic ISCAS circuits are embedded verbatim (``c17`` from ISCAS-85 and
``s27`` from ISCAS-89) and the rest of the suite is generated on demand by
:mod:`repro.circuit.generators`.  :func:`get_benchmark` is the single entry
point the tests, examples, and benchmark harnesses use.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List

from . import generators
from .bench import parse_bench
from .netlist import Netlist

C17_BENCH = """\
# c17 — ISCAS-85 smallest benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""

S27_BENCH = """\
# s27 — ISCAS-89 smallest sequential benchmark
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
"""


def c17() -> Netlist:
    """The 6-gate ISCAS-85 ``c17`` benchmark."""
    return parse_bench(C17_BENCH, name="c17")


def s27() -> Netlist:
    """The 3-flop ISCAS-89 ``s27`` benchmark."""
    return parse_bench(S27_BENCH, name="s27")


_REGISTRY: Dict[str, Callable[[], Netlist]] = {
    "c17": c17,
    "s27": s27,
    "add8": lambda: generators.adder(8),
    "add16": lambda: generators.adder(16),
    "mul4": lambda: generators.multiplier(4),
    "mul8": lambda: generators.multiplier(8),
    "alu4": lambda: generators.alu(4),
    "alu8": lambda: generators.alu(8),
    "mac4": lambda: generators.mac_unit(4),
    "mac8": lambda: generators.mac_unit(8),
    "pe4": lambda: generators.systolic_pe(4),
    "par16": lambda: generators.parity_tree(16),
    "cmp16": lambda: generators.wide_comparator(16),
    "rres12": lambda: generators.random_resistant(12, cones=4),
    "rand200": lambda: generators.random_circuit(16, 200, seed=7),
    "rand500": lambda: generators.random_circuit(24, 500, seed=11),
    "rand1k": lambda: generators.random_circuit(32, 1000, seed=13),
    "seq300": lambda: generators.random_sequential(12, 300, 24, seed=3),
}


def benchmark_names() -> List[str]:
    """All registered benchmark circuit names."""
    return sorted(_REGISTRY)


#: ``<base>_x<N>`` names replicate a registered benchmark N times (the
#: multi-core accelerator view, e.g. ``mac4_x32`` = 32 mac4 cores).
_REPLICATED = re.compile(r"^(?P<base>[A-Za-z0-9]+)_x(?P<copies>\d+)$")


def get_benchmark(name: str) -> Netlist:
    """Build the named benchmark circuit (a fresh instance every call).

    Besides the registered names, ``<base>_x<N>`` (e.g. ``mac4_x32``)
    replicates benchmark ``<base>`` into an ``N``-core flat netlist via
    :func:`repro.dft.flatten.replicate_netlist`.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        match = _REPLICATED.match(name)
        if match and match.group("base") in _REGISTRY:
            from ..dft.flatten import replicate_netlist

            copies = int(match.group("copies"))
            if copies < 1:
                raise KeyError(f"replicated benchmark {name!r} needs >= 1 copy")
            return replicate_netlist(
                _REGISTRY[match.group("base")](), copies
            )
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()} "
            f"(or any '<name>_xN' replication, e.g. 'mac4_x32')"
        )
    return factory()
