"""Gate-level netlist graph.

A :class:`Netlist` is a directed graph of single-output :class:`Gate`
nodes.  Nets are identified with the gate that drives them, so "the value of
gate *g*" and "the value of net *g*" are the same thing.  Sequential
elements (``DFF``/``SDFF``) break combinational cycles: for levelization and
combinational engines their outputs act as pseudo primary inputs and their
``D`` pins as pseudo primary outputs — exactly the full-scan view used by
combinational ATPG.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from .gates import (
    SEQUENTIAL_TYPES,
    SOURCE_TYPES,
    GateType,
    fanin_count_valid,
)


@dataclass
class Gate:
    """One single-output node of the netlist graph.

    ``fanin`` holds driving gate indices in pin order; ``fanout`` is derived
    and maintained by the :class:`Netlist`.
    """

    index: int
    name: str
    type: GateType
    fanin: List[int] = field(default_factory=list)
    fanout: List[int] = field(default_factory=list)
    level: int = -1

    @property
    def is_sequential(self) -> bool:
        return self.type in SEQUENTIAL_TYPES

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fanins = ",".join(str(i) for i in self.fanin)
        return f"Gate({self.index}:{self.name}={self.type.value}({fanins}))"


class NetlistError(ValueError):
    """Raised for malformed netlist construction or queries."""


class Netlist:
    """A named collection of gates with port and state bookkeeping.

    Structural mutation happens through :meth:`add`; afterwards call
    :meth:`finalize` (or let the first query do it) to compute fanout lists,
    levels, and the topological order.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.gates: List[Gate] = []
        self._by_name: Dict[str, int] = {}
        self.inputs: List[int] = []
        self.outputs: List[int] = []
        self.flops: List[int] = []
        self._topo: Optional[List[int]] = None
        self._signature: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, gate_type: GateType, name: str, fanin: Sequence[int] = ()) -> int:
        """Add a gate and return its index.

        ``fanin`` lists the indices of already-added driver gates in pin
        order.  ``OUTPUT`` gates are recorded as primary outputs, ``INPUT``
        gates as primary inputs, flops in :attr:`flops`.
        """
        if name in self._by_name:
            raise NetlistError(f"duplicate gate name: {name!r}")
        if not fanin_count_valid(gate_type, len(fanin)):
            raise NetlistError(
                f"gate {name!r} of type {gate_type.value} cannot take "
                f"{len(fanin)} fanin(s)"
            )
        index = len(self.gates)
        for driver in fanin:
            if driver < 0:
                raise NetlistError(
                    f"gate {name!r} references invalid fanin index {driver}"
                )
        gate = Gate(index=index, name=name, type=gate_type, fanin=list(fanin))
        self.gates.append(gate)
        self._by_name[name] = index
        if gate_type == GateType.INPUT:
            self.inputs.append(index)
        elif gate_type == GateType.OUTPUT:
            self.outputs.append(index)
        elif gate_type in SEQUENTIAL_TYPES:
            self.flops.append(index)
        self._topo = None
        self._signature = None
        return index

    def index_of(self, name: str) -> int:
        """Look up a gate index by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise NetlistError(f"no gate named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Compute fanout lists, combinational levels, and the topo order.

        Raises :class:`NetlistError` on combinational cycles.  Idempotent;
        called lazily by the accessors below.
        """
        if self._topo is not None:
            return
        for gate in self.gates:
            for driver in gate.fanin:
                if driver >= len(self.gates):
                    raise NetlistError(
                        f"gate {gate.name!r} references undefined fanin index {driver}"
                    )
        for gate in self.gates:
            gate.fanout = []
        for gate in self.gates:
            for driver in gate.fanin:
                self.gates[driver].fanout.append(gate.index)

        # Kahn's algorithm over combinational edges.  Flop gates are sources:
        # their D-pin dependency is a *next-cycle* edge, so it does not count
        # toward in-degree and flops are emitted before combinational logic.
        indegree = [0] * len(self.gates)
        for gate in self.gates:
            if gate.is_sequential:
                indegree[gate.index] = 0
            else:
                indegree[gate.index] = len(gate.fanin)
        ready = [g.index for g in self.gates if indegree[g.index] == 0]
        order: List[int] = []
        head = 0
        while head < len(ready):
            current = ready[head]
            head += 1
            order.append(current)
            for consumer in self.gates[current].fanout:
                if self.gates[consumer].is_sequential:
                    continue
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            stuck = [g.name for g in self.gates if indegree[g.index] > 0]
            raise NetlistError(
                f"combinational cycle through gates: {stuck[:8]}"
            )

        for gate in self.gates:
            if gate.type in SOURCE_TYPES or gate.is_sequential:
                gate.level = 0
        for index in order:
            gate = self.gates[index]
            if gate.level == 0 and (gate.type in SOURCE_TYPES or gate.is_sequential):
                continue
            gate.level = 1 + max(
                (self.gates[driver].level for driver in gate.fanin), default=0
            )
        self._topo = order

    @property
    def topo_order(self) -> List[int]:
        """Gate indices in combinational evaluation order."""
        self.finalize()
        assert self._topo is not None
        return self._topo

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_sequential(self) -> bool:
        return bool(self.flops)

    @property
    def num_gates(self) -> int:
        """Count of logic gates (excludes ports)."""
        ports = {GateType.INPUT, GateType.OUTPUT}
        return sum(1 for g in self.gates if g.type not in ports)

    def input_names(self) -> List[str]:
        return [self.gates[i].name for i in self.inputs]

    def output_names(self) -> List[str]:
        return [self.gates[i].name for i in self.outputs]

    def fanin_cone(self, roots: Iterable[int]) -> Set[int]:
        """All gates in the transitive combinational fanin of ``roots``.

        Traversal stops at flops and sources (their indices are included).
        """
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            gate = self.gates[index]
            if gate.is_sequential:
                continue
            stack.extend(gate.fanin)
        return seen

    def fanout_cone(self, roots: Iterable[int]) -> Set[int]:
        """All gates in the transitive combinational fanout of ``roots``."""
        self.finalize()
        seen: Set[int] = set()
        stack = list(roots)
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            for consumer in self.gates[index].fanout:
                if not self.gates[consumer].is_sequential:
                    stack.append(consumer)
        return seen

    def observation_points(self) -> List[int]:
        """Gate indices where fault effects are observed: POs and flop D pins.

        For full-scan circuits a fault effect reaching either a primary
        output or any flop input is observable during unload.
        """
        points = list(self.outputs)
        points.extend(self.flops)
        return points

    def stats(self) -> Dict[str, int]:
        """Summary counts, used in reports and benchmark tables."""
        self.finalize()
        depth = max((g.level for g in self.gates), default=0)
        return {
            "gates": self.num_gates,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "flops": len(self.flops),
            "depth": depth,
        }

    def structural_signature(self) -> str:
        """Stable hash of the structural graph, independent of gate names.

        Two netlists with the same gate types and fanin topology in the same
        index order share a signature even when their names differ, so
        :meth:`clone` copies and replicated cores hit the same entries of the
        good-machine response cache (:mod:`repro.sim.goodcache`).  Memoized;
        invalidated by :meth:`add`.
        """
        if self._signature is None:
            hasher = hashlib.sha256()
            for gate in self.gates:
                hasher.update(gate.type.value.encode("ascii"))
                hasher.update(repr(tuple(gate.fanin)).encode("ascii"))
            self._signature = hasher.hexdigest()
        return self._signature

    def clone(self, name: Optional[str] = None) -> "Netlist":
        """Deep-copy the structural graph (fanout/levels recomputed lazily)."""
        copy = Netlist(name or self.name)
        for gate in self.gates:
            copy.add(gate.type, gate.name, list(gate.fanin))
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Netlist({self.name!r}, gates={len(self.gates)}, "
            f"pi={len(self.inputs)}, po={len(self.outputs)}, "
            f"ff={len(self.flops)})"
        )
