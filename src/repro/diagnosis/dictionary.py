"""Fault-dictionary diagnosis.

The pre-computed approach: fault-simulate every candidate fault against the
production pattern set *without dropping*, store each fault's failure
signature (which outputs fail on which patterns), and at debug time match
the tester's observed failures against the dictionary.

Exact matches give the best resolution; partial matching (Jaccard ranking)
handles defects that behave only approximately like a single stuck-at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from ..faults.model import StuckAtFault
from ..sim.faultsim import FaultSimulator

#: A failure observation: set of (pattern index, output position) pairs.
Failures = Set[Tuple[int, int]]


def signature_to_failures(signature: Dict[int, Tuple[int, ...]]) -> Failures:
    """Flatten a per-pattern signature into (pattern, output) pairs."""
    return {
        (pattern, output)
        for pattern, outputs in signature.items()
        for output in outputs
    }


@dataclass
class FaultDictionary:
    """Signatures for a candidate fault universe under one pattern set."""

    patterns: List[List[int]]
    entries: Dict[StuckAtFault, Failures] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        simulator: FaultSimulator,
        patterns: Sequence[Sequence[int]],
        faults: Sequence[StuckAtFault],
    ) -> "FaultDictionary":
        """Full-response dictionary (no fault dropping)."""
        dictionary = cls(patterns=[list(p) for p in patterns])
        for fault in faults:
            signature = simulator.failure_signature(dictionary.patterns, fault)
            dictionary.entries[fault] = signature_to_failures(signature)
        return dictionary

    def lookup(self, observed: Failures, top: int = 5) -> List[Tuple[StuckAtFault, float]]:
        """Rank candidates by Jaccard similarity to the observation.

        Exact matches score 1.0.  Faults that never fail are skipped unless
        the observation is also empty.
        """
        ranked: List[Tuple[StuckAtFault, float]] = []
        for fault, failures in self.entries.items():
            if not failures and not observed:
                ranked.append((fault, 1.0))
                continue
            union = failures | observed
            if not union:
                continue
            score = len(failures & observed) / len(union)
            if score > 0.0:
                ranked.append((fault, score))
        ranked.sort(key=lambda item: (-item[1], item[0]))
        return ranked[:top]

    def exact_matches(self, observed: Failures) -> List[StuckAtFault]:
        """Candidates whose signature equals the observation exactly."""
        return sorted(
            fault for fault, failures in self.entries.items() if failures == observed
        )

    def equivalence_classes(self) -> List[List[StuckAtFault]]:
        """Faults indistinguishable under this pattern set.

        Dictionary resolution = average class size; more patterns (or more
        observation points) shrink the classes.
        """
        by_signature: Dict[frozenset, List[StuckAtFault]] = {}
        for fault, failures in self.entries.items():
            by_signature.setdefault(frozenset(failures), []).append(fault)
        return sorted(by_signature.values(), key=len, reverse=True)

    def diagnostic_resolution(self) -> float:
        """Average suspects returned for an exact-match lookup (1.0 = ideal)."""
        classes = self.equivalence_classes()
        if not classes:
            return 1.0
        detected_classes = [c for c in classes if self.entries[c[0]]]
        if not detected_classes:
            return float(len(self.entries)) or 1.0
        total = sum(len(c) for c in detected_classes)
        return total / len(detected_classes)
