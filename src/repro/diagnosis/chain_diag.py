"""Scan-chain diagnosis: locating defects *inside* the shift path.

A stuck-at defect in a scan chain corrupts every bit that shifts through
it, so ordinary (capture-fault) diagnosis is blind — the tester sees
garbage on a whole chain.  The classic two-step flow (Guo & Venkataraman):

1. the **flush test** fingerprints the faulty chain and the stuck polarity
   (the chain unloads a constant);
2. candidate **position simulation**: for each suspected cell position,
   model the corrupted load (cells at or beyond the defect take the stuck
   value), run the functional capture, model the corrupted unload (cells
   at or before the defect read back stuck), and score against the
   tester's observed unloads.  The position whose predictions match wins.

Coordinates follow :class:`~repro.scan.insertion.ScanDesign`: position 0
is the cell next to scan-in; during load bits travel 0 → L-1, during
unload they travel toward scan-out behind cell L-1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.values import ONE, ZERO
from ..scan.insertion import ScanDesign
from ..sim.logicsim import LogicSimulator


@dataclass(frozen=True)
class ChainDefect:
    """A stuck shift-path cell: chain, position (0 = next to scan-in), value."""

    chain: int
    position: int
    value: int

    def describe(self) -> str:
        return f"chain {self.chain} cell {self.position} shift-path s-a-{self.value}"


class ChainDefectModel:
    """Applies a chain defect's corruption to loads, unloads, and patterns."""

    def __init__(self, design: ScanDesign, defect: ChainDefect):
        if not 0 <= defect.chain < design.n_chains:
            raise ValueError(f"chain {defect.chain} out of range")
        if not 0 <= defect.position < len(design.chains[defect.chain]):
            raise ValueError(f"position {defect.position} out of range")
        self.design = design
        self.defect = defect
        self.logic = LogicSimulator(design.netlist)

    def corrupt_load(self, state: Sequence[int]) -> List[int]:
        """State actually latched after shifting through the defect.

        Bits destined for positions >= the defect pass through the stuck
        cell on their way in, so they (and the stuck cell) read the stuck
        value.
        """
        corrupted = list(state)
        chain = self.design.chains[self.defect.chain]
        flop_order = {flop: i for i, flop in enumerate(self.design.netlist.flops)}
        for position in range(self.defect.position, len(chain)):
            corrupted[flop_order[chain[position]]] = self.defect.value
        return corrupted

    def corrupt_unload(self, state: Sequence[int]) -> List[int]:
        """Unloaded image of a captured state.

        Bits from positions <= the defect must shift *through* the stuck
        cell on their way out, so the tester reads the stuck value there.
        """
        corrupted = list(state)
        chain = self.design.chains[self.defect.chain]
        flop_order = {flop: i for i, flop in enumerate(self.design.netlist.flops)}
        for position in range(0, self.defect.position + 1):
            corrupted[flop_order[chain[position]]] = self.defect.value
        return corrupted

    def apply_pattern(self, pattern: Sequence[int]) -> List[int]:
        """Tester-visible unload for one combinational pattern."""
        netlist = self.design.netlist
        n_pi = len(netlist.inputs)
        pi_part = [v if v in (0, 1) else 0 for v in pattern[:n_pi]]
        load = [v if v in (0, 1) else 0 for v in pattern[n_pi:]]
        latched = self.corrupt_load(load)
        step = self.logic.step(pi_part, latched, scan_shift=False)
        return self.corrupt_unload(step["state"])

    def flush_signature(self) -> List[int]:
        """What the flush test reads from the faulty chain: all stuck."""
        return [self.defect.value] * len(self.design.chains[self.defect.chain])


@dataclass
class ChainDiagnosisResult:
    """Outcome of chain diagnosis for one failing die."""

    chain: Optional[int] = None
    stuck_value: Optional[int] = None
    ranked_positions: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def best_positions(self) -> List[int]:
        if not self.ranked_positions:
            return []
        best = self.ranked_positions[0][1]
        return [p for p, score in self.ranked_positions if score == best]


class ChainDiagnoser:
    """Flush fingerprinting + per-position simulation matching."""

    def __init__(self, design: ScanDesign):
        self.design = design
        self.logic = LogicSimulator(design.netlist)

    def identify_chain(
        self, flush_unloads: Sequence[Sequence[int]]
    ) -> Optional[Tuple[int, int]]:
        """(chain, stuck value) from per-chain flush results, or None.

        The flush pattern alternates 0011; a chain whose unload is constant
        carries a shift-path stuck-at of that constant.
        """
        for chain_id, unload in enumerate(flush_unloads):
            values = set(unload)
            if len(unload) > 1 and len(values) == 1:
                value = unload[0]
                if value in (0, 1):
                    return chain_id, value
        return None

    def diagnose(
        self,
        patterns: Sequence[Sequence[int]],
        observed_unloads: Sequence[Sequence[int]],
        flush_unloads: Sequence[Sequence[int]],
    ) -> ChainDiagnosisResult:
        """Locate the stuck cell from flush + capture-pattern unloads.

        ``observed_unloads[i]`` is the full flop-state image (netlist flop
        order) the tester read back after applying ``patterns[i]``.
        """
        result = ChainDiagnosisResult()
        fingerprint = self.identify_chain(flush_unloads)
        if fingerprint is None:
            return result
        chain_id, value = fingerprint
        result.chain, result.stuck_value = chain_id, value

        chain_length = len(self.design.chains[chain_id])
        scored: List[Tuple[int, float]] = []
        for position in range(chain_length):
            defect = ChainDefect(chain_id, position, value)
            model = ChainDefectModel(self.design, defect)
            matches = 0
            total = 0
            for pattern, observed in zip(patterns, observed_unloads):
                predicted = model.apply_pattern(pattern)
                matches += sum(
                    1 for p, o in zip(predicted, observed) if p == o
                )
                total += len(predicted)
            scored.append((position, matches / total if total else 0.0))
        scored.sort(key=lambda item: (-item[1], item[0]))
        result.ranked_positions = scored
        return result


def observe_defective_die(
    design: ScanDesign,
    defect: ChainDefect,
    patterns: Sequence[Sequence[int]],
) -> Tuple[List[List[int]], List[List[int]]]:
    """Produce (flush unloads, per-pattern unloads) for an injected defect.

    The test-side twin of :class:`ChainDiagnoser` used by tests and the
    E-suite: simulates what the tester would log from a die carrying
    ``defect``.
    """
    model = ChainDefectModel(design, defect)
    flush: List[List[int]] = []
    for chain_id, chain in enumerate(design.chains):
        if chain_id == defect.chain:
            flush.append(model.flush_signature())
        else:
            pattern = [0, 0, 1, 1] * (len(chain) // 4 + 1)
            flush.append(pattern[: len(chain)])
    unloads = [model.apply_pattern(pattern) for pattern in patterns]
    return flush, unloads
