"""Diagnosis through a response compactor.

With EDT-style compression the tester never sees raw chain bits — only the
XOR-compacted channels.  Diagnosis must therefore compare *compacted*
candidate signatures against *compacted* observations.  Resolution drops
(several chains alias into one channel) but usually stays useful; the E10
experiment quantifies exactly that loss against raw-response diagnosis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..compression.compactor import XorCompactor
from ..faults.model import StuckAtFault
from ..scan.insertion import ScanDesign
from ..sim.faultsim import FaultSimulator
from ..sim.parallel import ParallelSimulator

#: Compacted observation: {(pattern, channel, cycle)} that miscompared.
CompactedFailures = Set[Tuple[int, int, int]]


class CompactedDiagnoser:
    """Effect-cause-style diagnosis with only compacted responses."""

    def __init__(
        self,
        design: ScanDesign,
        compactor: XorCompactor,
        faults: Sequence[StuckAtFault],
    ):
        self.design = design
        self.compactor = compactor
        self.simulator = FaultSimulator(design.netlist)
        self.parallel = ParallelSimulator(design.netlist)
        self.faults = list(faults)
        self._n_po = len(design.netlist.outputs)

    # ------------------------------------------------------------------

    def _compact_state(self, state_bits: Sequence[int]) -> List[List[int]]:
        streams = self.design.state_to_chain_bits(list(state_bits))
        return self.compactor.compact_unload(streams)

    def compacted_signature(
        self, patterns: Sequence[Sequence[int]], fault: StuckAtFault
    ) -> CompactedFailures:
        """Where the compacted faulty response differs from good.

        Only the flop (chain) part goes through the compactor; PO failures
        are folded in as pseudo-channels beyond the compactor's channels.
        """
        raw = self.simulator.failure_signature(patterns, fault)
        failures: CompactedFailures = set()
        if not raw:
            return failures
        good_responses = self.parallel.responses(list(patterns))
        n_channels = len(self.compactor.groups)
        for pattern_index, outputs in raw.items():
            good = good_responses[pattern_index]
            faulty = list(good)
            for output in outputs:
                faulty[output] ^= 1
            good_compact = self._compact_state(good[self._n_po :])
            faulty_compact = self._compact_state(faulty[self._n_po :])
            for cycle, (gc, fc) in enumerate(zip(good_compact, faulty_compact)):
                for channel in range(n_channels):
                    if gc[channel] != fc[channel]:
                        failures.add((pattern_index, channel, cycle))
            # POs bypass the compactor; report them as extra channels.
            for output in outputs:
                if output < self._n_po:
                    failures.add((pattern_index, n_channels + output, 0))
        return failures

    def diagnose(
        self,
        patterns: Sequence[Sequence[int]],
        observed: CompactedFailures,
        top: int = 10,
    ) -> List[Tuple[StuckAtFault, float]]:
        """Rank faults by Jaccard similarity of compacted signatures."""
        scored: List[Tuple[StuckAtFault, float]] = []
        for fault in self.faults:
            predicted = self.compacted_signature(patterns, fault)
            union = predicted | observed
            if not union:
                continue
            score = len(predicted & observed) / len(union)
            if score > 0.0:
                scored.append((fault, score))
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:top]

    def resolution_versus_raw(
        self,
        patterns: Sequence[Sequence[int]],
        sample_faults: Sequence[StuckAtFault],
    ) -> Dict[str, float]:
        """E10 row: suspect-count with and without the compactor.

        For each sampled defect, injects it, diagnoses from raw and from
        compacted observations, and averages the top-score suspect count.
        """
        raw_sizes: List[int] = []
        compact_sizes: List[int] = []
        hits_raw = 0
        hits_compact = 0
        for defect in sample_faults:
            raw_observed = self.simulator.failure_signature(patterns, defect)
            if not raw_observed:
                continue
            # Raw diagnosis: exact signature match count.
            from .dictionary import signature_to_failures

            observed_set = signature_to_failures(raw_observed)
            raw_matches = [
                fault
                for fault in self.faults
                if signature_to_failures(
                    self.simulator.failure_signature(patterns, fault)
                )
                == observed_set
            ]
            raw_sizes.append(len(raw_matches))
            if defect in raw_matches:
                hits_raw += 1

            compact_observed = self.compacted_signature(patterns, defect)
            ranked = self.diagnose(patterns, compact_observed)
            if ranked:
                best = ranked[0][1]
                top_set = [fault for fault, score in ranked if score == best]
                compact_sizes.append(len(top_set))
                if defect in top_set:
                    hits_compact += 1
            else:
                compact_sizes.append(0)
        count = len(raw_sizes) or 1
        return {
            "defects_diagnosed": float(len(raw_sizes)),
            "avg_suspects_raw": sum(raw_sizes) / count,
            "avg_suspects_compacted": sum(compact_sizes) / count,
            "hit_rate_raw": hits_raw / count,
            "hit_rate_compacted": hits_compact / count,
        }
