"""Fault diagnosis: dictionaries, effect-cause, compactor-aware."""

from .chain_diag import (
    ChainDefect,
    ChainDefectModel,
    ChainDiagnoser,
    ChainDiagnosisResult,
    observe_defective_die,
)
from .compactor_diag import CompactedDiagnoser, CompactedFailures
from .dictionary import FaultDictionary, Failures, signature_to_failures
from .effect_cause import DiagnosisResult, EffectCauseDiagnoser, inject_and_observe

__all__ = [
    "FaultDictionary",
    "Failures",
    "signature_to_failures",
    "EffectCauseDiagnoser",
    "DiagnosisResult",
    "inject_and_observe",
    "CompactedDiagnoser",
    "CompactedFailures",
    "ChainDefect",
    "ChainDefectModel",
    "ChainDiagnoser",
    "ChainDiagnosisResult",
    "observe_defective_die",
]
