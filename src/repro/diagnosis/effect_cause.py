"""Effect-cause diagnosis: trace failures back, simulate forward to confirm.

The scalable alternative to full dictionaries: start from the observed
failing outputs, restrict candidates to lines in the structural fanin
cones of those outputs, then fault-simulate each candidate against the
failing *and a sample of passing* patterns, keeping candidates whose
behaviour matches exactly (or best, under a ranking).

This is the per-failing-pattern flow commercial diagnosis runs, minus the
layout-aware refinements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..faults.collapse import collapse_faults
from ..faults.model import OUTPUT_PIN, StuckAtFault
from ..faults.stuck_at import full_fault_list
from ..sim.faultsim import FaultSimulator
from .dictionary import Failures, signature_to_failures


@dataclass
class DiagnosisResult:
    """Ranked suspects for one failing die."""

    suspects: List[Tuple[StuckAtFault, float]] = field(default_factory=list)
    candidates_considered: int = 0
    exact: bool = False

    @property
    def top_suspects(self) -> List[StuckAtFault]:
        if not self.suspects:
            return []
        best = self.suspects[0][1]
        return [fault for fault, score in self.suspects if score == best]


class EffectCauseDiagnoser:
    """Single-stuck-at effect-cause diagnosis over one netlist."""

    def __init__(self, netlist, faults: Optional[Sequence[StuckAtFault]] = None):
        self.simulator = FaultSimulator(netlist)
        self.netlist = netlist
        if faults is None:
            faults, _ = collapse_faults(netlist, full_fault_list(netlist))
        self.faults = list(faults)

    # ------------------------------------------------------------------

    def _structural_candidates(
        self, failing_outputs: Set[int]
    ) -> List[StuckAtFault]:
        """Faults whose site lies in the fanin cone of every failing output.

        A single defect must reach *all* failing outputs, so intersecting
        the cones prunes aggressively (the effect-cause backtrace step).
        """
        readers = self.simulator.view.output_readers
        cones: List[Set[int]] = []
        for output in failing_outputs:
            cone = self.netlist.fanin_cone([readers[output]])
            # A branch fault directly at a PO/flop pin lives one step past
            # the reader; include the observation gate itself.
            cones.append(cone)
        if not cones:
            return []
        common = set.intersection(*cones)
        candidates = [
            fault
            for fault in self.faults
            if fault.gate in common
            or (
                fault.pin != OUTPUT_PIN
                and self.netlist.gates[fault.gate].fanin[fault.pin] in common
            )
        ]
        return candidates

    def diagnose(
        self,
        patterns: Sequence[Sequence[int]],
        observed: Failures,
        passing_sample: int = 32,
    ) -> DiagnosisResult:
        """Rank single-stuck-at suspects for an observed failure set.

        ``observed`` is the tester log: {(pattern index, output position)}.
        Candidates must reproduce every observed failure and stay silent on
        (a sample of) passing patterns; scoring is exact-match first, then
        Jaccard similarity.
        """
        result = DiagnosisResult()
        failing_patterns = sorted({pattern for pattern, _ in observed})
        failing_outputs = {output for _, output in observed}
        if not observed:
            return result
        candidates = self._structural_candidates(failing_outputs)
        result.candidates_considered = len(candidates)

        # Include a sample of passing patterns so over-eager faults that
        # would have failed elsewhere get rejected.
        passing = [
            index for index in range(len(patterns)) if index not in set(failing_patterns)
        ][:passing_sample]
        probe_indices = failing_patterns + passing
        probe_patterns = [patterns[index] for index in probe_indices]
        remap = {local: original for local, original in enumerate(probe_indices)}

        scored: List[Tuple[StuckAtFault, float]] = []
        for fault in candidates:
            signature = self.simulator.failure_signature(probe_patterns, fault)
            predicted = {
                (remap[pattern], output)
                for pattern, output in signature_to_failures(signature)
            }
            union = predicted | observed
            if not union:
                continue
            score = len(predicted & observed) / len(union)
            if score > 0.0:
                scored.append((fault, score))
        scored.sort(key=lambda item: (-item[1], item[0]))
        result.suspects = scored[:10]
        result.exact = bool(scored) and scored[0][1] == 1.0
        return result


def inject_and_observe(
    simulator: FaultSimulator,
    patterns: Sequence[Sequence[int]],
    defect: StuckAtFault,
) -> Failures:
    """Produce the tester's failure log for a known injected defect."""
    signature = simulator.failure_signature(patterns, defect)
    return signature_to_failures(signature)
