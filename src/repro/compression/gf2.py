"""GF(2) linear algebra on bitmask-encoded rows.

The EDT decompressor is a linear machine: every scan-cell value is an XOR
(a GF(2) linear combination) of the injected channel bits.  Encoding a test
cube means solving ``A·x = b`` where each care bit contributes one equation.
Rows are Python ints (bit *i* set = variable *i* participates), which makes
Gaussian elimination a few machine-word XORs per row even for hundreds of
variables.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


class GF2System:
    """An incrementally built system of GF(2) equations ``row · x = rhs``."""

    def __init__(self, n_variables: int):
        if n_variables < 0:
            raise ValueError("variable count must be non-negative")
        self.n_variables = n_variables
        # Eliminated rows: pivot bit -> (row, rhs).
        self._pivots: dict = {}
        self.inconsistent = False

    @property
    def rank(self) -> int:
        return len(self._pivots)

    def add_equation(self, row: int, rhs: int) -> bool:
        """Add one equation, eliminating against existing pivots.

        Returns False (and marks the system inconsistent) when the equation
        contradicts the span — the EDT "encoding failure" condition.
        """
        rhs &= 1
        for pivot, (pivot_row, pivot_rhs) in self._pivots.items():
            if row >> pivot & 1:
                row ^= pivot_row
                rhs ^= pivot_rhs
        if row == 0:
            if rhs:
                self.inconsistent = True
                return False
            return True  # redundant but consistent
        pivot = row.bit_length() - 1
        # Gauss-Jordan: clear the new pivot bit from every existing row so
        # each stored row contains exactly one pivot position.
        for existing_pivot, (existing_row, existing_rhs) in list(self._pivots.items()):
            if existing_row >> pivot & 1:
                self._pivots[existing_pivot] = (existing_row ^ row, existing_rhs ^ rhs)
        self._pivots[pivot] = (row, rhs)
        return True

    def solve(self) -> Optional[List[int]]:
        """One solution vector (free variables 0), or None if inconsistent."""
        if self.inconsistent:
            return None
        solution = [0] * self.n_variables
        # Back-substitute from high pivots down.
        for pivot in sorted(self._pivots, reverse=True):
            row, rhs = self._pivots[pivot]
            acc = rhs
            mask = row & ~(1 << pivot)
            while mask:
                low = mask & -mask
                acc ^= solution[low.bit_length() - 1]
                mask ^= low
            solution[pivot] = acc
        return solution


def solve_system(
    equations: Iterable[Tuple[int, int]], n_variables: int
) -> Optional[List[int]]:
    """Solve a batch of ``(row, rhs)`` equations; None when inconsistent."""
    system = GF2System(n_variables)
    for row, rhs in equations:
        if not system.add_equation(row, rhs):
            return None
    return system.solve()


def dot_bits(row: int, values: Sequence[int]) -> int:
    """GF(2) inner product of a bitmask row with a 0/1 vector."""
    acc = 0
    mask = row
    while mask:
        low = mask & -mask
        acc ^= values[low.bit_length() - 1]
        mask ^= low
    return acc & 1


def rank_of(rows: Iterable[int]) -> int:
    """Rank of a set of bitmask rows (ignoring right-hand sides)."""
    pivots: List[int] = []
    for row in rows:
        for pivot_row in pivots:
            high = 1 << (pivot_row.bit_length() - 1)
            if row & high:
                row ^= pivot_row
        if row:
            pivots.append(row)
    return len(pivots)
