"""Linear feedback machinery: LFSRs, ring generators, phase shifters.

Three linear blocks underpin both LBIST and EDT compression:

* :class:`LFSR` — Fibonacci LFSR used as the LBIST PRPG and as a MISR core.
* :class:`RingGenerator` — the modular, injector-fed LFSR EDT uses as its
  decompressor kernel; every cycle it absorbs one fresh bit per input
  channel, so the solvable variable pool grows with shift length.
* :class:`PhaseShifter` — an XOR network spreading generator cells across
  many chain inputs, decorrelating adjacent chains.

Each block can run *concrete* (ints) or *symbolic* (each state bit is a
GF(2) linear combination of injected variables, encoded as a bitmask).  The
symbolic mode is what the EDT solver consumes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

#: Primitive polynomial taps (exponents, x^n + ... + 1) for common sizes.
PRIMITIVE_TAPS = {
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    12: (12, 11, 10, 4),
    16: (16, 15, 13, 4),
    20: (20, 17),
    24: (24, 23, 22, 17),
    32: (32, 30, 26, 25),
}


def primitive_taps(length: int) -> Sequence[int]:
    """Known-primitive feedback taps for a register of ``length`` bits."""
    if length not in PRIMITIVE_TAPS:
        raise ValueError(
            f"no primitive polynomial stored for length {length}; "
            f"available: {sorted(PRIMITIVE_TAPS)}"
        )
    return PRIMITIVE_TAPS[length]


class LFSR:
    """Fibonacci LFSR over ``length`` bits.

    ``taps`` are polynomial exponents; feedback is the XOR of state bits
    ``tap - 1``.  With a primitive polynomial and nonzero seed the sequence
    has maximal period ``2**length - 1``.
    """

    def __init__(self, length: int, taps: Optional[Sequence[int]] = None, seed: int = 1):
        self.length = length
        self.taps = tuple(taps) if taps is not None else tuple(primitive_taps(length))
        if any(not 1 <= tap <= length for tap in self.taps):
            raise ValueError(f"taps out of range for length {length}: {self.taps}")
        self.state = seed & ((1 << length) - 1)
        if self.state == 0:
            raise ValueError("LFSR seed must be nonzero")

    def step(self) -> int:
        """Advance one cycle; returns the bit shifted out (bit 0).

        Right-shift Fibonacci form: for polynomial exponent ``t`` the
        feedback taps bit ``length - t`` (the exponent counts delay from
        the feedback input).
        """
        out = self.state & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.length - tap)) & 1
        self.state = (self.state >> 1) | (feedback << (self.length - 1))
        return out

    def pattern(self, width: int) -> List[int]:
        """Shift ``width`` cycles and return the emitted bits (LSB first)."""
        return [self.step() for _ in range(width)]

    def patterns(self, count: int, width: int) -> List[List[int]]:
        """``count`` pseudo-random patterns of ``width`` bits each."""
        return [self.pattern(width) for _ in range(count)]

    def period_lower_bound(self, limit: int = 1 << 20) -> int:
        """Walk the sequence until the seed state recurs (capped)."""
        start = self.state
        for count in range(1, limit + 1):
            self.step()
            if self.state == start:
                return count
        return limit


class RingGenerator:
    """Modular LFSR with per-cycle channel injection (the EDT kernel).

    State bit *i* next-cycle value::

        s'[i] = s[(i+1) % n]  ^  (feedback if i in taps)  ^  (channel bits
                 injected at this position)

    Symbolic operation assigns each injected channel bit a fresh variable
    index; after ``c`` cycles with ``m`` channels the pool holds ``c*m``
    variables and every state bit is a bitmask over them.
    """

    def __init__(
        self,
        length: int,
        n_channels: int,
        taps: Optional[Sequence[int]] = None,
        seed: int = 0,
    ):
        self.length = length
        self.n_channels = n_channels
        self.taps = tuple(taps) if taps is not None else tuple(primitive_taps(length))
        rng = random.Random(seed)
        # Spread injector positions evenly with a deterministic shuffle.
        positions = list(range(length))
        rng.shuffle(positions)
        self.injectors = sorted(positions[:n_channels])
        self.reset()

    def reset(self) -> None:
        """Zero state, empty variable pool (both modes)."""
        self.state_bits: List[int] = [0] * self.length  # concrete 0/1
        self.symbolic: List[int] = [0] * self.length  # bitmask per cell
        self.n_variables = 0

    # -- concrete ------------------------------------------------------

    def step_concrete(self, channel_bits: Sequence[int]) -> None:
        """Advance one cycle with concrete injected bits."""
        if len(channel_bits) != self.n_channels:
            raise ValueError(f"expected {self.n_channels} channel bits")
        feedback = 0
        for tap in self.taps:
            feedback ^= self.state_bits[self.length - tap]
        nxt = [self.state_bits[(i + 1) % self.length] for i in range(self.length)]
        nxt[self.length - 1] ^= feedback  # fold feedback into the top cell
        for channel, position in enumerate(self.injectors):
            nxt[position] ^= channel_bits[channel]
        self.state_bits = nxt

    # -- symbolic ------------------------------------------------------

    def step_symbolic(self) -> None:
        """Advance one cycle, allocating one fresh variable per channel."""
        feedback = 0
        for tap in self.taps:
            feedback ^= self.symbolic[self.length - tap]
        nxt = [self.symbolic[(i + 1) % self.length] for i in range(self.length)]
        nxt[self.length - 1] ^= feedback
        for position in self.injectors:
            nxt[position] ^= 1 << self.n_variables
            self.n_variables += 1
        self.symbolic = nxt


class PhaseShifter:
    """Sparse XOR network mapping generator cells to many chain inputs."""

    def __init__(self, n_cells: int, n_outputs: int, taps_per_output: int = 3, seed: int = 0):
        rng = random.Random(seed)
        self.n_cells = n_cells
        self.n_outputs = n_outputs
        self.rows: List[List[int]] = []
        seen = set()
        for _ in range(n_outputs):
            for _ in range(100):
                row = tuple(sorted(rng.sample(range(n_cells), min(taps_per_output, n_cells))))
                if row not in seen:
                    seen.add(row)
                    break
            self.rows.append(list(row))

    def concrete(self, cells: Sequence[int]) -> List[int]:
        """XOR-combine concrete cell values into output bits."""
        outputs = []
        for row in self.rows:
            acc = 0
            for cell in row:
                acc ^= cells[cell]
            outputs.append(acc)
        return outputs

    def symbolic(self, cells: Sequence[int]) -> List[int]:
        """XOR-combine symbolic bitmasks into output masks."""
        outputs = []
        for row in self.rows:
            acc = 0
            for cell in row:
                acc ^= cells[cell]
            outputs.append(acc)
        return outputs
