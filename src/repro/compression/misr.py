"""MISR — Multiple-Input Signature Register.

Time-compacts a stream of response slices into one signature.  Used as the
LBIST response collector (STUMPS) and optionally behind the spatial
compactor in compressed scan.  Includes the textbook aliasing estimate
(``2**-n`` for an *n*-bit MISR) and an empirical aliasing measurement
helper used by the E6 experiment.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .lfsr import primitive_taps


class MISR:
    """Modular MISR with a primitive feedback polynomial.

    Each :meth:`absorb` XORs an input slice into the register and advances
    it one LFSR step, so the final signature is a linear hash of the whole
    response history.  An X anywhere corrupts the signature irrecoverably —
    callers must mask X's *before* the MISR (see
    :mod:`repro.compression.compactor`).
    """

    def __init__(self, length: int, taps: Optional[Sequence[int]] = None, seed: int = 0):
        self.length = length
        self.taps = tuple(taps) if taps is not None else tuple(primitive_taps(length))
        self.state = seed & ((1 << length) - 1)

    def absorb(self, slice_bits: Sequence[int]) -> None:
        """Fold one response slice (≤ ``length`` known bits) and step."""
        if len(slice_bits) > self.length:
            raise ValueError(
                f"slice of {len(slice_bits)} bits exceeds MISR width {self.length}"
            )
        word = 0
        for position, bit in enumerate(slice_bits):
            if bit not in (0, 1):
                raise ValueError(
                    "X reached the MISR; mask unknowns before signature "
                    "compaction"
                )
            word |= bit << position
        self.state ^= word
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (self.length - tap)) & 1
        self.state = ((self.state >> 1) | (feedback << (self.length - 1))) & (
            (1 << self.length) - 1
        )

    def absorb_stream(self, slices: Iterable[Sequence[int]]) -> int:
        """Fold a whole response stream; returns the final signature."""
        for slice_bits in slices:
            self.absorb(slice_bits)
        return self.state

    @property
    def signature(self) -> int:
        return self.state


def theoretical_aliasing_probability(length: int) -> float:
    """Classic asymptotic aliasing bound for an ``length``-bit MISR."""
    return 2.0 ** -length


def measure_aliasing(
    length: int,
    good_stream: Sequence[Sequence[int]],
    faulty_streams: Sequence[Sequence[Sequence[int]]],
    seed: int = 0,
) -> float:
    """Fraction of distinct faulty streams whose signature aliases good's.

    ``faulty_streams`` should contain responses that *differ* from the good
    stream; aliasing means the MISR hash collides anyway.
    """
    reference = MISR(length, seed=seed).absorb_stream(good_stream)
    if not faulty_streams:
        return 0.0
    aliased = sum(
        1
        for stream in faulty_streams
        if MISR(length, seed=seed).absorb_stream(stream) == reference
    )
    return aliased / len(faulty_streams)
