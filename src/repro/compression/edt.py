"""End-to-end compressed-scan (EDT) flow over a scan design.

:class:`EdtSystem` ties together the pieces:

* the :class:`~repro.scan.insertion.ScanDesign` (internal chains),
* a :class:`~repro.compression.decompressor.Decompressor` on the stimulus
  side (test cubes are *encoded* into channel streams),
* an :class:`~repro.compression.compactor.XorCompactor` on the response
  side (with optional X-masking),

and exposes the pattern-level operations the E4 experiment measures:
encode a cube set, expand it back, fault-simulate through the compactor,
and report compression statistics against bypass (uncompressed) scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.values import X
from ..scan.insertion import ScanDesign
from ..scan.timing import ScanCost, compressed_scan_cost, compression_ratio, scan_cost
from .compactor import CompactorConfig, XorCompactor
from .decompressor import Decompressor, EdtConfig


@dataclass
class EncodedPattern:
    """One compressed pattern: channel stream + uncompressed PI part."""

    pi_bits: List[int]
    channel_stream: List[List[int]]  # [cycle][channel]
    expanded_state: List[int]  # decompressed flop load, netlist flop order


@dataclass
class EdtEncodingResult:
    """Cube-set encoding outcome and the compression bookkeeping."""

    encoded: List[EncodedPattern] = field(default_factory=list)
    failed_cubes: List[int] = field(default_factory=list)  # cube indices
    care_bits_total: int = 0

    @property
    def encoding_success_rate(self) -> float:
        total = len(self.encoded) + len(self.failed_cubes)
        return len(self.encoded) / total if total else 1.0


class EdtSystem:
    """Compression wrapper around a scan-inserted netlist."""

    def __init__(
        self,
        design: ScanDesign,
        n_input_channels: int = 2,
        n_output_channels: int = 2,
        generator_length: int = 24,
        seed: int = 1,
    ):
        self.design = design
        self.config = EdtConfig(
            n_channels=n_input_channels,
            n_chains=design.n_chains,
            chain_length=design.max_chain_length,
            generator_length=generator_length,
            seed=seed,
        )
        self.decompressor = Decompressor(self.config)
        self.compactor = XorCompactor(
            CompactorConfig(
                n_chains=design.n_chains,
                n_channels=n_output_channels,
                seed=seed + 7,
            )
        )
        self.n_output_channels = n_output_channels

    # ------------------------------------------------------------------
    # Stimulus side
    # ------------------------------------------------------------------

    def cube_to_care_bits(
        self, cube: Sequence[int]
    ) -> Tuple[List[int], Dict[Tuple[int, int], int]]:
        """Split a view cube into (PI part, {(chain, position): value}).

        The cube is in the scan netlist's combinational-view order (PIs then
        flops); specified flop bits become scan-cell care bits.
        """
        netlist = self.design.netlist
        n_pi = len(netlist.inputs)
        pi_part = list(cube[:n_pi])
        care: Dict[Tuple[int, int], int] = {}
        for flop, value in zip(netlist.flops, cube[n_pi:]):
            if value == X:
                continue
            chain, position = self.design.flop_position[flop]
            care[(chain, position)] = value
        return pi_part, care

    def encode_cubes(self, cubes: Sequence[Sequence[int]]) -> EdtEncodingResult:
        """Encode every cube; unencodable cubes are reported, not dropped
        silently (callers typically split or top-up with bypass patterns).
        """
        result = EdtEncodingResult()
        for index, cube in enumerate(cubes):
            pi_part, care = self.cube_to_care_bits(cube)
            result.care_bits_total += len(care) + sum(
                1 for v in pi_part if v != X
            )
            variables = self.decompressor.solve_cube(care)
            if variables is None:
                result.failed_cubes.append(index)
                continue
            stream = self.decompressor.variables_to_channel_stream(variables)
            loads = self.decompressor.expand(variables)
            state = self.loads_to_state(loads)
            pi_filled = [0 if v == X else v for v in pi_part]
            result.encoded.append(
                EncodedPattern(
                    pi_bits=pi_filled,
                    channel_stream=stream,
                    expanded_state=state,
                )
            )
        return result

    def loads_to_state(self, loads: Sequence[Sequence[int]]) -> List[int]:
        """Convert per-chain cell loads into netlist flop order."""
        by_flop: Dict[int, int] = {}
        for chain_id, chain in enumerate(self.design.chains):
            for position, flop in enumerate(chain):
                by_flop[flop] = loads[chain_id][position]
        return [by_flop[flop] for flop in self.design.netlist.flops]

    def expanded_patterns(self, result: EdtEncodingResult) -> List[List[int]]:
        """Full-scan-view patterns realized by the encoded set.

        These are what actually gets applied on silicon — fault simulation
        of them grades the compressed test.
        """
        return [
            encoded.pi_bits + encoded.expanded_state for encoded in result.encoded
        ]

    # ------------------------------------------------------------------
    # Response side
    # ------------------------------------------------------------------

    def response_to_chain_streams(
        self, state_response: Sequence[int]
    ) -> List[List[int]]:
        """Arrange a captured flop state into per-chain unload streams."""
        return self.design.state_to_chain_bits(list(state_response))

    def compact_response(
        self,
        state_response: Sequence[int],
        mask: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """Compacted per-cycle channel outputs for one captured state."""
        streams = self.response_to_chain_streams(state_response)
        return self.compactor.compact_unload(streams, mask)

    def fault_visible_through_compactor(
        self,
        good_state: Sequence[int],
        faulty_state: Sequence[int],
        mask: Optional[Sequence[int]] = None,
    ) -> bool:
        """Does a faulty capture remain observable after compaction?"""
        return self.compactor.observable_difference(
            self.response_to_chain_streams(good_state),
            self.response_to_chain_streams(faulty_state),
            mask,
        )

    # ------------------------------------------------------------------
    # Cost reporting
    # ------------------------------------------------------------------

    def cost_versus_bypass(
        self, n_patterns: int, bypass_chains: int = 1
    ) -> Dict[str, object]:
        """E4 row: compressed vs. bypass-scan cost for ``n_patterns``."""
        netlist = self.design.netlist
        n_flops = len(netlist.flops)
        # Scan-in pins and scan_enable are not tester stimulus: the flop
        # loads they deliver are already counted, and under EDT the channels
        # replace them entirely.  Only functional PIs/POs remain.
        n_pis = len(netlist.inputs) - len(self.design.scan_inputs) - 1
        n_pos = len(netlist.outputs) - len(self.design.scan_outputs)
        bypass = scan_cost(n_patterns, n_flops, bypass_chains, n_pis, n_pos)
        compressed = compressed_scan_cost(
            n_patterns,
            n_flops,
            self.design.n_chains,
            self.config.n_channels,
            self.n_output_channels,
            n_pis,
            n_pos,
        )
        ratios = compression_ratio(bypass, compressed)
        return {
            "patterns": n_patterns,
            "bypass_cycles": bypass.test_cycles,
            "edt_cycles": compressed.test_cycles,
            "bypass_bits": bypass.data_volume_bits,
            "edt_bits": compressed.data_volume_bits,
            **{k: round(v, 2) for k, v in ratios.items()},
        }
