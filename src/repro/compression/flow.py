"""Integrated compressed-pattern generation (EDT-ATPG co-generation).

Encoding test cubes *after* ATPG loses the incidental detections that the
ATPG's own pattern fill earned, because the decompressor fills don't-care
bits with its own pseudo-random data.  Production EDT therefore integrates
the two: every PODEM cube is encoded immediately, the *decompressed*
pattern (with the ring generator's fill) is what gets fault-simulated, and
fault dropping proceeds on exactly what the tester will apply.

:func:`run_compressed_atpg` implements that loop, with a bypass bucket for
the rare cube the channel capacity cannot encode (real flows apply those
few patterns through an uncompressed bypass mode).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import obs
from ..atpg.engine import x_fill
from ..atpg.portfolio import make_engine
from ..atpg.random_gen import random_patterns
from ..faults.collapse import collapse_faults
from ..faults.model import StuckAtFault
from ..faults.stuck_at import full_fault_list
from ..scan.insertion import ScanDesign
from ..sim.faultsim import FaultSimulator
from ..sim.parallel import WORD_WIDTH
from .edt import EdtSystem, EncodedPattern


@dataclass
class CompressedAtpgResult:
    """Outcome of the integrated EDT-ATPG loop."""

    encoded: List[EncodedPattern] = field(default_factory=list)
    bypass_patterns: List[List[int]] = field(default_factory=list)
    applied_patterns: List[List[int]] = field(default_factory=list)  # as on silicon
    total_faults: int = 0
    detected: int = 0
    untestable: int = 0
    aborted: int = 0
    unencodable: int = 0
    cpu_seconds: float = 0.0
    #: Independent re-grade of ``applied_patterns`` over the full universe
    #: (set when the flow runs with ``grade=True``): coverage as a tester
    #: would measure it, plus the grading engine's instrumentation.
    graded_coverage: Optional[float] = None
    grading_stats: dict = field(default_factory=dict)

    @property
    def fault_coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults

    @property
    def test_coverage(self) -> float:
        testable = self.total_faults - self.untestable
        if testable <= 0:
            return 1.0
        return self.detected / testable

    def summary(self) -> dict:
        summary = {
            "encoded_patterns": len(self.encoded),
            "bypass_patterns": len(self.bypass_patterns),
            "faults": self.total_faults,
            "fault_coverage": round(self.fault_coverage, 4),
            "test_coverage": round(self.test_coverage, 4),
            "untestable": self.untestable,
            "aborted": self.aborted,
            "unencodable": self.unencodable,
            "cpu_s": round(self.cpu_seconds, 3),
        }
        if self.graded_coverage is not None:
            summary["graded_coverage"] = round(self.graded_coverage, 4)
        return summary


def run_compressed_atpg(
    edt: EdtSystem,
    faults: Optional[Sequence[StuckAtFault]] = None,
    random_pattern_budget: int = 128,
    backtrack_limit: int = 64,
    seed: int = 0,
    grade: bool = False,
    backend: str = "ppsfp",
    jobs: Optional[int] = None,
    word_width: int = WORD_WIDTH,
    kernel: str = "python",
    engine: str = "podem",
) -> CompressedAtpgResult:
    """Generate compressed patterns with fault dropping on decompressed data.

    Phase 1 applies PRPG-style random *encoded* patterns (random channel
    data expanded through the decompressor — free on a real tester).
    Phase 2 runs the deterministic ``engine`` (``podem``/``dalg``/
    ``guided``/``portfolio``, see :mod:`repro.atpg.portfolio`) per
    surviving fault, encodes the cube, expands it, and fault-simulates
    the expansion; unencodable cubes fall back to an X-filled bypass
    pattern.

    With ``grade`` set, the finished pattern set is re-graded from scratch
    against the full fault universe on the chosen ``backend``/``jobs``
    (see :mod:`repro.sim.dispatch`) — the cross-check a tester sign-off
    would run — filling ``graded_coverage`` and ``grading_stats``.
    ``word_width`` sets the patterns packed per simulation word and
    ``kernel`` the gate-evaluation backend (see :mod:`repro.sim.npsim`)
    for every fault-simulation pass in the flow.
    """
    start = time.perf_counter()
    design = edt.design
    netlist = design.netlist
    if faults is None:
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = FaultSimulator(netlist, word_width=word_width, kernel=kernel)
    rng = random.Random(seed)
    result = CompressedAtpgResult(total_faults=len(faults))
    remaining = list(faults)
    n_pi = len(netlist.inputs)

    # ------------------------------------------------------------------
    # Phase 1: random channel data -> decompressed pseudo-random patterns.
    # ------------------------------------------------------------------
    n_vars = edt.config.variables_per_pattern
    with obs.span("compression_random"):
        for _ in range(random_pattern_budget):
            if not remaining:
                break
            variables = [rng.randint(0, 1) for _ in range(n_vars)]
            loads = edt.decompressor.expand(variables)
            state = edt.loads_to_state(loads)
            pi_bits = [rng.randint(0, 1) for _ in range(n_pi)]
            pattern = pi_bits + state
            sim = simulator.simulate([pattern], remaining, drop=True)
            if sim.detected:
                result.applied_patterns.append(pattern)
                result.encoded.append(
                    EncodedPattern(
                        pi_bits=pi_bits,
                        channel_stream=edt.decompressor.variables_to_channel_stream(
                            variables
                        ),
                        expanded_state=state,
                    )
                )
                result.detected += len(sim.detected)
                remaining = [f for f in remaining if f not in sim.detected]

    # ------------------------------------------------------------------
    # Phase 2: deterministic cubes, encoded one at a time.
    # ------------------------------------------------------------------
    generator = make_engine(engine, netlist, backtrack_limit=backtrack_limit)
    undetected = set(remaining)
    with obs.span("compression_encode"):
        for fault in remaining:
            if fault not in undetected:
                continue
            outcome = generator.generate(fault)
            if outcome.status == "untestable":
                result.untestable += 1
                undetected.discard(fault)
                continue
            if outcome.status == "aborted":
                result.aborted += 1
                undetected.discard(fault)
                continue
            cube = outcome.cube
            assert cube is not None
            pi_part, care = edt.cube_to_care_bits(cube)
            variables = edt.decompressor.solve_cube(care)
            if variables is None:
                # Channel capacity exceeded: apply through bypass scan.
                result.unencodable += 1
                pattern = x_fill(cube, rng, "random")
                result.bypass_patterns.append(pattern)
            else:
                loads = edt.decompressor.expand(variables)
                state = edt.loads_to_state(loads)
                pi_bits = [
                    v if v in (0, 1) else rng.randint(0, 1) for v in pi_part
                ]
                pattern = pi_bits + state
                result.encoded.append(
                    EncodedPattern(
                        pi_bits=pi_bits,
                        channel_stream=edt.decompressor.variables_to_channel_stream(
                            variables
                        ),
                        expanded_state=state,
                    )
                )
            result.applied_patterns.append(pattern)
            sim = simulator.simulate([pattern], list(undetected), drop=True)
            result.detected += len(sim.detected)
            for detected_fault in sim.detected:
                undetected.discard(detected_fault)
            if fault in undetected:
                # Encoded fill diverged from the cube's intent — possible
                # only for bypass-path randomness; retry once with the
                # bypass fill.
                undetected.discard(fault)
                retry = x_fill(cube, rng, "random")
                sim = simulator.simulate([retry], [fault], drop=True)
                if sim.detected:
                    result.bypass_patterns.append(retry)
                    result.applied_patterns.append(retry)
                    result.detected += 1

    if grade and result.applied_patterns:
        with obs.span("grade"):
            graded = simulator.simulate(
                result.applied_patterns,
                faults,
                drop=True,
                engine=backend,
                jobs=jobs,
                seed=seed,
            )
            result.graded_coverage = graded.coverage
            result.grading_stats = dict(graded.stats)

    result.cpu_seconds = time.perf_counter() - start
    _publish_compression(result)
    return result


def _publish_compression(result: CompressedAtpgResult) -> None:
    """Mirror a :class:`CompressedAtpgResult` into the active observation."""
    observation = obs.current()
    if observation is None:
        return
    observation.add_counters(
        "compression",
        {
            "faults": result.total_faults,
            "detected": result.detected,
            "encoded_patterns": len(result.encoded),
            "bypass_patterns": len(result.bypass_patterns),
            "applied_patterns": len(result.applied_patterns),
            "unencodable": result.unencodable,
            "untestable": result.untestable,
            "aborted": result.aborted,
        },
    )
    obs.set_gauge("compression.fault_coverage", result.fault_coverage)
    obs.set_gauge("compression.test_coverage", result.test_coverage)
    if result.graded_coverage is not None:
        obs.set_gauge("compression.graded_coverage", result.graded_coverage)
