"""Test compression: GF(2) solving, linear generators, EDT, compactors, MISR."""

from .compactor import CompactorConfig, XorCompactor, greedy_x_mask
from .decompressor import Decompressor, EdtConfig, encoding_probability
from .edt import EdtEncodingResult, EdtSystem, EncodedPattern
from .flow import CompressedAtpgResult, run_compressed_atpg
from .gf2 import GF2System, dot_bits, rank_of, solve_system
from .reseeding import (
    ReseedingCompressor,
    ReseedingConfig,
    reseeding_encoding_probability,
)
from .lfsr import LFSR, PhaseShifter, RingGenerator, primitive_taps
from .misr import MISR, measure_aliasing, theoretical_aliasing_probability
from .xcompact import XCompactConfig, XCompactor, minimum_channels

__all__ = [
    "GF2System",
    "solve_system",
    "dot_bits",
    "rank_of",
    "LFSR",
    "RingGenerator",
    "PhaseShifter",
    "primitive_taps",
    "EdtConfig",
    "Decompressor",
    "encoding_probability",
    "CompactorConfig",
    "XorCompactor",
    "greedy_x_mask",
    "MISR",
    "theoretical_aliasing_probability",
    "measure_aliasing",
    "EdtSystem",
    "CompressedAtpgResult",
    "run_compressed_atpg",
    "EdtEncodingResult",
    "EncodedPattern",
    "ReseedingConfig",
    "ReseedingCompressor",
    "reseeding_encoding_probability",
    "XCompactConfig",
    "XCompactor",
    "minimum_channels",
]
