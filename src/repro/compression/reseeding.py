"""LFSR-reseeding test compression (Koenemann 1991).

The precursor to EDT: store one LFSR *seed* per test cube; on chip, load
the seed and free-run the PRPG + phase shifter for a full scan load.  The
linear algebra mirrors the EDT solve, but the variable pool is fixed at
the LFSR length — so the seed register must be sized for the *worst-case*
cube (care bits ≤ L − ~20 for high encoding probability), whereas EDT's
continuous injection grows variables with shift length.  That structural
difference is exactly what the reseeding-vs-EDT ablation demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .gf2 import GF2System
from .lfsr import LFSR, PhaseShifter, primitive_taps


@dataclass(frozen=True)
class ReseedingConfig:
    """Geometry of a reseeding PRPG."""

    lfsr_length: int
    n_chains: int
    chain_length: int
    phase_taps: int = 3
    seed: int = 1

    @property
    def variables_per_pattern(self) -> int:
        return self.lfsr_length

    @property
    def seed_bits_per_pattern(self) -> int:
        return self.lfsr_length


class ReseedingCompressor:
    """Symbolic + concrete model of seed-per-pattern compression."""

    def __init__(self, config: ReseedingConfig):
        self.config = config
        self.taps = tuple(primitive_taps(config.lfsr_length))
        self.shifter = PhaseShifter(
            config.lfsr_length,
            config.n_chains,
            taps_per_output=config.phase_taps,
            seed=config.seed + 1,
        )

    # ------------------------------------------------------------------
    # Symbolic machinery: every state bit is a mask over seed bits.
    # ------------------------------------------------------------------

    def _symbolic_step(self, state: List[int]) -> List[int]:
        """One LFSR cycle on symbolic masks (mirrors ``LFSR.step``)."""
        length = self.config.lfsr_length
        feedback = 0
        for tap in self.taps:
            feedback ^= state[length - tap]
        return state[1:] + [feedback]

    def cell_equations(self) -> List[List[int]]:
        """``equations[cycle][chain]`` — seed-bit mask entering each chain."""
        length = self.config.lfsr_length
        state = [1 << bit for bit in range(length)]
        per_cycle: List[List[int]] = []
        for _ in range(self.config.chain_length):
            state = self._symbolic_step(state)
            per_cycle.append(self.shifter.symbolic(state))
        return per_cycle

    def solve_cube(
        self, care_bits: Dict[Tuple[int, int], int]
    ) -> Optional[int]:
        """Seed value reproducing the cube, or None when not encodable."""
        equations = self.cell_equations()
        chain_length = self.config.chain_length
        system = GF2System(self.config.lfsr_length)
        for (chain, position), value in sorted(care_bits.items()):
            if not 0 <= chain < self.config.n_chains:
                raise ValueError(f"chain {chain} out of range")
            if not 0 <= position < chain_length:
                raise ValueError(f"cell position {position} out of range")
            cycle = chain_length - 1 - position
            if not system.add_equation(equations[cycle][chain], value):
                return None
        solution = system.solve()
        if solution is None:
            return None
        seed = 0
        for bit, value in enumerate(solution):
            seed |= value << bit
        if seed:
            return seed
        # The all-zero LFSR state is degenerate (and only reachable when the
        # cube itself is all-zero-compatible): flip a *free* variable, i.e.
        # any single-bit seed that still verifies the care bits.
        for bit in range(self.config.lfsr_length):
            candidate = 1 << bit
            if self.verify(care_bits, candidate):
                return candidate
        return None

    # ------------------------------------------------------------------
    # Concrete expansion
    # ------------------------------------------------------------------

    def expand(self, seed: int) -> List[List[int]]:
        """Free-run the PRPG from ``seed``; returns ``load[chain][position]``."""
        lfsr = LFSR(self.config.lfsr_length, taps=self.taps, seed=seed)
        loads = [
            [0] * self.config.chain_length for _ in range(self.config.n_chains)
        ]
        for cycle in range(self.config.chain_length):
            lfsr.step()
            cells = [
                (lfsr.state >> bit) & 1
                for bit in range(self.config.lfsr_length)
            ]
            chain_bits = self.shifter.concrete(cells)
            position = self.config.chain_length - 1 - cycle
            for chain in range(self.config.n_chains):
                loads[chain][position] = chain_bits[chain]
        return loads

    def verify(self, care_bits: Dict[Tuple[int, int], int], seed: int) -> bool:
        """Expansion honours every care bit (test helper)."""
        loads = self.expand(seed)
        return all(
            loads[chain][position] == value
            for (chain, position), value in care_bits.items()
        )


def reseeding_encoding_probability(
    config: ReseedingConfig, care_bit_counts: Sequence[int], seed: int = 0, trials: int = 50
) -> List[Tuple[int, float]]:
    """Monte-Carlo encoding success vs care-bit count (ablation driver)."""
    import random as _random

    rng = _random.Random(seed)
    compressor = ReseedingCompressor(config)
    equations = compressor.cell_equations()
    chain_length = config.chain_length
    cells = [
        (chain, position)
        for chain in range(config.n_chains)
        for position in range(chain_length)
    ]
    results: List[Tuple[int, float]] = []
    for count in care_bit_counts:
        count = min(count, len(cells))
        successes = 0
        for _ in range(trials):
            chosen = rng.sample(cells, count)
            system = GF2System(config.lfsr_length)
            ok = True
            for chain, position in chosen:
                cycle = chain_length - 1 - position
                if not system.add_equation(
                    equations[cycle][chain], rng.randint(0, 1)
                ):
                    ok = False
                    break
            if ok:
                successes += 1
        results.append((count, successes / trials))
    return results
