"""Response compaction: XOR spatial compactors with X-masking.

On the output side of a compressed-scan architecture, many internal chains
feed a few output channels through an XOR tree.  Two complications the
tutorial highlights for AI chips (deep datapaths, memories → many unknown
responses):

* **X propagation** — an unknown chain bit poisons the XOR of its group, so
  a compactor without masking loses every other detection in that group
  that cycle;
* **X-masking** — a per-pattern mask register blocks selected chains,
  restoring observability at the cost of a little mask data.

Values here are 4-valued (``X`` = unknown); the compactor computes exact
X-pessimistic outputs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..circuit.values import ONE, X, ZERO


@dataclass(frozen=True)
class CompactorConfig:
    """Geometry: which chains XOR into which output channel."""

    n_chains: int
    n_channels: int
    seed: int = 0

    def groups(self) -> List[List[int]]:
        """Chains per channel — a balanced deterministic partition."""
        rng = random.Random(self.seed)
        order = list(range(self.n_chains))
        rng.shuffle(order)
        groups: List[List[int]] = [[] for _ in range(self.n_channels)]
        for position, chain in enumerate(order):
            groups[position % self.n_channels].append(chain)
        return [sorted(group) for group in groups]


class XorCompactor:
    """Spatial XOR compactor over per-cycle chain slices."""

    def __init__(self, config: CompactorConfig):
        self.config = config
        self.groups = config.groups()

    def compact_slice(
        self, chain_bits: Sequence[int], mask: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Compact one shift cycle's chain outputs to channel values.

        ``chain_bits`` are 4-valued; ``mask`` (0 = blocked) suppresses a
        chain entirely, turning its contribution into constant 0.
        """
        outputs: List[int] = []
        for group in self.groups:
            acc = ZERO
            for chain in group:
                bit = chain_bits[chain]
                if mask is not None and not mask[chain]:
                    continue
                if bit == X:
                    acc = X
                elif acc != X:
                    acc ^= bit
            outputs.append(acc)
        return outputs

    def compact_unload(
        self,
        chain_streams: Sequence[Sequence[int]],
        mask: Optional[Sequence[int]] = None,
    ) -> List[List[int]]:
        """Compact a full unload: ``streams[chain][cycle]`` -> per-cycle
        channel vectors."""
        if not chain_streams:
            return []
        n_cycles = max(len(stream) for stream in chain_streams)
        compacted: List[List[int]] = []
        for cycle in range(n_cycles):
            chain_bits = [
                stream[cycle] if cycle < len(stream) else ZERO
                for stream in chain_streams
            ]
            compacted.append(self.compact_slice(chain_bits, mask))
        return compacted

    def observable_difference(
        self,
        good_streams: Sequence[Sequence[int]],
        faulty_streams: Sequence[Sequence[int]],
        mask: Optional[Sequence[int]] = None,
    ) -> bool:
        """Would the compacted faulty response differ observably from good?

        A difference is observable only where both compacted values are
        known (X positions compare as equal — the tester masks them).
        """
        good = self.compact_unload(good_streams, mask)
        faulty = self.compact_unload(faulty_streams, mask)
        for good_slice, faulty_slice in zip(good, faulty):
            for g, f in zip(good_slice, faulty_slice):
                if g != X and f != X and g != f:
                    return True
        return False


def greedy_x_mask(chain_x_density: Sequence[float], budget: int) -> List[int]:
    """Pick which chains to block: the ``budget`` X-dirtiest ones.

    Returns a 0/1 keep-mask (0 = blocked).  The simple policy commercial
    tools start from: mask the chains contributing the most X's.
    """
    order = sorted(range(len(chain_x_density)), key=lambda c: -chain_x_density[c])
    mask = [1] * len(chain_x_density)
    for chain in order[:budget]:
        if chain_x_density[chain] > 0:
            mask[chain] = 0
    return mask
