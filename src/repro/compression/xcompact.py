"""X-compact: X-tolerant spatial compaction (Mitra & Kim).

A plain XOR compactor loses every detection in a group the moment one
chain unloads an X.  X-compact instead fans **each chain into several
output channels**, choosing the channel subsets (the compactor matrix
rows) as *distinct constant-weight codewords*.  Two properties follow:

* **single-error visibility under one X chain** — equal-weight distinct
  sets are never subsets of each other, so an erroring chain always owns
  at least one channel the X chain does not poison;
* **error localization** — a single failing chain flips exactly its own
  channel subset, so the syndrome *is* the chain's codeword.

This is the standard alternative to masking when X density is low.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.values import X, ZERO


@dataclass(frozen=True)
class XCompactConfig:
    """Geometry: chains into channels with constant-weight rows."""

    n_chains: int
    n_channels: int
    row_weight: int = 3

    def __post_init__(self):
        if self.row_weight < 1 or self.row_weight > self.n_channels:
            raise ValueError("row weight must be in [1, n_channels]")
        capacity = comb(self.n_channels, self.row_weight)
        if self.n_chains > capacity:
            raise ValueError(
                f"{self.n_channels} channels at weight {self.row_weight} "
                f"support at most {capacity} chains, got {self.n_chains}"
            )


class XCompactor:
    """Constant-weight-code spatial compactor."""

    def __init__(self, config: XCompactConfig):
        self.config = config
        self.rows: List[Tuple[int, ...]] = list(
            combinations(range(config.n_channels), config.row_weight)
        )[: config.n_chains]
        self._row_index: Dict[Tuple[int, ...], int] = {
            row: chain for chain, row in enumerate(self.rows)
        }

    # ------------------------------------------------------------------

    def compact_slice(self, chain_bits: Sequence[int]) -> List[int]:
        """One shift cycle: 4-valued chain bits -> channel values."""
        outputs: List[int] = []
        for channel in range(self.config.n_channels):
            acc = ZERO
            for chain, row in enumerate(self.rows):
                if channel not in row:
                    continue
                bit = chain_bits[chain]
                if bit == X:
                    acc = X
                elif acc != X:
                    acc ^= bit
            outputs.append(acc)
        return outputs

    def compact_unload(
        self, chain_streams: Sequence[Sequence[int]]
    ) -> List[List[int]]:
        """Compact a full unload: ``streams[chain][cycle]``."""
        if not chain_streams:
            return []
        n_cycles = max(len(stream) for stream in chain_streams)
        return [
            self.compact_slice(
                [
                    stream[cycle] if cycle < len(stream) else ZERO
                    for stream in chain_streams
                ]
            )
            for cycle in range(n_cycles)
        ]

    def observable_difference(
        self,
        good_streams: Sequence[Sequence[int]],
        faulty_streams: Sequence[Sequence[int]],
    ) -> bool:
        """Does the compacted faulty response differ where both are known?"""
        good = self.compact_unload(good_streams)
        faulty = self.compact_unload(faulty_streams)
        for good_slice, faulty_slice in zip(good, faulty):
            for g, f in zip(good_slice, faulty_slice):
                if g != X and f != X and g != f:
                    return True
        return False

    # ------------------------------------------------------------------

    def locate_failing_chain(
        self,
        good_streams: Sequence[Sequence[int]],
        faulty_streams: Sequence[Sequence[int]],
    ) -> Optional[int]:
        """Decode a single-chain failure from the channel syndrome.

        Collects the set of channels that miscompare on any cycle; if that
        syndrome equals one row's codeword, returns the chain.  Multiple-
        chain failures generally produce unmatched syndromes (None).
        """
        good = self.compact_unload(good_streams)
        faulty = self.compact_unload(faulty_streams)
        syndrome: set = set()
        for good_slice, faulty_slice in zip(good, faulty):
            for channel, (g, f) in enumerate(zip(good_slice, faulty_slice)):
                if g != X and f != X and g != f:
                    syndrome.add(channel)
        return self._row_index.get(tuple(sorted(syndrome)))


def minimum_channels(n_chains: int, row_weight: int = 3) -> int:
    """Fewest channels supporting ``n_chains`` at the given row weight."""
    channels = row_weight
    while comb(channels, row_weight) < n_chains:
        channels += 1
    return channels
