"""EDT-style test stimulus decompressor.

The Embedded Deterministic Test architecture (Rajski et al.) feeds a small
ring generator from a few tester channels while it clocks in lock-step with
the internal scan chains; a phase shifter fans the generator out to many
short chains.  Because the whole datapath is linear over GF(2), choosing
channel inputs that reproduce a test cube's care bits is a linear solve:

* variables — one per (channel, shift cycle),
* one equation per care bit: the symbolic expression of that scan cell
  equals the required value.

Encoding succeeds with high probability while care bits ≤ ~(variables − 20)
— the channel-capacity knee the E5 experiment sweeps across.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .gf2 import GF2System, dot_bits
from .lfsr import PhaseShifter, RingGenerator


@dataclass(frozen=True)
class EdtConfig:
    """Geometry of one decompressor instance."""

    n_channels: int
    n_chains: int
    chain_length: int
    generator_length: int = 24
    phase_taps: int = 3
    seed: int = 1
    #: Generator clocks (with injection) before the first shift cycle.
    #: Without warm-up, cells far from the injectors have empty equations in
    #: the first few cycles, leaving some scan cells uncontrollable.
    warmup_cycles: int = 8

    @property
    def variables_per_pattern(self) -> int:
        return self.n_channels * (self.chain_length + self.warmup_cycles)

    @property
    def cells_per_pattern(self) -> int:
        return self.n_chains * self.chain_length


class Decompressor:
    """Symbolic + concrete model of the EDT stimulus path."""

    def __init__(self, config: EdtConfig):
        self.config = config
        self.generator = RingGenerator(
            config.generator_length, config.n_channels, seed=config.seed
        )
        self.shifter = PhaseShifter(
            config.generator_length,
            config.n_chains,
            taps_per_output=config.phase_taps,
            seed=config.seed + 1,
        )

    # ------------------------------------------------------------------
    # Symbolic: cell equations
    # ------------------------------------------------------------------

    def cell_equations(self) -> List[List[int]]:
        """``equations[cycle][chain]`` — variable bitmask loaded into chain
        input at shift ``cycle`` (which lands in cell ``chain_length-1-cycle``
        counted from scan-in).

        The generator is clocked once *before* each shift use, so injected
        bits immediately influence the same-cycle chain inputs.
        """
        self.generator.reset()
        for _ in range(self.config.warmup_cycles):
            self.generator.step_symbolic()
        per_cycle: List[List[int]] = []
        for _ in range(self.config.chain_length):
            self.generator.step_symbolic()
            per_cycle.append(self.shifter.symbolic(self.generator.symbolic))
        return per_cycle

    def solve_cube(
        self, care_bits: Dict[Tuple[int, int], int]
    ) -> Optional[List[int]]:
        """Solve for channel inputs reproducing ``{(chain, position): value}``.

        ``position`` counts from scan-in: the flop adjacent to scan-in is
        position 0 and receives the *last* shifted bit.  Returns the
        variable assignment (one bit per channel per cycle) or None when
        the cube is not encodable.
        """
        equations = self.cell_equations()
        chain_length = self.config.chain_length
        system = GF2System(self.config.variables_per_pattern)
        for (chain, position), value in sorted(care_bits.items()):
            if not 0 <= chain < self.config.n_chains:
                raise ValueError(f"chain {chain} out of range")
            if not 0 <= position < chain_length:
                raise ValueError(f"cell position {position} out of range")
            # The bit entering at shift cycle c ends at position L-1-c.
            cycle = chain_length - 1 - position
            if not system.add_equation(equations[cycle][chain], value):
                return None
        return system.solve()

    # ------------------------------------------------------------------
    # Concrete: expand channel data to scan loads
    # ------------------------------------------------------------------

    def variables_to_channel_stream(
        self, variables: Sequence[int]
    ) -> List[List[int]]:
        """Reshape the flat solution into ``stream[cycle][channel]``."""
        n = self.config.n_channels
        total_cycles = self.config.chain_length + self.config.warmup_cycles
        return [
            list(variables[cycle * n : (cycle + 1) * n])
            for cycle in range(total_cycles)
        ]

    def expand(self, variables: Sequence[int]) -> List[List[int]]:
        """Concrete decompression: returns ``load[chain][position]``.

        Position 0 is the cell next to scan-in, matching
        :meth:`solve_cube`'s coordinates.
        """
        stream = self.variables_to_channel_stream(variables)
        self.generator.reset()
        loads: List[List[int]] = [
            [0] * self.config.chain_length for _ in range(self.config.n_chains)
        ]
        warmup = self.config.warmup_cycles
        for cycle in range(warmup):
            self.generator.step_concrete(stream[cycle])
        for cycle in range(self.config.chain_length):
            self.generator.step_concrete(stream[warmup + cycle])
            chain_bits = self.shifter.concrete(self.generator.state_bits)
            position = self.config.chain_length - 1 - cycle
            for chain in range(self.config.n_chains):
                loads[chain][position] = chain_bits[chain]
        return loads

    def verify(self, care_bits: Dict[Tuple[int, int], int], variables: Sequence[int]) -> bool:
        """Check an expansion honours every care bit (test helper)."""
        loads = self.expand(variables)
        return all(
            loads[chain][position] == value
            for (chain, position), value in care_bits.items()
        )


def encoding_probability(
    config: EdtConfig, care_bit_counts: Sequence[int], seed: int = 0
) -> List[Tuple[int, float]]:
    """Monte-Carlo encoding success rate vs. care-bit count (E5 driver).

    For each count, draws random cubes (random cells, random values) and
    reports the fraction that solve.
    """
    import random as _random

    rng = _random.Random(seed)
    decompressor = Decompressor(config)
    equations = decompressor.cell_equations()
    chain_length = config.chain_length
    results: List[Tuple[int, float]] = []
    cells = [
        (chain, position)
        for chain in range(config.n_chains)
        for position in range(chain_length)
    ]
    trials = 50
    for count in care_bit_counts:
        count = min(count, len(cells))
        successes = 0
        for _ in range(trials):
            chosen = rng.sample(cells, count)
            system = GF2System(config.variables_per_pattern)
            ok = True
            for chain, position in chosen:
                cycle = chain_length - 1 - position
                if not system.add_equation(equations[cycle][chain], rng.randint(0, 1)):
                    ok = False
                    break
            if ok:
                successes += 1
        results.append((count, successes / trials))
    return results
