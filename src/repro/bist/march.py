"""March test algorithms for memory BIST.

A March test is a sequence of *elements*; each element walks the address
space in a direction (``UP``, ``DOWN``, or either) applying a fixed list of
read/write operations to every address before moving on.  The notation
``⇑(r0, w1)`` reads "ascending through all addresses: read expecting 0,
then write 1".

The classic suite implemented here (N = number of addresses):

=========  ==========  ========================================
Algorithm  Complexity  Detects
=========  ==========  ========================================
MATS       4N          some SAF (AF partially)
MATS+      5N          SAF, AF
MATS++     6N          SAF, AF, TF (partially)
March X    6N          SAF, AF, TF, CFin
March Y    8N          SAF, AF, TF, CFin, some linked
March C-   10N         SAF, AF, TF, CFin, CFid, CFst
March A    15N         SAF, AF, TF, CFin, CFid, some linked
March B    17N         March A + more linked faults
=========  ==========  ========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple


class Direction(Enum):
    """Address-walk direction of a March element."""

    UP = "up"
    DOWN = "down"
    EITHER = "either"  # direction irrelevant; runs ascending


@dataclass(frozen=True)
class Operation:
    """One read or write: ``kind`` in {'r', 'w'}, ``value`` in {0, 1}."""

    kind: str
    value: int

    def __str__(self) -> str:
        return f"{self.kind}{self.value}"


def r0() -> Operation:
    return Operation("r", 0)


def r1() -> Operation:
    return Operation("r", 1)


def w0() -> Operation:
    return Operation("w", 0)


def w1() -> Operation:
    return Operation("w", 1)


@dataclass(frozen=True)
class MarchElement:
    """A direction plus its per-address operation list."""

    direction: Direction
    operations: Tuple[Operation, ...]

    def __str__(self) -> str:
        arrow = {"up": "⇑", "down": "⇓", "either": "⇕"}[self.direction.value]
        ops = ",".join(str(op) for op in self.operations)
        return f"{arrow}({ops})"


@dataclass(frozen=True)
class MarchTest:
    """A named March algorithm."""

    name: str
    elements: Tuple[MarchElement, ...]

    @property
    def complexity(self) -> int:
        """Operations per address (the xN in "10N")."""
        return sum(len(element.operations) for element in self.elements)

    def __str__(self) -> str:
        return f"{self.name}: " + "; ".join(str(e) for e in self.elements)


def _element(direction: Direction, *operations: Operation) -> MarchElement:
    return MarchElement(direction, tuple(operations))


MATS = MarchTest(
    "MATS",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.EITHER, r0(), w1()),
        _element(Direction.EITHER, r1()),
    ),
)

MATS_PLUS = MarchTest(
    "MATS+",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.UP, r0(), w1()),
        _element(Direction.DOWN, r1(), w0()),
    ),
)

MATS_PLUS_PLUS = MarchTest(
    "MATS++",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.UP, r0(), w1()),
        _element(Direction.DOWN, r1(), w0(), r0()),
    ),
)

MARCH_X = MarchTest(
    "March X",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.UP, r0(), w1()),
        _element(Direction.DOWN, r1(), w0()),
        _element(Direction.EITHER, r0()),
    ),
)

MARCH_Y = MarchTest(
    "March Y",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.UP, r0(), w1(), r1()),
        _element(Direction.DOWN, r1(), w0(), r0()),
        _element(Direction.EITHER, r0()),
    ),
)

MARCH_C_MINUS = MarchTest(
    "March C-",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.UP, r0(), w1()),
        _element(Direction.UP, r1(), w0()),
        _element(Direction.DOWN, r0(), w1()),
        _element(Direction.DOWN, r1(), w0()),
        _element(Direction.EITHER, r0()),
    ),
)

MARCH_A = MarchTest(
    "March A",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.UP, r0(), w1(), w0(), w1()),
        _element(Direction.UP, r1(), w0(), w1()),
        _element(Direction.DOWN, r1(), w0(), w1(), w0()),
        _element(Direction.DOWN, r0(), w1(), w0()),
    ),
)

MARCH_B = MarchTest(
    "March B",
    (
        _element(Direction.EITHER, w0()),
        _element(Direction.UP, r0(), w1(), r1(), w0(), r0(), w1()),
        _element(Direction.UP, r1(), w0(), w1()),
        _element(Direction.DOWN, r1(), w0(), w1(), w0()),
        _element(Direction.DOWN, r0(), w1(), w0()),
    ),
)

#: All algorithms, cheapest first — the E7 coverage-matrix rows.
ALL_MARCH_TESTS: Tuple[MarchTest, ...] = (
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
    MARCH_A,
    MARCH_B,
)


def march_test_by_name(name: str) -> MarchTest:
    """Look up a March algorithm by its display name."""
    for test in ALL_MARCH_TESTS:
        if test.name == name:
            return test
    raise KeyError(f"unknown March test {name!r}")


def operation_count(test: MarchTest, n_addresses: int) -> int:
    """Total memory operations the test performs on an N-address array."""
    return test.complexity * n_addresses
