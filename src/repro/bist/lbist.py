"""Logic BIST — the STUMPS architecture.

Self-Test Using MISR and Parallel Shift-register sequence generator:
a PRPG (pseudo-random pattern generator LFSR + phase shifter) feeds the
scan chains, the circuit captures, and a MISR hashes the unloaded
responses into a signature compared against the fault-free reference.

The simulation here runs at the *pattern* level: PRPG-generated full-scan
patterns are fault-simulated to obtain coverage (E2/E6 curves), and the
good-machine signature is computed so tests can validate signature
mismatch detection end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..circuit.netlist import Netlist
from ..compression.lfsr import LFSR, PhaseShifter
from ..compression.misr import MISR
from ..faults.collapse import collapse_faults
from ..faults.model import StuckAtFault
from ..faults.stuck_at import full_fault_list
from ..sim.faultsim import FaultSimulator
from ..sim.parallel import WORD_WIDTH


@dataclass
class LbistConfig:
    """STUMPS geometry."""

    prpg_length: int = 24
    misr_length: int = 24
    phase_taps: int = 3
    seed: int = 1


@dataclass
class LbistResult:
    """Coverage curve and signature from one LBIST session."""

    patterns_applied: int = 0
    coverage_points: List[Dict[str, float]] = field(default_factory=list)
    final_coverage: float = 0.0
    signature: int = 0
    total_faults: int = 0
    undetected: List[StuckAtFault] = field(default_factory=list)


class StumpsController:
    """PRPG + MISR wrapped around one netlist's full-scan view.

    ``word_width`` sets the patterns packed per simulation word for both
    the coverage grading and the signature pass, ``kernel`` the
    gate-evaluation backend (see :mod:`repro.sim.npsim`).  The two passes
    share one :class:`ParallelSimulator`, so with chunking aligned
    (``checkpoint_every`` a multiple of ``word_width``) the signature pass
    replays the coverage loop's good-machine blocks straight from the
    response cache.
    """

    def __init__(
        self,
        netlist: Netlist,
        config: Optional[LbistConfig] = None,
        word_width: int = WORD_WIDTH,
        kernel: str = "python",
    ):
        netlist.finalize()
        self.netlist = netlist
        self.config = config or LbistConfig()
        self.simulator = FaultSimulator(netlist, word_width=word_width, kernel=kernel)
        self.parallel = self.simulator.parallel
        n_inputs = self.simulator.view.num_inputs
        self._prpg = LFSR(self.config.prpg_length, seed=self.config.seed | 1)
        self._shifter = PhaseShifter(
            self.config.prpg_length,
            n_inputs,
            taps_per_output=self.config.phase_taps,
            seed=self.config.seed + 3,
        )

    def generate_patterns(self, count: int) -> List[List[int]]:
        """``count`` PRPG patterns over the full-scan view inputs."""
        patterns: List[List[int]] = []
        for _ in range(count):
            self._prpg.step()
            cells = [
                (self._prpg.state >> bit) & 1
                for bit in range(self.config.prpg_length)
            ]
            patterns.append(self._shifter.concrete(cells))
        return patterns

    def good_signature(self, patterns: Sequence[Sequence[int]]) -> int:
        """MISR signature of the fault-free responses."""
        misr = MISR(self.config.misr_length, seed=0)
        width = self.config.misr_length
        for response in self.parallel.responses(patterns):
            # Fold wide responses into MISR-width slices.
            for start in range(0, len(response), width):
                misr.absorb(response[start : start + width])
        return misr.signature

    def run(
        self,
        n_patterns: int,
        faults: Optional[Sequence[StuckAtFault]] = None,
        checkpoint_every: int = 64,
    ) -> LbistResult:
        """Apply ``n_patterns`` PRPG patterns, recording the coverage curve."""
        if faults is None:
            faults, _ = collapse_faults(self.netlist, full_fault_list(self.netlist))
        result = LbistResult(total_faults=len(faults))
        remaining = list(faults)
        detected_total = 0
        all_patterns: List[List[int]] = []
        applied = 0
        with obs.span("coverage_loop"):
            while applied < n_patterns:
                chunk_size = min(checkpoint_every, n_patterns - applied)
                chunk = self.generate_patterns(chunk_size)
                all_patterns.extend(chunk)
                sim = self.simulator.simulate(chunk, remaining, drop=True)
                detected_total += len(sim.detected)
                remaining = [f for f in remaining if f not in sim.detected]
                applied += chunk_size
                result.coverage_points.append(
                    {
                        "patterns": float(applied),
                        "coverage": detected_total / len(faults)
                        if faults
                        else 1.0,
                    }
                )
        result.patterns_applied = applied
        result.final_coverage = detected_total / len(faults) if faults else 1.0
        result.undetected = remaining
        with obs.span("signature"):
            result.signature = self.good_signature(all_patterns)
        _publish_lbist(result)
        return result


def _publish_lbist(result: LbistResult) -> None:
    """Mirror an :class:`LbistResult` into the active observation."""
    observation = obs.current()
    if observation is None:
        return
    observation.add_counters(
        "lbist",
        {
            "patterns_applied": result.patterns_applied,
            "faults": result.total_faults,
            "faults_detected": result.total_faults - len(result.undetected),
        },
    )
    obs.set_gauge("lbist.final_coverage", result.final_coverage)


def _cop_hardness(netlist: Netlist, overrides: dict) -> float:
    """Continuous testability objective: Σ −log10(detection probability).

    Unlike a thresholded hard-line count, this objective moves when a
    *single* input of a wide conjunction is biased, so greedy weight
    selection can climb conjunctive requirements one literal at a time.
    """
    import math

    from ..circuit.gates import GateType
    from .cop import compute_cop

    measures = compute_cop(netlist, cp_override=overrides)
    floor = 1e-9
    total = 0.0
    for gate in netlist.gates:
        if gate.type in (GateType.INPUT, GateType.OUTPUT) or gate.is_sequential:
            continue
        worse = min(
            measures.detection_probability(gate.index, 0),
            measures.detection_probability(gate.index, 1),
        )
        total += -math.log10(max(worse, floor))
    return total


def derive_input_weights(
    netlist: Netlist,
    low: float = 0.25,
    high: float = 0.75,
    min_gain: float = 0.05,
) -> List[float]:
    """Per-input 1-probabilities for weighted-random LBIST.

    Greedy iterative selection on the continuous COP hardness objective:
    each round tries biasing every still-unassigned input toward 0 and
    toward 1 (with earlier choices already applied) and commits the single
    best move; rounds stop when no move improves by ``min_gain``.  Inputs
    never chosen stay at 0.5.
    """
    from ..sim.view import CombinationalView

    netlist.finalize()
    view = CombinationalView(netlist)
    inputs = list(view.input_gates)
    overrides: dict = {}
    chosen: dict = {}

    current = _cop_hardness(netlist, overrides)
    for _ in range(len(inputs)):
        best = None  # (gate, weight, objective)
        for gate in inputs:
            if gate in chosen:
                continue
            for weight in (low, high):
                trial = dict(overrides)
                trial[gate] = weight
                objective = _cop_hardness(netlist, trial)
                if objective < current - min_gain and (
                    best is None or objective < best[2]
                ):
                    best = (gate, weight, objective)
        if best is None:
            break
        gate, weight, objective = best
        overrides[gate] = weight
        chosen[gate] = weight
        current = objective

    return [chosen.get(gate, 0.5) for gate in inputs]


def run_weighted_lbist(
    netlist: Netlist,
    n_patterns: int,
    faults: Optional[Sequence[StuckAtFault]] = None,
    seed: int = 1,
    word_width: int = WORD_WIDTH,
    kernel: str = "python",
) -> LbistResult:
    """LBIST with COP-derived weighted-random patterns.

    Real implementations realize the weights with programmable weighting
    logic behind the PRPG; here the weighted source is modeled directly
    (the coverage comparison against uniform STUMPS is what matters).
    """
    from ..atpg.random_gen import weighted_random_patterns
    from ..sim.faultsim import FaultSimulator

    netlist.finalize()
    if faults is None:
        faults, _ = collapse_faults(netlist, full_fault_list(netlist))
    simulator = FaultSimulator(netlist, word_width=word_width, kernel=kernel)
    with obs.span("derive_weights"):
        weights = derive_input_weights(netlist)
    result = LbistResult(total_faults=len(faults))
    remaining = list(faults)
    detected_total = 0
    applied = 0
    chunk_size = word_width
    with obs.span("coverage_loop"):
        while applied < n_patterns:
            count = min(chunk_size, n_patterns - applied)
            chunk = weighted_random_patterns(
                len(weights), count, weights, seed=seed * 131 + applied
            )
            graded = simulator.simulate(chunk, remaining, drop=True)
            detected_total += len(graded.detected)
            remaining = [f for f in remaining if f not in graded.detected]
            applied += count
            result.coverage_points.append(
                {
                    "patterns": float(applied),
                    "coverage": detected_total / len(faults) if faults else 1.0,
                }
            )
    result.patterns_applied = applied
    result.final_coverage = detected_total / len(faults) if faults else 1.0
    result.undetected = remaining
    _publish_lbist(result)
    return result


def coverage_curve(
    netlist: Netlist,
    n_patterns: int,
    config: Optional[LbistConfig] = None,
    faults: Optional[Sequence[StuckAtFault]] = None,
    checkpoint_every: int = 64,
    word_width: int = WORD_WIDTH,
    kernel: str = "python",
) -> List[Dict[str, float]]:
    """Convenience: just the (patterns, coverage) series for E2/E6 plots."""
    controller = StumpsController(netlist, config, word_width=word_width, kernel=kernel)
    result = controller.run(n_patterns, faults, checkpoint_every)
    return result.coverage_points
