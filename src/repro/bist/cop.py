"""COP — Controllability/Observability Program testability measures.

Where SCOAP counts *assignments*, COP estimates *probabilities* under
uniform random patterns, which is exactly what LBIST applies:

* ``cp[g]`` — probability the signal is 1 (signal probability),
* ``op[g]`` — probability a fault effect on the signal propagates to an
  observation point,
* detection probability of ``g`` s-a-v ≈ ``P(signal = 1-v) * op[g]``.

Both passes ignore reconvergent correlation (the classic COP
approximation); for test-point *selection* that is accurate enough and is
what the published insertion flows (Briers/Totton, Touba) use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from ..faults.model import OUTPUT_PIN, StuckAtFault


@dataclass
class CopMeasures:
    """Per-gate signal and propagation probabilities."""

    cp: List[float]  # P(signal == 1)
    op: List[float]  # P(fault effect observed)

    def detection_probability(self, gate: int, stuck_value: int) -> float:
        excite = self.cp[gate] if stuck_value == 0 else 1.0 - self.cp[gate]
        return excite * self.op[gate]

    def fault_detection_probability(
        self, netlist: Netlist, fault: StuckAtFault
    ) -> float:
        """Detection probability for stem or branch faults."""
        if fault.pin == OUTPUT_PIN:
            return self.detection_probability(fault.gate, fault.value)
        driver = netlist.gates[fault.gate].fanin[fault.pin]
        excite = self.cp[driver] if fault.value == 0 else 1.0 - self.cp[driver]
        # Branch observability approximated by the consuming gate's port.
        return excite * self.op[fault.gate] if self.op[fault.gate] else excite * self.op[driver]


def compute_cop(
    netlist: Netlist,
    cp_override: "Optional[Dict[int, float]]" = None,
    extra_observe: "Optional[set]" = None,
) -> CopMeasures:
    """One forward pass for cp, one backward pass for op.

    ``cp_override`` pins chosen gates' signal probabilities (what-if model
    of a control point randomizing a line); ``extra_observe`` adds virtual
    observation points (what-if model of tapping a line to an output).
    """
    netlist.finalize()
    gates = netlist.gates
    cp = [0.5] * len(gates)
    cp_override = cp_override or {}
    extra_observe = extra_observe or set()

    for index in netlist.topo_order:
        gate = gates[index]
        t = gate.type
        if index in cp_override:
            cp[index] = cp_override[index]
            continue
        if t == GateType.INPUT or gate.is_sequential:
            cp[index] = 0.5
            continue
        if t == GateType.CONST0:
            cp[index] = 0.0
            continue
        if t == GateType.CONST1:
            cp[index] = 1.0
            continue
        probs = [cp[d] for d in gate.fanin]
        if t in (GateType.BUF, GateType.OUTPUT):
            cp[index] = probs[0]
        elif t == GateType.NOT:
            cp[index] = 1.0 - probs[0]
        elif t in (GateType.AND, GateType.NAND):
            p = 1.0
            for q in probs:
                p *= q
            cp[index] = 1.0 - p if t == GateType.NAND else p
        elif t in (GateType.OR, GateType.NOR):
            p = 1.0
            for q in probs:
                p *= 1.0 - q
            cp[index] = p if t == GateType.NOR else 1.0 - p
        elif t in (GateType.XOR, GateType.XNOR):
            p_odd = 0.0
            for q in probs:
                p_odd = p_odd * (1.0 - q) + (1.0 - p_odd) * q
            cp[index] = 1.0 - p_odd if t == GateType.XNOR else p_odd
        elif t == GateType.MUX2:
            select, when0, when1 = probs
            cp[index] = (1.0 - select) * when0 + select * when1
        else:  # pragma: no cover
            cp[index] = 0.5

    op = [0.0] * len(gates)
    for po in netlist.outputs:
        op[po] = 1.0
        op[gates[po].fanin[0]] = 1.0
    for flop in netlist.flops:
        op[gates[flop].fanin[0]] = 1.0
    for observed in extra_observe:
        op[observed] = 1.0

    for index in reversed(netlist.topo_order):
        gate = gates[index]
        if gate.type == GateType.INPUT or gate.is_sequential:
            continue
        base = op[index]
        if base == 0.0:
            continue
        t = gate.type
        fanin = gate.fanin
        for pin, driver in enumerate(fanin):
            if t in (GateType.BUF, GateType.NOT, GateType.OUTPUT):
                through = base
            elif t in (GateType.AND, GateType.NAND):
                through = base
                for p, other in enumerate(fanin):
                    if p != pin:
                        through *= cp[other]
            elif t in (GateType.OR, GateType.NOR):
                through = base
                for p, other in enumerate(fanin):
                    if p != pin:
                        through *= 1.0 - cp[other]
            elif t in (GateType.XOR, GateType.XNOR):
                through = base  # XOR always propagates
            elif t == GateType.MUX2:
                select, when0, when1 = fanin
                if driver == select and pin == 0:
                    # Select change observed when the data inputs differ.
                    p0, p1 = cp[when0], cp[when1]
                    through = base * (p0 * (1 - p1) + (1 - p0) * p1)
                elif pin == 1:
                    through = base * (1.0 - cp[select])
                else:
                    through = base * cp[select]
            else:  # pragma: no cover
                through = base * 0.5
            if through > op[driver]:
                op[driver] = through

    return CopMeasures(cp=cp, op=op)


def hard_fault_count(
    netlist: Netlist,
    measures: CopMeasures,
    threshold: float,
    faults: List[StuckAtFault],
) -> int:
    """Faults whose random detection probability is below ``threshold``."""
    return sum(
        1
        for fault in faults
        if measures.fault_detection_probability(netlist, fault) < threshold
    )


def hard_line_count(netlist: Netlist, measures: CopMeasures, threshold: float) -> int:
    """Gates whose harder stuck-at fault stays below ``threshold``.

    The what-if objective test-point selection minimizes: each inserted
    point should convert as many hard lines as possible into random-
    detectable ones.
    """
    count = 0
    for gate in netlist.gates:
        if gate.type in (GateType.INPUT, GateType.OUTPUT):
            continue
        worse = min(
            measures.detection_probability(gate.index, 0),
            measures.detection_probability(gate.index, 1),
        )
        if worse < threshold:
            count += 1
    return count
