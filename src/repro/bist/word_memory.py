"""Word-oriented memory test with data backgrounds.

Real accelerator SRAMs are word-oriented (32-256 bits per access).  A
March test applied word-wide with a single solid background cannot tell
the bits of a word apart, so **intra-word coupling faults escape**.  The
standard fix runs the March algorithm once per *data background* —
``log2(width) + 1`` patterns (solid, checkerboard, double-stripe, …) are
sufficient to distinguish every bit pair within a word.

:class:`WordMemory` wraps the bit-level :class:`~repro.bist.memory.Memory`
(cell index = ``word * width + bit``) so every bit-level fault model works
unchanged, including coupling between bits of the *same word*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .march import Direction, MarchTest
from .memory import Memory, MemoryFault


class WordMemory:
    """A ``n_words x width`` memory over the bit-level fault model."""

    def __init__(self, n_words: int, width: int, faults: Sequence[MemoryFault] = ()):
        if n_words < 2 or width < 1:
            raise ValueError("need at least 2 words and 1 bit per word")
        self.n_words = n_words
        self.width = width
        self.bits = Memory(n_words * width, faults=faults)

    def cell_index(self, word: int, bit: int) -> int:
        """Flattened bit-cell index of (word, bit)."""
        if not 0 <= word < self.n_words or not 0 <= bit < self.width:
            raise IndexError(f"({word}, {bit}) out of range")
        return word * self.width + bit

    def write_word(self, word: int, value: int) -> None:
        """Write ``width`` bits (LSB first) to one word."""
        base = self.cell_index(word, 0)
        for bit in range(self.width):
            self.bits.write(base + bit, (value >> bit) & 1)

    def read_word(self, word: int) -> int:
        """Read one word as an int (LSB first)."""
        base = self.cell_index(word, 0)
        value = 0
        for bit in range(self.width):
            value |= self.bits.read(base + bit) << bit
        return value


def standard_backgrounds(width: int) -> List[int]:
    """Solid plus stripe backgrounds: ``log2(width) + 1`` patterns.

    For width 8: ``00000000``, ``01010101``, ``00110011``, ``00001111``.
    Every bit pair within a word differs under at least one background,
    which is the property intra-word coupling detection needs.
    """
    backgrounds = [0]
    stripe = 1
    while stripe < width:
        pattern = 0
        for bit in range(width):
            if (bit // stripe) % 2 == 1:
                pattern |= 1 << bit
        backgrounds.append(pattern)
        stripe *= 2
    return backgrounds


@dataclass
class WordMarchResult:
    """Per-background March outcomes for a word memory."""

    test_name: str
    backgrounds: List[int]
    failures_per_background: List[int]
    operations: int

    @property
    def passed(self) -> bool:
        return all(count == 0 for count in self.failures_per_background)

    @property
    def detected_by(self) -> List[int]:
        """Backgrounds (values) that caught something."""
        return [
            background
            for background, count in zip(
                self.backgrounds, self.failures_per_background
            )
            if count
        ]


def run_march_word(
    memory: WordMemory,
    test: MarchTest,
    backgrounds: Optional[Sequence[int]] = None,
) -> WordMarchResult:
    """Run a March test word-wide, once per data background.

    ``w0``/``r0`` use the background value, ``w1``/``r1`` its complement —
    the standard word-oriented interpretation.
    """
    if backgrounds is None:
        backgrounds = standard_backgrounds(memory.width)
    mask = (1 << memory.width) - 1
    failures: List[int] = []
    operations = 0
    for background in backgrounds:
        data = {0: background & mask, 1: ~background & mask}
        fail_count = 0
        for element in test.elements:
            if element.direction == Direction.DOWN:
                addresses = range(memory.n_words - 1, -1, -1)
            else:
                addresses = range(memory.n_words)
            for address in addresses:
                for operation in element.operations:
                    operations += 1
                    if operation.kind == "w":
                        memory.write_word(address, data[operation.value])
                    else:
                        observed = memory.read_word(address)
                        if observed != data[operation.value]:
                            fail_count += 1
        failures.append(fail_count)
    return WordMarchResult(
        test_name=test.name,
        backgrounds=list(backgrounds),
        failures_per_background=failures,
        operations=operations,
    )


def intra_word_coupling_fault(
    word: int, victim_bit: int, aggressor_bit: int, width: int, value: int = 1
) -> MemoryFault:
    """A state-coupling (CFst) fault between two bits of the same word.

    Intra-word coupling manifests through *reads*: a word write drives all
    bits simultaneously, so a write-triggered disturbance of the victim is
    immediately overwritten by the victim's own write driver.  What
    survives is the read-disturb: the victim reads ``value`` whenever the
    aggressor bit holds 1.  Under a solid background victim and aggressor
    always agree, so the forced value matches the expected one — the
    classic escape that stripe backgrounds exist to close.
    """
    return MemoryFault(
        "CFst",
        cell=word * width + victim_bit,
        aggressor=word * width + aggressor_bit,
        value=value,
        aggressor_state=1,
    )
