"""Memory BIST controller: run March tests against the SRAM model.

:func:`run_march` executes one algorithm on one memory and reports whether
any read miscompared — the pass/fail a hardware MBIST controller would
latch.  :func:`coverage_matrix` reproduces the E7 table: detection rate of
each March algorithm against each functional fault model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import obs
from .march import Direction, MarchTest, ALL_MARCH_TESTS
from .memory import FAULT_KINDS, Memory, MemoryFault, sample_faults


@dataclass
class MarchRunResult:
    """Outcome of one March run."""

    test_name: str
    passed: bool
    operations: int
    first_failure: Optional[Dict[str, int]] = None  # element/address/op info
    failures: int = 0


def run_march(memory: Memory, test: MarchTest, stop_on_first: bool = False) -> MarchRunResult:
    """Execute ``test`` on ``memory``; reads are checked against expectation."""
    operations = 0
    failures = 0
    first_failure: Optional[Dict[str, int]] = None
    for element_index, element in enumerate(test.elements):
        if element.direction == Direction.DOWN:
            addresses = range(memory.n_cells - 1, -1, -1)
        else:
            addresses = range(memory.n_cells)
        for address in addresses:
            for op_index, operation in enumerate(element.operations):
                operations += 1
                if operation.kind == "w":
                    memory.write(address, operation.value)
                    continue
                observed = memory.read(address)
                if observed != operation.value:
                    failures += 1
                    if first_failure is None:
                        first_failure = {
                            "element": element_index,
                            "address": address,
                            "operation": op_index,
                            "expected": operation.value,
                            "observed": observed,
                        }
                    if stop_on_first:
                        return _publish_march(
                            MarchRunResult(
                                test.name, False, operations, first_failure, failures
                            )
                        )
    return _publish_march(
        MarchRunResult(
            test.name, failures == 0, operations, first_failure, failures
        )
    )


def _publish_march(result: MarchRunResult) -> MarchRunResult:
    """Mirror one March run into the active observation."""
    observation = obs.current()
    if observation is not None:
        observation.counter("mbist.march_runs").add(1)
        observation.counter("mbist.operations").add(result.operations)
        observation.counter("mbist.failures").add(result.failures)
    return result


def detects_fault(test: MarchTest, fault: MemoryFault, n_cells: int = 64) -> bool:
    """Does ``test`` catch a single injected fault on a fresh memory?"""
    memory = Memory(n_cells, faults=[fault])
    return not run_march(memory, test, stop_on_first=True).passed


@dataclass
class CoverageCell:
    """One (algorithm, fault-kind) entry of the E7 matrix."""

    detected: int
    total: int

    @property
    def rate(self) -> float:
        return self.detected / self.total if self.total else 1.0


def coverage_matrix(
    tests: Sequence[MarchTest] = ALL_MARCH_TESTS,
    fault_kinds: Sequence[str] = FAULT_KINDS,
    n_cells: int = 64,
    samples_per_kind: int = 40,
    seed: int = 0,
) -> Dict[str, Dict[str, CoverageCell]]:
    """Detection-rate matrix: ``matrix[test.name][kind] -> CoverageCell``.

    For each fault kind, the same sampled fault population is graded
    against every algorithm, so columns are directly comparable.
    """
    populations = {
        kind: sample_faults(n_cells, kind, samples_per_kind, seed=seed)
        for kind in fault_kinds
    }
    matrix: Dict[str, Dict[str, CoverageCell]] = {}
    with obs.span(
        "coverage_matrix", tests=len(tests), fault_kinds=len(fault_kinds)
    ):
        for test in tests:
            row: Dict[str, CoverageCell] = {}
            for kind, faults in populations.items():
                detected = sum(
                    1 for fault in faults if detects_fault(test, fault, n_cells)
                )
                row[kind] = CoverageCell(detected=detected, total=len(faults))
            matrix[test.name] = row
    return matrix


def format_matrix(matrix: Dict[str, Dict[str, CoverageCell]]) -> str:
    """Render the coverage matrix as an aligned text table."""
    kinds = list(next(iter(matrix.values())).keys())
    header = f"{'algorithm':<10}" + "".join(f"{kind:>8}" for kind in kinds)
    lines = [header]
    for name, row in matrix.items():
        cells = "".join(f"{row[kind].rate:>8.2f}" for kind in kinds)
        lines.append(f"{name:<10}{cells}")
    return "\n".join(lines)
