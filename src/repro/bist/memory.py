"""Behavioral SRAM model with injectable memory faults.

AI chips devote most of their area to on-chip SRAM (weight and activation
buffers), so memory BIST carries a large share of the test burden.  The
model here is a bit-oriented array (one bit per address — word-oriented
arrays run one bit-slice at a time, exactly how March tests treat them)
with the classic functional fault models injected as read/write hooks:

=========  ======================================================
``SAF``    stuck-at fault: the cell always holds 0 or 1
``TF``     transition fault: the cell cannot make one transition
``CFin``   inversion coupling: an aggressor *transition* inverts the victim
``CFid``   idempotent coupling: an aggressor transition forces the victim
``CFst``   state coupling: while the aggressor holds a state, the victim
           is forced to a value (checked on victim reads)
``AF``     address-decoder fault: two addresses select the same cell
``SOF``    stuck-open fault: reading the cell returns the previous read
=========  ======================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass(frozen=True)
class MemoryFault:
    """One injected functional fault.

    Field meaning depends on ``kind``:

    * ``SAF``: ``cell``, ``value`` (stuck value)
    * ``TF``: ``cell``, ``value`` (the unreachable target: 1 = can't rise)
    * ``CFin``: ``cell`` (victim), ``aggressor``, ``value`` (aggressor
      transition direction: 1 = rising)
    * ``CFid``: victim ``cell``, ``aggressor``, ``value`` (forced victim
      value), ``aggressor_transition`` (1 = rising)
    * ``CFst``: victim ``cell``, ``aggressor``, ``value`` (forced victim
      value), ``aggressor_state``
    * ``AF``: ``cell`` (the shadowed address), ``aggressor`` (the address it
      aliases to)
    * ``SOF``: ``cell``
    """

    kind: str
    cell: int
    aggressor: int = -1
    value: int = 0
    aggressor_transition: int = 1
    aggressor_state: int = 1

    def describe(self) -> str:
        if self.kind == "SAF":
            return f"SAF cell {self.cell} stuck-at-{self.value}"
        if self.kind == "TF":
            direction = "rise" if self.value else "fall"
            return f"TF cell {self.cell} cannot {direction}"
        if self.kind == "CFin":
            edge = "rising" if self.value else "falling"
            return f"CFin victim {self.cell} flips on {edge} write to {self.aggressor}"
        if self.kind == "CFid":
            edge = "rising" if self.aggressor_transition else "falling"
            return (
                f"CFid victim {self.cell} forced to {self.value} on {edge} "
                f"write to {self.aggressor}"
            )
        if self.kind == "CFst":
            return (
                f"CFst victim {self.cell} reads {self.value} while "
                f"{self.aggressor}=={self.aggressor_state}"
            )
        if self.kind == "AF":
            return f"AF address {self.cell} aliases to {self.aggressor}"
        if self.kind == "SOF":
            return f"SOF cell {self.cell} (read returns previous read)"
        return f"{self.kind}?"


#: All supported fault kinds, in the order the E7 matrix reports them.
FAULT_KINDS = ("SAF", "TF", "CFin", "CFid", "CFst", "AF", "SOF")


class Memory:
    """Bit-oriented SRAM with optional injected faults."""

    def __init__(self, n_cells: int, faults: Sequence[MemoryFault] = ()):
        if n_cells < 2:
            raise ValueError("memory needs at least two cells")
        self.n_cells = n_cells
        self.cells: List[int] = [0] * n_cells
        self.faults = list(faults)
        self._last_read: Dict[int, int] = {}
        for fault in self.faults:
            self._check_fault(fault)

    def _check_fault(self, fault: MemoryFault) -> None:
        if fault.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {fault.kind!r}")
        if not 0 <= fault.cell < self.n_cells:
            raise ValueError(f"fault cell {fault.cell} out of range")
        if fault.kind in ("CFin", "CFid", "CFst", "AF"):
            if not 0 <= fault.aggressor < self.n_cells:
                raise ValueError(f"aggressor {fault.aggressor} out of range")
            if fault.aggressor == fault.cell:
                raise ValueError("aggressor and victim must differ")

    def _effective_address(self, address: int) -> int:
        """Apply address-decoder faults."""
        for fault in self.faults:
            if fault.kind == "AF" and fault.cell == address:
                return fault.aggressor
        return address

    def write(self, address: int, value: int) -> None:
        """Write one bit, honouring every injected fault."""
        if not 0 <= address < self.n_cells:
            raise IndexError(f"address {address} out of range")
        value &= 1
        address = self._effective_address(address)
        old = self.cells[address]
        new = value
        for fault in self.faults:
            if fault.kind == "SAF" and fault.cell == address:
                new = fault.value
            elif fault.kind == "TF" and fault.cell == address:
                if old != fault.value and new == fault.value:
                    new = old  # the transition does not happen
        self.cells[address] = new

        # Coupling effects triggered by an aggressor transition.
        if new != old:
            rising = 1 if new == 1 else 0
            for fault in self.faults:
                if fault.aggressor != address:
                    continue
                if fault.kind == "CFin" and fault.value == rising:
                    victim = fault.cell
                    self.cells[victim] = self._apply_cell_faults(
                        victim, 1 - self.cells[victim]
                    )
                elif fault.kind == "CFid" and fault.aggressor_transition == rising:
                    victim = fault.cell
                    self.cells[victim] = self._apply_cell_faults(victim, fault.value)

    def _apply_cell_faults(self, cell: int, value: int) -> int:
        """SAF/TF constraints on a coupling-forced victim value."""
        old = self.cells[cell]
        for fault in self.faults:
            if fault.kind == "SAF" and fault.cell == cell:
                return fault.value
            if fault.kind == "TF" and fault.cell == cell:
                if old != fault.value and value == fault.value:
                    return old
        return value

    def read(self, address: int) -> int:
        """Read one bit, honouring every injected fault."""
        if not 0 <= address < self.n_cells:
            raise IndexError(f"address {address} out of range")
        address = self._effective_address(address)
        value = self.cells[address]
        for fault in self.faults:
            if fault.kind == "SAF" and fault.cell == address:
                value = fault.value
            elif fault.kind == "CFst" and fault.cell == address:
                if self.cells[fault.aggressor] == fault.aggressor_state:
                    value = fault.value
            elif fault.kind == "SOF" and fault.cell == address:
                value = self._last_read.get(address, value)
        self._last_read[address] = value
        return value


def sample_faults(
    n_cells: int,
    kind: str,
    count: int,
    seed: int = 0,
) -> List[MemoryFault]:
    """Draw ``count`` random single faults of one kind (for E7)."""
    rng = random.Random(seed ^ hash(kind) & 0xFFFF)
    faults: List[MemoryFault] = []
    for _ in range(count):
        cell = rng.randrange(n_cells)
        aggressor = rng.randrange(n_cells)
        while aggressor == cell:
            aggressor = rng.randrange(n_cells)
        if kind == "SAF":
            faults.append(MemoryFault("SAF", cell, value=rng.randint(0, 1)))
        elif kind == "TF":
            faults.append(MemoryFault("TF", cell, value=rng.randint(0, 1)))
        elif kind == "CFin":
            faults.append(
                MemoryFault("CFin", cell, aggressor=aggressor, value=rng.randint(0, 1))
            )
        elif kind == "CFid":
            faults.append(
                MemoryFault(
                    "CFid",
                    cell,
                    aggressor=aggressor,
                    value=rng.randint(0, 1),
                    aggressor_transition=rng.randint(0, 1),
                )
            )
        elif kind == "CFst":
            faults.append(
                MemoryFault(
                    "CFst",
                    cell,
                    aggressor=aggressor,
                    value=rng.randint(0, 1),
                    aggressor_state=rng.randint(0, 1),
                )
            )
        elif kind == "AF":
            faults.append(MemoryFault("AF", cell, aggressor=aggressor))
        elif kind == "SOF":
            faults.append(MemoryFault("SOF", cell))
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
    return faults
