"""Test-point insertion for logic BIST.

Random patterns saturate below full coverage because some lines are nearly
impossible to control or observe by chance (wide AND cones being the classic
offender in comparator/decoder logic).  The fix the tutorial teaches:

* **control points** — an extra OR (or AND) gate mixes a BIST-driven signal
  into a line whose signal probability is stuck near 0 (or 1), restoring a
  ~0.5 probability during BIST;
* **observation points** — a new output tapping a line whose fault effects
  rarely propagate, making its whole fanin cone directly observable.

Placement is **iterative and COP-driven**: after every insertion the
probabilities are recomputed, so later points target what the earlier ones
have not already fixed — the structure of the published insertion flows
(Briers/Totton-style scoring on COP measures).

During functional mode the control inputs are held at their neutral value;
during BIST the PRPG drives them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .cop import CopMeasures, compute_cop, hard_line_count


@dataclass
class TestPointPlan:
    """What was inserted and where."""

    netlist: Netlist
    control_points: List[Tuple[int, str]] = field(default_factory=list)  # (line, kind)
    observe_points: List[int] = field(default_factory=list)
    control_inputs: List[int] = field(default_factory=list)  # new PI indices

    @property
    def n_points(self) -> int:
        return len(self.control_points) + len(self.observe_points)


_SKIP_TYPES = {GateType.INPUT, GateType.OUTPUT, GateType.CONST0, GateType.CONST1}


def _candidates(netlist: Netlist) -> List[int]:
    return [
        gate.index
        for gate in netlist.gates
        if gate.type not in _SKIP_TYPES and not gate.is_sequential and gate.fanout
    ]


#: Detection-probability threshold below which a line counts as "hard".
#: Matches a ~1000-pattern LBIST budget.
HARD_THRESHOLD = 1e-3


def _what_if_observe(netlist: Netlist, line: int) -> int:
    """Hard lines remaining if ``line`` were tapped to an output."""
    measures = compute_cop(netlist, extra_observe={line})
    return hard_line_count(netlist, measures, HARD_THRESHOLD)


def _what_if_control(netlist: Netlist, line: int) -> int:
    """Hard lines remaining if ``line``'s probability were randomized."""
    measures = compute_cop(netlist, cp_override={line: 0.5})
    return hard_line_count(netlist, measures, HARD_THRESHOLD)


def _insert_control(modified: Netlist, line: int, cp_value: float, tag: int) -> Tuple[int, str, int]:
    """Splice an OR/AND control gate after ``line``; returns (pt, kind, pi)."""
    enable = modified.add(GateType.INPUT, f"tp_ctrl{tag}")
    if cp_value < 0.5:
        point = modified.add(GateType.OR, f"tp_or_{line}_{tag}", [line, enable])
        kind = "or"
    else:
        point = modified.add(GateType.AND, f"tp_and_{line}_{tag}", [line, enable])
        kind = "and"
    for gate in modified.gates:
        if gate.index == point:
            continue
        gate.fanin = [point if driver == line else driver for driver in gate.fanin]
    modified.gates[point].fanin = [line, enable]
    modified._topo = None
    modified.finalize()
    return point, kind, enable


def insert_test_points(
    netlist: Netlist,
    n_control: int = 4,
    n_observe: int = 4,
    name: Optional[str] = None,
) -> TestPointPlan:
    """Iteratively insert control/observation points by COP benefit.

    Each round recomputes COP on the netlist-so-far and takes the single
    highest-scoring remaining action of the requested kind, so a cone fixed
    by one point stops attracting further points.
    """
    netlist.finalize()
    modified = netlist.clone(name or f"{netlist.name}_tp")
    modified.finalize()
    plan = TestPointPlan(netlist=modified)
    used_control: set = set()
    used_observe: set = set()

    # Interleave so both resources attack the current worst offender.
    interleaved: List[str] = []
    control_left, observe_left = n_control, n_observe
    while control_left or observe_left:
        if control_left:
            interleaved.append("control")
            control_left -= 1
        if observe_left:
            interleaved.append("observe")
            observe_left -= 1

    for action in interleaved:
        measures = compute_cop(modified)
        baseline = hard_line_count(modified, measures, HARD_THRESHOLD)
        if baseline == 0:
            break
        candidates = [
            line
            for line in _candidates(modified)
            if not modified.gates[line].name.startswith("tp_")
        ]
        # Pre-filter: only lines that are themselves part of the problem can
        # fix it (extreme probability or blind spot), keeping the exact
        # what-if evaluation affordable.
        if action == "control":
            candidates = [
                line
                for line in candidates
                if line not in used_control
                and min(measures.cp[line], 1.0 - measures.cp[line]) < 0.25
            ]
            best_line, best_remaining = None, baseline
            for line in candidates:
                remaining = _what_if_control(modified, line)
                if remaining < best_remaining:
                    best_line, best_remaining = line, remaining
            if best_line is None:
                continue
            _, kind, enable = _insert_control(
                modified, best_line, measures.cp[best_line], len(plan.control_inputs)
            )
            plan.control_inputs.append(enable)
            plan.control_points.append((best_line, kind))
            used_control.add(best_line)
        else:
            candidates = [
                line
                for line in candidates
                if line not in used_observe and measures.op[line] < 0.25
            ]
            best_line, best_remaining = None, baseline
            for line in candidates:
                remaining = _what_if_observe(modified, line)
                if remaining < best_remaining:
                    best_line, best_remaining = line, remaining
            if best_line is None:
                continue
            modified.add(GateType.OUTPUT, f"tp_obs_{best_line}", [best_line])
            modified._topo = None
            modified.finalize()
            plan.observe_points.append(best_line)
            used_observe.add(best_line)

    return plan


def neutral_control_values(plan: TestPointPlan) -> List[int]:
    """Functional-mode values for the control-point inputs, in order."""
    values: List[int] = []
    for _, kind in plan.control_points:
        values.append(0 if kind == "or" else 1)
    return values
