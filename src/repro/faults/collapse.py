"""Structural fault-equivalence collapsing.

Two faults are *equivalent* when every test for one detects the other; only
one representative per equivalence class needs to enter ATPG/fault
simulation.  The classic structural rules implemented here:

* ``BUF``/``OUTPUT``/flop D pin: input s-a-v ≡ output s-a-v
* ``NOT``: input s-a-v ≡ output s-a-(1-v)
* ``AND``: any input s-a-0 ≡ output s-a-0 (``NAND``: ≡ output s-a-1)
* ``OR``: any input s-a-1 ≡ output s-a-1 (``NOR``: ≡ output s-a-0)

Collapsing typically shrinks the uncollapsed universe by 40-60 %.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .model import OUTPUT_PIN, StuckAtFault


class _UnionFind:
    """Minimal union-find keyed by hashable items."""

    def __init__(self) -> None:
        self.parent: Dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self.parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self.parent[item] = root
        return root

    def union(self, left: object, right: object) -> None:
        root_l, root_r = self.find(left), self.find(right)
        if root_l != root_r:
            self.parent[root_r] = root_l


def line_fault(netlist: Netlist, gate: int, pin: int, value: int) -> StuckAtFault:
    """Canonical fault handle for a line.

    A branch whose driver has a single fanout *is* the stem, so the fault is
    recorded on the driver's output instead.
    """
    if pin == OUTPUT_PIN:
        return StuckAtFault(gate, OUTPUT_PIN, value)
    driver = netlist.gates[gate].fanin[pin]
    if len(netlist.gates[driver].fanout) == 1:
        return StuckAtFault(driver, OUTPUT_PIN, value)
    return StuckAtFault(gate, pin, value)


_SAME_VALUE_TRANSPARENT = (GateType.BUF, GateType.OUTPUT, GateType.DFF)


def collapse_faults(
    netlist: Netlist, faults: Sequence[StuckAtFault]
) -> Tuple[List[StuckAtFault], Dict[StuckAtFault, StuckAtFault]]:
    """Collapse a stuck-at list into equivalence-class representatives.

    Returns ``(representatives, mapping)`` where ``mapping`` sends every
    input fault to its class representative (which is itself in
    ``representatives``).  Representatives are chosen deterministically as
    the smallest fault in each class under dataclass ordering.
    """
    netlist.finalize()
    uf = _UnionFind()
    for fault in faults:
        uf.find(fault)

    for gate in netlist.gates:
        gate_type = gate.type
        for value in (0, 1):
            out_fault = StuckAtFault(gate.index, OUTPUT_PIN, value)
            if gate_type in _SAME_VALUE_TRANSPARENT or gate_type == GateType.SDFF:
                # Only the functional D pin (pin 0) is equivalent through.
                pins = [0] if gate.fanin else []
                for pin in pins:
                    in_fault = line_fault(netlist, gate.index, pin, value)
                    target = (
                        line_fault(netlist, gate.index, OUTPUT_PIN, value)
                        if gate_type == GateType.OUTPUT
                        else out_fault
                    )
                    if gate_type == GateType.OUTPUT:
                        continue  # marker has no stem; nothing to merge
                    uf.union(target, in_fault)
            elif gate_type == GateType.NOT:
                in_fault = line_fault(netlist, gate.index, 0, 1 - value)
                uf.union(out_fault, in_fault)
            elif gate_type in (GateType.AND, GateType.NAND) and value == _and_out(gate_type):
                for pin in range(len(gate.fanin)):
                    uf.union(out_fault, line_fault(netlist, gate.index, pin, 0))
            elif gate_type in (GateType.OR, GateType.NOR) and value == _or_out(gate_type):
                for pin in range(len(gate.fanin)):
                    uf.union(out_fault, line_fault(netlist, gate.index, pin, 1))

    classes: Dict[object, List[StuckAtFault]] = {}
    for fault in faults:
        classes.setdefault(uf.find(fault), []).append(fault)
    mapping: Dict[StuckAtFault, StuckAtFault] = {}
    representatives: List[StuckAtFault] = []
    for members in classes.values():
        representative = min(members)
        representatives.append(representative)
        for member in members:
            mapping[member] = representative
    representatives.sort()
    return representatives, mapping


def _and_out(gate_type: GateType) -> int:
    """Output value of AND-family gates when an input is stuck controlling."""
    return 1 if gate_type == GateType.NAND else 0


def _or_out(gate_type: GateType) -> int:
    """Output value of OR-family gates when an input is stuck controlling."""
    return 0 if gate_type == GateType.NOR else 1


def collapse_ratio(original: int, collapsed: int) -> float:
    """Fraction of faults removed by collapsing."""
    if original == 0:
        return 0.0
    return 1.0 - collapsed / original
