"""Fault model primitives.

A *fault site* is a line of the netlist: either a gate's output stem
(``pin == OUTPUT_PIN``) or one of its input branches (``pin >= 0``, the
fanin position).  Three classic fault models are provided:

* :class:`StuckAtFault` — the line is permanently 0 or 1.
* :class:`TransitionFault` — the line is slow-to-rise or slow-to-fall; it
  behaves like a temporary stuck-at in the second vector of a pattern pair.
* :class:`BridgingFault` — two nets are shorted (wired-AND, wired-OR, or one
  net dominates the other).

All are frozen dataclasses so they hash into fault lists and dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.netlist import Netlist

#: ``pin`` value denoting a fault on the gate's output stem.
OUTPUT_PIN = -1


@dataclass(frozen=True, order=True)
class StuckAtFault:
    """Line permanently stuck at ``value`` (0 or 1)."""

    gate: int
    pin: int
    value: int

    def describe(self, netlist: Netlist) -> str:
        gate = netlist.gates[self.gate]
        if self.pin == OUTPUT_PIN:
            where = gate.name
        else:
            driver = netlist.gates[gate.fanin[self.pin]].name
            where = f"{gate.name}.in{self.pin}({driver})"
        return f"{where} s-a-{self.value}"


@dataclass(frozen=True, order=True)
class TransitionFault:
    """Line slow to reach ``slow_to`` (1 = slow-to-rise, 0 = slow-to-fall).

    Detected by a pattern pair that launches the opposite value first and
    then attempts the transition while the fault effect (a transient
    stuck-at ``1 - slow_to``) propagates to an observation point.
    """

    gate: int
    pin: int
    slow_to: int

    @property
    def acts_as_stuck(self) -> int:
        """The stuck value the line exhibits during the capture vector."""
        return 1 - self.slow_to

    def describe(self, netlist: Netlist) -> str:
        gate = netlist.gates[self.gate]
        if self.pin == OUTPUT_PIN:
            where = gate.name
        else:
            driver = netlist.gates[gate.fanin[self.pin]].name
            where = f"{gate.name}.in{self.pin}({driver})"
        kind = "STR" if self.slow_to == 1 else "STF"
        return f"{where} {kind}"


@dataclass(frozen=True, order=True)
class BridgingFault:
    """Short between the outputs of gates ``net_a`` and ``net_b``.

    ``kind`` selects the resolution function: ``"and"`` (wired-AND),
    ``"or"`` (wired-OR), ``"dom_a"`` (net A drives both), ``"dom_b"``.
    """

    net_a: int
    net_b: int
    kind: str

    def resolved(self, value_a: int, value_b: int) -> "tuple[int, int]":
        """Values the two nets take given their driven values (2-valued)."""
        if self.kind == "and":
            both = value_a & value_b
            return both, both
        if self.kind == "or":
            both = value_a | value_b
            return both, both
        if self.kind == "dom_a":
            return value_a, value_a
        if self.kind == "dom_b":
            return value_b, value_b
        raise ValueError(f"unknown bridging kind {self.kind!r}")

    def describe(self, netlist: Netlist) -> str:
        a = netlist.gates[self.net_a].name
        b = netlist.gates[self.net_b].name
        return f"bridge[{self.kind}]({a},{b})"
