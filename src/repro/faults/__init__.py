"""Fault models: stuck-at, transition-delay, bridging; collapsing."""

from .bridging import sample_bridging_faults
from .collapse import collapse_faults, collapse_ratio, line_fault
from .model import OUTPUT_PIN, BridgingFault, StuckAtFault, TransitionFault
from .path_delay import (
    NON_ROBUST,
    NOT_TESTED,
    ROBUST,
    DelayPath,
    PathDelayFault,
    classify_pair,
    grade_paths,
    longest_paths,
    path_delay_faults,
)
from .stuck_at import fault_sites, full_fault_list, output_stem_faults
from .transition import full_transition_list

__all__ = [
    "OUTPUT_PIN",
    "StuckAtFault",
    "TransitionFault",
    "BridgingFault",
    "fault_sites",
    "full_fault_list",
    "output_stem_faults",
    "full_transition_list",
    "sample_bridging_faults",
    "collapse_faults",
    "collapse_ratio",
    "line_fault",
    "DelayPath",
    "PathDelayFault",
    "longest_paths",
    "path_delay_faults",
    "classify_pair",
    "grade_paths",
    "ROBUST",
    "NON_ROBUST",
    "NOT_TESTED",
]
