"""Transition-delay fault enumeration.

A transition fault asserts that a line cannot switch within one clock: a
slow-to-rise (STR) line behaves stuck-at-0 in the capture cycle of a
launch/capture pattern pair, a slow-to-fall (STF) line behaves stuck-at-1.
The fault universe mirrors the stuck-at line enumeration.
"""

from __future__ import annotations

from typing import List

from ..circuit.netlist import Netlist
from .model import TransitionFault
from .stuck_at import fault_sites


def full_transition_list(netlist: Netlist) -> List[TransitionFault]:
    """STR and STF faults on every line of the netlist."""
    faults: List[TransitionFault] = []
    for gate, pin in fault_sites(netlist):
        faults.append(TransitionFault(gate, pin, 1))  # slow-to-rise
        faults.append(TransitionFault(gate, pin, 0))  # slow-to-fall
    return faults
