"""Stuck-at fault list enumeration.

The *uncollapsed* fault universe places a stuck-at-0 and a stuck-at-1 on
every line: every gate output stem that somebody reads, and every gate
input branch whose driver stem fans out to more than one consumer (when the
driver has a single fanout, the branch is the stem — enumerating both would
double-count an identical fault).
"""

from __future__ import annotations

from typing import List

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .model import OUTPUT_PIN, StuckAtFault


def fault_sites(netlist: Netlist) -> List[tuple]:
    """All ``(gate, pin)`` lines of the netlist.

    Output stems are enumerated for every gate that drives something and is
    not a port marker; input branches only where the driver fans out.
    ``OUTPUT`` marker gates contribute their input branch when the driven
    net fans out (so a fault right at a PO pin is distinguishable from the
    stem), and flops contribute branches on every pin.
    """
    netlist.finalize()
    sites: List[tuple] = []
    for gate in netlist.gates:
        if gate.type != GateType.OUTPUT:
            # Transparent PO markers have no stem of their own; everything
            # else (including PIs, whose stem is the input line) does.
            sites.append((gate.index, OUTPUT_PIN))
        for pin, driver in enumerate(gate.fanin):
            if gate.type == GateType.SDFF and pin > 0:
                # Scan-in / scan-enable branches are exercised by the chain
                # flush test, not by capture patterns (see repro.scan).
                continue
            if len(netlist.gates[driver].fanout) > 1:
                sites.append((gate.index, pin))
    return sites


def full_fault_list(netlist: Netlist) -> List[StuckAtFault]:
    """The uncollapsed stuck-at fault universe (two faults per line)."""
    faults: List[StuckAtFault] = []
    for gate, pin in fault_sites(netlist):
        faults.append(StuckAtFault(gate, pin, 0))
        faults.append(StuckAtFault(gate, pin, 1))
    return faults


def output_stem_faults(netlist: Netlist) -> List[StuckAtFault]:
    """A reduced universe with stem faults only (used by quick experiments)."""
    netlist.finalize()
    faults: List[StuckAtFault] = []
    for gate in netlist.gates:
        if gate.type == GateType.OUTPUT:
            continue
        faults.append(StuckAtFault(gate.index, OUTPUT_PIN, 0))
        faults.append(StuckAtFault(gate.index, OUTPUT_PIN, 1))
    return faults
