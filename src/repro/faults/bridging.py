"""Bridging-fault enumeration.

Real bridge defects occur between physically adjacent wires.  Without
layout, the standard academic proxy is to sample net pairs that are close in
the structural graph (sharing a fanout region or near in level), which this
module does deterministically from a seed.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from .model import BridgingFault

_KINDS = ("and", "or", "dom_a", "dom_b")


def candidate_nets(netlist: Netlist) -> List[int]:
    """Nets eligible for bridging: every driven logic signal."""
    return [
        gate.index
        for gate in netlist.gates
        if gate.type not in (GateType.OUTPUT,)
    ]


def sample_bridging_faults(
    netlist: Netlist,
    count: int,
    seed: int = 0,
    kinds: Sequence[str] = _KINDS,
    max_level_gap: int = 3,
) -> List[BridgingFault]:
    """Sample ``count`` plausible bridges between level-adjacent nets.

    Pairs are drawn with both nets within ``max_level_gap`` logic levels of
    each other (a crude adjacency proxy), never bridging a net to itself or
    to its own direct fanin (which would often just be a feedback latch).
    """
    netlist.finalize()
    rng = random.Random(seed)
    nets = candidate_nets(netlist)
    by_level: dict = {}
    for index in nets:
        by_level.setdefault(netlist.gates[index].level, []).append(index)
    levels = sorted(by_level)
    faults: List[BridgingFault] = []
    seen = set()
    attempts = 0
    while len(faults) < count and attempts < count * 50:
        attempts += 1
        level = rng.choice(levels)
        nearby = [
            net
            for l in levels
            if abs(l - level) <= max_level_gap
            for net in by_level[l]
        ]
        if len(nearby) < 2:
            continue
        net_a, net_b = rng.sample(nearby, 2)
        if net_a > net_b:
            net_a, net_b = net_b, net_a
        if net_b in netlist.gates[net_a].fanin or net_a in netlist.gates[net_b].fanin:
            continue
        kind = rng.choice(list(kinds))
        fault = BridgingFault(net_a, net_b, kind)
        if fault in seen:
            continue
        seen.add(fault)
        faults.append(fault)
    return faults
