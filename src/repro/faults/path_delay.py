"""Path-delay fault model.

At-speed test of AI datapaths ultimately cares about *paths*: a chip whose
every gate switches within spec can still fail timing along a long
multiplier carry chain.  The model here provides:

* **structural path enumeration**, longest-first (gate count as the delay
  proxy), from launch points (PIs, flop outputs) to capture points (PO
  drivers, flop D pins);
* **test classification** for a vector pair against a path, after
  Lin-Reddy: a *robust* test detects the path's delay regardless of delays
  elsewhere (side inputs steady at non-controlling values); a *non-robust*
  test requires only final non-controlling side values and can be
  invalidated by other slow paths.

XOR-family gates propagate either polarity but demand *steady* side
inputs in both classes (a side transition re-toggles the output).  MUX
select inputs must be steady and select the on-path leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.gates import GateType, controlling_value
from ..circuit.netlist import Netlist

#: Classification outcomes, strongest first.
ROBUST = "robust"
NON_ROBUST = "non_robust"
NOT_TESTED = "not_tested"


@dataclass(frozen=True)
class DelayPath:
    """A structural path: gate indices from launch to capture point."""

    gates: Tuple[int, ...]

    @property
    def length(self) -> int:
        """Delay proxy: number of gate traversals after the launch node."""
        return len(self.gates) - 1

    def describe(self, netlist: Netlist) -> str:
        return " -> ".join(netlist.gates[g].name for g in self.gates)


@dataclass(frozen=True)
class PathDelayFault:
    """A path plus the launch transition direction (True = rising)."""

    path: DelayPath
    rising: bool

    def describe(self, netlist: Netlist) -> str:
        edge = "rising" if self.rising else "falling"
        return f"{edge} {self.path.describe(netlist)}"


def _capture_points(netlist: Netlist) -> List[int]:
    points = [netlist.gates[po].fanin[0] for po in netlist.outputs]
    points += [netlist.gates[ff].fanin[0] for ff in netlist.flops]
    return points


def _launch_points(netlist: Netlist) -> List[int]:
    return list(netlist.inputs) + list(netlist.flops)


def longest_paths(netlist: Netlist, count: int) -> List[DelayPath]:
    """The ``count`` structurally longest launch-to-capture paths.

    Longest-first DFS guided by each node's maximum remaining depth; ties
    resolve deterministically by gate index.
    """
    netlist.finalize()
    gates = netlist.gates
    captures = set(_capture_points(netlist))

    # Max remaining depth to any capture point, over combinational edges.
    depth: Dict[int, int] = {}
    for index in reversed(netlist.topo_order):
        gate = gates[index]
        best = 0 if index in captures else -1
        for consumer in gate.fanout:
            consumer_gate = gates[consumer]
            if consumer_gate.is_sequential or consumer_gate.type == GateType.OUTPUT:
                continue
            if consumer in depth and depth[consumer] >= 0:
                best = max(best, depth[consumer] + 1)
        depth[index] = best

    paths: List[DelayPath] = []

    def descend(prefix: List[int]) -> None:
        if len(paths) >= count:
            return
        node = prefix[-1]
        if node in captures:
            paths.append(DelayPath(tuple(prefix)))
            # A capture point may also continue (a flop D driver feeding
            # more logic) — keep walking for the longer paths too.
        consumers = [
            c
            for c in gates[node].fanout
            if not gates[c].is_sequential
            and gates[c].type != GateType.OUTPUT
            and depth.get(c, -1) >= 0
        ]
        consumers.sort(key=lambda c: (-depth[c], c))
        for consumer in consumers:
            if len(paths) >= count:
                return
            descend(prefix + [consumer])

    launches = sorted(
        (g for g in _launch_points(netlist) if depth.get(g, -1) >= 0),
        key=lambda g: (-depth[g], g),
    )
    for launch in launches:
        if len(paths) >= count:
            break
        descend([launch])
    paths.sort(key=lambda p: -p.length)
    return paths[:count]


def _pin_of(netlist: Netlist, gate: int, driver: int) -> int:
    return netlist.gates[gate].fanin.index(driver)


def classify_pair(
    netlist: Netlist,
    fault: PathDelayFault,
    values1: Sequence[int],
    values2: Sequence[int],
) -> str:
    """Classify a vector pair (pre-computed gate values) against a path.

    ``values1``/``values2`` are full 2-valued gate evaluations of the
    launch and capture vectors.  Returns ``robust``, ``non_robust``, or
    ``not_tested``.
    """
    gates = netlist.gates
    path = fault.path.gates
    launch = path[0]
    if not (
        values1[launch] == (0 if fault.rising else 1)
        and values2[launch] == (1 if fault.rising else 0)
    ):
        return NOT_TESTED

    robust = True
    for position in range(1, len(path)):
        gate_index = path[position]
        gate = gates[gate_index]
        on_pin = _pin_of(netlist, gate_index, path[position - 1])
        # The on-path signal must actually transition at every stage.
        if values1[gate_index] == values2[gate_index]:
            return NOT_TESTED
        control = controlling_value(gate.type)
        side_pins = [p for p in range(len(gate.fanin)) if p != on_pin]
        if gate.type == GateType.MUX2:
            select, when0, when1 = gate.fanin
            if on_pin == 0:
                return NOT_TESTED  # select transitions are not path tests here
            needed_select = 0 if on_pin == 1 else 1
            if not (
                values1[select] == values2[select] == needed_select
            ):
                return NOT_TESTED
            continue
        if control is None:
            # XOR family (and NOT/BUF with no side pins): side inputs must
            # be steady in both classes.
            for pin in side_pins:
                driver = gate.fanin[pin]
                if values1[driver] != values2[driver]:
                    return NOT_TESTED
            continue
        noncontrol = 1 - control
        for pin in side_pins:
            driver = gate.fanin[pin]
            if values2[driver] != noncontrol:
                return NOT_TESTED  # not even non-robustly sensitized
            if values1[driver] != noncontrol:
                robust = False  # glitchy side input: non-robust only
    return ROBUST if robust else NON_ROBUST


def evaluate_pair(
    netlist: Netlist, vector1: Sequence[int], vector2: Sequence[int]
) -> Tuple[List[int], List[int]]:
    """Full 2-valued gate evaluations of a launch/capture pair."""
    from ..sim.parallel import ParallelSimulator

    simulator = ParallelSimulator(netlist)
    words1 = simulator.evaluate_words([int(b) for b in vector1], 1)
    words2 = simulator.evaluate_words([int(b) for b in vector2], 1)
    return words1, words2


def grade_paths(
    netlist: Netlist,
    faults: Sequence[PathDelayFault],
    pairs: Sequence[Tuple[Sequence[int], Sequence[int]]],
) -> Dict[PathDelayFault, str]:
    """Best classification each path fault achieves over a pair set."""
    rank = {NOT_TESTED: 0, NON_ROBUST: 1, ROBUST: 2}
    best: Dict[PathDelayFault, str] = {fault: NOT_TESTED for fault in faults}
    for vector1, vector2 in pairs:
        values1, values2 = evaluate_pair(netlist, vector1, vector2)
        for fault in faults:
            verdict = classify_pair(netlist, fault, values1, values2)
            if rank[verdict] > rank[best[fault]]:
                best[fault] = verdict
    return best


def path_delay_faults(netlist: Netlist, count: int) -> List[PathDelayFault]:
    """Rising and falling faults on the ``count`` longest paths."""
    faults: List[PathDelayFault] = []
    for path in longest_paths(netlist, count):
        faults.append(PathDelayFault(path, rising=True))
        faults.append(PathDelayFault(path, rising=False))
    return faults
