"""Graceful degradation: from test outcome to a shippable chip.

AI accelerators with many identical cores/PEs can tolerate manufacturing
defects by *mapping out* the failing units and shipping a derated part —
the tutorial's closing case study.  This module turns per-unit test
verdicts into a map-out decision and quantifies the performance bin the
degraded chip lands in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..aichip.accelerator import TiledAccelerator
from ..aichip.fault_effects import detect_faulty_pes


@dataclass
class BinningPolicy:
    """What the product can ship with."""

    min_cores: int = 1
    min_rows_per_core: int = 2
    bins: Tuple[Tuple[str, float], ...] = (
        ("full", 1.0),
        ("derate-90", 0.9),
        ("derate-75", 0.75),
        ("derate-50", 0.5),
    )


@dataclass
class DegradeOutcome:
    """The shipping decision for one tested chip."""

    shippable: bool
    bin_name: str
    compute_fraction: float
    cores_enabled: int
    rows_lost: Dict[int, int] = field(default_factory=dict)
    pes_mapped_out: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)


def test_and_degrade(
    chip: TiledAccelerator, policy: Optional[BinningPolicy] = None
) -> DegradeOutcome:
    """Screen every core, map out failing PEs, pick the shipping bin.

    Cores that fall below ``min_rows_per_core`` usable rows after map-out
    are disabled entirely; the chip ships if ``min_cores`` survive.  The
    bin is chosen by remaining compute fraction (usable PE rows / total).
    """
    policy = policy or BinningPolicy()
    rows_lost: Dict[int, int] = {}
    mapped: Dict[int, List[Tuple[int, int]]] = {}
    for core in chip.cores:
        suspects = detect_faulty_pes(core.array)
        if suspects:
            mapped[core.core_id] = suspects
            core.array.mapped_out |= set(suspects)
            usable = len(core.array.usable_rows())
            rows_lost[core.core_id] = core.config.array_rows - usable
            if usable < policy.min_rows_per_core:
                chip.disable_core(core.core_id)

    enabled = chip.enabled_cores()
    total_rows = chip.config.n_cores * chip.config.core.array_rows
    usable_rows = sum(len(core.array.usable_rows()) for core in enabled)
    fraction = usable_rows / total_rows if total_rows else 0.0

    shippable = len(enabled) >= policy.min_cores
    bin_name = "scrap"
    if shippable:
        for name, threshold in sorted(policy.bins, key=lambda b: -b[1]):
            if fraction >= threshold:
                bin_name = name
                break
        else:
            # Below the lowest bin's compute fraction: not sellable.
            shippable = False
    return DegradeOutcome(
        shippable=shippable,
        bin_name=bin_name,
        compute_fraction=round(fraction, 4),
        cores_enabled=len(enabled),
        rows_lost=rows_lost,
        pes_mapped_out=mapped,
    )


def yield_with_degradation(
    chips: Sequence[TiledAccelerator], policy: Optional[BinningPolicy] = None
) -> Dict[str, object]:
    """Population view: yield with vs without map-out.

    Without degradation a chip ships only if *every* PE is clean; with it,
    partial chips ship into derated bins — the yield uplift the case study
    claims.
    """
    policy = policy or BinningPolicy()
    perfect = 0
    shippable = 0
    bins: Dict[str, int] = {}
    for chip in chips:
        if not any(core.array.faults for core in chip.cores):
            perfect += 1
        outcome = test_and_degrade(chip, policy)
        if outcome.shippable:
            shippable += 1
            bins[outcome.bin_name] = bins.get(outcome.bin_name, 0) + 1
    count = len(chips) or 1
    return {
        "chips": len(chips),
        "yield_strict": perfect / count,
        "yield_with_mapout": shippable / count,
        "bins": bins,
    }
