"""Test economics: yield, defect level, and test-cost trade-offs.

The business half of the tutorial's pitch ("speeding up time-to-market")
runs on three classic models:

* **Poisson / negative-binomial die yield** — ``Y = e^{-A·D}`` or the
  clustered ``Y = (1 + A·D/α)^{-α}`` (Stapper), with die area *A* and
  defect density *D*;
* **Williams-Brown defect level** — the fraction of shipped parts that are
  defective given yield *Y* and fault coverage *T*:
  ``DL = 1 - Y^{(1-T)}`` (usually quoted in DPPM);
* **test-time cost** — tester-seconds per die at a given rate, traded
  against the DPPM bought by longer (higher-coverage) tests.

These close the loop from the engineering metrics the rest of the library
measures (coverage, pattern counts, cycles) to the quantities management
signs off on (DPPM, cost per die, yield after map-out).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


def poisson_yield(die_area_cm2: float, defect_density_per_cm2: float) -> float:
    """Classic Poisson yield model ``Y = exp(-A·D)``."""
    if die_area_cm2 < 0 or defect_density_per_cm2 < 0:
        raise ValueError("area and defect density must be non-negative")
    return math.exp(-die_area_cm2 * defect_density_per_cm2)


def negative_binomial_yield(
    die_area_cm2: float, defect_density_per_cm2: float, clustering: float = 2.0
) -> float:
    """Stapper's clustered-defect yield ``Y = (1 + A·D/α)^{-α}``.

    ``clustering`` (α) around 2 matches modern processes; α → ∞ recovers
    the Poisson model.
    """
    if clustering <= 0:
        raise ValueError("clustering parameter must be positive")
    base = 1.0 + die_area_cm2 * defect_density_per_cm2 / clustering
    return base ** (-clustering)


def defect_level(yield_fraction: float, fault_coverage: float) -> float:
    """Williams-Brown: fraction of shipped dies that are defective.

    ``DL = 1 - Y^(1-T)``; at T=1 every defective die is caught, at T=0
    the defect level equals the full fallout ``1 - Y``.
    """
    if not 0.0 <= yield_fraction <= 1.0:
        raise ValueError("yield must be in [0, 1]")
    if not 0.0 <= fault_coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")
    if yield_fraction == 0.0:
        return 1.0 if fault_coverage < 1.0 else 0.0
    return 1.0 - yield_fraction ** (1.0 - fault_coverage)


def dppm(yield_fraction: float, fault_coverage: float) -> float:
    """Defect level expressed in defective parts per million."""
    return defect_level(yield_fraction, fault_coverage) * 1e6


def coverage_for_dppm(yield_fraction: float, target_dppm: float) -> float:
    """Coverage needed to hit a DPPM target at a given yield.

    Inverts Williams-Brown; returns a value in [0, 1] (clamped: a target
    looser than the raw fallout needs no test at all).
    """
    if not 0.0 < yield_fraction < 1.0:
        raise ValueError("yield must be in (0, 1) to invert the model")
    target = target_dppm / 1e6
    if target >= 1.0 - yield_fraction:
        return 0.0
    coverage = 1.0 - math.log(1.0 - target) / math.log(yield_fraction)
    return min(1.0, max(0.0, coverage))


@dataclass(frozen=True)
class TestCostModel:
    """Tester economics knobs."""

    tester_cost_per_second: float = 0.05  # USD, amortized ATE
    shift_clock_hz: float = 100e6
    insertion_overhead_s: float = 0.5  # handling per die


def tester_cost_per_die(cycles: int, model: TestCostModel) -> float:
    """USD of tester time for one die's logic test."""
    seconds = cycles / model.shift_clock_hz + model.insertion_overhead_s
    return seconds * model.tester_cost_per_second


def coverage_dppm_table(
    yield_fraction: float,
    coverages: Sequence[float] = (0.90, 0.95, 0.99, 0.995, 0.999, 1.0),
) -> List[Dict[str, float]]:
    """The classic table: fault coverage vs shipped DPPM at fixed yield."""
    return [
        {
            "coverage": coverage,
            "dppm": round(dppm(yield_fraction, coverage), 1),
        }
        for coverage in coverages
    ]


def mapout_yield_uplift(
    raw_yield: float,
    salvage_fraction: float,
) -> Dict[str, float]:
    """Effective yield when a fraction of defective dies ships derated.

    ``salvage_fraction`` is the share of *defective* dies that graceful
    degradation rescues (cores/PE rows mapped out, still sellable).
    """
    if not 0.0 <= raw_yield <= 1.0 or not 0.0 <= salvage_fraction <= 1.0:
        raise ValueError("fractions must be in [0, 1]")
    fallout = 1.0 - raw_yield
    return {
        "yield_strict": raw_yield,
        "yield_with_mapout": raw_yield + fallout * salvage_fraction,
        "salvaged": fallout * salvage_fraction,
    }
