"""Chip-level DFT planning for a tiled accelerator.

Pulls the whole methodology together: given an accelerator configuration,
the planner derives the per-core scan/compression geometry, sizes the
memory BIST, builds the power-constrained schedule, and reports the
chip-level test time and data volume the tutorial's case studies quote.

This is deliberately a *model-level* plan (the pattern-accurate engines
live in their own packages and E1-E10 exercise them); the planner's job is
the chip-level arithmetic that turns core-level measurements into a
manufacturing test budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aichip.accelerator import AcceleratorConfig
from ..bist.march import MARCH_C_MINUS, MarchTest, operation_count
from ..scan.timing import compressed_scan_cost, scan_cost
from .schedule import TestTask, schedule_report, schedule_tests


@dataclass
class DftPlanInputs:
    """Knobs the DFT architect chooses."""

    chains_per_core: int = 8
    edt_input_channels: int = 2
    edt_output_channels: int = 2
    core_pattern_count: int = 500
    core_test_power: float = 1.0  # power units while a core's scan runs
    mbist_power: float = 0.4  # per SRAM instance
    power_budget: float = 4.0
    march_test: MarchTest = field(default_factory=lambda: MARCH_C_MINUS)
    use_compression: bool = True
    broadcast_identical_cores: bool = True


@dataclass
class DftPlan:
    """The planner's output: tasks, schedule, and the headline numbers."""

    inputs: DftPlanInputs
    accelerator: AcceleratorConfig
    core_flops: int
    tasks: List[TestTask] = field(default_factory=list)
    report: Dict[str, object] = field(default_factory=dict)


def _core_flop_estimate(config: AcceleratorConfig) -> int:
    """Flop count of one core: PE registers dominate.

    Each PE holds weight (w bits), activation pipeline (w) and partial-sum
    (2w+4) registers — matching the generated PE netlist.
    """
    pe_width = config.core.pe_width
    per_pe = pe_width + pe_width + (2 * pe_width + 4)
    return config.core.array_rows * config.core.array_cols * per_pe


def build_plan(
    accelerator: Optional[AcceleratorConfig] = None,
    inputs: Optional[DftPlanInputs] = None,
) -> DftPlan:
    """Derive the chip test plan."""
    accelerator = accelerator or AcceleratorConfig()
    inputs = inputs or DftPlanInputs()
    core_flops = _core_flop_estimate(accelerator)

    # --- logic test cost per core ---------------------------------------
    if inputs.use_compression:
        logic_cost = compressed_scan_cost(
            inputs.core_pattern_count,
            core_flops,
            n_internal_chains=inputs.chains_per_core,
            n_input_channels=inputs.edt_input_channels,
            n_output_channels=inputs.edt_output_channels,
        )
    else:
        # Without on-chip compression the tester's channel count limits how
        # many chains can be driven, so chains = input channels (pin-bound).
        logic_cost = scan_cost(
            inputs.core_pattern_count, core_flops, inputs.edt_input_channels
        )

    # --- memory test cost per core ---------------------------------------
    mbist_ops = operation_count(inputs.march_test, accelerator.core.sram_bits)

    # --- build the task list ----------------------------------------------
    tasks: List[TestTask] = []
    if inputs.broadcast_identical_cores:
        # All cores shift the same stimulus concurrently: one logic task at
        # the combined power of every core toggling at once.
        tasks.append(
            TestTask(
                name="logic_broadcast_all_cores",
                time_cycles=logic_cost.test_cycles,
                power_units=inputs.core_test_power * accelerator.n_cores,
            )
        )
    else:
        tasks.extend(
            TestTask(
                name=f"logic_core{core}",
                time_cycles=logic_cost.test_cycles,
                power_units=inputs.core_test_power,
            )
            for core in range(accelerator.n_cores)
        )
    tasks.extend(
        TestTask(
            name=f"mbist_core{core}",
            time_cycles=mbist_ops,
            power_units=inputs.mbist_power,
        )
        for core in range(accelerator.n_cores)
    )

    plan = DftPlan(
        inputs=inputs,
        accelerator=accelerator,
        core_flops=core_flops,
        tasks=tasks,
    )
    stimulus_copies = 1 if inputs.broadcast_identical_cores else accelerator.n_cores
    data_volume = (
        logic_cost.data_volume_bits * stimulus_copies
        if inputs.broadcast_identical_cores
        else logic_cost.data_volume_bits * accelerator.n_cores
    )
    try:
        schedule = schedule_report(tasks, inputs.power_budget)
    except ValueError:
        schedule = {"error": "power budget below a single task's draw"}
    plan.report = {
        "cores": accelerator.n_cores,
        "core_flops": core_flops,
        "compression": inputs.use_compression,
        "broadcast": inputs.broadcast_identical_cores,
        "logic_cycles_per_core": logic_cost.test_cycles,
        "logic_data_bits_total": data_volume,
        "mbist_ops_per_core": mbist_ops,
        "march": inputs.march_test.name,
        **schedule,
    }
    return plan


def plan_comparison_table(
    accelerator: Optional[AcceleratorConfig] = None,
) -> List[Dict[str, object]]:
    """Four corners: ±compression x ±broadcast (the case-study table)."""
    accelerator = accelerator or AcceleratorConfig()
    rows: List[Dict[str, object]] = []
    for use_compression in (False, True):
        for broadcast in (False, True):
            inputs = DftPlanInputs(
                use_compression=use_compression,
                broadcast_identical_cores=broadcast,
            )
            plan = build_plan(accelerator, inputs)
            rows.append(plan.report)
    return rows
