"""Reconfigurable test-access network (IEEE 1687 / IJTAG style).

A modern AI SoC carries hundreds of embedded test instruments — per-core
MBIST controllers, EDT blocks, sensors.  Two access fabrics compete:

* **flat daisy chain** — every instrument TDR sits permanently in one long
  scan path: trivial control, but every access shifts every bit;
* **SIB network** — Segment Insertion Bits splice subtrees in and out of
  the active path: accesses to a few instruments shift short paths, at the
  cost of reconfiguration shifts that walk the hierarchy open.

The cycle model follows the 1687 retargeting literature: each CSU
(capture-shift-update) pass costs the *current* active path length + 1
update cycle; opening a deeper level requires one pass per level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union


@dataclass(frozen=True)
class Instrument:
    """A leaf test-data register."""

    name: str
    tdr_length: int

    def __post_init__(self):
        if self.tdr_length < 1:
            raise ValueError("TDR length must be positive")


@dataclass
class SibNode:
    """A segment-insertion bit guarding a subtree of the network.

    When closed, the node contributes exactly its own 1-bit SIB register to
    the scan path; when open, the SIB bit plus every child segment.
    """

    name: str
    children: List[Union["SibNode", Instrument]] = field(default_factory=list)


def _segment_length(node: Union[SibNode, Instrument], open_sibs: Set[str]) -> int:
    if isinstance(node, Instrument):
        return node.tdr_length
    length = 1  # the SIB register itself
    if node.name in open_sibs:
        for child in node.children:
            length += _segment_length(child, open_sibs)
    return length


class SibNetwork:
    """A SIB tree rooted directly behind TDI."""

    def __init__(self, roots: Sequence[Union[SibNode, Instrument]]):
        self.roots = list(roots)
        self._parents: Dict[str, Optional[str]] = {}
        self._instruments: Dict[str, Instrument] = {}
        for root in self.roots:
            self._index(root, None)

    def _index(
        self, node: Union[SibNode, Instrument], parent: Optional[str]
    ) -> None:
        if isinstance(node, Instrument):
            if node.name in self._instruments:
                raise ValueError(f"duplicate instrument {node.name!r}")
            self._instruments[node.name] = node
            self._parents[node.name] = parent
            return
        if node.name in self._parents:
            raise ValueError(f"duplicate SIB {node.name!r}")
        self._parents[node.name] = parent
        for child in node.children:
            self._index(child, node.name)

    @property
    def instruments(self) -> List[Instrument]:
        return list(self._instruments.values())

    def sibs_for(self, instrument_names: Iterable[str]) -> Set[str]:
        """Every SIB that must be open to reach the named instruments."""
        needed: Set[str] = set()
        for name in instrument_names:
            if name not in self._instruments:
                raise KeyError(f"unknown instrument {name!r}")
            parent = self._parents[name]
            while parent is not None:
                needed.add(parent)
                parent = self._parents[parent]
        return needed

    def path_length(self, open_sibs: Set[str]) -> int:
        """Active scan-path bits for a SIB configuration."""
        return sum(_segment_length(root, open_sibs) for root in self.roots)

    def depth_of(self, open_sibs: Set[str]) -> int:
        """Deepest open SIB level (number of reconfiguration waves)."""
        depth = 0
        for sib in open_sibs:
            level = 1
            parent = self._parents[sib]
            while parent is not None:
                level += 1
                parent = self._parents[parent]
            depth = max(depth, level)
        return depth

    def access_cycles(self, instrument_names: Sequence[str]) -> Dict[str, int]:
        """Cycles to configure the path and perform one CSU data access.

        Reconfiguration opens SIBs level by level from the all-closed
        state: wave *k* shifts the path as configured after wave *k-1*.
        The final data access shifts the fully open path once.
        """
        targets = set(instrument_names)
        needed = self.sibs_for(targets)
        waves = self.depth_of(needed)
        reconfig = 0
        opened: Set[str] = set()
        for level in range(1, waves + 1):
            reconfig += self.path_length(opened) + 1  # CSU pass
            opened = {
                sib
                for sib in needed
                if self._sib_level(sib) <= level
            }
        data_path = self.path_length(needed)
        return {
            "reconfig_cycles": reconfig,
            "data_cycles": data_path + 1,
            "total_cycles": reconfig + data_path + 1,
            "path_bits": data_path,
        }

    def _sib_level(self, sib: str) -> int:
        level = 1
        parent = self._parents[sib]
        while parent is not None:
            level += 1
            parent = self._parents[parent]
        return level


def flat_chain_cycles(
    instruments: Sequence[Instrument], instrument_names: Sequence[str]
) -> Dict[str, int]:
    """One access on a flat daisy chain: always the full path."""
    total_bits = sum(instrument.tdr_length for instrument in instruments)
    return {
        "reconfig_cycles": 0,
        "data_cycles": total_bits + 1,
        "total_cycles": total_bits + 1,
        "path_bits": total_bits,
    }


def build_balanced_network(
    instruments: Sequence[Instrument], fanout: int = 4
) -> SibNetwork:
    """Pack instruments under a balanced SIB tree with ``fanout`` children."""
    if fanout < 2:
        raise ValueError("fanout must be at least 2")
    level: List[Union[SibNode, Instrument]] = list(instruments)
    tier = 0
    while len(level) > fanout:
        grouped: List[Union[SibNode, Instrument]] = []
        for start in range(0, len(level), fanout):
            children = level[start : start + fanout]
            grouped.append(SibNode(f"sib_t{tier}_{start // fanout}", children))
        level = grouped
        tier += 1
    return SibNetwork([SibNode("sib_root", level)])


def access_schedule_comparison(
    instruments: Sequence[Instrument],
    accesses: Sequence[Sequence[str]],
    fanout: int = 4,
) -> Dict[str, object]:
    """Total cycles for an access schedule, flat vs SIB network.

    ``accesses`` is a list of instrument-name groups, each accessed once
    (the network reverts to all-closed between groups — conservative for
    the SIB side).
    """
    network = build_balanced_network(instruments, fanout)
    flat_total = sum(
        flat_chain_cycles(instruments, group)["total_cycles"]
        for group in accesses
    )
    sib_total = sum(
        network.access_cycles(group)["total_cycles"] for group in accesses
    )
    return {
        "instruments": len(instruments),
        "accesses": len(accesses),
        "flat_cycles": flat_total,
        "sib_cycles": sib_total,
        "sib_speedup_x": round(flat_total / sib_total, 2) if sib_total else 0.0,
    }
