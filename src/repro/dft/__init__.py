"""Hierarchical DFT: wrapping, retargeting, scheduling, degradation, planning."""

from .access import (
    Instrument,
    SibNetwork,
    SibNode,
    access_schedule_comparison,
    build_balanced_network,
    flat_chain_cycles,
)
from .economics import (
    TestCostModel,
    coverage_dppm_table,
    coverage_for_dppm,
    defect_level,
    dppm,
    mapout_yield_uplift,
    negative_binomial_yield,
    poisson_yield,
    tester_cost_per_die,
)
from .degrade import BinningPolicy, DegradeOutcome, test_and_degrade, yield_with_degradation
from .flatten import core_of_gate, local_index, replicate_netlist
from .planner import DftPlan, DftPlanInputs, build_plan, plan_comparison_table
from .retarget import (
    FlatVsHierRow,
    RetargetCost,
    broadcast_compare,
    broadcast_detects_all_cores,
    compare_flat_hierarchical,
    retarget_cost,
)
from .schedule import (
    Schedule,
    Session,
    TestTask,
    schedule_report,
    schedule_tests,
    sequential_cycles,
)
from .wrapper import WrappedCore, wrap_core

__all__ = [
    "replicate_netlist",
    "core_of_gate",
    "local_index",
    "wrap_core",
    "WrappedCore",
    "retarget_cost",
    "RetargetCost",
    "broadcast_detects_all_cores",
    "broadcast_compare",
    "compare_flat_hierarchical",
    "FlatVsHierRow",
    "TestTask",
    "Session",
    "Schedule",
    "schedule_tests",
    "schedule_report",
    "sequential_cycles",
    "build_plan",
    "DftPlan",
    "DftPlanInputs",
    "plan_comparison_table",
    "BinningPolicy",
    "DegradeOutcome",
    "test_and_degrade",
    "yield_with_degradation",
    "Instrument",
    "SibNode",
    "SibNetwork",
    "build_balanced_network",
    "flat_chain_cycles",
    "access_schedule_comparison",
    "poisson_yield",
    "negative_binomial_yield",
    "defect_level",
    "dppm",
    "coverage_for_dppm",
    "coverage_dppm_table",
    "TestCostModel",
    "tester_cost_per_die",
    "mapout_yield_uplift",
]
