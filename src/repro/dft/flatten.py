"""Netlist replication — the flat view of a multi-core chip.

Hierarchical DFT's value proposition is measured *against* the flat
alternative: one netlist containing N copies of the core, handed to ATPG
whole.  :func:`replicate_netlist` builds exactly that (per-core prefixed
names, independent per-core ports), so E8 can run both flows on identical
logic.
"""

from __future__ import annotations

from typing import List, Optional

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist


def replicate_netlist(core: Netlist, n_copies: int, name: Optional[str] = None) -> Netlist:
    """N structurally independent copies of ``core`` in one netlist.

    Gate ``g`` of copy ``k`` is named ``core{k}/{g.name}``.  Ports are
    per-copy (the chip pins a flat ATPG run would see through scan).
    """
    if n_copies < 1:
        raise ValueError("need at least one copy")
    core.finalize()
    chip = Netlist(name or f"{core.name}_x{n_copies}")
    for copy in range(n_copies):
        offset = len(chip.gates)
        for gate in core.gates:
            chip.add(
                gate.type,
                f"core{copy}/{gate.name}",
                [driver + offset for driver in gate.fanin],
            )
    chip.finalize()
    return chip


def core_of_gate(chip: Netlist, gate_index: int, core_size: int) -> int:
    """Which copy a flat-netlist gate belongs to (replication inverse)."""
    return gate_index // core_size


def local_index(gate_index: int, core_size: int) -> int:
    """A flat-netlist gate's index inside its core."""
    return gate_index % core_size
