"""Pattern retargeting and identical-core broadcast.

The hierarchical flow the tutorial presents for AI chips:

1. wrap the core, insert scan, run ATPG **once** on the single core;
2. *retarget* the core-level patterns to the chip: in **broadcast** mode
   every identical core's scan-in is driven from the same tester channel,
   so stimulus data and shift time do not grow with core count — only the
   response side multiplies (each core's unload feeds its own comparator
   or MISR);
3. in **serial** mode (the fallback when cores can't share channels) the
   same patterns apply core by core.

:func:`compare_flat_hierarchical` runs the actual ATPG engines on both the
single core and the N-core flat netlist, producing the E8 rows from real
measurements rather than a formula.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..atpg.engine import AtpgResult, run_atpg
from ..circuit.netlist import Netlist
from ..faults.collapse import collapse_faults
from ..faults.stuck_at import full_fault_list
from ..scan.insertion import ScanDesign, insert_scan
from ..scan.timing import scan_cost
from ..sim.faultsim import FaultSimulator
from .flatten import replicate_netlist


@dataclass
class RetargetCost:
    """Tester cost of delivering one core test set to ``n_cores`` copies."""

    mode: str
    n_cores: int
    patterns: int
    stimulus_bits: int
    response_bits: int
    test_cycles: int

    @property
    def data_volume_bits(self) -> int:
        return self.stimulus_bits + self.response_bits


def retarget_cost(
    core_design: ScanDesign,
    atpg: AtpgResult,
    n_cores: int,
    mode: str = "broadcast",
) -> RetargetCost:
    """Cost model for applying a core pattern set chip-wide.

    Broadcast: stimulus once, responses per core (MISR-compare on chip
    reduces this further; the model charges full unload to stay
    conservative).  Serial: everything times ``n_cores``.
    """
    n_patterns = len(atpg.patterns)
    base = scan_cost(
        n_patterns,
        n_flops=len(core_design.netlist.flops),
        n_chains=core_design.n_chains,
        n_pis=len(core_design.netlist.inputs),
        n_pos=len(core_design.netlist.outputs),
    )
    stimulus = n_patterns * base.stimulus_bits_per_pattern
    response = n_patterns * base.response_bits_per_pattern
    if mode == "broadcast":
        return RetargetCost(
            mode=mode,
            n_cores=n_cores,
            patterns=n_patterns,
            stimulus_bits=stimulus,
            response_bits=response * n_cores,
            test_cycles=base.test_cycles,
        )
    if mode == "serial":
        return RetargetCost(
            mode=mode,
            n_cores=n_cores,
            patterns=n_patterns,
            stimulus_bits=stimulus * n_cores,
            response_bits=response * n_cores,
            test_cycles=base.test_cycles * n_cores,
        )
    raise ValueError(f"unknown retargeting mode {mode!r}")


def broadcast_detects_all_cores(
    core: Netlist,
    patterns: Sequence[Sequence[int]],
    chip: Netlist,
    n_cores: int,
) -> bool:
    """Semantic check behind broadcast reuse.

    Replicated cores are structurally identical, so a pattern set reaching
    coverage C on the core reaches the same C on every copy.  This verifies
    it concretely: chip-level patterns built by duplicating the core
    pattern across copies detect exactly the per-core images of the faults
    the core patterns detect.  ``chip`` must be
    :func:`~repro.dft.flatten.replicate_netlist` of ``core``.
    """
    core_sim = FaultSimulator(core)
    core_faults, _ = collapse_faults(core, full_fault_list(core))
    core_result = core_sim.simulate(list(patterns), core_faults, drop=True)

    chip_sim = FaultSimulator(chip)
    n_view_pi = len(core.inputs)
    chip_patterns = [
        list(p[:n_view_pi]) * n_cores + list(p[n_view_pi:]) * n_cores
        for p in patterns
    ]
    core_size = len(core.gates)
    chip_faults = [
        type(f)(f.gate + copy * core_size, f.pin, f.value)
        for f in core_faults
        for copy in range(n_cores)
    ]
    chip_result = chip_sim.simulate(chip_patterns, chip_faults, drop=True)
    expected = len(core_result.detected) * n_cores
    return len(chip_result.detected) == expected


def broadcast_compare(
    core: Netlist,
    patterns: Sequence[Sequence[int]],
    defective_cores: Dict[int, "StuckAtFault"],
    n_cores: int,
) -> Dict[str, object]:
    """On-chip compare for broadcast test: majority vote across replicas.

    With every core receiving identical stimulus, a defective core is the
    one whose unload disagrees with the majority — the comparator tree the
    case-study chips ship instead of hauling every core's response off
    chip.  ``defective_cores`` maps core id → its (single) defect.

    Returns the flagged cores and whether the vote identified exactly the
    defective set (it does whenever defective cores are a minority and
    their defects are detected by the pattern set).
    """
    from ..faults.model import StuckAtFault  # noqa: F401 (type reference)

    simulator = FaultSimulator(core)
    good = simulator.parallel.responses(list(patterns))
    per_core: List[List[List[int]]] = []
    for core_id in range(n_cores):
        if core_id in defective_cores:
            signature = simulator.failure_signature(
                list(patterns), defective_cores[core_id]
            )
            responses = [list(r) for r in good]
            for pattern_index, outputs in signature.items():
                for output in outputs:
                    responses[pattern_index][output] ^= 1
            per_core.append(responses)
        else:
            per_core.append([list(r) for r in good])

    flagged: set = set()
    for pattern_index in range(len(patterns)):
        for output in range(len(good[pattern_index])):
            votes = [per_core[c][pattern_index][output] for c in range(n_cores)]
            majority = 1 if sum(votes) * 2 > n_cores else 0
            for core_id, vote in enumerate(votes):
                if vote != majority:
                    flagged.add(core_id)

    detectable = {
        core_id
        for core_id, fault in defective_cores.items()
        if simulator.failure_signature(list(patterns), fault)
    }
    return {
        "flagged_cores": sorted(flagged),
        "defective_cores": sorted(defective_cores),
        "detectable_cores": sorted(detectable),
        "exact": flagged == detectable,
    }


@dataclass
class FlatVsHierRow:
    """One E8 table row."""

    n_cores: int
    flat_gates: int
    flat_cpu_s: float
    flat_patterns: int
    flat_coverage: float
    hier_cpu_s: float
    hier_patterns: int
    hier_coverage: float
    broadcast_data_bits: int
    serial_data_bits: int
    flat_data_bits: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "cores": self.n_cores,
            "flat_gates": self.flat_gates,
            "flat_cpu_s": round(self.flat_cpu_s, 3),
            "flat_patterns": self.flat_patterns,
            "flat_cov": round(self.flat_coverage, 4),
            "hier_cpu_s": round(self.hier_cpu_s, 3),
            "hier_patterns": self.hier_patterns,
            "hier_cov": round(self.hier_coverage, 4),
            "broadcast_bits": self.broadcast_data_bits,
            "serial_bits": self.serial_data_bits,
            "flat_bits": self.flat_data_bits,
        }


def compare_flat_hierarchical(
    core: Netlist,
    core_counts: Sequence[int] = (1, 2, 4, 8),
    n_chains: int = 4,
    seed: int = 0,
) -> List[FlatVsHierRow]:
    """Run real ATPG both ways for each core count (the E8 measurement).

    The hierarchical flow pays the core ATPG cost once (re-measured per row
    for honesty — it is constant) plus nothing per extra core; the flat
    flow hands the whole replicated netlist to ATPG.
    """
    core.finalize()
    rows: List[FlatVsHierRow] = []
    for n_cores in core_counts:
        # Hierarchical: one core.
        start = time.perf_counter()
        hier_result = run_atpg(core, seed=seed)
        hier_cpu = time.perf_counter() - start

        # Flat: the replicated chip.
        chip = replicate_netlist(core, n_cores)
        start = time.perf_counter()
        flat_result = run_atpg(chip, seed=seed)
        flat_cpu = time.perf_counter() - start

        core_design = (
            insert_scan(core, n_chains=n_chains) if core.flops else None
        )
        if core_design is not None:
            broadcast = retarget_cost(core_design, hier_result, n_cores, "broadcast")
            serial = retarget_cost(core_design, hier_result, n_cores, "serial")
            broadcast_bits = broadcast.data_volume_bits
            serial_bits = serial.data_volume_bits
        else:
            per_pattern = len(core.inputs) + len(core.outputs)
            broadcast_bits = len(hier_result.patterns) * per_pattern
            serial_bits = broadcast_bits * n_cores
        flat_bits = len(flat_result.patterns) * (
            len(chip.inputs) + len(chip.outputs) + 2 * len(chip.flops)
        )
        rows.append(
            FlatVsHierRow(
                n_cores=n_cores,
                flat_gates=chip.num_gates,
                flat_cpu_s=flat_cpu,
                flat_patterns=len(flat_result.patterns),
                flat_coverage=flat_result.fault_coverage,
                hier_cpu_s=hier_cpu,
                hier_patterns=len(hier_result.patterns),
                hier_coverage=hier_result.fault_coverage,
                broadcast_data_bits=broadcast_bits,
                serial_data_bits=serial_bits,
                flat_data_bits=flat_bits,
            )
        )
    return rows
