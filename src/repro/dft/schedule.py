"""Power-constrained test scheduling.

Testing switches far more logic per cycle than functional operation, so a
chip cannot simply run every core's (scan or BIST) test at once — the
tutorial flags test power as a first-order constraint on AI chips precisely
because their cores are so numerous.  The classic formulation: each test is
a (time, power) block; concurrent tests' powers add; the schedule must keep
the sum under a budget while minimizing total time.

A greedy longest-first bin-packing over sessions gives the standard
baseline schedule (optimal scheduling is NP-hard; greedy is what practical
flows ship).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TestTask:
    """One schedulable test: a core's scan session, a memory's MBIST, …"""

    name: str
    time_cycles: int
    power_units: float

    def __post_init__(self):
        if self.time_cycles < 0 or self.power_units < 0:
            raise ValueError("time and power must be non-negative")


@dataclass
class Session:
    """Tests running concurrently."""

    tasks: List[TestTask] = field(default_factory=list)

    @property
    def power(self) -> float:
        return sum(task.power_units for task in self.tasks)

    @property
    def time_cycles(self) -> int:
        return max((task.time_cycles for task in self.tasks), default=0)


@dataclass
class Schedule:
    """An ordered list of sessions."""

    sessions: List[Session] = field(default_factory=list)
    power_budget: float = 0.0

    @property
    def total_cycles(self) -> int:
        return sum(session.time_cycles for session in self.sessions)

    def utilization(self) -> float:
        """Scheduled work / (makespan * budget) — 1.0 is a perfect pack."""
        work = sum(
            task.time_cycles * task.power_units
            for session in self.sessions
            for task in session.tasks
        )
        capacity = self.total_cycles * self.power_budget
        return work / capacity if capacity else 0.0


def schedule_tests(tasks: Sequence[TestTask], power_budget: float) -> Schedule:
    """Greedy longest-first scheduling under a power budget.

    Tasks are sorted by time descending and placed into the first session
    with power headroom; a task too hungry for any session opens a new one.
    Tasks whose individual power exceeds the budget are rejected.
    """
    over = [task.name for task in tasks if task.power_units > power_budget]
    if over:
        raise ValueError(
            f"tasks exceed the power budget on their own: {over[:4]}"
        )
    schedule = Schedule(power_budget=power_budget)
    for task in sorted(tasks, key=lambda t: -t.time_cycles):
        for session in schedule.sessions:
            if session.power + task.power_units <= power_budget:
                session.tasks.append(task)
                break
        else:
            schedule.sessions.append(Session(tasks=[task]))
    return schedule


def sequential_cycles(tasks: Sequence[TestTask]) -> int:
    """Makespan with no concurrency at all (the power-unlimited worst case)."""
    return sum(task.time_cycles for task in tasks)


def schedule_report(tasks: Sequence[TestTask], power_budget: float) -> Dict[str, object]:
    """Summary row: sequential vs scheduled makespan and speedup."""
    schedule = schedule_tests(tasks, power_budget)
    seq = sequential_cycles(tasks)
    return {
        "tasks": len(tasks),
        "power_budget": power_budget,
        "sessions": len(schedule.sessions),
        "sequential_cycles": seq,
        "scheduled_cycles": schedule.total_cycles,
        "speedup_x": round(seq / schedule.total_cycles, 2)
        if schedule.total_cycles
        else float("inf"),
        "utilization": round(schedule.utilization(), 3),
    }
