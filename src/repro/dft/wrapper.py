"""Core test wrapping (IEEE 1500-style, simplified).

Wrapping isolates a core for test: every functional input is driven from a
*wrapper boundary cell* and every functional output is captured into one.
Once the boundary cells join the scan chains, the core's complete test
stimulus and response travel through scan — no chip-level pin access is
needed, which is precisely what makes identical-core pattern *reuse*
possible (generate once at core level, deliver anywhere).

:func:`wrap_core` converts each PI into an input boundary flop and taps
each PO into an output boundary flop.  The wrapped netlist's full-scan
combinational view is then 100 % flop-driven and flop-observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist


@dataclass
class WrappedCore:
    """A wrapped core netlist plus boundary-cell bookkeeping."""

    netlist: Netlist
    input_cells: Dict[str, int] = field(default_factory=dict)  # port -> flop
    output_cells: Dict[str, int] = field(default_factory=dict)

    @property
    def n_boundary_cells(self) -> int:
        return len(self.input_cells) + len(self.output_cells)


def wrap_core(core: Netlist, name: Optional[str] = None) -> WrappedCore:
    """Build the wrapped version of ``core``.

    Each original PI ``x`` becomes a DFF ``wbr_in[x]`` (its D pin fed by a
    chip-side input port kept for functional mode); consumers of ``x`` are
    rewired to the boundary flop.  Each PO gains a capture flop
    ``wbr_out[x]``.  After scan insertion the boundary flops are ordinary
    scan cells.
    """
    core.finalize()
    wrapped = Netlist(name or f"{core.name}_wrapped")
    mapping: Dict[int, int] = {}
    input_cells: Dict[str, int] = {}
    output_cells: Dict[str, int] = {}

    # Precompute every gate's destination index so forward references
    # (flop D pins patched after creation) map correctly.
    next_index = 0
    for pi in core.inputs:
        next_index += 2  # functional port + boundary flop
        mapping[pi] = next_index - 1  # the boundary flop stands in for the PI
    for gate in core.gates:
        if gate.type != GateType.INPUT:
            mapping[gate.index] = next_index
            next_index += 1

    # Chip-side functional input ports first, then boundary flops on them.
    for pi in core.inputs:
        port_name = core.gates[pi].name
        port = wrapped.add(GateType.INPUT, f"func_{port_name}")
        cell = wrapped.add(GateType.DFF, f"wbr_in[{port_name}]", [port])
        assert cell == mapping[pi]
        input_cells[port_name] = cell

    for gate in core.gates:
        if gate.type == GateType.INPUT:
            continue
        new_fanin = [mapping[driver] for driver in gate.fanin]
        wrapped.add(gate.type, gate.name, new_fanin)

    for po in core.outputs:
        driver = mapping[core.gates[po].fanin[0]]
        port_name = core.gates[po].name
        cell = wrapped.add(GateType.DFF, f"wbr_out[{port_name}]", [driver])
        output_cells[port_name] = cell

    wrapped.finalize()
    return WrappedCore(
        netlist=wrapped, input_cells=input_cells, output_cells=output_cells
    )
