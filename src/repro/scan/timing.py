"""Tester cost models: test time and test data volume.

The standard scan cost model (used throughout the compression literature and
in the E4/E8 tables):

* test time (cycles) ``= (P + 1) * L + P`` where *P* is pattern count and
  *L* the longest chain (loads overlap the previous unload; one capture
  cycle per pattern; one extra final unload),
* test data volume (bits) ``= P * (stimulus bits + response bits)``.

Compression divides the chain length seen by the tester (many short
internal chains behind few channels), which is where its 10-100x wins come
from.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScanCost:
    """Test time and data volume for one scan configuration."""

    patterns: int
    chains: int
    max_chain_length: int
    stimulus_bits_per_pattern: int
    response_bits_per_pattern: int

    @property
    def test_cycles(self) -> int:
        """Total tester cycles with load/unload overlap."""
        if self.patterns == 0:
            return 0
        return (self.patterns + 1) * self.max_chain_length + self.patterns

    @property
    def data_volume_bits(self) -> int:
        """Stimulus plus expected-response storage on the tester."""
        return self.patterns * (
            self.stimulus_bits_per_pattern + self.response_bits_per_pattern
        )

    def test_seconds(self, shift_clock_hz: float = 100e6) -> float:
        """Wall-clock test time at a given shift clock."""
        return self.test_cycles / shift_clock_hz


def scan_cost(
    patterns: int,
    n_flops: int,
    n_chains: int,
    n_pis: int = 0,
    n_pos: int = 0,
) -> ScanCost:
    """Cost of plain (uncompressed) scan.

    Every pattern loads all flops through ``n_chains`` chains and stores
    full per-flop stimulus and response plus PI/PO bits.
    """
    max_chain = -(-n_flops // n_chains) if n_chains else 0  # ceil division
    return ScanCost(
        patterns=patterns,
        chains=n_chains,
        max_chain_length=max_chain,
        stimulus_bits_per_pattern=n_flops + n_pis,
        response_bits_per_pattern=n_flops + n_pos,
    )


def compressed_scan_cost(
    patterns: int,
    n_flops: int,
    n_internal_chains: int,
    n_input_channels: int,
    n_output_channels: int,
    n_pis: int = 0,
    n_pos: int = 0,
) -> ScanCost:
    """Cost of compressed scan (EDT-style).

    The tester streams ``n_input_channels`` bits per shift cycle and reads
    ``n_output_channels``; shift length is set by the *internal* chains.
    """
    max_chain = -(-n_flops // n_internal_chains) if n_internal_chains else 0
    return ScanCost(
        patterns=patterns,
        chains=n_internal_chains,
        max_chain_length=max_chain,
        stimulus_bits_per_pattern=max_chain * n_input_channels + n_pis,
        response_bits_per_pattern=max_chain * n_output_channels + n_pos,
    )


def compression_ratio(plain: ScanCost, compressed: ScanCost) -> dict:
    """Data-volume and test-time ratios between two configurations."""
    return {
        "data_volume_x": (
            plain.data_volume_bits / compressed.data_volume_bits
            if compressed.data_volume_bits
            else float("inf")
        ),
        "test_time_x": (
            plain.test_cycles / compressed.test_cycles
            if compressed.test_cycles
            else float("inf")
        ),
    }
