"""Plain-text pattern file I/O (STIL-flavoured tester handoff).

A minimal, diff-friendly interchange format for pattern sets::

    # repro pattern file v1
    circuit mac4
    inputs a[0] a[1] ... acc11
    patterns 24
    pattern 0 0110X1...   # 0/1/X per view input
    ...

Responses (when included) follow each pattern line as ``expect`` rows.
The format survives hand editing and keeps the experiment artifacts
reviewable in version control — the role STIL/WGL files play between ATPG
and the test floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..circuit.values import X

_CHAR = {0: "0", 1: "1", X: "X"}
_VALUE = {"0": 0, "1": 1, "X": X, "x": X}


@dataclass
class PatternFile:
    """A parsed pattern file."""

    circuit: str
    input_names: List[str]
    patterns: List[List[int]] = field(default_factory=list)
    expects: List[Optional[List[int]]] = field(default_factory=list)


class PatternFormatError(ValueError):
    """Raised when a pattern file cannot be parsed."""


def format_patterns(
    circuit: str,
    input_names: Sequence[str],
    patterns: Sequence[Sequence[int]],
    expects: Optional[Sequence[Sequence[int]]] = None,
) -> str:
    """Serialize a pattern set (optionally with expected responses)."""
    lines = [
        "# repro pattern file v1",
        f"circuit {circuit}",
        f"inputs {' '.join(input_names)}",
        f"patterns {len(patterns)}",
    ]
    for index, pattern in enumerate(patterns):
        if len(pattern) != len(input_names):
            raise PatternFormatError(
                f"pattern {index} width {len(pattern)} != {len(input_names)} inputs"
            )
        bits = "".join(_CHAR[v] for v in pattern)
        lines.append(f"pattern {index} {bits}")
        if expects is not None:
            expected = expects[index]
            lines.append(
                "expect " + "".join(_CHAR[v] for v in expected)
            )
    return "\n".join(lines) + "\n"


def parse_patterns(text: str) -> PatternFile:
    """Parse pattern-file text back into structured form."""
    circuit = ""
    input_names: List[str] = []
    declared = -1
    patterns: List[List[int]] = []
    expects: List[Optional[List[int]]] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        keyword = fields[0]
        if keyword == "circuit":
            circuit = fields[1] if len(fields) > 1 else ""
        elif keyword == "inputs":
            input_names = fields[1:]
        elif keyword == "patterns":
            declared = int(fields[1])
        elif keyword == "pattern":
            if len(fields) != 3:
                raise PatternFormatError(
                    f"line {line_number}: pattern needs index and bits"
                )
            bits = fields[2]
            try:
                values = [_VALUE[c] for c in bits]
            except KeyError as exc:
                raise PatternFormatError(
                    f"line {line_number}: bad bit {exc.args[0]!r}"
                ) from None
            if input_names and len(values) != len(input_names):
                raise PatternFormatError(
                    f"line {line_number}: width {len(values)} != "
                    f"{len(input_names)} declared inputs"
                )
            patterns.append(values)
            expects.append(None)
        elif keyword == "expect":
            if not patterns:
                raise PatternFormatError(
                    f"line {line_number}: expect before any pattern"
                )
            expects[-1] = [_VALUE[c] for c in fields[1]]
        else:
            raise PatternFormatError(
                f"line {line_number}: unknown keyword {keyword!r}"
            )
    if declared >= 0 and declared != len(patterns):
        raise PatternFormatError(
            f"declared {declared} patterns, found {len(patterns)}"
        )
    return PatternFile(
        circuit=circuit,
        input_names=input_names,
        patterns=patterns,
        expects=expects,
    )


def save_patterns(path: str, *args, **kwargs) -> None:
    """Format and write a pattern file to disk."""
    with open(path, "w") as handle:
        handle.write(format_patterns(*args, **kwargs))


def load_patterns(path: str) -> PatternFile:
    """Read and parse a pattern file from disk."""
    with open(path) as handle:
        return parse_patterns(handle.read())
