"""Cycle-accurate scan pattern application.

:class:`ScanScheduler` turns combinational test patterns (the ATPG view:
PIs + flop state in, POs + next state out) into the actual tester protocol —
shift in, force PIs, capture, shift out — and drives the 4-valued simulator
through it.  Used by the integration tests to prove end-to-end that scan
delivers exactly the responses combinational ATPG predicted, and by the
test-time model to count cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuit.values import ZERO
from ..sim.logicsim import LogicSimulator
from .insertion import ScanDesign


@dataclass
class ScanOperation:
    """One applied pattern: what was shifted, forced, and unloaded."""

    pattern_index: int
    shift_cycles: int
    capture_cycles: int
    unloaded_state: List[int]
    observed_outputs: List[int]


class ScanScheduler:
    """Applies combinational patterns through the scan protocol."""

    def __init__(self, design: ScanDesign):
        self.design = design
        self.logic = LogicSimulator(design.netlist)
        netlist = design.netlist
        self._pi_positions = {gate: pos for pos, gate in enumerate(netlist.inputs)}
        # Functional PIs: everything except scan_in/scan_enable.
        special = set(design.scan_inputs) | {design.scan_enable}
        self.functional_inputs = [g for g in netlist.inputs if g not in special]

    @property
    def cycles_per_load(self) -> int:
        return self.design.max_chain_length

    def _base_inputs(self, scan_enable: int) -> List[int]:
        inputs = [0] * len(self.design.netlist.inputs)
        inputs[self._pi_positions[self.design.scan_enable]] = scan_enable
        return inputs

    def _shift(
        self,
        state: List[int],
        streams: Sequence[Sequence[int]],
        collect: bool = False,
    ) -> Tuple[List[int], List[List[int]]]:
        """Shift ``max_chain_length`` cycles, driving per-chain streams.

        Returns the new state and (when ``collect``) the per-chain unloaded
        bit streams, last-position bit first.
        """
        design = self.design
        netlist = design.netlist
        depth = design.max_chain_length
        unloaded: List[List[int]] = [[] for _ in design.chains]
        out_positions = [netlist.outputs.index(g) for g in design.scan_outputs]
        for cycle in range(depth):
            inputs = self._base_inputs(scan_enable=1)
            for chain_id, scan_in in enumerate(design.scan_inputs):
                stream = streams[chain_id]
                # Short chains start shifting late so the first bit lands
                # exactly when the load completes.
                offset = cycle - (depth - len(design.chains[chain_id]))
                bit = stream[offset] if 0 <= offset < len(stream) else 0
                inputs[self._pi_positions[scan_in]] = bit
            result = self.logic.step(inputs, state, scan_shift=True)
            state = result["state"]
            if collect:
                for chain_id, position in enumerate(out_positions):
                    if cycle < len(design.chains[chain_id]):
                        unloaded[chain_id].append(result["outputs"][position])
        return state, unloaded

    def apply_pattern(
        self,
        pattern: Sequence[int],
        pattern_index: int = 0,
        state: Optional[List[int]] = None,
    ) -> Tuple[ScanOperation, List[int]]:
        """Load, capture, and unload one combinational pattern.

        ``pattern`` is in the combinational-view order of the *scan-inserted*
        netlist: functional PIs + scan ports + flop state.  Only the
        functional-PI and flop-state positions are honoured; scan ports are
        driven by the protocol.  Returns the operation record and the
        post-unload residual state.
        """
        design = self.design
        netlist = design.netlist
        n_pi = len(netlist.inputs)
        pi_part, state_part = pattern[:n_pi], pattern[n_pi:]
        if state is None:
            state = [ZERO] * len(netlist.flops)

        # 1. Shift in the target state.
        load_state = [v if v in (0, 1) else 0 for v in state_part]
        streams = design.state_to_chain_bits(load_state)
        state, _ = self._shift(state, streams)

        # 2. Force functional PIs, capture one functional clock.
        inputs = self._base_inputs(scan_enable=0)
        for gate, value in zip(netlist.inputs, pi_part):
            if gate in (design.scan_enable, *design.scan_inputs):
                continue
            inputs[self._pi_positions[gate]] = value if value in (0, 1) else 0
        capture = self.logic.step(inputs, state, scan_shift=False)
        observed = capture["outputs"]
        state = capture["state"]

        # 3. Shift out the captured response (next pattern's load would
        #    normally overlap; kept separate here for clarity).
        zeros = [[0] * len(chain) for chain in design.chains]
        # The unload stream emerges last-chain-position first, which is
        # exactly the "first-shifted-in first" stream format.
        state, unloaded = self._shift(state, zeros, collect=True)
        unloaded_state = design.chain_bits_to_state(unloaded)
        operation = ScanOperation(
            pattern_index=pattern_index,
            shift_cycles=2 * design.max_chain_length,
            capture_cycles=1,
            unloaded_state=unloaded_state,
            observed_outputs=observed,
        )
        return operation, state

    def run_patterns(self, patterns: Sequence[Sequence[int]]) -> List[ScanOperation]:
        """Apply a whole pattern set sequentially."""
        operations: List[ScanOperation] = []
        state: Optional[List[int]] = None
        for index, pattern in enumerate(patterns):
            operation, state = self.apply_pattern(pattern, index, state)
            operations.append(operation)
        return operations
