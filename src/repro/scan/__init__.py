"""Scan DFT: insertion, chain stitching, pattern scheduling, cost models."""

from .insertion import (
    ScanDesign,
    chain_flush_detects,
    insert_scan,
    partition_faults,
)
from .patfile import (
    PatternFile,
    PatternFormatError,
    format_patterns,
    load_patterns,
    parse_patterns,
    save_patterns,
)
from .patterns import ScanOperation, ScanScheduler
from .power import (
    ShiftPowerReport,
    adjacent_fill,
    fill_policy_comparison,
    pattern_set_power,
    pattern_shift_power,
    weighted_transition_metric,
)
from .timing import ScanCost, compressed_scan_cost, compression_ratio, scan_cost

__all__ = [
    "insert_scan",
    "ScanDesign",
    "partition_faults",
    "chain_flush_detects",
    "ScanScheduler",
    "ScanOperation",
    "ScanCost",
    "scan_cost",
    "compressed_scan_cost",
    "compression_ratio",
    "PatternFile",
    "PatternFormatError",
    "format_patterns",
    "parse_patterns",
    "save_patterns",
    "load_patterns",
    "ShiftPowerReport",
    "weighted_transition_metric",
    "pattern_shift_power",
    "pattern_set_power",
    "fill_policy_comparison",
    "adjacent_fill",
]
