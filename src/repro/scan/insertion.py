"""Scan insertion: swap flops for scan flops and stitch scan chains.

Scan is the foundation DFT structure: every flop becomes a scan flop
(``SDFF``) with a shift path, giving ATPG direct control and observation of
all state.  :func:`insert_scan` performs the swap, adds the ``scan_enable``
port and per-chain ``scan_in``/``scan_out`` ports, and stitches chains
balanced to within one bit of each other.

The returned :class:`ScanDesign` carries the chain topology used by the
pattern scheduler, the compression wrapper, and the test-time model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist
from ..faults.model import OUTPUT_PIN, StuckAtFault


@dataclass
class ScanDesign:
    """A scan-inserted netlist plus its chain topology.

    ``chains[c]`` lists flop gate indices in shift order: element 0 is the
    flop next to ``scan_in`` and the last element drives ``scan_out``.
    ``flop_position`` maps a flop index to its ``(chain, position)``.
    """

    netlist: Netlist
    chains: List[List[int]]
    scan_enable: int
    scan_inputs: List[int]
    scan_outputs: List[int]
    flop_position: Dict[int, tuple] = field(default_factory=dict)

    @property
    def n_chains(self) -> int:
        return len(self.chains)

    @property
    def max_chain_length(self) -> int:
        return max((len(chain) for chain in self.chains), default=0)

    def chain_of(self, flop: int) -> int:
        return self.flop_position[flop][0]

    def state_to_chain_bits(self, state: Sequence[int]) -> List[List[int]]:
        """Split a flop-state vector (netlist flop order) into per-chain
        shift streams, *first-shifted-in bit first*.

        The bit destined for the chain's last position must enter first, so
        each stream is the chain's values reversed.
        """
        flops = self.netlist.flops
        by_flop = dict(zip(flops, state))
        streams: List[List[int]] = []
        for chain in self.chains:
            values = [by_flop[flop] for flop in chain]
            streams.append(list(reversed(values)))
        return streams

    def chain_bits_to_state(self, streams: Sequence[Sequence[int]]) -> List[int]:
        """Inverse of :meth:`state_to_chain_bits`."""
        by_flop: Dict[int, int] = {}
        for chain, stream in zip(self.chains, streams):
            for flop, value in zip(chain, reversed(list(stream))):
                by_flop[flop] = value
        return [by_flop[flop] for flop in self.netlist.flops]


def insert_scan(
    netlist: Netlist,
    n_chains: int = 1,
    name: Optional[str] = None,
) -> ScanDesign:
    """Build a scan-inserted copy of ``netlist`` with ``n_chains`` chains.

    Flops are distributed round-robin in netlist order, which balances
    chain lengths to within one flop.  The original netlist is untouched.
    """
    netlist.finalize()
    if n_chains < 1:
        raise ValueError("need at least one scan chain")
    n_flops = len(netlist.flops)
    if n_flops == 0:
        raise ValueError(f"{netlist.name!r} has no flops to scan")
    n_chains = min(n_chains, n_flops)

    scanned = Netlist(name or f"{netlist.name}_scan{n_chains}")
    # Copy all gates; DFF -> SDFF with placeholder scan pins patched below.
    for gate in netlist.gates:
        if gate.type == GateType.DFF:
            scanned.add(GateType.SDFF, gate.name, [gate.fanin[0], 0, 0])
        else:
            scanned.add(gate.type, gate.name, list(gate.fanin))

    scan_enable = scanned.add(GateType.INPUT, "scan_enable")
    chains: List[List[int]] = [[] for _ in range(n_chains)]
    for position, flop in enumerate(netlist.flops):
        chains[position % n_chains].append(flop)

    scan_inputs: List[int] = []
    scan_outputs: List[int] = []
    flop_position: Dict[int, tuple] = {}
    for chain_id, chain in enumerate(chains):
        scan_in = scanned.add(GateType.INPUT, f"scan_in{chain_id}")
        scan_inputs.append(scan_in)
        previous = scan_in
        for position, flop in enumerate(chain):
            gate = scanned.gates[flop]
            gate.fanin[1] = previous
            gate.fanin[2] = scan_enable
            flop_position[flop] = (chain_id, position)
            previous = flop
        scan_outputs.append(
            scanned.add(GateType.OUTPUT, f"scan_out{chain_id}", [previous])
        )

    scanned._topo = None
    scanned.finalize()
    return ScanDesign(
        netlist=scanned,
        chains=chains,
        scan_enable=scan_enable,
        scan_inputs=scan_inputs,
        scan_outputs=scan_outputs,
        flop_position=flop_position,
    )


def partition_faults(
    design: ScanDesign, faults: Sequence[StuckAtFault]
) -> tuple:
    """Split a fault list into ``(capture_faults, chain_faults)``.

    Chain faults sit on the shift path — ``scan_in``/``scan_enable`` input
    stems and scan-out branches — and are detected by the chain flush test
    (:func:`chain_flush_detects`), not by capture patterns.
    """
    netlist = design.netlist
    chain_nets = set(design.scan_inputs)
    chain_nets.add(design.scan_enable)
    capture: List[StuckAtFault] = []
    chain: List[StuckAtFault] = []
    for fault in faults:
        gate = netlist.gates[fault.gate]
        if fault.pin == OUTPUT_PIN and fault.gate in chain_nets:
            chain.append(fault)
        elif gate.type == GateType.OUTPUT and fault.gate in set(design.scan_outputs):
            chain.append(fault)
        else:
            capture.append(fault)
    return capture, chain


def chain_flush_detects(design: ScanDesign) -> bool:
    """Simulate the 0011-flush test through every chain.

    The flush pattern shifts ``00110011…`` through each chain with
    ``scan_enable`` held high and checks the stream emerges intact — the
    standard screen for shift-path integrity (detects chain stuck-at and
    both transition polarities at chain speed).
    """
    from ..sim.logicsim import LogicSimulator

    logic = LogicSimulator(design.netlist)
    netlist = design.netlist
    n_pi = len(netlist.inputs)
    pi_positions = {gate: pos for pos, gate in enumerate(netlist.inputs)}
    flush = [0, 0, 1, 1]
    depth = design.max_chain_length
    total_cycles = depth + len(flush) + 4

    state = [0] * len(netlist.flops)
    collected: List[List[int]] = [[] for _ in design.chains]
    stream = [flush[cycle % len(flush)] for cycle in range(total_cycles)]
    for cycle in range(total_cycles):
        inputs = [0] * n_pi
        inputs[pi_positions[design.scan_enable]] = 1
        for scan_in in design.scan_inputs:
            inputs[pi_positions[scan_in]] = stream[cycle]
        result = logic.step(inputs, state, scan_shift=True)
        state = result["state"]
        for chain_id, out_gate in enumerate(design.scan_outputs):
            position = netlist.outputs.index(out_gate)
            collected[chain_id].append(result["outputs"][position])

    for chain_id, chain in enumerate(design.chains):
        latency = len(chain)
        expected = stream[: total_cycles - latency]
        observed = collected[chain_id][latency:]
        if observed != expected:
            return False
    return True
