"""Scan shift-power estimation.

Test power is a first-order constraint on AI chips (the tutorial's
scheduling discussion): shifting random-fill patterns toggles roughly half
the chain bits every cycle, far above functional switching, and can brown
out the die.  The standard metrics:

* **WTM (weighted transition metric)** — for a scan-in vector, each
  adjacent bit-pair transition weighted by how many cycles it travels
  through the chain (transitions near the scan-in end toggle more cells);
* per-pattern **shift toggles** and the fill-policy comparison that makes
  *adjacent fill* the default in low-power flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..circuit.values import X
from .insertion import ScanDesign


def weighted_transition_metric(load_bits: Sequence[int]) -> int:
    """WTM of one chain load, first-shifted bit first.

    ``WTM = sum over adjacent pairs of (L - position - 1) * transition`` —
    a transition entering early ripples through more cells.
    """
    length = len(load_bits)
    total = 0
    for position in range(length - 1):
        if load_bits[position] != load_bits[position + 1]:
            total += length - position - 1
    return total


def pattern_shift_power(design: ScanDesign, state_bits: Sequence[int]) -> int:
    """Total WTM across all chains for one pattern's scan load."""
    streams = design.state_to_chain_bits(list(state_bits))
    return sum(weighted_transition_metric(stream) for stream in streams)


@dataclass
class ShiftPowerReport:
    """Aggregate shift-power figures for a pattern set."""

    patterns: int
    total_wtm: int
    peak_wtm: int

    @property
    def average_wtm(self) -> float:
        return self.total_wtm / self.patterns if self.patterns else 0.0


def pattern_set_power(
    design: ScanDesign, patterns: Sequence[Sequence[int]]
) -> ShiftPowerReport:
    """Shift power of a full-scan-view pattern set (state part only)."""
    n_pi = len(design.netlist.inputs)
    total = 0
    peak = 0
    for pattern in patterns:
        state = [v if v in (0, 1) else 0 for v in pattern[n_pi:]]
        wtm = pattern_shift_power(design, state)
        total += wtm
        peak = max(peak, wtm)
    return ShiftPowerReport(
        patterns=len(patterns), total_wtm=total, peak_wtm=peak
    )


def adjacent_fill(
    design: ScanDesign, cube: Sequence[int], pi_fill: int = 0
) -> List[int]:
    """Chain-aware adjacent fill: X's copy their shift-order neighbour.

    The view-order ``repeat`` fill loses most of its benefit because chain
    stitching interleaves flops; filling along each chain's actual shift
    order is what minimizes WTM.  Specified bits are untouched; PI X's
    take ``pi_fill``.
    """
    n_pi = len(design.netlist.inputs)
    filled = list(cube)
    for position in range(n_pi):
        if filled[position] == X:
            filled[position] = pi_fill
    flop_position = {
        flop: n_pi + index
        for index, flop in enumerate(design.netlist.flops)
    }
    for chain in design.chains:
        last = 0
        for flop in chain:
            position = flop_position[flop]
            if filled[position] == X:
                filled[position] = last
            else:
                last = filled[position]
    return filled


def fill_policy_comparison(
    design: ScanDesign,
    cubes: Sequence[Sequence[int]],
    seed: int = 0,
) -> Dict[str, ShiftPowerReport]:
    """Shift power of the same cube set under each X-fill policy.

    The classic low-power result: ``repeat`` (adjacent) fill cuts WTM by
    several x versus ``random`` fill because X-runs become constant runs.
    """
    import random as _random

    from ..atpg.engine import x_fill

    reports: Dict[str, ShiftPowerReport] = {}
    for mode in ("random", "zero", "one", "repeat"):
        rng = _random.Random(seed)
        filled = [x_fill(list(cube), rng, mode) for cube in cubes]
        reports[mode] = pattern_set_power(design, filled)
    chain_filled = [adjacent_fill(design, cube) for cube in cubes]
    reports["adjacent_chain"] = pattern_set_power(design, chain_filled)
    return reports
