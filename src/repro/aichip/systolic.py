"""Weight-stationary systolic MAC array — the AI-chip compute fabric.

The model matches the TPU-style array the tutorial's architecture section
describes: an ``rows x cols`` grid of processing elements, weights parked
one per PE, activations streaming west→east, partial sums accumulating
north→south.  A matmul ``X[n,k] @ W[k,m]`` executes in ``ceil(k/rows) *
ceil(m/cols)`` weight tiles.

Fault injection is per-PE (:class:`PEFault`), at the arithmetic level that
gate defects in the MAC produce after value quantization:

* ``dead`` — the PE contributes nothing (its product term is dropped),
* ``stuck_bit`` — one bit of the PE's product output is stuck at 0/1,
* ``weight_bit`` — one bit of the parked weight flipped at load time.

The per-PE arithmetic is vectorized with numpy so whole batches flow
through the (possibly faulty) array at useful speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Two's-complement width of a PE's product path (int8 x int8 -> 16 bits).
PRODUCT_BITS = 16


@dataclass(frozen=True)
class PEFault:
    """One injected processing-element fault.

    ``kind``: ``"dead"``, ``"stuck_bit"`` (product bit stuck at ``value``),
    or ``"weight_bit"`` (parked-weight bit inverted).  ``bit`` indexes the
    affected bit, LSB = 0.
    """

    row: int
    col: int
    kind: str
    bit: int = 0
    value: int = 0

    def describe(self) -> str:
        if self.kind == "dead":
            return f"PE[{self.row},{self.col}] dead"
        if self.kind == "stuck_bit":
            return f"PE[{self.row},{self.col}] product bit {self.bit} s-a-{self.value}"
        if self.kind == "weight_bit":
            return f"PE[{self.row},{self.col}] weight bit {self.bit} flipped"
        return f"PE[{self.row},{self.col}] {self.kind}?"


def _to_twos_complement(values: np.ndarray, bits: int) -> np.ndarray:
    return values & ((1 << bits) - 1)


def _from_twos_complement(values: np.ndarray, bits: int) -> np.ndarray:
    sign = 1 << (bits - 1)
    mask = (1 << bits) - 1
    unsigned = values & mask
    return np.where(unsigned >= sign, unsigned - (1 << bits), unsigned)


class SystolicArray:
    """Functional model of one weight-stationary MAC array."""

    def __init__(
        self,
        rows: int = 8,
        cols: int = 8,
        faults: Sequence[PEFault] = (),
        mapped_out: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.faults = list(faults)
        for fault in self.faults:
            if not (0 <= fault.row < rows and 0 <= fault.col < cols):
                raise ValueError(f"fault {fault} outside {rows}x{cols} array")
        #: PEs excluded from use (graceful degradation); matmuls re-tile
        #: around whole rows containing mapped-out PEs.
        self.mapped_out = set(mapped_out or ())

    # ------------------------------------------------------------------

    def _fault_map(self) -> Dict[Tuple[int, int], List[PEFault]]:
        by_pe: Dict[Tuple[int, int], List[PEFault]] = {}
        for fault in self.faults:
            by_pe.setdefault((fault.row, fault.col), []).append(fault)
        return by_pe

    def usable_rows(self) -> List[int]:
        """Array rows with no mapped-out PE (the degraded-mode resource)."""
        bad_rows = {row for row, _ in self.mapped_out}
        return [r for r in range(self.rows) if r not in bad_rows]

    def _pe_products(
        self,
        activations: np.ndarray,  # [n, tile_rows] int
        weights: np.ndarray,  # [tile_rows, tile_cols] int
        row_ids: Sequence[int],
        col_ids: Sequence[int],
    ) -> np.ndarray:
        """Per-PE product terms with faults applied: [n, rows, cols]."""
        weights = weights.copy()
        by_pe = self._fault_map()
        # Weight-load faults first.
        for (row, col), pe_faults in by_pe.items():
            for fault in pe_faults:
                if fault.kind != "weight_bit":
                    continue
                try:
                    r = row_ids.index(row)
                    c = col_ids.index(col)
                except ValueError:
                    continue
                raw = _to_twos_complement(
                    np.array(weights[r, c]), PRODUCT_BITS
                )
                raw ^= 1 << fault.bit
                weights[r, c] = int(_from_twos_complement(raw, PRODUCT_BITS))

        products = activations[:, :, None] * weights[None, :, :]
        # Product-path faults.
        for (row, col), pe_faults in by_pe.items():
            try:
                r = row_ids.index(row)
                c = col_ids.index(col)
            except ValueError:
                continue
            for fault in pe_faults:
                if fault.kind == "dead":
                    products[:, r, c] = 0
                elif fault.kind == "stuck_bit":
                    raw = _to_twos_complement(products[:, r, c], PRODUCT_BITS)
                    if fault.value:
                        raw = raw | (1 << fault.bit)
                    else:
                        raw = raw & ~(1 << fault.bit)
                    products[:, r, c] = _from_twos_complement(raw, PRODUCT_BITS)
        return products

    def matmul(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """``activations[n,k] @ weights[k,m]`` through the (faulty) array.

        Tiles the K dimension over usable array rows and the M dimension
        over array columns; accumulators are exact int (numpy int64).
        """
        if activations.ndim != 2 or weights.ndim != 2:
            raise ValueError("matmul expects 2-D operands")
        n, k = activations.shape
        k2, m = weights.shape
        if k != k2:
            raise ValueError(f"shape mismatch: {activations.shape} @ {weights.shape}")
        rows = self.usable_rows()
        if not rows:
            raise RuntimeError("no usable rows remain in the array")
        activations = activations.astype(np.int64)
        weights = weights.astype(np.int64)
        out = np.zeros((n, m), dtype=np.int64)
        tile_k = len(rows)
        for k0 in range(0, k, tile_k):
            k_ids = list(range(k0, min(k0 + tile_k, k)))
            row_ids = rows[: len(k_ids)]
            for m0 in range(0, m, self.cols):
                m_ids = list(range(m0, min(m0 + self.cols, m)))
                col_ids = list(range(len(m_ids)))
                products = self._pe_products(
                    activations[:, k_ids],
                    weights[np.ix_(k_ids, m_ids)],
                    row_ids,
                    col_ids,
                )
                out[:, m_ids] += products.sum(axis=1)
        return out

    # ------------------------------------------------------------------

    def cycles_for_matmul(self, n: int, k: int, m: int) -> int:
        """Cycle estimate: per weight tile, ``n + rows + cols`` beats.

        The standard pipeline fill + drain model for a weight-stationary
        array; mapped-out rows shrink the tile and raise the count — the
        throughput cost of graceful degradation (E9).
        """
        usable = len(self.usable_rows())
        if usable == 0:
            raise RuntimeError("no usable rows remain in the array")
        tiles_k = -(-k // usable)
        tiles_m = -(-m // self.cols)
        return tiles_k * tiles_m * (n + usable + self.cols)


def random_pe_faults(
    rows: int, cols: int, count: int, seed: int = 0, kinds: Sequence[str] = ("dead", "stuck_bit", "weight_bit")
) -> List[PEFault]:
    """Sample distinct-PE random faults for the E9 sweep."""
    import random as _random

    rng = _random.Random(seed)
    cells = [(r, c) for r in range(rows) for c in range(cols)]
    rng.shuffle(cells)
    faults: List[PEFault] = []
    for row, col in cells[:count]:
        kind = rng.choice(list(kinds))
        if kind == "dead":
            faults.append(PEFault(row, col, "dead"))
        elif kind == "stuck_bit":
            faults.append(
                PEFault(row, col, "stuck_bit", bit=rng.randrange(PRODUCT_BITS), value=rng.randint(0, 1))
            )
        else:
            faults.append(PEFault(row, col, "weight_bit", bit=rng.randrange(8)))
    return faults
