"""AI-chip model: quantized NN, systolic array, tiled accelerator, faults."""

from .accelerator import AcceleratorConfig, Core, CoreConfig, TiledAccelerator
from .fault_effects import (
    FaultSweepResult,
    SweepPoint,
    accuracy_fault_sweep,
    detect_faulty_pes,
    detection_is_complete,
    run_inference_on_array,
)
from .nn import (
    DenseLayer,
    MLP,
    QuantizedLayer,
    QuantizedMLP,
    make_blobs,
    trained_reference_model,
)
from .quantize import QMAX, QMIN, QuantParams, calibrate, requantize
from .systolic import PRODUCT_BITS, PEFault, SystolicArray, random_pe_faults

__all__ = [
    "MLP",
    "DenseLayer",
    "QuantizedMLP",
    "QuantizedLayer",
    "make_blobs",
    "trained_reference_model",
    "QuantParams",
    "calibrate",
    "requantize",
    "QMIN",
    "QMAX",
    "SystolicArray",
    "PEFault",
    "PRODUCT_BITS",
    "random_pe_faults",
    "TiledAccelerator",
    "AcceleratorConfig",
    "Core",
    "CoreConfig",
    "FaultSweepResult",
    "SweepPoint",
    "accuracy_fault_sweep",
    "detect_faulty_pes",
    "detection_is_complete",
    "run_inference_on_array",
]
