"""Fault-effect analysis: how PE defects corrupt NN inference (E9).

The tutorial's "map out and degrade" case study in three steps:

1. **injection sweep** — increasing numbers of random PE faults, measuring
   quantized-inference accuracy on the systolic model after each;
2. **detection** — a functional MAC test (deterministic stimulus through
   every PE) flags the faulty PEs, standing in for the scan/ATPG result;
3. **degradation** — faulty rows are mapped out and accuracy is
   re-measured, trading throughput (extra tiles) for correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .nn import MLP, QuantizedMLP, trained_reference_model
from .systolic import PEFault, SystolicArray, random_pe_faults


@dataclass
class SweepPoint:
    """One point of the accuracy-vs-fault-count curve."""

    n_faults: int
    accuracy: float
    accuracy_after_mapout: float
    cycles: int
    cycles_after_mapout: int


@dataclass
class FaultSweepResult:
    """The E9 curve plus its fixture metadata."""

    baseline_accuracy: float
    quantized_accuracy: float
    points: List[SweepPoint] = field(default_factory=list)


def run_inference_on_array(
    quantized: QuantizedMLP, array: SystolicArray, inputs: np.ndarray
) -> np.ndarray:
    """Predictions with every matmul routed through ``array``."""
    hooked = QuantizedMLP(
        quantized.layers, quantized.input_params, matmul_hook=array.matmul
    )
    return hooked.predict(inputs)


def _attribute_errors(
    errors: np.ndarray, rows: int, suspects: set
) -> None:
    """Attribute an identity-stimulus error matrix to PE coordinates.

    With identity activations, sample *i* drives only array row *i*, so:

    * an error appearing in a few samples of column *c* points at the PEs
      ``(sample, c)`` whose activation was live (dead PE / weight fault);
    * an error appearing in (nearly) every sample of column *c* is a stuck
      product bit — it corrupts the column regardless of activation — and
      the PE's own row is the sample whose error *deviates* from the
      common offset.
    """
    n_samples = errors.shape[0]
    for col in range(errors.shape[1]):
        column = errors[:, col]
        nonzero = np.nonzero(column)[0]
        if len(nonzero) == 0:
            continue
        if len(nonzero) <= rows // 2:
            for sample in nonzero:
                suspects.add((int(sample) % rows, col))
            continue
        # Stuck-type signature: find the common offset and flag deviants.
        values, counts = np.unique(column, return_counts=True)
        common = values[np.argmax(counts)]
        deviants = np.nonzero(column != common)[0]
        for sample in deviants:
            suspects.add((int(sample) % rows, col))


def detect_faulty_pes(array: SystolicArray, width: int = 8) -> List[Tuple[int, int]]:
    """Functional MAC screen: exercise and localize faulty PEs.

    Identity activation batches make each sample exercise exactly one array
    row; comparing against a golden array yields an error matrix that
    :func:`_attribute_errors` maps back to (row, col) suspects.  Several
    activation magnitudes and weight fills are needed so weight-register
    and stuck-bit faults (which are value-dependent) all manifest.  This is
    the functional analogue of the per-core scan test (the structural
    version lives in :mod:`repro.dft`).
    """
    rows, cols = array.rows, array.cols
    golden = SystolicArray(rows, cols)
    suspects: set = set()
    test_values = [1, -1, 3, -64, 85, -86]
    weight_fills = [
        np.full((rows, cols), 1, dtype=np.int64),
        np.fromfunction(lambda i, j: ((i * cols + j) % 127 + 1), (rows, cols)).astype(
            np.int64
        ),
        np.fromfunction(lambda i, j: (((i + 3) * (j + 7)) % 255 - 127), (rows, cols)).astype(
            np.int64
        ),
    ]
    for value in test_values:
        activations = np.eye(rows, dtype=np.int64) * value
        for weights in weight_fills:
            observed = array.matmul(activations, weights)
            expected = golden.matmul(activations, weights)
            _attribute_errors(observed - expected, rows, suspects)
    return sorted(suspects)


def accuracy_fault_sweep(
    fault_counts: Sequence[int] = (0, 1, 2, 4, 8, 16),
    rows: int = 8,
    cols: int = 8,
    seed: int = 3,
    model_fixture: Optional[Tuple[MLP, np.ndarray, np.ndarray]] = None,
) -> FaultSweepResult:
    """The full E9 sweep.

    For each fault count: inject, measure accuracy, run detection + map-out,
    re-measure.  The curve should show graceful degradation before map-out
    and near-baseline accuracy after, at a cycle cost.
    """
    model, test_x, test_y = model_fixture or trained_reference_model()
    quantized = QuantizedMLP.from_float(model, test_x)
    baseline = model.accuracy(test_x, test_y)
    clean_array = SystolicArray(rows, cols)
    q_acc = float(
        np.mean(run_inference_on_array(quantized, clean_array, test_x) == test_y)
    )
    n, k = test_x.shape
    m = quantized.layers[0].weights_q.shape[1]
    result = FaultSweepResult(baseline_accuracy=baseline, quantized_accuracy=q_acc)

    for count in fault_counts:
        faults = random_pe_faults(rows, cols, count, seed=seed + count)
        array = SystolicArray(rows, cols, faults=faults)
        predictions = run_inference_on_array(quantized, array, test_x)
        accuracy = float(np.mean(predictions == test_y))
        cycles = array.cycles_for_matmul(n, k, m)

        # Detect and map out.
        suspects = detect_faulty_pes(array)
        degraded = SystolicArray(rows, cols, faults=faults, mapped_out=suspects)
        if degraded.usable_rows():
            predictions2 = run_inference_on_array(quantized, degraded, test_x)
            accuracy2 = float(np.mean(predictions2 == test_y))
            cycles2 = degraded.cycles_for_matmul(n, k, m)
        else:
            accuracy2 = 0.0
            cycles2 = 0
        result.points.append(
            SweepPoint(
                n_faults=count,
                accuracy=accuracy,
                accuracy_after_mapout=accuracy2,
                cycles=cycles,
                cycles_after_mapout=cycles2,
            )
        )
    return result


def detection_is_complete(
    rows: int = 8, cols: int = 8, trials: int = 20, seed: int = 11
) -> Dict[str, float]:
    """Measure the functional screen's per-fault detection rate.

    Weight-register faults only manifest under weights that use the flipped
    bit, so the screen's walking-weight pass matters; this metric quantifies
    residual escapes.
    """
    import random as _random

    rng = _random.Random(seed)
    detected = 0
    total = 0
    for trial in range(trials):
        faults = random_pe_faults(rows, cols, 1, seed=seed * 100 + trial)
        array = SystolicArray(rows, cols, faults=faults)
        suspects = set(detect_faulty_pes(array))
        total += 1
        if (faults[0].row, faults[0].col) in suspects:
            detected += 1
    return {"detection_rate": detected / total if total else 1.0, "trials": total}
