"""Tiled AI accelerator model.

The chip-level structure the tutorial's case studies describe: a grid of
identical compute cores (each a systolic MAC array plus local SRAM
buffers), a shared weight memory, and a host interface.  Two properties
matter for DFT and are faithfully modeled:

* **replication** — every core is structurally identical (one gate-level
  PE/core netlist, instantiated N times), which hierarchical DFT exploits
  by generating patterns once and broadcasting them (E8);
* **degradability** — cores or PE rows can be mapped out after test, and
  the workload re-tiles across survivors at a throughput cost (E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..bist.memory import Memory, MemoryFault
from ..circuit.generators import systolic_pe
from ..circuit.netlist import Netlist
from .systolic import PEFault, SystolicArray


@dataclass
class CoreConfig:
    """One compute core's geometry."""

    array_rows: int = 8
    array_cols: int = 8
    sram_bits: int = 4096
    pe_width: int = 4  # datapath width of the gate-level PE netlist


class Core:
    """One compute core: systolic array + activation/weight SRAM."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        pe_faults: Sequence[PEFault] = (),
        sram_faults: Sequence[MemoryFault] = (),
    ):
        self.core_id = core_id
        self.config = config
        self.array = SystolicArray(
            config.array_rows, config.array_cols, faults=pe_faults
        )
        self.sram = Memory(config.sram_bits, faults=list(sram_faults))
        self.enabled = True

    @property
    def healthy(self) -> bool:
        return self.enabled and not self.array.faults

    def map_out_faulty_pes(self) -> int:
        """Graceful degradation: exclude rows containing faulty PEs.

        Returns the number of rows removed.  (Column map-out is symmetric;
        row granularity matches weight-stationary tiling.)
        """
        bad = {(fault.row, fault.col) for fault in self.array.faults}
        before = len(self.array.usable_rows())
        self.array.mapped_out |= bad
        return before - len(self.array.usable_rows())


@dataclass
class AcceleratorConfig:
    """Chip-level geometry: a grid of identical cores."""

    n_cores: int = 4
    core: CoreConfig = field(default_factory=CoreConfig)

    def core_netlist(self) -> Netlist:
        """The gate-level netlist of one PE (identical in every core).

        Hierarchical DFT runs ATPG on this single instance and retargets
        the result to all ``n_cores * rows * cols`` replicas.
        """
        return systolic_pe(self.core.pe_width)


class TiledAccelerator:
    """The whole chip: cores + a trivial batch scheduler."""

    def __init__(
        self,
        config: Optional[AcceleratorConfig] = None,
        core_pe_faults: Optional[Dict[int, Sequence[PEFault]]] = None,
        core_sram_faults: Optional[Dict[int, Sequence[MemoryFault]]] = None,
    ):
        self.config = config or AcceleratorConfig()
        pe_faults = core_pe_faults or {}
        sram_faults = core_sram_faults or {}
        self.cores: List[Core] = [
            Core(
                core_id,
                self.config.core,
                pe_faults=pe_faults.get(core_id, ()),
                sram_faults=sram_faults.get(core_id, ()),
            )
            for core_id in range(self.config.n_cores)
        ]

    def enabled_cores(self) -> List[Core]:
        return [core for core in self.cores if core.enabled]

    def disable_core(self, core_id: int) -> None:
        """Chip-level map-out: retire an entire core."""
        self.cores[core_id].enabled = False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def matmul(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Run one matmul, splitting the batch across enabled cores.

        Every core holds the same weights (data parallelism over the batch
        dimension — the standard inference deployment for tiled chips).
        """
        cores = self.enabled_cores()
        if not cores:
            raise RuntimeError("no enabled cores remain")
        n = activations.shape[0]
        out: Optional[np.ndarray] = None
        share = -(-n // len(cores))
        chunks: List[np.ndarray] = []
        for index, core in enumerate(cores):
            start = index * share
            stop = min(start + share, n)
            if start >= stop:
                continue
            chunks.append(core.array.matmul(activations[start:stop], weights))
        out = np.concatenate(chunks, axis=0)
        return out

    def cycles_for_matmul(self, n: int, k: int, m: int) -> int:
        """Latency estimate: slowest enabled core bounds the batch."""
        cores = self.enabled_cores()
        if not cores:
            raise RuntimeError("no enabled cores remain")
        share = -(-n // len(cores))
        return max(core.array.cycles_for_matmul(share, k, m) for core in cores)

    # ------------------------------------------------------------------
    # Health / DFT hooks
    # ------------------------------------------------------------------

    def faulty_cores(self) -> List[int]:
        return [core.core_id for core in self.cores if core.array.faults]

    def degrade_gracefully(self) -> Dict[int, int]:
        """Map out faulty PE rows in every core; returns rows lost per core."""
        return {
            core.core_id: core.map_out_faulty_pes()
            for core in self.cores
            if core.array.faults
        }

    def summary(self) -> Dict[str, object]:
        return {
            "cores": self.config.n_cores,
            "enabled": len(self.enabled_cores()),
            "array": f"{self.config.core.array_rows}x{self.config.core.array_cols}",
            "sram_bits_per_core": self.config.core.sram_bits,
            "faulty_cores": self.faulty_cores(),
        }
