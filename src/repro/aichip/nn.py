"""Minimal neural-network layer stack for the AI-chip case studies.

A small fully-connected classifier (dense + ReLU), trainable with plain
numpy gradient descent on synthetic data — enough to give the fault-effect
experiments (E9) a real accuracy metric without any ML dependencies.

The float model is the reference; :class:`QuantizedMLP` lowers it to int8
so inference can run MAC-for-MAC on the systolic-array model (and through
its fault injectors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .quantize import QuantParams, calibrate


def make_blobs(
    n_samples: int,
    n_features: int = 8,
    n_classes: int = 3,
    spread: float = 0.9,
    seed: int = 0,
    centers: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Synthetic Gaussian-blob classification data (features, labels).

    Pass the same ``centers`` to draw train and test sets from one task;
    omitting it derives centers from ``seed``.
    """
    rng = np.random.default_rng(seed)
    if centers is None:
        centers = rng.normal(0.0, 2.0, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    features = centers[labels] + rng.normal(0.0, spread, size=(n_samples, n_features))
    return features, labels


def blob_centers(n_features: int, n_classes: int, seed: int) -> np.ndarray:
    """Deterministic class centers for a blob task."""
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 2.0, size=(n_classes, n_features))


@dataclass
class DenseLayer:
    """One fully-connected layer ``y = x @ W + b`` with optional ReLU."""

    weights: np.ndarray
    biases: np.ndarray
    relu: bool = True

    @property
    def shape(self) -> Tuple[int, int]:
        return self.weights.shape


class MLP:
    """Float reference model."""

    def __init__(self, layers: List[DenseLayer]):
        self.layers = layers

    @staticmethod
    def random(
        sizes: Sequence[int], seed: int = 0, last_relu: bool = False
    ) -> "MLP":
        """He-initialized MLP with layer widths ``sizes``."""
        rng = np.random.default_rng(seed)
        layers: List[DenseLayer] = []
        for i in range(len(sizes) - 1):
            fan_in, fan_out = sizes[i], sizes[i + 1]
            weights = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
            biases = np.zeros(fan_out)
            relu = (i < len(sizes) - 2) or last_relu
            layers.append(DenseLayer(weights, biases, relu=relu))
        return MLP(layers)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Logits for a batch of inputs."""
        activations = inputs
        for layer in self.layers:
            activations = activations @ layer.weights + layer.biases
            if layer.relu:
                activations = np.maximum(activations, 0.0)
        return activations

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(inputs), axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(inputs) == labels))

    def train(
        self,
        inputs: np.ndarray,
        labels: np.ndarray,
        epochs: int = 60,
        learning_rate: float = 0.05,
        batch_size: int = 64,
        seed: int = 0,
    ) -> List[float]:
        """Softmax cross-entropy SGD; returns per-epoch training accuracy."""
        rng = np.random.default_rng(seed)
        n_classes = self.layers[-1].weights.shape[1]
        history: List[float] = []
        for _ in range(epochs):
            order = rng.permutation(len(inputs))
            for start in range(0, len(inputs), batch_size):
                batch = order[start : start + batch_size]
                x, y = inputs[batch], labels[batch]
                # Forward with caches.
                caches: List[Tuple[np.ndarray, np.ndarray]] = []
                act = x
                for layer in self.layers:
                    pre = act @ layer.weights + layer.biases
                    post = np.maximum(pre, 0.0) if layer.relu else pre
                    caches.append((act, pre))
                    act = post
                # Softmax gradient.
                logits = act - act.max(axis=1, keepdims=True)
                exp = np.exp(logits)
                probs = exp / exp.sum(axis=1, keepdims=True)
                onehot = np.eye(n_classes)[y]
                grad = (probs - onehot) / len(batch)
                # Backward.
                for layer, (layer_in, pre) in zip(
                    reversed(self.layers), reversed(caches)
                ):
                    if layer.relu:
                        grad = grad * (pre > 0)
                    grad_w = layer_in.T @ grad
                    grad_b = grad.sum(axis=0)
                    grad = grad @ layer.weights.T
                    layer.weights -= learning_rate * grad_w
                    layer.biases -= learning_rate * grad_b
            history.append(self.accuracy(inputs, labels))
        return history


@dataclass
class QuantizedLayer:
    """Int8 weights + float bias folded in at requantization."""

    weights_q: np.ndarray  # int32 storage of int8 values
    weight_params: QuantParams
    biases: np.ndarray
    relu: bool


class QuantizedMLP:
    """Int8 inference model, optionally running its matmuls on a callback.

    ``matmul_hook(x_q, w_q) -> int32 accumulators`` lets the systolic-array
    model (with injected PE faults) take over the arithmetic while the
    surrounding quantization stays fixed.
    """

    def __init__(
        self,
        layers: List[QuantizedLayer],
        input_params: QuantParams,
        matmul_hook: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    ):
        self.layers = layers
        self.input_params = input_params
        self.matmul_hook = matmul_hook

    @staticmethod
    def from_float(
        model: MLP,
        calibration_inputs: np.ndarray,
        matmul_hook: Optional[Callable[[np.ndarray, np.ndarray], np.ndarray]] = None,
    ) -> "QuantizedMLP":
        """Post-training quantization with activation calibration."""
        input_params = calibrate(calibration_inputs)
        layers: List[QuantizedLayer] = []
        activations = calibration_inputs
        for layer in model.layers:
            weight_params = calibrate(layer.weights)
            layers.append(
                QuantizedLayer(
                    weights_q=weight_params.quantize(layer.weights),
                    weight_params=weight_params,
                    biases=layer.biases.copy(),
                    relu=layer.relu,
                )
            )
            activations = activations @ layer.weights + layer.biases
            if layer.relu:
                activations = np.maximum(activations, 0.0)
        return QuantizedMLP(layers, input_params, matmul_hook)

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Float logits computed through int8 matmuls."""
        act_params = self.input_params
        act_q = act_params.quantize(inputs)
        logits: Optional[np.ndarray] = None
        for index, layer in enumerate(self.layers):
            if self.matmul_hook is not None:
                acc = self.matmul_hook(act_q, layer.weights_q)
            else:
                acc = act_q @ layer.weights_q
            floats = (
                acc.astype(np.float64)
                * act_params.scale
                * layer.weight_params.scale
                + layer.biases
            )
            if layer.relu:
                floats = np.maximum(floats, 0.0)
            if index == len(self.layers) - 1:
                logits = floats
            else:
                act_params = calibrate(floats)
                act_q = act_params.quantize(floats)
        assert logits is not None
        return logits

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(inputs), axis=1)

    def accuracy(self, inputs: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(inputs) == labels))


def trained_reference_model(
    n_features: int = 8,
    n_classes: int = 3,
    hidden: int = 16,
    n_train: int = 1200,
    n_test: int = 400,
    seed: int = 7,
) -> Tuple[MLP, np.ndarray, np.ndarray]:
    """A trained float MLP plus its held-out test set (E9 fixture)."""
    centers = blob_centers(n_features, n_classes, seed)
    train_x, train_y = make_blobs(
        n_train, n_features, n_classes, seed=seed, centers=centers
    )
    test_x, test_y = make_blobs(
        n_test, n_features, n_classes, seed=seed + 1, centers=centers
    )
    model = MLP.random([n_features, hidden, n_classes], seed=seed)
    model.train(train_x, train_y, epochs=40, seed=seed)
    return model, test_x, test_y
