"""Symmetric int8 quantization for NN inference on the systolic model.

AI accelerators run integer MACs; the tutorial's deep-learning-basics
section covers exactly this post-training symmetric scheme:

``q = clamp(round(x / scale), -127, 127)``, ``x ≈ q * scale``

Per-tensor scales keep the arithmetic identical to what the gate-level MAC
units compute, so logic faults injected at the PE level corrupt inference
the same way silicon defects would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Quantized value range for int8 symmetric quantization.
QMIN, QMAX = -127, 127


@dataclass(frozen=True)
class QuantParams:
    """Per-tensor quantization parameters."""

    scale: float

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Float -> int8 (stored in int32 for headroom during MACs)."""
        q = np.round(values / self.scale)
        return np.clip(q, QMIN, QMAX).astype(np.int32)

    def dequantize(self, values: np.ndarray) -> np.ndarray:
        """int8 -> float."""
        return values.astype(np.float64) * self.scale


def calibrate(values: np.ndarray) -> QuantParams:
    """Choose a symmetric scale covering the tensor's max magnitude."""
    peak = float(np.max(np.abs(values))) if values.size else 1.0
    if peak == 0.0:
        peak = 1.0
    return QuantParams(scale=peak / QMAX)


def quantize_matmul_output_scale(
    input_params: QuantParams, weight_params: QuantParams
) -> float:
    """Scale of an int32 accumulator produced by quantized matmul."""
    return input_params.scale * weight_params.scale


def requantize(
    accumulator: np.ndarray, acc_scale: float, out_params: QuantParams
) -> np.ndarray:
    """int32 accumulator -> int8 activation under ``out_params``."""
    floats = accumulator.astype(np.float64) * acc_scale
    return out_params.quantize(floats)
