"""SCOAP-guided PODEM with deterministic restart diversification.

Plain PODEM ranks D-frontier gates by observability alone; this engine
ranks them by full SCOAP *detect cost* — observability plus the
controllability of driving every open side input non-controlling — so
the objective chooser prefers propagation paths whose side conditions
are actually cheap to justify, not just paths that end near a pin.

On top of the ranking it runs a small deterministic restart schedule:
the per-fault backtrack budget is split into geometrically growing
slices, and each restart *rotates* the frontier ranking so successive
attempts commit to a different initial propagation path.  Hard faults
that trap classic PODEM in one reconvergent cone often fall to the
second or third ordering at a fraction of the budget.  Everything is
deterministic — same fault, same netlist, same budget ⇒ same result —
which the cross-engine oracle and the campaign determinism pins rely
on.

A conclusive outcome (``detected`` or ``untestable``) from any slice is
final: detection is validated by forward implication, and untestability
means the slice *exhausted the whole decision tree* without tripping a
budget, which is a proof no matter how small the slice was.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..circuit.gates import noncontrolling_value
from ..circuit.netlist import Netlist
from ..faults.model import StuckAtFault
from .podem import _RAIL_X, Podem, PodemResult
from ..circuit.dcalc import good_rail, is_faulted
from .scoap import Testability

__all__ = ["GuidedPodem"]


class GuidedPodem(Podem):
    """PODEM variant with SCOAP detect-cost frontier ranking + restarts."""

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = 64,
        measures: Optional[Testability] = None,
        time_budget_s: Optional[float] = None,
        restarts: int = 3,
    ):
        super().__init__(netlist, backtrack_limit, measures, time_budget_s)
        self.restarts = max(1, restarts)
        self._rotation = 0

    def _rank_frontier(
        self, frontier: Sequence[int], values: List[int]
    ) -> List[int]:
        ranked = sorted(
            frontier, key=lambda g: (self._detect_cost(g, values), g)
        )
        if self._rotation and len(ranked) > 1:
            pivot = self._rotation % len(ranked)
            ranked = ranked[pivot:] + ranked[:pivot]
        return ranked

    def _detect_cost(self, gate_index: int, values: List[int]) -> int:
        """SCOAP cost of pushing the D through ``gate_index``: observe the
        output, and justify each *open* side input non-controlling."""
        gate = self.netlist.gates[gate_index]
        cost = self.measures.co[gate_index]
        noncontrol = noncontrolling_value(gate.type)
        if noncontrol is None:
            return cost
        for driver in gate.fanin:
            value = values[driver]
            if is_faulted(value):
                continue
            if good_rail(value) == _RAIL_X:
                cost += self.measures.controllability(driver, noncontrol)
        return cost

    def generate(self, fault: StuckAtFault) -> PodemResult:
        deadline = (
            None
            if self.time_budget_s is None
            else time.perf_counter() + self.time_budget_s
        )
        slices = _budget_slices(self.backtrack_limit, self.restarts)
        total_backtracks = 0
        outcome = PodemResult(status="aborted", reason="backtracks")
        for rotation, slice_limit in enumerate(slices):
            self._rotation = rotation
            outcome = self._search(fault, slice_limit, deadline)
            total_backtracks += outcome.backtracks
            if outcome.status != "aborted" or outcome.reason == "time":
                break
        outcome.backtracks = total_backtracks
        return outcome


def _budget_slices(backtrack_limit: int, restarts: int) -> List[int]:
    """Split a backtrack budget into geometrically growing restart slices
    summing to ~``backtrack_limit`` (each slice at least 1)."""
    if restarts <= 1:
        return [backtrack_limit]
    weight_total = (1 << restarts) - 1
    slices = [
        max(1, (backtrack_limit * (1 << index)) // weight_total)
        for index in range(restarts)
    ]
    # Give any rounding remainder to the final (largest) slice.
    slices[-1] += max(0, backtrack_limit - sum(slices))
    return slices
