"""Transition-delay fault (TDF) test generation.

At-speed test of AI datapaths uses launch-on-capture (LOC) pattern pairs:
the scan load establishes vector *v1*, one functional clock launches the
transition producing *v2* (whose flop state is the captured next state of
*v1*), and a second capture observes the effect.

The generator here combines:

* **random LOC pairs** — v1 random, v2's state derived through the good
  machine (functionally consistent by construction), and
* **deterministic top-off** — PODEM generates a capture-frame test for the
  transient stuck-at, then a randomized justification search finds a launch
  vector whose next state is compatible with the capture cube and whose
  site value launches the transition.  Faults whose justification search
  fails are counted as aborted (a sequential-justification limit this
  prototype accepts; commercial tools unroll two time frames).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..circuit.netlist import Netlist
from ..circuit.values import ONE, X, ZERO
from ..faults.model import OUTPUT_PIN, StuckAtFault, TransitionFault
from ..faults.transition import full_transition_list
from ..sim.faultsim import FaultSimResult, FaultSimulator
from ..sim.logicsim import LogicSimulator
from .engine import x_fill
from .podem import Podem
from .random_gen import random_patterns

PatternPair = Tuple[List[int], List[int]]


def random_loc_pairs(netlist: Netlist, count: int, seed: int = 0) -> List[PatternPair]:
    """Functionally consistent random launch/capture pairs.

    v1 = random PIs + random scan state; v2 = fresh random PIs + the good
    machine's next state captured from v1.
    """
    netlist.finalize()
    simulator = LogicSimulator(netlist)
    n_pi = len(netlist.inputs)
    n_ff = len(netlist.flops)
    pairs: List[PatternPair] = []
    rng = random.Random(seed)
    for index in range(count):
        launch = [rng.randint(0, 1) for _ in range(n_pi + n_ff)]
        step = simulator.step(launch[:n_pi], launch[n_pi:])
        next_state = [value if value in (ZERO, ONE) else rng.randint(0, 1) for value in step["state"]]
        capture = [rng.randint(0, 1) for _ in range(n_pi)] + next_state
        pairs.append((launch, capture))
    return pairs


@dataclass
class TdfAtpgResult:
    """Outcome of the transition-fault flow."""

    pairs: List[PatternPair] = field(default_factory=list)
    total_faults: int = 0
    detected_random: int = 0
    detected_deterministic: int = 0
    unjustified: List[TransitionFault] = field(default_factory=list)
    untestable: List[TransitionFault] = field(default_factory=list)
    cpu_seconds: float = 0.0

    @property
    def detected(self) -> int:
        return self.detected_random + self.detected_deterministic

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected / self.total_faults


def run_tdf_atpg(
    netlist: Netlist,
    faults: Optional[Sequence[TransitionFault]] = None,
    n_random_pairs: int = 256,
    justify_tries: int = 200,
    backtrack_limit: int = 100,
    seed: int = 0,
) -> TdfAtpgResult:
    """Generate and grade LOC transition-fault pattern pairs."""
    start = time.perf_counter()
    netlist.finalize()
    if faults is None:
        faults = full_transition_list(netlist)
    simulator = FaultSimulator(netlist)
    logic = LogicSimulator(netlist)
    result = TdfAtpgResult(total_faults=len(faults))
    n_pi = len(netlist.inputs)
    n_ff = len(netlist.flops)
    rng = random.Random(seed)

    pairs = random_loc_pairs(netlist, n_random_pairs, seed=seed)
    sim = simulator.simulate_transition(pairs, faults, drop=True)
    used = sorted(set(sim.detected.values()))
    result.pairs = [pairs[index] for index in used]
    result.detected_random = len(sim.detected)
    remaining = list(sim.undetected)

    podem = Podem(netlist, backtrack_limit=backtrack_limit)
    for fault in list(remaining):
        stuck = StuckAtFault(fault.gate, fault.pin, fault.acts_as_stuck)
        outcome = podem.generate(stuck)
        if outcome.status == "untestable":
            result.untestable.append(fault)
            continue
        if outcome.status == "aborted":
            result.unjustified.append(fault)
            continue
        capture_cube = outcome.cube
        assert capture_cube is not None
        pair = _justify_launch(
            logic, simulator, fault, capture_cube, n_pi, n_ff, justify_tries, rng
        )
        if pair is None:
            result.unjustified.append(fault)
            continue
        grade = simulator.simulate_transition([pair], [fault], drop=True)
        if grade.detected:
            result.pairs.append(pair)
            result.detected_deterministic += 1
        else:
            result.unjustified.append(fault)

    result.cpu_seconds = time.perf_counter() - start
    return result


def _justify_launch(
    logic: LogicSimulator,
    simulator: FaultSimulator,
    fault: TransitionFault,
    capture_cube: Sequence[int],
    n_pi: int,
    n_ff: int,
    tries: int,
    rng: random.Random,
) -> Optional[PatternPair]:
    """Search for a launch vector compatible with a capture cube.

    Requirements: the good machine holds the pre-transition value at the
    fault site under v1, and NS(v1) matches every specified flop bit of the
    capture cube.  Returns a fully-specified (v1, v2) or None.
    """
    state_cube = capture_cube[n_pi:]
    initial_value = 1 - fault.slow_to
    for _ in range(tries):
        launch = [rng.randint(0, 1) for _ in range(n_pi + n_ff)]
        values = logic.evaluate(launch)
        site = _site_value_4v(simulator, fault, values)
        if site != initial_value:
            continue
        step = logic.step(launch[:n_pi], launch[n_pi:])
        next_state = step["state"]
        compatible = all(
            want == X or got == want
            for want, got in zip(state_cube, next_state)
        )
        if not compatible:
            continue
        capture_pi = [
            value if value != X else rng.randint(0, 1)
            for value in capture_cube[:n_pi]
        ]
        capture_state = [
            got if got in (ZERO, ONE) else (want if want != X else rng.randint(0, 1))
            for want, got in zip(state_cube, next_state)
        ]
        return launch, capture_pi + capture_state
    return None


def _site_value_4v(
    simulator: FaultSimulator, fault: TransitionFault, values: Sequence[int]
) -> int:
    """4-valued good value at a fault site (branch value = stem value)."""
    if fault.pin == OUTPUT_PIN:
        return values[fault.gate]
    driver = simulator.netlist.gates[fault.gate].fanin[fault.pin]
    return values[driver]
