"""PODEM — Path-Oriented DEcision Making test generation.

Goel's classic algorithm: decisions are made only on primary inputs (here,
PIs *and* scan-flop pseudo-PIs), each decision is followed by 5-valued
forward implication, and the search backtracks when the fault can no longer
be excited or no X-path remains from the D-frontier to an observation
point.

Implementation notes for speed (this is the toolkit's hottest loop):

* D-pairs are packed into single ints (see :mod:`repro.circuit.dcalc`) and
  gates evaluate by table lookup;
* implication is event-driven — one input changes per decision, so only its
  fanout cone re-evaluates;
* all frontier/detection scans are restricted to the fault's fanout cone.

The engine produces a *test cube*: an input vector over ``{0, 1, X}`` whose
X positions are don't-cares.  Compaction and compression exploit those X's;
:func:`repro.atpg.engine.x_fill` randomizes them for fault simulation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.dcalc import (
    AND_TABLE,
    DX,
    NOT_TABLE,
    OR_TABLE,
    XOR_TABLE,
    good_rail,
    has_x,
    is_faulted,
    pack,
)
from ..circuit.gates import GateType, controlling_value, is_inverting, noncontrolling_value
from ..circuit.netlist import Netlist
from ..circuit.values import X
from ..faults.model import OUTPUT_PIN, StuckAtFault
from ..sim.view import CombinationalView
from .scoap import Testability, compute_testability

_RAIL_X = 2  # rail encoding of "unknown" inside a packed D-value


@dataclass
class PodemResult:
    """Outcome of one PODEM run for one fault.

    ``reason`` distinguishes *why* an aborted search gave up:
    ``"backtracks"`` (the classic decision-budget abort) or ``"time"``
    (the per-fault wall-clock budget) — an aborted fault is *not*
    untestable, just unresolved within budget.
    """

    status: str  # "detected" | "untestable" | "aborted"
    cube: Optional[List[int]] = None  # 0/1/X per view input, when detected
    backtracks: int = 0
    reason: Optional[str] = None  # set when status == "aborted"

    @property
    def detected(self) -> bool:
        return self.status == "detected"


class Podem:
    """Reusable PODEM engine bound to one netlist (full-scan view)."""

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = 64,
        measures: Optional[Testability] = None,
        time_budget_s: Optional[float] = None,
    ):
        netlist.finalize()
        self.netlist = netlist
        self.view = CombinationalView(netlist)
        self.backtrack_limit = backtrack_limit
        if time_budget_s is not None and time_budget_s < 0:
            raise ValueError(f"time_budget_s must be >= 0, got {time_budget_s}")
        #: Per-fault wall-clock budget; one pathological fault can spend
        #: minutes inside the backtrack limit on deep reconvergent cones,
        #: so campaigns cap the *time* too (None = unlimited).
        self.time_budget_s = time_budget_s
        self.measures = measures or compute_testability(netlist)
        self._input_position: Dict[int, int] = {
            gate: position for position, gate in enumerate(self.view.input_gates)
        }
        self._topo_position = [0] * len(netlist.gates)
        for position, gate_index in enumerate(netlist.topo_order):
            self._topo_position[gate_index] = position
        # Per-fault scratch, (re)bound by generate().
        self._cone_gates: List[int] = []
        self._cone_readers: List[int] = []
        self._cone_reader_set: frozenset = frozenset()

    # ------------------------------------------------------------------
    # Packed D-calculus implication (event-driven)
    # ------------------------------------------------------------------

    def _recompute(self, gate_index: int, fault: StuckAtFault, values: List[int]) -> int:
        """Evaluate one gate's packed D-value with fault injection."""
        gate = self.netlist.gates[gate_index]
        gate_type = gate.type
        fanin = gate.fanin
        stuck = fault.value

        if gate_type == GateType.CONST0:
            result = 0  # pack(0, 0)
        elif gate_type == GateType.CONST1:
            result = 4  # pack(1, 1)
        else:
            inputs = [values[driver] for driver in fanin]
            if gate_index == fault.gate and fault.pin != OUTPUT_PIN:
                original = inputs[fault.pin]
                inputs[fault.pin] = (original // 3) * 3 + stuck
            if gate_type in (GateType.BUF, GateType.OUTPUT):
                result = inputs[0]
            elif gate_type == GateType.NOT:
                result = NOT_TABLE[inputs[0]]
            elif gate_type == GateType.AND or gate_type == GateType.NAND:
                acc = 4
                for value in inputs:
                    acc = AND_TABLE[acc][value]
                result = NOT_TABLE[acc] if gate_type == GateType.NAND else acc
            elif gate_type == GateType.OR or gate_type == GateType.NOR:
                acc = 0
                for value in inputs:
                    acc = OR_TABLE[acc][value]
                result = NOT_TABLE[acc] if gate_type == GateType.NOR else acc
            elif gate_type == GateType.XOR or gate_type == GateType.XNOR:
                acc = 0
                for value in inputs:
                    acc = XOR_TABLE[acc][value]
                result = NOT_TABLE[acc] if gate_type == GateType.XNOR else acc
            elif gate_type == GateType.MUX2:
                result = _mux_packed(inputs[0], inputs[1], inputs[2])
            else:  # pragma: no cover - exhaustive over combinational types
                raise ValueError(f"unhandled gate type {gate_type}")

        if gate_index == fault.gate and fault.pin == OUTPUT_PIN:
            result = (result // 3) * 3 + stuck
        return result

    def _set_input(
        self, position: int, value: int, fault: StuckAtFault, values: List[int]
    ) -> None:
        """Assign one view input (0/1/X) and propagate the change."""
        gate_index = self.view.input_gates[position]
        rail = _RAIL_X if value == X else value
        packed = rail * 3 + rail
        if fault.pin == OUTPUT_PIN and gate_index == fault.gate:
            packed = rail * 3 + fault.value
        if values[gate_index] == packed:
            return
        values[gate_index] = packed
        self._propagate_change(gate_index, fault, values)

    def _propagate_change(
        self, source: int, fault: StuckAtFault, values: List[int]
    ) -> None:
        """Event-driven re-implication through the fanout cone of ``source``."""
        gates = self.netlist.gates
        topo = self._topo_position
        heap: List[int] = []
        enqueued = set()

        for consumer in gates[source].fanout:
            if not gates[consumer].is_sequential:
                enqueued.add(consumer)
                heappush(heap, (topo[consumer] << 32) | consumer)
        while heap:
            gate_index = heappop(heap) & 0xFFFFFFFF
            packed = self._recompute(gate_index, fault, values)
            if packed == values[gate_index]:
                continue
            values[gate_index] = packed
            for consumer in gates[gate_index].fanout:
                if consumer not in enqueued and not gates[consumer].is_sequential:
                    enqueued.add(consumer)
                    heappush(heap, (topo[consumer] << 32) | consumer)

    def _initial_values(self, fault: StuckAtFault) -> List[int]:
        """All-X implication with the fault injected at its site."""
        gates = self.netlist.gates
        values = [DX] * len(gates)
        for gate_index in self.netlist.topo_order:
            gate = gates[gate_index]
            if gate.type == GateType.INPUT or gate.is_sequential:
                if fault.pin == OUTPUT_PIN and gate_index == fault.gate:
                    values[gate_index] = _RAIL_X * 3 + fault.value
                continue
            values[gate_index] = self._recompute(gate_index, fault, values)
        return values

    # ------------------------------------------------------------------
    # Cone, detection, objectives
    # ------------------------------------------------------------------

    def _fault_cone(self, fault: StuckAtFault) -> Tuple[List[int], List[int]]:
        """(cone gates in topo order, observation readers inside the cone)."""
        cone = self.netlist.fanout_cone([fault.gate])
        ordered = sorted(cone, key=lambda g: self._topo_position[g])
        readers = [r for r in self.view.output_readers if r in cone]
        return ordered, readers

    def _detected(self, fault: StuckAtFault, values: List[int]) -> bool:
        """Fault effect visible at an observation point?"""
        for reader in self._cone_readers:
            if is_faulted(values[reader]):
                return True
        return self._branch_observed(fault, values)

    def _branch_observed(self, fault: StuckAtFault, values: List[int]) -> bool:
        """Branch faults feeding a PO or flop D pin are observed directly."""
        if fault.pin == OUTPUT_PIN:
            return False
        gate = self.netlist.gates[fault.gate]
        if gate.type != GateType.OUTPUT and not gate.is_sequential:
            return False
        good = good_rail(values[gate.fanin[fault.pin]])
        return good != _RAIL_X and good != fault.value

    def _branch_reaches_observation(self, fault: StuckAtFault) -> bool:
        if fault.pin == OUTPUT_PIN:
            return False
        gate = self.netlist.gates[fault.gate]
        return gate.type == GateType.OUTPUT or gate.is_sequential

    def _site_good_value(self, fault: StuckAtFault, values: List[int]) -> int:
        """Good rail at the fault site (0/1/2-for-X)."""
        if fault.pin == OUTPUT_PIN:
            return good_rail(values[fault.gate])
        driver = self.netlist.gates[fault.gate].fanin[fault.pin]
        return good_rail(values[driver])

    def _excitation_target(self, fault: StuckAtFault) -> int:
        """Gate whose good value must be set to excite the fault."""
        if fault.pin == OUTPUT_PIN:
            return fault.gate
        return self.netlist.gates[fault.gate].fanin[fault.pin]

    def _d_frontier(self, fault: StuckAtFault, values: List[int]) -> List[int]:
        """Cone gates with an X output and at least one faulted input.

        A *branch* fault's D lives only at the faulted gate's pin (the
        driver net itself is healthy), so the faulted gate joins the
        frontier whenever its injected pin carries a D — i.e. the driver's
        good rail opposes the stuck value.
        """
        frontier: List[int] = []
        gates = self.netlist.gates
        for index in self._cone_gates:
            gate = gates[index]
            if gate.type == GateType.INPUT or gate.is_sequential:
                continue
            if not has_x(values[index]):
                continue
            if index == fault.gate and fault.pin != OUTPUT_PIN:
                driver_good = good_rail(values[gate.fanin[fault.pin]])
                if driver_good != _RAIL_X and driver_good != fault.value:
                    frontier.append(index)
                    continue
            for driver in gate.fanin:
                if is_faulted(values[driver]):
                    frontier.append(index)
                    break
        return frontier

    def _x_path_exists(self, frontier: Sequence[int], values: List[int]) -> bool:
        """Can any D-frontier gate still reach a reader through X gates?"""
        readers = self._cone_reader_set
        gates = self.netlist.gates
        seen = set()
        stack = list(frontier)
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            if index in readers:
                return True
            for consumer in gates[index].fanout:
                gate = gates[consumer]
                if gate.is_sequential:
                    continue
                if has_x(values[consumer]):
                    stack.append(consumer)
        return False

    def _objective(
        self, fault: StuckAtFault, values: List[int]
    ) -> Optional[Tuple[int, int]]:
        """Next (gate, good-value) objective, or None when search is stuck."""
        site_value = self._site_good_value(fault, values)
        needed = 1 - fault.value
        if site_value == _RAIL_X:
            return (self._excitation_target(fault), needed)
        if site_value != needed:
            return None  # excitation contradicted — backtrack
        frontier = self._d_frontier(fault, values)
        if not frontier:
            return None
        if not self._x_path_exists(frontier, values):
            return None
        # Scan frontier gates in heuristic order (see _rank_frontier).  A
        # driver is a valid objective whenever *either* rail is unknown:
        # the dual-rail model can know the good value while the faulty
        # rail (downstream of the fault through reconvergence) is still X,
        # and resolving that rail also goes through PI assignments.
        for best in self._rank_frontier(frontier, values):
            gate = self.netlist.gates[best]
            noncontrol = noncontrolling_value(gate.type)
            for driver in gate.fanin:
                if has_x(values[driver]) and not is_faulted(values[driver]):
                    target = noncontrol if noncontrol is not None else 1
                    if good_rail(values[driver]) != _RAIL_X:
                        # Good rail fixed: aim the backtrace at keeping it
                        # (the X faulty rail follows the same assignments).
                        target = good_rail(values[driver])
                    return (driver, target)
        return None

    def _rank_frontier(
        self, frontier: Sequence[int], values: List[int]
    ) -> List[int]:
        """Order D-frontier gates for objective selection.

        Classic PODEM attacks the easiest-to-observe gate first; the
        SCOAP-guided engine overrides this with a full detect-cost
        ranking over the current implication state (and rotates it
        across restarts).
        """
        return sorted(frontier, key=lambda g: self.measures.co[g])

    def _backtrace(
        self, gate_index: int, value: int, values: List[int]
    ) -> Optional[Tuple[int, int]]:
        """Walk an objective back through X gates to an unassigned input.

        Returns ``(input_position, value)`` or None when every path is
        blocked by assigned gates.
        """
        gates = self.netlist.gates
        current, target = gate_index, value
        for _ in range(len(gates) + 1):
            if current in self._input_position:
                if good_rail(values[current]) == _RAIL_X:
                    return (self._input_position[current], target)
                return None
            gate = gates[current]
            gate_type = gate.type
            if gate_type in (GateType.CONST0, GateType.CONST1):
                return None
            # Walk through any rail still unknown: a known-good line whose
            # faulty rail is X still depends on unassigned PIs.
            candidates = [d for d in gate.fanin if has_x(values[d])]
            if not candidates:
                return None
            if gate_type in (GateType.BUF, GateType.NOT, GateType.OUTPUT):
                current = gate.fanin[0]
                if gate_type == GateType.NOT:
                    target = 1 - target
                continue
            control = controlling_value(gate_type)
            if control is not None:
                if _needs_all_inputs(gate_type, target):
                    # Every input must be non-controlling: attack the
                    # hardest X input first (classic PODEM heuristic).
                    next_target = 1 - control
                    current = max(
                        candidates,
                        key=lambda d: self.measures.controllability(d, next_target),
                    )
                else:
                    # One controlling input suffices: take the easiest.
                    next_target = control
                    current = min(
                        candidates,
                        key=lambda d: self.measures.controllability(d, control),
                    )
                target = next_target
                continue
            # XOR/XNOR/MUX: any X input can serve; pick the cheapest input
            # and value, let implication plus backtracking settle parity.
            current = min(
                candidates,
                key=lambda d: min(self.measures.cc0[d], self.measures.cc1[d]),
            )
            target = (
                0 if self.measures.cc0[current] <= self.measures.cc1[current] else 1
            )
        return None

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def generate(self, fault: StuckAtFault) -> PodemResult:
        """Attempt to generate a test cube detecting ``fault``."""
        deadline = (
            None
            if self.time_budget_s is None
            else time.perf_counter() + self.time_budget_s
        )
        return self._search(fault, self.backtrack_limit, deadline)

    def _abort_reason(self, deadline: Optional[float]) -> str:
        """Reason for an abort at the backtrack-budget trip point.

        Both budgets can trip in the same step (the backtrack that blows
        the decision budget can also be the first check past the wall
        deadline); report whichever budget was exhausted *first* — the
        wall clock ran out before this backtrack was even counted.
        """
        if deadline is not None and time.perf_counter() > deadline:
            return "time"
        return "backtracks"

    def _search(
        self,
        fault: StuckAtFault,
        backtrack_limit: int,
        deadline: Optional[float],
    ) -> PodemResult:
        """One budgeted PODEM search (``generate`` minus budget setup)."""
        n_inputs = self.view.num_inputs
        assignment = [X] * n_inputs
        self._cone_gates, self._cone_readers = self._fault_cone(fault)
        self._cone_reader_set = frozenset(self._cone_readers)
        if not self._cone_readers and not self._branch_reaches_observation(fault):
            return PodemResult(status="untestable", backtracks=0)
        values = self._initial_values(fault)
        decision_stack: List[Tuple[int, int, bool]] = []  # (pos, value, flipped)
        backtracks = 0

        while True:
            if self._detected(fault, values):
                return PodemResult(
                    status="detected", cube=list(assignment), backtracks=backtracks
                )
            if deadline is not None and time.perf_counter() > deadline:
                return PodemResult(
                    status="aborted", backtracks=backtracks, reason="time"
                )
            objective = self._objective(fault, values)
            step = (
                self._backtrace(objective[0], objective[1], values)
                if objective is not None
                else None
            )
            if step is not None:
                position, value = step
                assignment[position] = value
                self._set_input(position, value, fault, values)
                decision_stack.append((position, value, False))
                continue
            # Dead end: backtrack.
            backtracks += 1
            if backtracks > backtrack_limit:
                return PodemResult(
                    status="aborted",
                    backtracks=backtracks,
                    reason=self._abort_reason(deadline),
                )
            while decision_stack:
                position, value, flipped = decision_stack.pop()
                if not flipped:
                    assignment[position] = 1 - value
                    self._set_input(position, 1 - value, fault, values)
                    decision_stack.append((position, 1 - value, True))
                    break
                assignment[position] = X
                self._set_input(position, X, fault, values)
            else:
                return PodemResult(status="untestable", backtracks=backtracks)


def _mux_rail(select: int, when0: int, when1: int) -> int:
    """One rail of a 2:1 mux: known select picks a side; X select is known
    only when both sides agree."""
    if select == 0:
        return when0
    if select == 1:
        return when1
    if when0 == when1 and when0 != _RAIL_X:
        return when0
    return _RAIL_X


def _mux_packed(select: int, when0: int, when1: int) -> int:
    """Packed-value 2:1 mux evaluation, rail by rail."""
    good = _mux_rail(select // 3, when0 // 3, when1 // 3)
    faulty = _mux_rail(select % 3, when0 % 3, when1 % 3)
    return good * 3 + faulty


def _needs_all_inputs(gate_type: GateType, output_value: int) -> bool:
    """True when the target output needs every input non-controlling."""
    control = controlling_value(gate_type)
    if control is None:
        return False
    produced_by_noncontrol = control if is_inverting(gate_type) else 1 - control
    return output_value == produced_by_noncontrol
