"""SCOAP-style testability measures.

Combinational controllability ``CC0``/``CC1`` (difficulty of setting a line
to 0/1) and observability ``CO`` (difficulty of propagating a line to an
observation point), computed per gate in the full-scan view.  Used by:

* PODEM backtrace — pick the easiest X input to satisfy an objective and
  the hardest input when all inputs must be set;
* LBIST test-point insertion (E6) — place control/observe points on the
  lines with the worst measures.

The measures follow Goldstein's SCOAP: every gate adds +1 depth cost, PIs
and scan flops cost 1 to control, observation points cost 0 to observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..circuit.gates import GateType
from ..circuit.netlist import Netlist

#: Cost used for lines that cannot be controlled/observed at all.
INFINITY = 10**9


@dataclass
class Testability:
    """Per-gate SCOAP vectors, indexed by gate index."""

    cc0: List[int]
    cc1: List[int]
    co: List[int]

    def controllability(self, gate: int, value: int) -> int:
        return self.cc1[gate] if value else self.cc0[gate]

    def detect_cost(self, gate: int, stuck_value: int) -> int:
        """Cost proxy for detecting ``gate`` output s-a-``stuck_value``."""
        excite = self.controllability(gate, 1 - stuck_value)
        return excite + self.co[gate]


def compute_testability(netlist: Netlist) -> Testability:
    """Compute CC0/CC1/CO for every gate (full-scan view)."""
    netlist.finalize()
    gates = netlist.gates
    cc0 = [INFINITY] * len(gates)
    cc1 = [INFINITY] * len(gates)

    for index in netlist.topo_order:
        gate = gates[index]
        if gate.type == GateType.INPUT or gate.is_sequential:
            cc0[index] = 1
            cc1[index] = 1
            continue
        if gate.type == GateType.CONST0:
            cc0[index] = 0
            continue
        if gate.type == GateType.CONST1:
            cc1[index] = 0
            continue
        fanin = gate.fanin
        in0 = [cc0[driver] for driver in fanin]
        in1 = [cc1[driver] for driver in fanin]
        if gate.type in (GateType.BUF, GateType.OUTPUT):
            cc0[index], cc1[index] = in0[0] + 1, in1[0] + 1
        elif gate.type == GateType.NOT:
            cc0[index], cc1[index] = in1[0] + 1, in0[0] + 1
        elif gate.type == GateType.AND:
            cc1[index] = sum(in1) + 1
            cc0[index] = min(in0) + 1
        elif gate.type == GateType.NAND:
            cc0[index] = sum(in1) + 1
            cc1[index] = min(in0) + 1
        elif gate.type == GateType.OR:
            cc0[index] = sum(in0) + 1
            cc1[index] = min(in1) + 1
        elif gate.type == GateType.NOR:
            cc1[index] = sum(in0) + 1
            cc0[index] = min(in1) + 1
        elif gate.type in (GateType.XOR, GateType.XNOR):
            # Parity: cheapest combination achieving each output parity.
            even, odd = 0, INFINITY
            for zero_cost, one_cost in zip(in0, in1):
                new_even = min(even + zero_cost, odd + one_cost)
                new_odd = min(even + one_cost, odd + zero_cost)
                even, odd = new_even, new_odd
            if gate.type == GateType.XOR:
                cc0[index], cc1[index] = even + 1, odd + 1
            else:
                cc0[index], cc1[index] = odd + 1, even + 1
        elif gate.type == GateType.MUX2:
            select, when0, when1 = fanin
            for value, table in ((0, cc0), (1, cc1)):
                through0 = cc0[select] + (cc0[when0] if value == 0 else cc1[when0])
                through1 = cc1[select] + (cc0[when1] if value == 0 else cc1[when1])
                table[index] = min(through0, through1) + 1
        else:  # pragma: no cover - exhaustive over GateType
            raise ValueError(f"unhandled gate type {gate.type}")

    co = [INFINITY] * len(gates)
    for po in netlist.outputs:
        co[gates[po].fanin[0]] = 0
        co[po] = 0
    for flop in netlist.flops:
        co[gates[flop].fanin[0]] = 0

    for index in reversed(netlist.topo_order):
        gate = gates[index]
        if gate.type == GateType.INPUT or gate.is_sequential:
            continue
        base = co[index]
        if base >= INFINITY:
            continue
        fanin = gate.fanin
        for pin, driver in enumerate(fanin):
            if gate.type in (GateType.BUF, GateType.NOT, GateType.OUTPUT):
                cost = base + 1
            elif gate.type in (GateType.AND, GateType.NAND):
                cost = base + 1 + sum(
                    cc1[other] for p, other in enumerate(fanin) if p != pin
                )
            elif gate.type in (GateType.OR, GateType.NOR):
                cost = base + 1 + sum(
                    cc0[other] for p, other in enumerate(fanin) if p != pin
                )
            elif gate.type in (GateType.XOR, GateType.XNOR):
                cost = base + 1 + sum(
                    min(cc0[other], cc1[other])
                    for p, other in enumerate(fanin)
                    if p != pin
                )
            elif gate.type == GateType.MUX2:
                select, when0, when1 = fanin
                if pin == 0:
                    cost = base + 1 + min(
                        cc0[when0] + cc1[when1], cc1[when0] + cc0[when1]
                    )
                elif driver == when0 and pin == 1:
                    cost = base + 1 + cc0[select]
                else:
                    cost = base + 1 + cc1[select]
            else:  # pragma: no cover
                cost = base + 1
            if cost < co[driver]:
                co[driver] = cost

    return Testability(cc0=cc0, cc1=cc1, co=co)


def hardest_lines(netlist: Netlist, measures: Testability, count: int) -> List[int]:
    """Gate indices with the worst detectability, worst first.

    Ports, constants and flops are excluded — test points go on logic lines.
    """
    skip = {GateType.INPUT, GateType.OUTPUT, GateType.CONST0, GateType.CONST1}
    candidates = [
        gate.index
        for gate in netlist.gates
        if gate.type not in skip and not gate.is_sequential
    ]
    ranked = sorted(
        candidates,
        key=lambda i: -(
            min(measures.cc0[i], INFINITY)
            + min(measures.cc1[i], INFINITY)
            + min(measures.co[i], INFINITY)
        ),
    )
    return ranked[:count]
