"""Per-fault engine portfolio: PODEM, guided PODEM, and the D-algorithm
raced under one budget.

The three deterministic engines have complementary strengths — PODEM is
fastest on easy faults, the SCOAP-guided restarts crack faults one bad
initial path traps PODEM in, and the D-algorithm's exhaustive frontier
search *proves* untestability where both PODEM variants can only abort.
The portfolio runs them per fault as a deterministic time-sliced relay:
each engine gets an equal share of ``time_budget_s`` (all of it when no
budget is set), the first conclusive verdict (``detected`` or
``untestable``) wins, and an all-engines-abort records every engine's
reason.  A true wall-clock race would be faster on a multicore box but
nondeterministic; the relay keeps campaigns bit-identical run to run,
which the equivalence oracle and the campaign determinism pins require.

The D-algorithm anchors the relay with a larger backtrack allowance
(``dalg_limit_factor`` × the base limit): it runs last, only on faults
the cheap engines already failed, where spending a deeper search to
either find the vector or prove redundancy is exactly the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit.netlist import Netlist
from ..faults.model import StuckAtFault
from .dalg import DAlgorithm
from .guided import GuidedPodem
from .podem import Podem, PodemResult
from .scoap import Testability, compute_testability

__all__ = ["ENGINE_NAMES", "PORTFOLIO_MEMBERS", "PortfolioAtpg", "PortfolioResult", "make_engine"]

#: Engine names accepted by ``run_atpg(engine=...)`` and the CLI.
ENGINE_NAMES = ("podem", "dalg", "guided", "portfolio")

#: Relay order inside the portfolio: cheapest first, prover last.
PORTFOLIO_MEMBERS = ("podem", "guided", "dalg")


@dataclass
class PortfolioResult(PodemResult):
    """A :class:`PodemResult` plus per-engine attribution.

    ``winner`` names the engine whose verdict stands (None when every
    member aborted); ``engine_reasons`` records why each *losing* member
    gave up, so an aborted fault carries a complete audit trail.
    """

    winner: Optional[str] = None
    engine_reasons: Dict[str, str] = field(default_factory=dict)
    engine_backtracks: Dict[str, int] = field(default_factory=dict)


class PortfolioAtpg:
    """Race the engine portfolio over each fault, deterministically."""

    def __init__(
        self,
        netlist: Netlist,
        backtrack_limit: int = 64,
        measures: Optional[Testability] = None,
        time_budget_s: Optional[float] = None,
        dalg_limit_factor: int = 4,
    ):
        netlist.finalize()
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self.time_budget_s = time_budget_s
        self.measures = measures or compute_testability(netlist)
        share = (
            None
            if time_budget_s is None
            else time_budget_s / len(PORTFOLIO_MEMBERS)
        )
        self.engines: List[Tuple[str, Podem]] = [
            (
                "podem",
                Podem(netlist, backtrack_limit, self.measures, share),
            ),
            (
                "guided",
                GuidedPodem(netlist, backtrack_limit, self.measures, share),
            ),
            (
                "dalg",
                DAlgorithm(
                    netlist,
                    backtrack_limit * dalg_limit_factor,
                    self.measures,
                    share,
                ),
            ),
        ]

    def generate(self, fault: StuckAtFault) -> PortfolioResult:
        reasons: Dict[str, str] = {}
        backtracks: Dict[str, int] = {}
        total_backtracks = 0
        for name, engine in self.engines:
            outcome = engine.generate(fault)
            total_backtracks += outcome.backtracks
            backtracks[name] = outcome.backtracks
            if outcome.status != "aborted":
                return PortfolioResult(
                    status=outcome.status,
                    cube=outcome.cube,
                    backtracks=total_backtracks,
                    winner=name,
                    engine_reasons=reasons,
                    engine_backtracks=backtracks,
                )
            reasons[name] = outcome.reason or "backtracks"
        # Every member aborted: surface "time" if any member ran out of
        # wall clock (the campaign-level aborted_timeout accounting keys
        # off it), else the decision-budget reason.
        reason = (
            "time" if "time" in reasons.values() else "backtracks"
        )
        return PortfolioResult(
            status="aborted",
            backtracks=total_backtracks,
            reason=reason,
            engine_reasons=reasons,
            engine_backtracks=backtracks,
        )


def make_engine(
    name: str,
    netlist: Netlist,
    backtrack_limit: int = 64,
    measures: Optional[Testability] = None,
    time_budget_s: Optional[float] = None,
):
    """Engine factory behind ``run_atpg(engine=...)`` and the CLI flag."""
    if name == "podem":
        return Podem(netlist, backtrack_limit, measures, time_budget_s)
    if name == "guided":
        return GuidedPodem(netlist, backtrack_limit, measures, time_budget_s)
    if name == "dalg":
        return DAlgorithm(netlist, backtrack_limit, measures, time_budget_s)
    if name == "portfolio":
        return PortfolioAtpg(
            netlist, backtrack_limit, measures, time_budget_s
        )
    raise ValueError(
        f"unknown ATPG engine {name!r}; expected one of {ENGINE_NAMES}"
    )
