"""Random and weighted-random pattern generation.

Plain uniform patterns drive the random phase of the ATPG flow (E1) and the
coverage-curve experiment (E2); weighted patterns are the classic remedy
for random-resistant logic and feed the LBIST experiment (E6).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


def random_patterns(n_inputs: int, count: int, seed: int = 0) -> List[List[int]]:
    """``count`` uniform random fully-specified patterns."""
    rng = random.Random(seed)
    patterns: List[List[int]] = []
    for _ in range(count):
        word = rng.getrandbits(n_inputs) if n_inputs else 0
        patterns.append([(word >> bit) & 1 for bit in range(n_inputs)])
    return patterns


def weighted_random_patterns(
    n_inputs: int,
    count: int,
    weights: Sequence[float],
    seed: int = 0,
) -> List[List[int]]:
    """Random patterns with a per-input probability of being 1.

    ``weights[i]`` is P(input *i* = 1).  Weighted random testing biases
    inputs toward the values that excite random-resistant faults.
    """
    if len(weights) != n_inputs:
        raise ValueError(f"need {n_inputs} weights, got {len(weights)}")
    rng = random.Random(seed)
    return [
        [1 if rng.random() < weight else 0 for weight in weights]
        for _ in range(count)
    ]


def exhaustive_patterns(n_inputs: int, limit: Optional[int] = None) -> List[List[int]]:
    """All ``2**n`` input combinations (optionally truncated to ``limit``)."""
    total = 1 << n_inputs
    if limit is not None:
        total = min(total, limit)
    return [
        [(value >> bit) & 1 for bit in range(n_inputs)] for value in range(total)
    ]
