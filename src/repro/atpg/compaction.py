"""Test-set compaction.

Two classic techniques:

* **static compaction** — merge test cubes whose specified bits do not
  conflict (an X position accepts either value).  Run after generation.
* **reverse-order compaction** — fault-simulate the pattern set in reverse
  order with fault dropping and keep only patterns that detect at least one
  not-yet-detected fault.

Both shrink pattern count without losing coverage; E4 uses the cube
statistics (care-bit density) they expose.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit.values import X
from ..sim.faultsim import FaultSimulator


def cubes_compatible(first: Sequence[int], second: Sequence[int]) -> bool:
    """True when no position holds opposite specified values."""
    for a, b in zip(first, second):
        if a != X and b != X and a != b:
            return False
    return True


def merge_cubes(first: Sequence[int], second: Sequence[int]) -> List[int]:
    """Intersection of two compatible cubes (specified bits win over X)."""
    return [b if a == X else a for a, b in zip(first, second)]


def static_compact(cubes: Sequence[Sequence[int]]) -> List[List[int]]:
    """Greedy first-fit merging of compatible cubes.

    Cubes are processed most-specified-first, each merged into the first
    compatible bin; typical reductions are 2-5x on PODEM output.
    """
    ordered = sorted(cubes, key=lambda c: -sum(1 for v in c if v != X))
    bins: List[List[int]] = []
    for cube in ordered:
        for position, existing in enumerate(bins):
            if cubes_compatible(existing, cube):
                bins[position] = merge_cubes(existing, cube)
                break
        else:
            bins.append(list(cube))
    return bins


def care_bit_stats(cubes: Sequence[Sequence[int]]) -> Tuple[int, int, float]:
    """``(care_bits, total_bits, density)`` across a cube set."""
    care = sum(1 for cube in cubes for value in cube if value != X)
    total = sum(len(cube) for cube in cubes)
    density = care / total if total else 0.0
    return care, total, density


def reverse_order_compact(
    patterns: Sequence[Sequence[int]],
    faults: Sequence[object],
    simulator: FaultSimulator,
) -> List[List[int]]:
    """Keep only patterns that first-detect a fault when replayed in reverse.

    Later patterns in a generated set tend to target hard faults whose tests
    also cover many easy ones, so reversing maximizes dropping.
    """
    reversed_patterns = [list(p) for p in reversed(patterns)]
    result = simulator.simulate(reversed_patterns, faults, drop=True)
    useful = sorted(set(result.detected.values()))
    return [reversed_patterns[index] for index in useful]
