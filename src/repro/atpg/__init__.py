"""Test generation: PODEM / D-algorithm / guided engines and their
per-fault portfolio, random/weighted patterns, compaction, TDF ATPG."""

from .compaction import (
    care_bit_stats,
    cubes_compatible,
    merge_cubes,
    reverse_order_compact,
    static_compact,
)
from .dalg import DAlgorithm
from .engine import AtpgResult, atpg_table_row, run_atpg, x_fill
from .guided import GuidedPodem
from .podem import Podem, PodemResult
from .portfolio import (
    ENGINE_NAMES,
    PORTFOLIO_MEMBERS,
    PortfolioAtpg,
    PortfolioResult,
    make_engine,
)
from .random_gen import exhaustive_patterns, random_patterns, weighted_random_patterns
from .scoap import Testability, compute_testability, hardest_lines
from .tdf import TdfAtpgResult, random_loc_pairs, run_tdf_atpg
from .timeframe import (
    SequentialAtpgResult,
    UnrolledModel,
    map_fault_to_frame,
    run_sequential_atpg,
    unroll,
)

__all__ = [
    "Podem",
    "PodemResult",
    "DAlgorithm",
    "GuidedPodem",
    "PortfolioAtpg",
    "PortfolioResult",
    "make_engine",
    "ENGINE_NAMES",
    "PORTFOLIO_MEMBERS",
    "run_atpg",
    "AtpgResult",
    "atpg_table_row",
    "x_fill",
    "random_patterns",
    "weighted_random_patterns",
    "exhaustive_patterns",
    "static_compact",
    "cubes_compatible",
    "merge_cubes",
    "reverse_order_compact",
    "care_bit_stats",
    "compute_testability",
    "Testability",
    "hardest_lines",
    "run_tdf_atpg",
    "TdfAtpgResult",
    "random_loc_pairs",
    "unroll",
    "UnrolledModel",
    "map_fault_to_frame",
    "run_sequential_atpg",
    "SequentialAtpgResult",
]
